#include "data/impute.h"

namespace icewafl {
namespace data {

Result<size_t> ForwardBackwardFill(TupleVector* tuples,
                                   const std::string& column) {
  if (tuples->empty()) return size_t{0};
  ICEWAFL_ASSIGN_OR_RETURN(size_t idx,
                           tuples->front().schema()->IndexOf(column));
  size_t imputed = 0;
  // Forward pass.
  bool have_last = false;
  Value last;
  for (Tuple& t : *tuples) {
    const Value& v = t.value(idx);
    if (v.is_null()) {
      if (have_last) {
        t.set_value(idx, last);
        ++imputed;
      }
    } else {
      last = v;
      have_last = true;
    }
  }
  if (!have_last) {
    return Status::InvalidArgument("column '" + column +
                                   "' is entirely NULL; cannot impute");
  }
  // Backward pass for any leading NULLs.
  have_last = false;
  for (auto it = tuples->rbegin(); it != tuples->rend(); ++it) {
    const Value& v = it->value(idx);
    if (v.is_null()) {
      if (have_last) {
        it->set_value(idx, last);
        ++imputed;
      }
    } else {
      last = v;
      have_last = true;
    }
  }
  return imputed;
}

Result<size_t> CountNulls(const TupleVector& tuples,
                          const std::string& column) {
  if (tuples.empty()) return size_t{0};
  ICEWAFL_ASSIGN_OR_RETURN(size_t idx,
                           tuples.front().schema()->IndexOf(column));
  size_t count = 0;
  for (const Tuple& t : tuples) {
    if (t.value(idx).is_null()) ++count;
  }
  return count;
}

}  // namespace data
}  // namespace icewafl
