#include "data/splits.h"

namespace icewafl {
namespace data {

Result<DataSplits> SplitByYear(const TupleVector& stream,
                               const SplitOptions& options) {
  const size_t year = options.hours_per_year;
  if (options.valid_hours == 0 || options.valid_hours >= year) {
    return Status::InvalidArgument("valid_hours must be in (0, hours_per_year)");
  }
  if (stream.size() < 2 * year) {
    return Status::InvalidArgument(
        "stream too short to split: need >= " + std::to_string(2 * year) +
        " tuples, got " + std::to_string(stream.size()));
  }
  DataSplits splits;
  const size_t train_end = year - options.valid_hours;
  splits.train.assign(stream.begin(),
                      stream.begin() + static_cast<ptrdiff_t>(train_end));
  splits.valid.assign(stream.begin() + static_cast<ptrdiff_t>(train_end),
                      stream.begin() + static_cast<ptrdiff_t>(year));
  splits.eval.assign(stream.end() - static_cast<ptrdiff_t>(year),
                     stream.end());
  return splits;
}

}  // namespace data
}  // namespace icewafl
