#include "data/airquality.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace icewafl {
namespace data {

namespace {

constexpr double kHoursPerYear = 8766.0;  // average over leap cycle

const char* const kWindDirections[] = {"N",  "NNE", "NE", "ENE", "E",  "ESE",
                                       "SE", "SSE", "S",  "SSW", "SW", "WSW",
                                       "W",  "WNW", "NW", "NNW"};

}  // namespace

StationProfile StationProfileFor(const std::string& name) {
  if (name == "Gucheng") {
    return {"Gucheng", 52.0, 16.0, 10.0, -0.6, 11};
  }
  if (name == "Wanshouxigong") {
    return {"Wanshouxigong", 48.0, 14.0, 9.0, 0.2, 22};
  }
  if (name == "Wanliu") {
    return {"Wanliu", 44.0, 13.0, 8.5, 0.0, 33};
  }
  StationProfile profile;
  profile.name = name;
  uint64_t h = 1469598103934665603ULL;  // FNV-1a over the station name
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  profile.seed_offset = h;
  return profile;
}

SchemaPtr AirQualitySchema() {
  auto schema = Schema::Make(
      {
          {"timestamp", ValueType::kInt64},
          {"station", ValueType::kString},
          {"year", ValueType::kInt64},
          {"month", ValueType::kInt64},
          {"day", ValueType::kInt64},
          {"hour", ValueType::kInt64},
          {"PM2_5", ValueType::kDouble},
          {"PM10", ValueType::kDouble},
          {"SO2", ValueType::kDouble},
          {"NO2", ValueType::kDouble},
          {"CO", ValueType::kDouble},
          {"O3", ValueType::kDouble},
          {"TEMP", ValueType::kDouble},
          {"PRES", ValueType::kDouble},
          {"DEWP", ValueType::kDouble},
          {"RAIN", ValueType::kDouble},
          {"WSPM", ValueType::kDouble},
          {"WD", ValueType::kString},
      },
      "timestamp");
  return schema.ValueOrDie();
}

Result<TupleVector> GenerateAirQuality(const AirQualityOptions& options) {
  if (options.hours == 0) return Status::InvalidArgument("hours must be > 0");
  if (options.missing_fraction < 0.0 || options.missing_fraction > 1.0) {
    return Status::InvalidArgument("missing_fraction must be in [0, 1]");
  }
  const StationProfile profile = StationProfileFor(options.station);
  Rng rng(options.seed + profile.seed_offset);

  SchemaPtr schema = AirQualitySchema();
  TupleVector tuples;
  tuples.reserve(options.hours);

  // AR(1) residual states give the series realistic short-term memory.
  double no2_resid = 0.0;
  double temp_resid = 0.0;
  double pm_resid = 0.0;
  double wind_resid = 0.0;

  for (size_t i = 0; i < options.hours; ++i) {
    const Timestamp ts =
        options.start + static_cast<Timestamp>(i) * kSecondsPerHour;
    const CivilTime ct = CivilFromTimestamp(ts);
    const double hours_elapsed = static_cast<double>(i);
    const double annual =
        2.0 * M_PI * hours_elapsed / kHoursPerYear;  // phase 0 = March
    const double hour = static_cast<double>(ct.hour);
    const double diurnal = 2.0 * M_PI * hour / 24.0;

    // Temperature: annual cycle (phase-shifted so July peaks), diurnal
    // cycle peaking mid-afternoon, AR(1) weather noise.
    temp_resid = 0.92 * temp_resid + rng.Gaussian(0.0, 1.1);
    const double temp = 13.0 + profile.temp_offset +
                        14.0 * std::sin(annual - 0.35) +
                        4.0 * std::sin(diurnal - 2.6) + temp_resid;

    // Wind: autocorrelated and strictly positive; strong winds disperse
    // pollutants, which couples NO2 to this covariate.
    wind_resid = 0.85 * wind_resid + rng.Gaussian(0.0, 0.55);
    const double wspm = std::max(0.1, 1.8 + wind_resid);

    // NO2: winter maximum (anti-phase to temperature), morning/evening
    // rush-hour bumps, dispersion by wind, AR(1) residual. Clamped
    // positive. The wind and temperature terms give exogenous-aware
    // forecasters (ARIMAX) real signal to exploit.
    no2_resid = 0.85 * no2_resid + rng.Gaussian(0.0, 3.0);
    const double rush = 6.0 * std::exp(-0.5 * std::pow((hour - 8.0) / 2.0, 2)) +
                        7.0 * std::exp(-0.5 * std::pow((hour - 19.0) / 2.5, 2));
    double no2 = profile.no2_base -
                 profile.no2_season_amp * std::sin(annual - 0.35) + rush +
                 profile.no2_diurnal_amp * std::sin(diurnal - 1.0) -
                 6.5 * (wspm - 1.8) - 0.35 * temp_resid + no2_resid;
    no2 = std::max(2.0, no2);

    // Particulate matter correlates with NO2; PM10 rides on PM2.5.
    pm_resid = 0.9 * pm_resid + rng.Gaussian(0.0, 8.0);
    const double pm25 = std::max(3.0, 0.9 * no2 + 15.0 + pm_resid);
    const double pm10 = pm25 + std::max(0.0, rng.Gaussian(25.0, 10.0));

    const double so2 = std::max(1.0, 12.0 - 6.0 * std::sin(annual - 0.35) +
                                         rng.Gaussian(0.0, 3.0));
    const double co = std::max(100.0, 16.0 * no2 + rng.Gaussian(150.0, 80.0));
    // Ozone is anti-correlated with NO2 and peaks in summer afternoons.
    const double o3 =
        std::max(1.0, 60.0 + 35.0 * std::sin(annual - 0.35) +
                          20.0 * std::sin(diurnal - 2.6) - 0.4 * no2 +
                          rng.Gaussian(0.0, 8.0));
    const double pres =
        1012.0 - 8.0 * std::sin(annual - 0.35) - 0.25 * temp_resid +
        rng.Gaussian(0.0, 2.0);
    const double dewp = temp - std::max(0.5, rng.Gaussian(6.0, 2.5));
    const double rain =
        rng.Bernoulli(0.05) ? std::abs(rng.Gaussian(0.0, 2.5)) : 0.0;
    const std::string wd =
        kWindDirections[rng.UniformInt(0, 15)];

    Value no2_value =
        rng.Bernoulli(options.missing_fraction) ? Value::Null() : Value(no2);

    tuples.emplace_back(
        schema,
        std::vector<Value>{
            Value(ts), Value(profile.name), Value(int64_t{ct.year}),
            Value(int64_t{ct.month}), Value(int64_t{ct.day}),
            Value(int64_t{ct.hour}), Value(pm25), Value(pm10), Value(so2),
            std::move(no2_value), Value(co), Value(o3), Value(temp),
            Value(pres), Value(dewp), Value(rain), Value(wspm), Value(wd)});
  }
  return tuples;
}

std::vector<std::string> PaperRegions() {
  return {"Gucheng", "Wanshouxigong", "Wanliu"};
}

Result<std::vector<TupleVector>> GenerateAllRegions(
    const AirQualityOptions& base) {
  std::vector<TupleVector> streams;
  for (const std::string& region : PaperRegions()) {
    AirQualityOptions options = base;
    options.station = region;
    ICEWAFL_ASSIGN_OR_RETURN(TupleVector stream, GenerateAirQuality(options));
    streams.push_back(std::move(stream));
  }
  return streams;
}

Result<std::vector<double>> ColumnAsDoubles(const TupleVector& tuples,
                                            const std::string& column) {
  std::vector<double> out;
  out.reserve(tuples.size());
  if (tuples.empty()) return out;
  ICEWAFL_ASSIGN_OR_RETURN(size_t idx,
                           tuples.front().schema()->IndexOf(column));
  for (const Tuple& t : tuples) {
    const Value& v = t.value(idx);
    if (v.is_null()) {
      return Status::InvalidArgument("NULL in column '" + column +
                                     "' — impute before extraction");
    }
    ICEWAFL_ASSIGN_OR_RETURN(double x, v.ToDouble());
    out.push_back(x);
  }
  return out;
}

Result<std::vector<Timestamp>> ColumnAsTimestamps(const TupleVector& tuples) {
  std::vector<Timestamp> out;
  out.reserve(tuples.size());
  for (const Tuple& t : tuples) {
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp ts, t.GetTimestamp());
    out.push_back(ts);
  }
  return out;
}

}  // namespace data
}  // namespace icewafl
