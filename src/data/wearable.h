#ifndef ICEWAFL_DATA_WEARABLE_H_
#define ICEWAFL_DATA_WEARABLE_H_

#include "stream/tuple.h"
#include "util/result.h"

namespace icewafl {
namespace data {

/// \brief Configuration of the synthetic wearable-device stream.
///
/// Stands in for the proprietary dataset of Lim et al. (volunteer
/// 0216-0051-NHC) used in Experiment 1. The generator reproduces the
/// structural properties the paper's scenarios depend on, with exact
/// counts so the experiment arithmetic matches Table 1:
///  - 1059 tuples at 15-minute granularity (264.75 hours), starting
///    2016-02-26 23:15 so that exactly `post_update_tuples` = 1056 tuples
///    carry timestamps >= 2016-02-27 00:00 (the software-update date);
///  - exactly `active_tuples` = 374 tuples with non-zero Distance (the
///    tuples on which a km->cm unit error becomes detectable);
///  - exactly `exercise_tuples` = 33 tuples with BPM > 100;
///  - exactly `not_worn_tuples` = 96 post-update tuples where the device
///    was not worn (BPM = 0, all activity attributes 0, CaloriesBurned
///    0); every other tuple has CaloriesBurned with three decimal places
///    (960 post-update tuples detectably affected by rounding);
///  - exactly `anomalous_tuples` = 2 pre-existing errors: BPM = 0 while
///    Steps > 0 (the two extra violations GX found in the original data).
struct WearableOptions {
  uint64_t seed = 0x5EA2AB1EULL;
  int total_tuples = 1059;
  int pre_update_tuples = 3;
  int not_worn_tuples = 96;
  int active_tuples = 374;
  int exercise_tuples = 33;
  int anomalous_tuples = 2;
};

/// \brief Event time of the simulated software update
/// (2016-02-27 00:00:00 UTC).
Timestamp WearableUpdateTime();

/// \brief Schema: Time (timestamp), BPM, Steps, Distance (km),
/// CaloriesBurned, ActiveMinutes.
SchemaPtr WearableSchema();

/// \brief Generates the synthetic activity-tracker stream.
Result<TupleVector> GenerateWearable(const WearableOptions& options = {});

}  // namespace data
}  // namespace icewafl

#endif  // ICEWAFL_DATA_WEARABLE_H_
