#ifndef ICEWAFL_DATA_IMPUTE_H_
#define ICEWAFL_DATA_IMPUTE_H_

#include <string>

#include "stream/tuple.h"
#include "util/result.h"

namespace icewafl {
namespace data {

/// \brief Forward-fills NULLs in `column` with the most recent non-NULL
/// value; leading NULLs are back-filled from the first non-NULL value
/// (the paper's pandas ffill/bfill preprocessing of the NO2 series).
/// Returns the number of values imputed. An all-NULL column is an error.
Result<size_t> ForwardBackwardFill(TupleVector* tuples,
                                   const std::string& column);

/// \brief Number of NULLs in `column`.
Result<size_t> CountNulls(const TupleVector& tuples, const std::string& column);

}  // namespace data
}  // namespace icewafl

#endif  // ICEWAFL_DATA_IMPUTE_H_
