#ifndef ICEWAFL_DATA_SPLITS_H_
#define ICEWAFL_DATA_SPLITS_H_

#include "stream/tuple.h"
#include "util/result.h"

namespace icewafl {
namespace data {

/// \brief The data splits of Table 2 (per region r):
///  - D_train: 1st year of D_r minus the last 12 hours,
///  - D_valid: last 12 hours of the 1st year,
///  - D_eval:  last year of D_r.
/// The polluted variants D_noise / D_scale are produced by running the
/// corresponding pollution pipelines over `eval`.
struct DataSplits {
  TupleVector train;
  TupleVector valid;
  TupleVector eval;
};

/// \brief Options for splitting a multi-year hourly stream.
struct SplitOptions {
  size_t hours_per_year = 8760;
  size_t valid_hours = 12;
};

/// \brief Splits an hourly stream per Table 2. The stream must span at
/// least two years of hourly tuples.
Result<DataSplits> SplitByYear(const TupleVector& stream,
                               const SplitOptions& options = {});

}  // namespace data
}  // namespace icewafl

#endif  // ICEWAFL_DATA_SPLITS_H_
