#include "data/wearable.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace icewafl {
namespace data {

namespace {

constexpr int64_t kSlotSeconds = 15 * 60;

/// Stream start 2016-02-26 23:15: the three slots 23:15/23:30/23:45 are
/// the only pre-update tuples.
Timestamp StreamStart() {
  return TimestampFromCivil({2016, 2, 26, 23, 15, 0});
}

/// CaloriesBurned with exactly three decimal places and a non-zero last
/// digit, so the shortest decimal rendering has precision 3 and a
/// round-to-2 pollution is always detectable.
double ThreeDecimalCalories(Rng* rng, double lo, double hi) {
  const int64_t whole = static_cast<int64_t>(std::floor(rng->Uniform(lo, hi)));
  // Keep the value >= 0.5 so a later round-to-2 pollution cannot collapse
  // it to a plain "0" (which a precision check would accept as valid).
  int64_t milli = whole == 0 ? rng->UniformInt(501, 999)
                             : rng->UniformInt(1, 999);
  if (milli % 10 == 0) milli += 1;
  // A single division keeps the value exactly the nearest double of the
  // decimal "whole.milli", so its shortest rendering has 3 decimals.
  return static_cast<double>(whole * 1000 + milli) / 1000.0;
}

}  // namespace

Timestamp WearableUpdateTime() {
  return TimestampFromCivil({2016, 2, 27, 0, 0, 0});
}

SchemaPtr WearableSchema() {
  auto schema = Schema::Make(
      {
          {"Time", ValueType::kInt64},
          {"BPM", ValueType::kDouble},
          {"Steps", ValueType::kInt64},
          {"Distance", ValueType::kDouble},
          {"CaloriesBurned", ValueType::kDouble},
          {"ActiveMinutes", ValueType::kDouble},
      },
      "Time");
  return schema.ValueOrDie();
}

Result<TupleVector> GenerateWearable(const WearableOptions& options) {
  const int n = options.total_tuples;
  if (n <= 0) return Status::InvalidArgument("total_tuples must be > 0");
  if (options.pre_update_tuples < 0 || options.pre_update_tuples >= n) {
    return Status::InvalidArgument("pre_update_tuples out of range");
  }
  const int post = n - options.pre_update_tuples;
  if (options.not_worn_tuples + options.active_tuples +
          options.anomalous_tuples >
      post) {
    return Status::InvalidArgument(
        "category counts exceed post-update tuple count");
  }
  if (options.exercise_tuples > options.active_tuples) {
    return Status::InvalidArgument("exercise_tuples must be <= active_tuples");
  }

  Rng rng(options.seed);
  const Timestamp start = StreamStart();
  const Timestamp update = WearableUpdateTime();

  // Partition the post-update slots into night (not-worn candidates) and
  // day (activity candidates) by hour of day.
  std::vector<int> night_slots;
  std::vector<int> day_slots;
  std::vector<int> other_slots;
  for (int i = 0; i < n; ++i) {
    const Timestamp ts = start + static_cast<Timestamp>(i) * kSlotSeconds;
    if (ts < update) continue;  // pre-update tuples stay idle-worn
    const int hour = HourOfDay(ts);
    if (hour >= 0 && hour < 6) {
      night_slots.push_back(i);
    } else if (hour >= 7 && hour < 22) {
      day_slots.push_back(i);
    } else {
      other_slots.push_back(i);
    }
  }
  if (static_cast<int>(night_slots.size()) < options.not_worn_tuples) {
    return Status::InvalidArgument("not enough night slots for not-worn count");
  }
  if (static_cast<int>(day_slots.size()) <
      options.active_tuples + options.anomalous_tuples) {
    return Status::InvalidArgument("not enough day slots for activity counts");
  }

  // Draw the exact category memberships with the seeded generator.
  enum class Kind { kIdleWorn, kNotWorn, kActive, kExercise, kAnomalous };
  std::vector<Kind> kind(static_cast<size_t>(n), Kind::kIdleWorn);

  {
    std::vector<size_t> perm = rng.Permutation(night_slots.size());
    for (int k = 0; k < options.not_worn_tuples; ++k) {
      kind[static_cast<size_t>(night_slots[perm[static_cast<size_t>(k)]])] =
          Kind::kNotWorn;
    }
  }
  {
    std::vector<size_t> perm = rng.Permutation(day_slots.size());
    int k = 0;
    for (int a = 0; a < options.active_tuples; ++a, ++k) {
      const size_t slot =
          static_cast<size_t>(day_slots[perm[static_cast<size_t>(k)]]);
      kind[slot] = a < options.exercise_tuples ? Kind::kExercise : Kind::kActive;
    }
    for (int a = 0; a < options.anomalous_tuples; ++a, ++k) {
      kind[static_cast<size_t>(day_slots[perm[static_cast<size_t>(k)]])] =
          Kind::kAnomalous;
    }
  }

  SchemaPtr schema = WearableSchema();
  TupleVector tuples;
  tuples.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Timestamp ts = start + static_cast<Timestamp>(i) * kSlotSeconds;
    double bpm = 0.0;
    int64_t steps = 0;
    double distance = 0.0;
    double calories = 0.0;
    double active_minutes = 0.0;
    switch (kind[static_cast<size_t>(i)]) {
      case Kind::kNotWorn:
        // Device in the drawer: everything zero, including calories (the
        // 96 tuples whose CaloriesBurned precision cannot be reduced).
        break;
      case Kind::kIdleWorn:
        bpm = rng.Uniform(55.0, 75.0);
        // Resting burn stays >= 0.5 kcal so that a round-to-2 pollution
        // can never produce a plain "0" (which would read as valid).
        calories = ThreeDecimalCalories(&rng, 0.5, 3.0);
        break;
      case Kind::kActive:
        bpm = rng.Uniform(75.0, 99.0);
        steps = rng.UniformInt(200, 2500);
        distance = std::max(
            0.1, static_cast<double>(steps) / 1300.0 +
                     rng.Uniform(-0.02, 0.02));
        active_minutes = rng.Uniform(3.0, 15.0);
        calories = ThreeDecimalCalories(&rng, 5.0, 40.0);
        break;
      case Kind::kExercise:
        bpm = rng.Uniform(105.0, 170.0);
        steps = rng.UniformInt(1500, 3200);
        distance = std::max(
            0.5, static_cast<double>(steps) / 1200.0 +
                     rng.Uniform(-0.05, 0.05));
        active_minutes = 15.0;
        calories = ThreeDecimalCalories(&rng, 40.0, 120.0);
        break;
      case Kind::kAnomalous:
        // Pre-existing data error: heart rate dropped out while steps
        // were still recorded (the "+2" of Table 1). Distance stays 0 so
        // the non-zero-distance count is untouched.
        bpm = 0.0;
        steps = rng.UniformInt(100, 500);
        active_minutes = rng.Uniform(1.0, 5.0);
        calories = ThreeDecimalCalories(&rng, 3.0, 10.0);
        break;
    }
    tuples.emplace_back(
        schema, std::vector<Value>{Value(ts), Value(bpm), Value(steps),
                                   Value(distance), Value(calories),
                                   Value(active_minutes)});
  }
  return tuples;
}

}  // namespace data
}  // namespace icewafl
