#ifndef ICEWAFL_DATA_AIRQUALITY_H_
#define ICEWAFL_DATA_AIRQUALITY_H_

#include <string>
#include <vector>

#include "stream/tuple.h"
#include "util/result.h"

namespace icewafl {
namespace data {

/// \brief Configuration of the synthetic Beijing-style air-quality
/// stream.
///
/// Stands in for the UCI Beijing Multi-Site Air-Quality dataset used in
/// Experiment 2: hourly multivariate measurements over four years
/// (35,064 tuples per station, 18 attributes). The generator reproduces
/// the statistical structure the forecasting experiment depends on —
/// annual seasonality, diurnal cycles, autocorrelated residuals, and
/// cross-attribute correlation between NO2 and the weather covariates —
/// not the literal measurements.
struct AirQualityOptions {
  std::string station = "Wanshouxigong";
  /// First observation (paper: 2013-03-01 00:00).
  Timestamp start = 1362096000;  // 2013-03-01 00:00:00 UTC
  size_t hours = 35064;          // four years of hourly tuples
  uint64_t seed = 2013;
  /// Fraction of NO2 values replaced by NULL (the raw dataset has gaps
  /// the paper imputes with forward/backward fill before analysis).
  double missing_fraction = 0.0;
};

/// \brief Per-station climatology offsets; the three regions of the
/// paper's experiment are predefined (Gucheng, Wanshouxigong, Wanliu).
struct StationProfile {
  std::string name;
  double no2_base = 45.0;
  double no2_season_amp = 14.0;
  double no2_diurnal_amp = 9.0;
  double temp_offset = 0.0;
  uint64_t seed_offset = 0;
};

/// \brief Profile lookup for the paper's three regions; unknown names get
/// a default profile with a name-derived seed offset.
StationProfile StationProfileFor(const std::string& name);

/// \brief 18-attribute schema: timestamp, station, year, month, day,
/// hour, PM2_5, PM10, SO2, NO2, CO, O3, TEMP, PRES, DEWP, RAIN, WSPM, WD.
SchemaPtr AirQualitySchema();

/// \brief Generates one station's stream.
Result<TupleVector> GenerateAirQuality(const AirQualityOptions& options = {});

/// \brief The three regions of the paper's Experiment 2.
std::vector<std::string> PaperRegions();

/// \brief Generates the streams of all three paper regions with shared
/// non-station options; returned in PaperRegions() order.
Result<std::vector<TupleVector>> GenerateAllRegions(
    const AirQualityOptions& base = {});

/// \brief Extracts an attribute as a double series (NULLs forbidden —
/// impute first).
Result<std::vector<double>> ColumnAsDoubles(const TupleVector& tuples,
                                            const std::string& column);

/// \brief Extracts the timestamp attribute of every tuple.
Result<std::vector<Timestamp>> ColumnAsTimestamps(const TupleVector& tuples);

}  // namespace data
}  // namespace icewafl

#endif  // ICEWAFL_DATA_AIRQUALITY_H_
