#include "dq/monitor.h"

#include <algorithm>
#include <utility>

#include "util/strings.h"

namespace icewafl {
namespace dq {

namespace {

// Floor division for possibly-negative event times (epoch seconds can
// legitimately predate 1970 in test fixtures).
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

}  // namespace

Json WindowResult::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("start", Json(static_cast<int64_t>(start)));
  out.Set("end", Json(static_cast<int64_t>(end)));
  out.Set("tuples", Json(static_cast<int64_t>(tuples)));
  out.Set("violations", Json(static_cast<int64_t>(violations)));
  out.Set("pass", Json(pass));
  return out;
}

WindowedMonitor::WindowedMonitor(ExpectationSuite suite, WindowSpec window,
                                 WatermarkPolicy watermark,
                                 obs::MetricRegistry* metrics)
    : suite_(std::move(suite)),
      window_(window),
      watermark_policy_(watermark) {
  if (window_.size_seconds <= 0) window_.size_seconds = 1;
  if (window_.kind == WindowSpec::Kind::kSliding) {
    if (window_.slide_seconds <= 0 ||
        window_.slide_seconds > window_.size_seconds) {
      window_.slide_seconds = window_.size_seconds;
    }
  }
  if (metrics != nullptr) {
    const obs::Labels suite_label = {{"suite", suite_.name()}};
    windows_pass_ = metrics->GetCounter(
        "icewafl_dq_windows_total", {{"suite", suite_.name()},
                                     {"result", "pass"}},
        "Closed data-quality windows by outcome.");
    windows_fail_ = metrics->GetCounter(
        "icewafl_dq_windows_total", {{"suite", suite_.name()},
                                     {"result", "fail"}},
        "Closed data-quality windows by outcome.");
    violations_ = metrics->GetCounter(
        "icewafl_dq_window_violations_total", suite_label,
        "Unexpected elements across closed windows.");
    late_ = metrics->GetCounter(
        "icewafl_dq_late_tuples_total", suite_label,
        "Tuples dropped because every containing window had closed.");
    if (windows_pass_ == nullptr || windows_fail_ == nullptr ||
        violations_ == nullptr || late_ == nullptr) {
      windows_pass_ = windows_fail_ = nullptr;
      violations_ = late_ = nullptr;
    }
  }
}

Status WindowedMonitor::Bind(SchemaPtr schema) {
  return suite_.Bind(std::move(schema));
}

void WindowedMonitor::WindowStartsFor(Timestamp t,
                                      std::vector<Timestamp>* starts) const {
  starts->clear();
  const int64_t size = window_.size_seconds;
  if (window_.kind == WindowSpec::Kind::kTumbling) {
    starts->push_back(FloorDiv(t, size) * size);
    return;
  }
  // Sliding: every start s with s <= t < s + size, stepped by slide.
  const int64_t slide = window_.slide_seconds;
  const Timestamp last = FloorDiv(t, slide) * slide;
  for (Timestamp s = last; s > t - size; s -= slide) {
    starts->push_back(s);
  }
  // Ascending start order keeps the open_ map insertions cheap.
  std::reverse(starts->begin(), starts->end());
}

Status WindowedMonitor::Observe(const Tuple& tuple) {
  ++tuples_seen_;
  Timestamp t = tuple.event_time();
  Result<Timestamp> ts = tuple.GetTimestamp();
  if (ts.ok()) t = ts.ValueOrDie();

  WindowStartsFor(t, &starts_scratch_);
  bool routed = false;
  for (Timestamp start : starts_scratch_) {
    // A window whose end has passed the closed cutoff no longer accepts
    // tuples — that is what makes the tuple "late".
    if (start + window_.size_seconds <= closed_through_) continue;
    open_[start].push_back(tuple);
    routed = true;
  }
  if (!routed) {
    ++late_dropped_;
    if (late_ != nullptr) late_->Increment();
  }

  if (t > max_event_time_) {
    max_event_time_ = t;
    const Timestamp wm = t - watermark_policy_.allowed_lateness_seconds;
    if (wm > watermark_) {
      watermark_ = wm;
      ICEWAFL_RETURN_NOT_OK(CloseWindowsThrough(watermark_));
    }
  }
  return Status::OK();
}

Status WindowedMonitor::ObserveAll(const TupleVector& tuples) {
  for (const Tuple& tuple : tuples) {
    ICEWAFL_RETURN_NOT_OK(Observe(tuple));
  }
  return Status::OK();
}

Status WindowedMonitor::CloseWindowsThrough(Timestamp watermark) {
  while (!open_.empty()) {
    const Timestamp start = open_.begin()->first;
    if (start + window_.size_seconds > watermark) break;
    ICEWAFL_RETURN_NOT_OK(CloseWindow(start));
  }
  // The cutoff advances with the watermark even when no window was open
  // to close — otherwise a straggler could re-open (and score into) a
  // window the watermark passed before it ever received a tuple.
  if (watermark > closed_through_) closed_through_ = watermark;
  return Status::OK();
}

Status WindowedMonitor::CloseWindow(Timestamp start) {
  auto it = open_.find(start);
  if (it == open_.end()) return Status::OK();
  TupleVector tuples = std::move(it->second);
  open_.erase(it);

  ICEWAFL_ASSIGN_OR_RETURN(SuiteResult verdict, suite_.Validate(tuples));

  WindowResult result;
  result.start = start;
  result.end = start + window_.size_seconds;
  result.tuples = tuples.size();
  result.violations = verdict.TotalUnexpected();
  result.pass = verdict.success();
  series_.push_back(result);
  if (start + window_.size_seconds > closed_through_) {
    closed_through_ = start + window_.size_seconds;
  }

  if (windows_pass_ != nullptr) {
    (result.pass ? windows_pass_ : windows_fail_)->Increment();
    violations_->Increment(result.violations);
  }
  return Status::OK();
}

Status WindowedMonitor::Flush() {
  while (!open_.empty()) {
    ICEWAFL_RETURN_NOT_OK(CloseWindow(open_.begin()->first));
  }
  return Status::OK();
}

size_t WindowedMonitor::FailedWindowCount() const {
  size_t failed = 0;
  for (const WindowResult& w : series_) {
    if (!w.pass) ++failed;
  }
  return failed;
}

std::string WindowedMonitor::ToCsv() const {
  std::string out = "window_start,window_end,tuples,violations,pass\n";
  for (const WindowResult& w : series_) {
    out += std::to_string(w.start);
    out += ',';
    out += std::to_string(w.end);
    out += ',';
    out += std::to_string(w.tuples);
    out += ',';
    out += std::to_string(w.violations);
    out += ',';
    out += w.pass ? "true" : "false";
    out += '\n';
  }
  return out;
}

Json WindowedMonitor::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("suite", Json(suite_.name()));
  Json window = Json::MakeObject();
  window.Set("kind", Json(window_.kind == WindowSpec::Kind::kTumbling
                              ? "tumbling"
                              : "sliding"));
  window.Set("size_seconds", Json(window_.size_seconds));
  if (window_.kind == WindowSpec::Kind::kSliding) {
    window.Set("slide_seconds", Json(window_.slide_seconds));
  }
  window.Set("allowed_lateness_seconds",
             Json(watermark_policy_.allowed_lateness_seconds));
  out.Set("window", std::move(window));
  Json series = Json::MakeArray();
  for (const WindowResult& w : series_) {
    series.Append(w.ToJson());
  }
  out.Set("series", std::move(series));
  out.Set("tuples_seen", Json(static_cast<int64_t>(tuples_seen_)));
  out.Set("late_dropped", Json(static_cast<int64_t>(late_dropped_)));
  out.Set("failed_windows", Json(static_cast<int64_t>(FailedWindowCount())));
  return out;
}

}  // namespace dq
}  // namespace icewafl
