#include "dq/profile.h"

#include <cmath>
#include <set>

#include "util/strings.h"

namespace icewafl {
namespace dq {

Result<std::vector<ColumnProfile>> ProfileColumns(
    const TupleVector& tuples, const ProfileOptions& options) {
  std::vector<ColumnProfile> profiles;
  if (tuples.empty()) return profiles;
  const SchemaPtr& schema = tuples.front().schema();
  if (schema == nullptr) return Status::Internal("tuples have no schema");

  struct Accumulator {
    std::set<std::string> distinct;
    double m2 = 0.0;  // Welford
  };
  std::vector<Accumulator> accumulators(schema->num_attributes());
  profiles.resize(schema->num_attributes());
  for (size_t c = 0; c < schema->num_attributes(); ++c) {
    profiles[c].column = schema->attribute(c).name;
    profiles[c].declared_type = schema->attribute(c).type;
  }

  for (const Tuple& t : tuples) {
    for (size_t c = 0; c < schema->num_attributes(); ++c) {
      ColumnProfile& p = profiles[c];
      Accumulator& acc = accumulators[c];
      const Value& v = t.value(c);
      ++p.total;
      if (v.is_null()) {
        ++p.nulls;
        continue;
      }
      if (v.type() != p.declared_type) ++p.type_mismatches;
      if (v.is_numeric()) {
        const double x = v.ToDouble().ValueOrDie();
        ++p.numeric_count;
        if (p.numeric_count == 1) {
          p.min = p.max = x;
        } else {
          p.min = std::min(p.min, x);
          p.max = std::max(p.max, x);
        }
        const double delta = x - p.mean;
        p.mean += delta / static_cast<double>(p.numeric_count);
        acc.m2 += delta * (x - p.mean);
      }
      if (!p.distinct_exceeded) {
        acc.distinct.insert(v.ToString());
        if (acc.distinct.size() > options.distinct_cap) {
          p.distinct_exceeded = true;
          acc.distinct.clear();
        }
      }
    }
  }
  for (size_t c = 0; c < profiles.size(); ++c) {
    ColumnProfile& p = profiles[c];
    if (p.numeric_count > 1) {
      p.stddev = std::sqrt(accumulators[c].m2 /
                           static_cast<double>(p.numeric_count));
    }
    if (!p.distinct_exceeded) {
      p.distinct = accumulators[c].distinct.size();
      p.distinct_values.assign(accumulators[c].distinct.begin(),
                               accumulators[c].distinct.end());
    } else {
      p.distinct = options.distinct_cap;
    }
  }
  return profiles;
}

std::string ProfilesToReport(const std::vector<ColumnProfile>& profiles) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-16s %-8s %-8s %-6s %-10s %-10s %-10s %-9s\n",
                "column", "type", "total", "nulls", "min", "max", "mean",
                "distinct");
  out += line;
  for (const ColumnProfile& p : profiles) {
    std::string distinct = std::to_string(p.distinct);
    if (p.distinct_exceeded) distinct = ">" + distinct;
    if (p.numeric_count > 0) {
      std::snprintf(line, sizeof(line),
                    "%-16s %-8s %-8llu %-6llu %-10.6g %-10.6g %-10.6g %-9s\n",
                    p.column.c_str(), ValueTypeName(p.declared_type),
                    static_cast<unsigned long long>(p.total),
                    static_cast<unsigned long long>(p.nulls), p.min, p.max,
                    p.mean, distinct.c_str());
    } else {
      std::snprintf(line, sizeof(line),
                    "%-16s %-8s %-8llu %-6llu %-10s %-10s %-10s %-9s\n",
                    p.column.c_str(), ValueTypeName(p.declared_type),
                    static_cast<unsigned long long>(p.total),
                    static_cast<unsigned long long>(p.nulls), "-", "-", "-",
                    distinct.c_str());
    }
    out += line;
  }
  return out;
}

Result<ExpectationSuite> SuggestSuite(const TupleVector& tuples,
                                      const ProfileOptions& options) {
  ICEWAFL_ASSIGN_OR_RETURN(std::vector<ColumnProfile> profiles,
                           ProfileColumns(tuples, options));
  ExpectationSuite suite("suggested");
  if (tuples.empty()) return suite;
  const SchemaPtr& schema = tuples.front().schema();

  for (const ColumnProfile& p : profiles) {
    if (p.nulls == 0) {
      suite.Expect<ExpectColumnValuesToNotBeNull>(p.column);
    }
    if (p.type_mismatches == 0 && p.declared_type != ValueType::kNull &&
        p.nulls < p.total) {
      suite.Expect<ExpectColumnValuesToBeOfType>(p.column, p.declared_type);
    }
    if (p.numeric_count > 1) {
      const double span = std::max(p.max - p.min, 1e-9);
      suite.Expect<ExpectColumnValuesToBeBetween>(
          p.column, p.min - options.bound_slack * span,
          p.max + options.bound_slack * span);
    }
    if (p.declared_type == ValueType::kString && !p.distinct_exceeded &&
        p.distinct > 0 && p.distinct <= options.max_categorical_domain) {
      suite.Expect<ExpectColumnValuesToBeInSet>(
          p.column, std::set<std::string>(p.distinct_values.begin(),
                                          p.distinct_values.end()));
    }
  }
  // The stream's event order: timestamps must not regress.
  suite.Expect<ExpectColumnValuesToBeIncreasing>(schema->timestamp_name(),
                                                 /*strictly=*/false);
  return suite;
}

}  // namespace dq
}  // namespace icewafl
