#ifndef ICEWAFL_DQ_MONITOR_H_
#define ICEWAFL_DQ_MONITOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dq/suite.h"
#include "obs/metrics.h"
#include "stream/tuple.h"
#include "util/json.h"
#include "util/result.h"

namespace icewafl {
namespace dq {

/// \file
/// Windowed, stream-first data-quality monitoring (DESIGN.md section
/// 15, after Stream DaQ): instead of one suite verdict over the whole
/// materialized stream, the monitor buckets tuples into tumbling or
/// sliding event-time windows, closes each window when the watermark
/// passes its end, runs the bound expectation suite over the window's
/// tuples, and emits a per-window pass/fail/violation-count series —
/// published through the obs metric registry and exportable as CSV.

/// \brief Window geometry over event time (seconds).
struct WindowSpec {
  enum class Kind { kTumbling, kSliding };

  Kind kind = Kind::kTumbling;
  /// Window length in seconds; must be positive.
  int64_t size_seconds = 3600;
  /// Slide step for sliding windows (<= size); ignored for tumbling.
  int64_t slide_seconds = 0;

  static WindowSpec Tumbling(int64_t size_seconds) {
    return WindowSpec{Kind::kTumbling, size_seconds, 0};
  }
  static WindowSpec Sliding(int64_t size_seconds, int64_t slide_seconds) {
    return WindowSpec{Kind::kSliding, size_seconds, slide_seconds};
  }
};

/// \brief Out-of-order tolerance: the watermark trails the maximum
/// event time seen by `allowed_lateness_seconds`. A window closes once
/// the watermark passes its end; tuples whose windows have all closed
/// are counted late and dropped from monitoring.
struct WatermarkPolicy {
  int64_t allowed_lateness_seconds = 0;
};

/// \brief One closed window's verdict.
struct WindowResult {
  Timestamp start = 0;
  /// Exclusive end (start + size).
  Timestamp end = 0;
  uint64_t tuples = 0;
  uint64_t violations = 0;
  bool pass = true;

  Json ToJson() const;
};

/// \brief Event-time windowed wrapper around a bound ExpectationSuite.
///
/// Observe() routes each tuple into its open window(s) by event time
/// (the designated timestamp attribute; the tuple's event-time replica
/// is the fallback for NULL timestamps), advances the watermark, and
/// closes every window the watermark has passed — in start order, so
/// the series is sorted. Flush() closes all remaining windows at end
/// of stream.
class WindowedMonitor {
 public:
  /// \param suite bound expectation suite (moved in; Bind() may also be
  ///   called through the monitor before observing).
  WindowedMonitor(ExpectationSuite suite, WindowSpec window,
                  WatermarkPolicy watermark = {},
                  obs::MetricRegistry* metrics = nullptr);

  /// \brief Binds the wrapped suite against `schema`.
  Status Bind(SchemaPtr schema);

  Status Observe(const Tuple& tuple);
  Status ObserveAll(const TupleVector& tuples);

  /// \brief Closes every still-open window (end of bounded stream).
  Status Flush();

  /// \brief Closed windows in start order.
  const std::vector<WindowResult>& series() const { return series_; }

  uint64_t tuples_seen() const { return tuples_seen_; }
  uint64_t late_dropped() const { return late_dropped_; }
  Timestamp watermark() const { return watermark_; }

  /// \brief Windows that failed at least one expectation.
  size_t FailedWindowCount() const;

  /// \brief "window_start,window_end,tuples,violations,pass" rows.
  std::string ToCsv() const;

  /// \brief {"suite", "window", "series": [...], "late_dropped", ...}.
  Json ToJson() const;

 private:
  /// \brief Start of every window containing event time `t`.
  void WindowStartsFor(Timestamp t, std::vector<Timestamp>* starts) const;
  Status CloseWindowsThrough(Timestamp watermark);
  Status CloseWindow(Timestamp start);

  ExpectationSuite suite_;
  WindowSpec window_;
  WatermarkPolicy watermark_policy_;

  /// Open windows keyed by start — iteration order is close order.
  std::map<Timestamp, TupleVector> open_;
  std::vector<WindowResult> series_;
  Timestamp max_event_time_ = INT64_MIN;
  Timestamp watermark_ = INT64_MIN;
  /// Windows with end <= this are closed (late-tuple cutoff).
  Timestamp closed_through_ = INT64_MIN;
  uint64_t tuples_seen_ = 0;
  uint64_t late_dropped_ = 0;
  std::vector<Timestamp> starts_scratch_;

  obs::Counter* windows_pass_ = nullptr;
  obs::Counter* windows_fail_ = nullptr;
  obs::Counter* violations_ = nullptr;
  obs::Counter* late_ = nullptr;
};

}  // namespace dq
}  // namespace icewafl

#endif  // ICEWAFL_DQ_MONITOR_H_
