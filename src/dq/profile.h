#ifndef ICEWAFL_DQ_PROFILE_H_
#define ICEWAFL_DQ_PROFILE_H_

#include <map>
#include <string>
#include <vector>

#include "dq/suite.h"
#include "stream/tuple.h"

namespace icewafl {
namespace dq {

/// \brief Summary statistics of one column.
struct ColumnProfile {
  std::string column;
  ValueType declared_type = ValueType::kNull;
  uint64_t total = 0;
  uint64_t nulls = 0;
  uint64_t type_mismatches = 0;  ///< non-NULL values of a foreign type

  // Numeric statistics (over non-NULL numeric values).
  uint64_t numeric_count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;

  // Distinct rendered values, capped at `distinct_cap` (then counting
  // stops and `distinct_exceeded` is set).
  uint64_t distinct = 0;
  bool distinct_exceeded = false;
  /// The distinct values themselves while under the cap (categorical
  /// domains).
  std::vector<std::string> distinct_values;

  double NullFraction() const {
    return total == 0 ? 0.0
                      : static_cast<double>(nulls) / static_cast<double>(total);
  }
};

/// \brief Options for profiling and suite suggestion.
struct ProfileOptions {
  /// Stop tracking distinct values beyond this many (memory bound).
  uint64_t distinct_cap = 64;
  /// Slack applied to numeric bounds when suggesting between-expectations:
  /// the suggested range is [min - slack*span, max + slack*span].
  double bound_slack = 0.1;
  /// Only suggest in-set expectations for string columns with at most
  /// this many distinct values.
  uint64_t max_categorical_domain = 16;
};

/// \brief Profiles every column of the stream.
Result<std::vector<ColumnProfile>> ProfileColumns(
    const TupleVector& tuples, const ProfileOptions& options = {});

/// \brief Renders profiles as a fixed-width table.
std::string ProfilesToReport(const std::vector<ColumnProfile>& profiles);

/// \brief Builds an expectation suite from the profile of a *clean*
/// stream — the Great-Expectations-profiler workflow: characteristics
/// observed in clean data become the constraints that flag pollution.
///
/// Suggested per column: not-null (if the clean column has no NULLs),
/// between with slack (numeric columns), of-type, and in-set (small
/// string domains). The timestamp column additionally gets an
/// increasing expectation.
Result<ExpectationSuite> SuggestSuite(const TupleVector& tuples,
                                      const ProfileOptions& options = {});

}  // namespace dq
}  // namespace icewafl

#endif  // ICEWAFL_DQ_PROFILE_H_
