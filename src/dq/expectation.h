#ifndef ICEWAFL_DQ_EXPECTATION_H_
#define ICEWAFL_DQ_EXPECTATION_H_

#include <cmath>
#include <memory>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "stream/bind.h"
#include "stream/tuple.h"
#include "util/json.h"
#include "util/result.h"

namespace icewafl {
namespace dq {

/// \brief A tuple that violated an expectation.
struct FailedRecord {
  TupleId id = kInvalidTupleId;
  /// Value of the tuple's timestamp attribute (or its event time if the
  /// timestamp itself is polluted/NULL); drives per-hour error histograms.
  Timestamp ts = 0;

  bool operator==(const FailedRecord&) const = default;
};

/// \brief Outcome of validating one expectation against a stream.
///
/// Mirrors Great Expectations' validation result: element counts, the
/// unexpected subset, and for aggregate expectations an observed value.
struct ExpectationResult {
  std::string expectation;
  std::string column;
  uint64_t evaluated = 0;
  uint64_t unexpected = 0;
  std::vector<FailedRecord> failures;
  bool success = true;
  /// Observed aggregate (mean/stdev expectations); NaN otherwise.
  double observed = std::nan("");

  /// \brief Fraction of evaluated elements that were unexpected.
  double UnexpectedFraction() const {
    return evaluated == 0
               ? 0.0
               : static_cast<double>(unexpected) / static_cast<double>(evaluated);
  }

  /// \brief Failures per hour-of-day (24 buckets; Figure 4's measured
  /// series).
  std::vector<uint64_t> FailureHourHistogram() const;
};

/// \brief A declarative data-quality constraint evaluated over a stream.
///
/// Expectations are the error-detection mechanism of Experiment 1: clean
/// data is expected to satisfy them, so violations flag injected (or
/// pre-existing) errors. Column expectations judge each tuple; stream
/// expectations (e.g. increasing) judge the order; aggregate expectations
/// judge a statistic of the whole stream.
///
/// Expectations follow the two-phase bind/run lifecycle (DESIGN.md §8):
/// Bind resolves the referenced columns against the schema once (unknown
/// columns and numeric-type mismatches become a Status with a
/// JSON-pointer path, e.g. "at /expectations/2/column: ..."); Validate
/// then reads values by index. A suite validated without an explicit
/// Bind re-binds lazily against the tuples' schema.
class Expectation {
 public:
  virtual ~Expectation() = default;

  /// \brief Resolves the referenced columns against `ctx.schema()` and
  /// caches their indices. Numeric expectations (between, increasing,
  /// mean, stdev, pair, multicolumn sum) additionally require numeric
  /// columns.
  virtual Status Bind(BindContext& ctx);

  /// \brief Validates the expectation against the (ordered) stream.
  virtual Result<ExpectationResult> Validate(const TupleVector& tuples) = 0;

  virtual std::string name() const = 0;

  /// \brief Config representation; round-trips through
  /// dq::ExpectationFromJson (dq/config.h).
  virtual Json ToJson() const = 0;

 protected:
  /// \brief One column reference: the member holding the name, the JSON
  /// config key to report bind failures under, and whether the column
  /// must be numeric.
  struct ColumnRef {
    const std::string* name;
    std::string key;
    bool numeric = false;
  };

  /// \brief The column references this expectation reads, in a fixed
  /// order; the default Bind resolves them into column_index(i).
  virtual std::vector<ColumnRef> ColumnRefs() const = 0;

  /// \brief Lazy-bind fallback used by Validate: re-binds against the
  /// tuples' schema when it differs from the bound one. No-op on an
  /// empty stream.
  Status EnsureBound(const TupleVector& tuples);

  size_t column_index(size_t i) const { return indices_[i]; }

  const Schema* bound_schema_ = nullptr;
  std::vector<size_t> indices_;
};

using ExpectationPtr = std::unique_ptr<Expectation>;

/// \brief expect_column_values_to_not_be_null.
class ExpectColumnValuesToNotBeNull : public Expectation {
 public:
  explicit ExpectColumnValuesToNotBeNull(std::string column);
  Result<ExpectationResult> Validate(const TupleVector& tuples) override;
  std::string name() const override {
    return "expect_column_values_to_not_be_null";
  }
  Json ToJson() const override;


 protected:
  std::vector<ColumnRef> ColumnRefs() const override;

 private:
  std::string column_;
};

/// \brief expect_column_values_to_be_null (inverse check; useful for
/// columns that must stay unpopulated).
class ExpectColumnValuesToBeNull : public Expectation {
 public:
  explicit ExpectColumnValuesToBeNull(std::string column);
  Result<ExpectationResult> Validate(const TupleVector& tuples) override;
  std::string name() const override {
    return "expect_column_values_to_be_null";
  }
  Json ToJson() const override;


 protected:
  std::vector<ColumnRef> ColumnRefs() const override;

 private:
  std::string column_;
};

/// \brief expect_column_values_to_be_between (inclusive bounds; NULLs are
/// skipped, mirroring GX element semantics).
class ExpectColumnValuesToBeBetween : public Expectation {
 public:
  ExpectColumnValuesToBeBetween(std::string column, double min, double max);
  Result<ExpectationResult> Validate(const TupleVector& tuples) override;
  std::string name() const override {
    return "expect_column_values_to_be_between";
  }
  Json ToJson() const override;


 protected:
  std::vector<ColumnRef> ColumnRefs() const override;

 private:
  std::string column_;
  double min_;
  double max_;
};

/// \brief expect_column_values_to_match_regex. Values are rendered to
/// their string form before matching (so numeric precision checks like
/// the CaloriesBurned regex of Experiment 3.1.2 work).
class ExpectColumnValuesToMatchRegex : public Expectation {
 public:
  /// \param pattern ECMAScript regular expression; must match the whole
  ///   rendered value.
  ExpectColumnValuesToMatchRegex(std::string column, std::string pattern);
  Result<ExpectationResult> Validate(const TupleVector& tuples) override;
  std::string name() const override {
    return "expect_column_values_to_match_regex";
  }
  Json ToJson() const override;


 protected:
  std::vector<ColumnRef> ColumnRefs() const override;

 private:
  std::string column_;
  std::string pattern_;
  std::regex regex_;
};

/// \brief expect_column_values_to_be_increasing. Flags every element
/// whose value is not greater than (or, with strictly=false, less than)
/// its predecessor — the detector for delayed tuples in Experiment 3.1.3.
class ExpectColumnValuesToBeIncreasing : public Expectation {
 public:
  explicit ExpectColumnValuesToBeIncreasing(std::string column,
                                            bool strictly = true);
  Result<ExpectationResult> Validate(const TupleVector& tuples) override;
  std::string name() const override {
    return "expect_column_values_to_be_increasing";
  }
  Json ToJson() const override;


 protected:
  std::vector<ColumnRef> ColumnRefs() const override;

 private:
  std::string column_;
  bool strictly_;
};

/// \brief expect_column_pair_values_a_to_be_greater_than_b.
class ExpectColumnPairValuesAToBeGreaterThanB : public Expectation {
 public:
  ExpectColumnPairValuesAToBeGreaterThanB(std::string column_a,
                                          std::string column_b,
                                          bool or_equal = false);
  Result<ExpectationResult> Validate(const TupleVector& tuples) override;
  std::string name() const override {
    return "expect_column_pair_values_a_to_be_greater_than_b";
  }
  Json ToJson() const override;


 protected:
  std::vector<ColumnRef> ColumnRefs() const override;

 private:
  std::string column_a_;
  std::string column_b_;
  bool or_equal_;
};

/// \brief expect_multicolumn_sum_to_equal: the sum of the given columns
/// must equal `total` for every tuple (used with total 0 to find "device
/// not worn" tuples whose BPM was zeroed by the polluter while activity
/// columns still show movement).
class ExpectMulticolumnSumToEqual : public Expectation {
 public:
  ExpectMulticolumnSumToEqual(std::vector<std::string> columns, double total,
                              double tolerance = 1e-9);

  /// \brief Restricts evaluation to tuples where `column` equals `value`
  /// (GX's row_condition; e.g. "BPM == 0" in the software-update
  /// scenario). Returns *this for chaining.
  ExpectMulticolumnSumToEqual& WhereColumnEquals(std::string column,
                                                 double value);

  Result<ExpectationResult> Validate(const TupleVector& tuples) override;
  std::string name() const override {
    return "expect_multicolumn_sum_to_equal";
  }
  Json ToJson() const override;


 protected:
  std::vector<ColumnRef> ColumnRefs() const override;

 private:
  std::vector<std::string> columns_;
  double total_;
  double tolerance_;
  std::string where_column_;  // empty: no row condition
  double where_value_ = 0.0;
};

/// \brief expect_column_values_to_be_in_set (string rendering compared
/// against the set; catches incorrect-category errors).
class ExpectColumnValuesToBeInSet : public Expectation {
 public:
  ExpectColumnValuesToBeInSet(std::string column, std::set<std::string> values);
  Result<ExpectationResult> Validate(const TupleVector& tuples) override;
  std::string name() const override {
    return "expect_column_values_to_be_in_set";
  }
  Json ToJson() const override;


 protected:
  std::vector<ColumnRef> ColumnRefs() const override;

 private:
  std::string column_;
  std::set<std::string> values_;
};

/// \brief expect_column_values_to_be_unique (flags the second and later
/// occurrences; catches duplicates from overlapping sub-streams).
class ExpectColumnValuesToBeUnique : public Expectation {
 public:
  explicit ExpectColumnValuesToBeUnique(std::string column);
  Result<ExpectationResult> Validate(const TupleVector& tuples) override;
  std::string name() const override {
    return "expect_column_values_to_be_unique";
  }
  Json ToJson() const override;


 protected:
  std::vector<ColumnRef> ColumnRefs() const override;

 private:
  std::string column_;
};

/// \brief expect_column_mean_to_be_between (aggregate; `observed` carries
/// the mean).
class ExpectColumnMeanToBeBetween : public Expectation {
 public:
  ExpectColumnMeanToBeBetween(std::string column, double min, double max);
  Result<ExpectationResult> Validate(const TupleVector& tuples) override;
  std::string name() const override {
    return "expect_column_mean_to_be_between";
  }
  Json ToJson() const override;


 protected:
  std::vector<ColumnRef> ColumnRefs() const override;

 private:
  std::string column_;
  double min_;
  double max_;
};

/// \brief expect_column_stdev_to_be_between (aggregate, sample stdev;
/// `observed` carries the stdev). Detects injected noise.
class ExpectColumnStdevToBeBetween : public Expectation {
 public:
  ExpectColumnStdevToBeBetween(std::string column, double min, double max);
  Result<ExpectationResult> Validate(const TupleVector& tuples) override;
  std::string name() const override {
    return "expect_column_stdev_to_be_between";
  }
  Json ToJson() const override;


 protected:
  std::vector<ColumnRef> ColumnRefs() const override;

 private:
  std::string column_;
  double min_;
  double max_;
};

/// \brief expect_column_value_lengths_to_be_between: rendered string
/// length within [min_length, max_length] — catches truncation and
/// insert/delete typos.
class ExpectColumnValueLengthsToBeBetween : public Expectation {
 public:
  ExpectColumnValueLengthsToBeBetween(std::string column, size_t min_length,
                                      size_t max_length);
  Result<ExpectationResult> Validate(const TupleVector& tuples) override;
  std::string name() const override {
    return "expect_column_value_lengths_to_be_between";
  }
  Json ToJson() const override;


 protected:
  std::vector<ColumnRef> ColumnRefs() const override;

 private:
  std::string column_;
  size_t min_length_;
  size_t max_length_;
};

/// \brief expect_column_values_to_be_of_type: every non-NULL value has
/// the given runtime type — catches representation-changing errors.
class ExpectColumnValuesToBeOfType : public Expectation {
 public:
  ExpectColumnValuesToBeOfType(std::string column, ValueType type);
  Result<ExpectationResult> Validate(const TupleVector& tuples) override;
  std::string name() const override {
    return "expect_column_values_to_be_of_type";
  }
  Json ToJson() const override;


 protected:
  std::vector<ColumnRef> ColumnRefs() const override;

 private:
  std::string column_;
  ValueType type_;
};

}  // namespace dq
}  // namespace icewafl

#endif  // ICEWAFL_DQ_EXPECTATION_H_
