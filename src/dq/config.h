#ifndef ICEWAFL_DQ_CONFIG_H_
#define ICEWAFL_DQ_CONFIG_H_

#include <string>

#include "dq/suite.h"
#include "util/json.h"

namespace icewafl {
namespace dq {

/// \file
/// Declarative expectation-suite configuration (the analogue of Great
/// Expectations' JSON suites). Example:
/// \code{.json}
/// {"name": "wearable_checks",
///  "expectations": [
///    {"type": "expect_column_values_to_not_be_null", "column": "BPM"},
///    {"type": "expect_column_values_to_be_between", "column": "BPM",
///     "min": 30, "max": 220},
///    {"type": "expect_multicolumn_sum_to_equal",
///     "columns": ["Steps", "Distance"], "total": 0,
///     "where_column": "BPM", "where_value": 0}
///  ]}
/// \endcode

/// Loader errors carry the JSON pointer (RFC 6901) of the offending
/// fragment, e.g. "at /expectations/2: missing field 'column'". The
/// optional `path` argument is the pointer prefix of `json` within the
/// enclosing document (empty for the root).

/// \brief Builds one expectation from its JSON description.
Result<ExpectationPtr> ExpectationFromJson(const Json& json,
                                           const std::string& path = "");

/// \brief Builds a whole suite from {"name": ..., "expectations": [...]}.
Result<ExpectationSuite> SuiteFromJson(const Json& json);

/// \brief Parses JSON text and builds the suite.
Result<ExpectationSuite> SuiteFromConfigString(const std::string& text);

/// \brief Reads a JSON file and builds the suite.
Result<ExpectationSuite> SuiteFromConfigFile(const std::string& path);

}  // namespace dq
}  // namespace icewafl

#endif  // ICEWAFL_DQ_CONFIG_H_
