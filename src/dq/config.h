#ifndef ICEWAFL_DQ_CONFIG_H_
#define ICEWAFL_DQ_CONFIG_H_

#include <string>

#include "dq/suite.h"
#include "util/json.h"

namespace icewafl {
namespace dq {

/// \file
/// Declarative expectation-suite configuration (the analogue of Great
/// Expectations' JSON suites). Example:
/// \code{.json}
/// {"name": "wearable_checks",
///  "expectations": [
///    {"type": "expect_column_values_to_not_be_null", "column": "BPM"},
///    {"type": "expect_column_values_to_be_between", "column": "BPM",
///     "min": 30, "max": 220},
///    {"type": "expect_multicolumn_sum_to_equal",
///     "columns": ["Steps", "Distance"], "total": 0,
///     "where_column": "BPM", "where_value": 0}
///  ]}
/// \endcode

/// Loader errors carry the JSON pointer (RFC 6901) of the offending
/// fragment, e.g. "at /expectations/2: missing field 'column'". The
/// optional `path` argument is the pointer prefix of `json` within the
/// enclosing document (empty for the root).

/// \brief Builds one expectation from its JSON description.
Result<ExpectationPtr> ExpectationFromJson(const Json& json,
                                           const std::string& path = "");

/// \brief Builds a whole suite from {"name": ..., "expectations": [...]}.
/// When `bind_schema` is non-null the suite is additionally bound against
/// it (DESIGN.md section 8): unknown columns and type mismatches are
/// rejected here, at load time, with their JSON-pointer path.
Result<ExpectationSuite> SuiteFromJson(const Json& json,
                                       SchemaPtr bind_schema = nullptr);

/// \brief Parses JSON text and builds (and optionally binds) the suite.
Result<ExpectationSuite> SuiteFromConfigString(const std::string& text,
                                               SchemaPtr bind_schema = nullptr);

/// \brief Reads a JSON file and builds (and optionally binds) the suite.
Result<ExpectationSuite> SuiteFromConfigFile(const std::string& path,
                                             SchemaPtr bind_schema = nullptr);

}  // namespace dq
}  // namespace icewafl

#endif  // ICEWAFL_DQ_CONFIG_H_
