#include "dq/expectation.h"

#include <unordered_map>

namespace icewafl {
namespace dq {

namespace {

/// Timestamp used to bucket a failing tuple. Prefers the (possibly
/// polluted) timestamp attribute; falls back to the event-time replica.
Timestamp RecordTimestamp(const Tuple& tuple) {
  auto ts = tuple.GetTimestamp();
  if (ts.ok()) return ts.ValueOrDie();
  return tuple.event_time();
}

void AddFailure(ExpectationResult* result, const Tuple& tuple) {
  ++result->unexpected;
  result->failures.push_back({tuple.id(), RecordTimestamp(tuple)});
  result->success = false;
}

Result<size_t> ResolveColumn(const TupleVector& tuples,
                             const std::string& column) {
  if (tuples.empty()) return size_t{0};
  if (tuples.front().schema() == nullptr) {
    return Status::Internal("tuples have no schema");
  }
  return tuples.front().schema()->IndexOf(column);
}

}  // namespace

std::vector<uint64_t> ExpectationResult::FailureHourHistogram() const {
  std::vector<uint64_t> hist(24, 0);
  for (const FailedRecord& f : failures) {
    ++hist[static_cast<size_t>(HourOfDay(f.ts))];
  }
  return hist;
}

ExpectColumnValuesToNotBeNull::ExpectColumnValuesToNotBeNull(std::string column)
    : column_(std::move(column)) {}

Result<ExpectationResult> ExpectColumnValuesToNotBeNull::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(tuples, column_));
  for (const Tuple& t : tuples) {
    ++result.evaluated;
    if (t.value(idx).is_null()) AddFailure(&result, t);
  }
  return result;
}

ExpectColumnValuesToBeNull::ExpectColumnValuesToBeNull(std::string column)
    : column_(std::move(column)) {}

Result<ExpectationResult> ExpectColumnValuesToBeNull::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(tuples, column_));
  for (const Tuple& t : tuples) {
    ++result.evaluated;
    if (!t.value(idx).is_null()) AddFailure(&result, t);
  }
  return result;
}

ExpectColumnValuesToBeBetween::ExpectColumnValuesToBeBetween(
    std::string column, double min, double max)
    : column_(std::move(column)), min_(min), max_(max) {}

Result<ExpectationResult> ExpectColumnValuesToBeBetween::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(tuples, column_));
  for (const Tuple& t : tuples) {
    const Value& v = t.value(idx);
    if (v.is_null()) continue;  // GX skips NULL elements here
    ++result.evaluated;
    ICEWAFL_ASSIGN_OR_RETURN(double x, v.ToDouble());
    if (x < min_ || x > max_) AddFailure(&result, t);
  }
  return result;
}

ExpectColumnValuesToMatchRegex::ExpectColumnValuesToMatchRegex(
    std::string column, std::string pattern)
    : column_(std::move(column)),
      pattern_(std::move(pattern)),
      regex_(pattern_) {}

Result<ExpectationResult> ExpectColumnValuesToMatchRegex::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(tuples, column_));
  for (const Tuple& t : tuples) {
    const Value& v = t.value(idx);
    if (v.is_null()) continue;
    ++result.evaluated;
    if (!std::regex_match(v.ToString(), regex_)) AddFailure(&result, t);
  }
  return result;
}

ExpectColumnValuesToBeIncreasing::ExpectColumnValuesToBeIncreasing(
    std::string column, bool strictly)
    : column_(std::move(column)), strictly_(strictly) {}

Result<ExpectationResult> ExpectColumnValuesToBeIncreasing::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(tuples, column_));
  bool have_prev = false;
  double prev = 0.0;
  for (const Tuple& t : tuples) {
    const Value& v = t.value(idx);
    if (v.is_null()) continue;
    ++result.evaluated;
    ICEWAFL_ASSIGN_OR_RETURN(double x, v.ToDouble());
    if (have_prev) {
      const bool ok = strictly_ ? x > prev : x >= prev;
      if (!ok) AddFailure(&result, t);
    }
    prev = x;
    have_prev = true;
  }
  return result;
}

ExpectColumnPairValuesAToBeGreaterThanB::
    ExpectColumnPairValuesAToBeGreaterThanB(std::string column_a,
                                            std::string column_b,
                                            bool or_equal)
    : column_a_(std::move(column_a)),
      column_b_(std::move(column_b)),
      or_equal_(or_equal) {}

Result<ExpectationResult> ExpectColumnPairValuesAToBeGreaterThanB::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_a_ + ">" + column_b_;
  ICEWAFL_ASSIGN_OR_RETURN(size_t idx_a, ResolveColumn(tuples, column_a_));
  ICEWAFL_ASSIGN_OR_RETURN(size_t idx_b, ResolveColumn(tuples, column_b_));
  for (const Tuple& t : tuples) {
    const Value& a = t.value(idx_a);
    const Value& b = t.value(idx_b);
    if (a.is_null() || b.is_null()) continue;
    ++result.evaluated;
    ICEWAFL_ASSIGN_OR_RETURN(double xa, a.ToDouble());
    ICEWAFL_ASSIGN_OR_RETURN(double xb, b.ToDouble());
    const bool ok = or_equal_ ? xa >= xb : xa > xb;
    if (!ok) AddFailure(&result, t);
  }
  return result;
}

ExpectMulticolumnSumToEqual::ExpectMulticolumnSumToEqual(
    std::vector<std::string> columns, double total, double tolerance)
    : columns_(std::move(columns)), total_(total), tolerance_(tolerance) {}

ExpectMulticolumnSumToEqual& ExpectMulticolumnSumToEqual::WhereColumnEquals(
    std::string column, double value) {
  where_column_ = std::move(column);
  where_value_ = value;
  return *this;
}

Result<ExpectationResult> ExpectMulticolumnSumToEqual::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) result.column += "+";
    result.column += columns_[i];
  }
  std::vector<size_t> indices;
  indices.reserve(columns_.size());
  for (const std::string& c : columns_) {
    ICEWAFL_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(tuples, c));
    indices.push_back(idx);
  }
  size_t where_idx = 0;
  if (!where_column_.empty()) {
    ICEWAFL_ASSIGN_OR_RETURN(where_idx, ResolveColumn(tuples, where_column_));
  }
  for (const Tuple& t : tuples) {
    if (!where_column_.empty()) {
      const Value& w = t.value(where_idx);
      if (w.is_null() || !w.is_numeric() ||
          w.ToDouble().ValueOrDie() != where_value_) {
        continue;
      }
    }
    double sum = 0.0;
    bool any_null = false;
    for (size_t idx : indices) {
      const Value& v = t.value(idx);
      if (v.is_null()) {
        any_null = true;
        break;
      }
      ICEWAFL_ASSIGN_OR_RETURN(double x, v.ToDouble());
      sum += x;
    }
    if (any_null) continue;
    ++result.evaluated;
    if (std::abs(sum - total_) > tolerance_) AddFailure(&result, t);
  }
  return result;
}

ExpectColumnValuesToBeInSet::ExpectColumnValuesToBeInSet(
    std::string column, std::set<std::string> values)
    : column_(std::move(column)), values_(std::move(values)) {}

Result<ExpectationResult> ExpectColumnValuesToBeInSet::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(tuples, column_));
  for (const Tuple& t : tuples) {
    const Value& v = t.value(idx);
    if (v.is_null()) continue;
    ++result.evaluated;
    if (values_.count(v.ToString()) == 0) AddFailure(&result, t);
  }
  return result;
}

ExpectColumnValuesToBeUnique::ExpectColumnValuesToBeUnique(std::string column)
    : column_(std::move(column)) {}

Result<ExpectationResult> ExpectColumnValuesToBeUnique::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(tuples, column_));
  std::unordered_map<std::string, uint64_t> seen;
  for (const Tuple& t : tuples) {
    const Value& v = t.value(idx);
    if (v.is_null()) continue;
    ++result.evaluated;
    if (++seen[v.ToString()] > 1) AddFailure(&result, t);
  }
  return result;
}

ExpectColumnMeanToBeBetween::ExpectColumnMeanToBeBetween(std::string column,
                                                         double min,
                                                         double max)
    : column_(std::move(column)), min_(min), max_(max) {}

Result<ExpectationResult> ExpectColumnMeanToBeBetween::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(tuples, column_));
  double sum = 0.0;
  for (const Tuple& t : tuples) {
    const Value& v = t.value(idx);
    if (v.is_null()) continue;
    ++result.evaluated;
    ICEWAFL_ASSIGN_OR_RETURN(double x, v.ToDouble());
    sum += x;
  }
  if (result.evaluated == 0) {
    result.success = true;
    return result;
  }
  result.observed = sum / static_cast<double>(result.evaluated);
  result.success = result.observed >= min_ && result.observed <= max_;
  if (!result.success) result.unexpected = result.evaluated;
  return result;
}

ExpectColumnStdevToBeBetween::ExpectColumnStdevToBeBetween(std::string column,
                                                           double min,
                                                           double max)
    : column_(std::move(column)), min_(min), max_(max) {}

Result<ExpectationResult> ExpectColumnStdevToBeBetween::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(tuples, column_));
  // Welford's algorithm for a numerically stable sample variance.
  double mean = 0.0;
  double m2 = 0.0;
  for (const Tuple& t : tuples) {
    const Value& v = t.value(idx);
    if (v.is_null()) continue;
    ++result.evaluated;
    ICEWAFL_ASSIGN_OR_RETURN(double x, v.ToDouble());
    const double delta = x - mean;
    mean += delta / static_cast<double>(result.evaluated);
    m2 += delta * (x - mean);
  }
  if (result.evaluated < 2) {
    result.success = true;
    return result;
  }
  result.observed =
      std::sqrt(m2 / static_cast<double>(result.evaluated - 1));
  result.success = result.observed >= min_ && result.observed <= max_;
  if (!result.success) result.unexpected = result.evaluated;
  return result;
}

ExpectColumnValueLengthsToBeBetween::ExpectColumnValueLengthsToBeBetween(
    std::string column, size_t min_length, size_t max_length)
    : column_(std::move(column)),
      min_length_(min_length),
      max_length_(max_length) {}

Result<ExpectationResult> ExpectColumnValueLengthsToBeBetween::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(tuples, column_));
  for (const Tuple& t : tuples) {
    const Value& v = t.value(idx);
    if (v.is_null()) continue;
    ++result.evaluated;
    const size_t length = v.ToString().size();
    if (length < min_length_ || length > max_length_) AddFailure(&result, t);
  }
  return result;
}

ExpectColumnValuesToBeOfType::ExpectColumnValuesToBeOfType(std::string column,
                                                           ValueType type)
    : column_(std::move(column)), type_(type) {}

Result<ExpectationResult> ExpectColumnValuesToBeOfType::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(tuples, column_));
  for (const Tuple& t : tuples) {
    const Value& v = t.value(idx);
    if (v.is_null()) continue;
    ++result.evaluated;
    if (v.type() != type_) AddFailure(&result, t);
  }
  return result;
}

namespace {

Json Base(const std::string& type) {
  Json j = Json::MakeObject();
  j.Set("type", type);
  return j;
}

}  // namespace

Json ExpectColumnValuesToNotBeNull::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  return j;
}

Json ExpectColumnValuesToBeNull::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  return j;
}

Json ExpectColumnValuesToBeBetween::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  j.Set("min", min_);
  j.Set("max", max_);
  return j;
}

Json ExpectColumnValuesToMatchRegex::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  j.Set("regex", pattern_);
  return j;
}

Json ExpectColumnValuesToBeIncreasing::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  j.Set("strictly", strictly_);
  return j;
}

Json ExpectColumnPairValuesAToBeGreaterThanB::ToJson() const {
  Json j = Base(name());
  j.Set("column_a", column_a_);
  j.Set("column_b", column_b_);
  j.Set("or_equal", or_equal_);
  return j;
}

Json ExpectMulticolumnSumToEqual::ToJson() const {
  Json j = Base(name());
  Json columns = Json::MakeArray();
  for (const std::string& c : columns_) columns.Append(Json(c));
  j.Set("columns", std::move(columns));
  j.Set("total", total_);
  j.Set("tolerance", tolerance_);
  if (!where_column_.empty()) {
    j.Set("where_column", where_column_);
    j.Set("where_value", where_value_);
  }
  return j;
}

Json ExpectColumnValuesToBeInSet::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  Json values = Json::MakeArray();
  for (const std::string& v : values_) values.Append(Json(v));
  j.Set("values", std::move(values));
  return j;
}

Json ExpectColumnValuesToBeUnique::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  return j;
}

Json ExpectColumnMeanToBeBetween::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  j.Set("min", min_);
  j.Set("max", max_);
  return j;
}

Json ExpectColumnStdevToBeBetween::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  j.Set("min", min_);
  j.Set("max", max_);
  return j;
}

Json ExpectColumnValueLengthsToBeBetween::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  j.Set("min_length", static_cast<int64_t>(min_length_));
  j.Set("max_length", static_cast<int64_t>(max_length_));
  return j;
}

Json ExpectColumnValuesToBeOfType::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  j.Set("value_type", ValueTypeName(type_));
  return j;
}

}  // namespace dq
}  // namespace icewafl
