#include "dq/expectation.h"

#include <unordered_map>

namespace icewafl {
namespace dq {

namespace {

/// Timestamp used to bucket a failing tuple. Prefers the (possibly
/// polluted) timestamp attribute; falls back to the event-time replica.
Timestamp RecordTimestamp(const Tuple& tuple) {
  auto ts = tuple.GetTimestamp();
  if (ts.ok()) return ts.ValueOrDie();
  return tuple.event_time();
}

void AddFailure(ExpectationResult* result, const Tuple& tuple) {
  ++result->unexpected;
  result->failures.push_back({tuple.id(), RecordTimestamp(tuple)});
  result->success = false;
}

/// Numeric read widening int64/double/bool; false otherwise. Values
/// whose runtime type diverged from the bound column type (an upstream
/// polluter may have rewritten them) are skipped like NULLs.
bool NumericValue(const Value& v, double* out) {
  switch (v.type()) {
    case ValueType::kDouble:
      *out = v.AsDouble();
      return true;
    case ValueType::kInt64:
      *out = static_cast<double>(v.AsInt64());
      return true;
    case ValueType::kBool:
      *out = v.AsBool() ? 1.0 : 0.0;
      return true;
    default:
      return false;
  }
}

/// Borrowed string view of a value: string values are read in place,
/// anything else is rendered into `storage`.
const std::string& RenderedValue(const Value& v, std::string* storage) {
  if (v.is_string()) return v.AsString();
  v.RenderTo(storage);
  return *storage;
}

}  // namespace

Status Expectation::Bind(BindContext& ctx) {
  bound_schema_ = nullptr;
  const std::vector<ColumnRef> refs = ColumnRefs();
  std::vector<size_t> indices;
  indices.reserve(refs.size());
  for (const ColumnRef& ref : refs) {
    BindContext::Scope scope(ctx, ref.key);
    ICEWAFL_ASSIGN_OR_RETURN(BoundAccessor accessor,
                             ref.numeric ? ctx.ResolveNumeric(*ref.name)
                                         : ctx.Resolve(*ref.name));
    indices.push_back(accessor.index());
  }
  indices_ = std::move(indices);
  bound_schema_ = &ctx.schema();
  return Status::OK();
}

Status Expectation::EnsureBound(const TupleVector& tuples) {
  if (tuples.empty()) return Status::OK();
  if (bound_schema_ == tuples.front().schema().get()) return Status::OK();
  if (tuples.front().schema() == nullptr) {
    return Status::Internal("tuples have no schema");
  }
  BindContext ctx(*tuples.front().schema());
  return Bind(ctx);
}

std::vector<uint64_t> ExpectationResult::FailureHourHistogram() const {
  std::vector<uint64_t> hist(24, 0);
  for (const FailedRecord& f : failures) {
    ++hist[static_cast<size_t>(HourOfDay(f.ts))];
  }
  return hist;
}

ExpectColumnValuesToNotBeNull::ExpectColumnValuesToNotBeNull(std::string column)
    : column_(std::move(column)) {}

Result<ExpectationResult> ExpectColumnValuesToNotBeNull::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_RETURN_NOT_OK(EnsureBound(tuples));
  if (tuples.empty()) return result;
  const size_t idx = column_index(0);
  for (const Tuple& t : tuples) {
    ++result.evaluated;
    if (t.value(idx).is_null()) AddFailure(&result, t);
  }
  return result;
}

ExpectColumnValuesToBeNull::ExpectColumnValuesToBeNull(std::string column)
    : column_(std::move(column)) {}

Result<ExpectationResult> ExpectColumnValuesToBeNull::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_RETURN_NOT_OK(EnsureBound(tuples));
  if (tuples.empty()) return result;
  const size_t idx = column_index(0);
  for (const Tuple& t : tuples) {
    ++result.evaluated;
    if (!t.value(idx).is_null()) AddFailure(&result, t);
  }
  return result;
}

ExpectColumnValuesToBeBetween::ExpectColumnValuesToBeBetween(
    std::string column, double min, double max)
    : column_(std::move(column)), min_(min), max_(max) {}

Result<ExpectationResult> ExpectColumnValuesToBeBetween::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_RETURN_NOT_OK(EnsureBound(tuples));
  if (tuples.empty()) return result;
  const size_t idx = column_index(0);
  for (const Tuple& t : tuples) {
    double x;
    if (!NumericValue(t.value(idx), &x)) continue;  // GX skips NULLs here
    ++result.evaluated;
    if (x < min_ || x > max_) AddFailure(&result, t);
  }
  return result;
}

ExpectColumnValuesToMatchRegex::ExpectColumnValuesToMatchRegex(
    std::string column, std::string pattern)
    : column_(std::move(column)),
      pattern_(std::move(pattern)),
      regex_(pattern_) {}

Result<ExpectationResult> ExpectColumnValuesToMatchRegex::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_RETURN_NOT_OK(EnsureBound(tuples));
  if (tuples.empty()) return result;
  const size_t idx = column_index(0);
  // String values match in place; other types render into one reused
  // buffer, hoisted out of the tuple loop (ToString returned a fresh
  // string per non-string tuple, an allocation per row on numeric
  // columns).
  std::string storage;
  for (const Tuple& t : tuples) {
    const Value& v = t.value(idx);
    if (v.is_null()) continue;
    ++result.evaluated;
    bool matched;
    if (v.is_string()) {
      matched = std::regex_match(v.AsString(), regex_);
    } else {
      v.RenderTo(&storage);
      matched = std::regex_match(storage, regex_);
    }
    if (!matched) AddFailure(&result, t);
  }
  return result;
}

ExpectColumnValuesToBeIncreasing::ExpectColumnValuesToBeIncreasing(
    std::string column, bool strictly)
    : column_(std::move(column)), strictly_(strictly) {}

Result<ExpectationResult> ExpectColumnValuesToBeIncreasing::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_RETURN_NOT_OK(EnsureBound(tuples));
  if (tuples.empty()) return result;
  const size_t idx = column_index(0);
  bool have_prev = false;
  double prev = 0.0;
  for (const Tuple& t : tuples) {
    double x;
    if (!NumericValue(t.value(idx), &x)) continue;
    ++result.evaluated;
    if (have_prev) {
      const bool ok = strictly_ ? x > prev : x >= prev;
      if (!ok) AddFailure(&result, t);
    }
    prev = x;
    have_prev = true;
  }
  return result;
}

ExpectColumnPairValuesAToBeGreaterThanB::
    ExpectColumnPairValuesAToBeGreaterThanB(std::string column_a,
                                            std::string column_b,
                                            bool or_equal)
    : column_a_(std::move(column_a)),
      column_b_(std::move(column_b)),
      or_equal_(or_equal) {}

Result<ExpectationResult> ExpectColumnPairValuesAToBeGreaterThanB::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_a_ + ">" + column_b_;
  ICEWAFL_RETURN_NOT_OK(EnsureBound(tuples));
  if (tuples.empty()) return result;
  const size_t idx_a = column_index(0);
  const size_t idx_b = column_index(1);
  for (const Tuple& t : tuples) {
    double xa;
    double xb;
    if (!NumericValue(t.value(idx_a), &xa) ||
        !NumericValue(t.value(idx_b), &xb)) {
      continue;
    }
    ++result.evaluated;
    const bool ok = or_equal_ ? xa >= xb : xa > xb;
    if (!ok) AddFailure(&result, t);
  }
  return result;
}

ExpectMulticolumnSumToEqual::ExpectMulticolumnSumToEqual(
    std::vector<std::string> columns, double total, double tolerance)
    : columns_(std::move(columns)), total_(total), tolerance_(tolerance) {}

ExpectMulticolumnSumToEqual& ExpectMulticolumnSumToEqual::WhereColumnEquals(
    std::string column, double value) {
  where_column_ = std::move(column);
  where_value_ = value;
  return *this;
}

Result<ExpectationResult> ExpectMulticolumnSumToEqual::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) result.column += "+";
    result.column += columns_[i];
  }
  ICEWAFL_RETURN_NOT_OK(EnsureBound(tuples));
  if (tuples.empty()) return result;
  // Bound layout: one index per sum column, then the where column.
  const size_t n = columns_.size();
  for (const Tuple& t : tuples) {
    if (!where_column_.empty()) {
      const Value& w = t.value(column_index(n));
      double wx;
      if (!w.is_numeric() || !NumericValue(w, &wx) || wx != where_value_) {
        continue;
      }
    }
    double sum = 0.0;
    bool any_skipped = false;
    for (size_t i = 0; i < n; ++i) {
      double x;
      if (!NumericValue(t.value(column_index(i)), &x)) {
        any_skipped = true;
        break;
      }
      sum += x;
    }
    if (any_skipped) continue;
    ++result.evaluated;
    if (std::abs(sum - total_) > tolerance_) AddFailure(&result, t);
  }
  return result;
}

ExpectColumnValuesToBeInSet::ExpectColumnValuesToBeInSet(
    std::string column, std::set<std::string> values)
    : column_(std::move(column)), values_(std::move(values)) {}

Result<ExpectationResult> ExpectColumnValuesToBeInSet::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_RETURN_NOT_OK(EnsureBound(tuples));
  if (tuples.empty()) return result;
  const size_t idx = column_index(0);
  std::string storage;
  for (const Tuple& t : tuples) {
    const Value& v = t.value(idx);
    if (v.is_null()) continue;
    ++result.evaluated;
    if (values_.count(RenderedValue(v, &storage)) == 0) AddFailure(&result, t);
  }
  return result;
}

ExpectColumnValuesToBeUnique::ExpectColumnValuesToBeUnique(std::string column)
    : column_(std::move(column)) {}

Result<ExpectationResult> ExpectColumnValuesToBeUnique::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_RETURN_NOT_OK(EnsureBound(tuples));
  if (tuples.empty()) return result;
  const size_t idx = column_index(0);
  std::unordered_map<std::string, uint64_t> seen;
  std::string storage;
  for (const Tuple& t : tuples) {
    const Value& v = t.value(idx);
    if (v.is_null()) continue;
    ++result.evaluated;
    if (++seen[RenderedValue(v, &storage)] > 1) AddFailure(&result, t);
  }
  return result;
}

ExpectColumnMeanToBeBetween::ExpectColumnMeanToBeBetween(std::string column,
                                                         double min,
                                                         double max)
    : column_(std::move(column)), min_(min), max_(max) {}

Result<ExpectationResult> ExpectColumnMeanToBeBetween::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_RETURN_NOT_OK(EnsureBound(tuples));
  double sum = 0.0;
  if (tuples.empty()) {
    result.success = true;
    return result;
  }
  const size_t idx = column_index(0);
  for (const Tuple& t : tuples) {
    double x;
    if (!NumericValue(t.value(idx), &x)) continue;
    ++result.evaluated;
    sum += x;
  }
  if (result.evaluated == 0) {
    result.success = true;
    return result;
  }
  result.observed = sum / static_cast<double>(result.evaluated);
  result.success = result.observed >= min_ && result.observed <= max_;
  if (!result.success) result.unexpected = result.evaluated;
  return result;
}

ExpectColumnStdevToBeBetween::ExpectColumnStdevToBeBetween(std::string column,
                                                           double min,
                                                           double max)
    : column_(std::move(column)), min_(min), max_(max) {}

Result<ExpectationResult> ExpectColumnStdevToBeBetween::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_RETURN_NOT_OK(EnsureBound(tuples));
  if (tuples.empty()) {
    result.success = true;
    return result;
  }
  const size_t idx = column_index(0);
  // Welford's algorithm for a numerically stable sample variance.
  double mean = 0.0;
  double m2 = 0.0;
  for (const Tuple& t : tuples) {
    double x;
    if (!NumericValue(t.value(idx), &x)) continue;
    ++result.evaluated;
    const double delta = x - mean;
    mean += delta / static_cast<double>(result.evaluated);
    m2 += delta * (x - mean);
  }
  if (result.evaluated < 2) {
    result.success = true;
    return result;
  }
  result.observed =
      std::sqrt(m2 / static_cast<double>(result.evaluated - 1));
  result.success = result.observed >= min_ && result.observed <= max_;
  if (!result.success) result.unexpected = result.evaluated;
  return result;
}

ExpectColumnValueLengthsToBeBetween::ExpectColumnValueLengthsToBeBetween(
    std::string column, size_t min_length, size_t max_length)
    : column_(std::move(column)),
      min_length_(min_length),
      max_length_(max_length) {}

Result<ExpectationResult> ExpectColumnValueLengthsToBeBetween::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_RETURN_NOT_OK(EnsureBound(tuples));
  if (tuples.empty()) return result;
  const size_t idx = column_index(0);
  std::string storage;
  for (const Tuple& t : tuples) {
    const Value& v = t.value(idx);
    if (v.is_null()) continue;
    ++result.evaluated;
    const size_t length = RenderedValue(v, &storage).size();
    if (length < min_length_ || length > max_length_) AddFailure(&result, t);
  }
  return result;
}

ExpectColumnValuesToBeOfType::ExpectColumnValuesToBeOfType(std::string column,
                                                           ValueType type)
    : column_(std::move(column)), type_(type) {}

Result<ExpectationResult> ExpectColumnValuesToBeOfType::Validate(
    const TupleVector& tuples) {
  ExpectationResult result;
  result.expectation = name();
  result.column = column_;
  ICEWAFL_RETURN_NOT_OK(EnsureBound(tuples));
  if (tuples.empty()) return result;
  const size_t idx = column_index(0);
  for (const Tuple& t : tuples) {
    const Value& v = t.value(idx);
    if (v.is_null()) continue;
    ++result.evaluated;
    if (v.type() != type_) AddFailure(&result, t);
  }
  return result;
}


std::vector<Expectation::ColumnRef>
ExpectColumnValuesToNotBeNull::ColumnRefs() const {
  return {{&column_, "column", false}};
}

std::vector<Expectation::ColumnRef>
ExpectColumnValuesToBeNull::ColumnRefs() const {
  return {{&column_, "column", false}};
}

std::vector<Expectation::ColumnRef>
ExpectColumnValuesToBeBetween::ColumnRefs() const {
  return {{&column_, "column", true}};
}

std::vector<Expectation::ColumnRef>
ExpectColumnValuesToMatchRegex::ColumnRefs() const {
  return {{&column_, "column", false}};
}

std::vector<Expectation::ColumnRef>
ExpectColumnValuesToBeIncreasing::ColumnRefs() const {
  return {{&column_, "column", true}};
}

std::vector<Expectation::ColumnRef>
ExpectColumnPairValuesAToBeGreaterThanB::ColumnRefs() const {
  return {{&column_a_, "column_a", true}, {&column_b_, "column_b", true}};
}

std::vector<Expectation::ColumnRef>
ExpectMulticolumnSumToEqual::ColumnRefs() const {
  std::vector<ColumnRef> refs;
  refs.reserve(columns_.size() + 1);
  for (size_t i = 0; i < columns_.size(); ++i) {
    refs.push_back({&columns_[i], "columns/" + std::to_string(i), true});
  }
  if (!where_column_.empty()) {
    refs.push_back({&where_column_, "where_column", true});
  }
  return refs;
}

std::vector<Expectation::ColumnRef>
ExpectColumnValuesToBeInSet::ColumnRefs() const {
  return {{&column_, "column", false}};
}

std::vector<Expectation::ColumnRef>
ExpectColumnValuesToBeUnique::ColumnRefs() const {
  return {{&column_, "column", false}};
}

std::vector<Expectation::ColumnRef>
ExpectColumnMeanToBeBetween::ColumnRefs() const {
  return {{&column_, "column", true}};
}

std::vector<Expectation::ColumnRef>
ExpectColumnStdevToBeBetween::ColumnRefs() const {
  return {{&column_, "column", true}};
}

std::vector<Expectation::ColumnRef>
ExpectColumnValueLengthsToBeBetween::ColumnRefs() const {
  return {{&column_, "column", false}};
}

std::vector<Expectation::ColumnRef>
ExpectColumnValuesToBeOfType::ColumnRefs() const {
  return {{&column_, "column", false}};
}

namespace {

Json Base(const std::string& type) {
  Json j = Json::MakeObject();
  j.Set("type", type);
  return j;
}

}  // namespace

Json ExpectColumnValuesToNotBeNull::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  return j;
}

Json ExpectColumnValuesToBeNull::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  return j;
}

Json ExpectColumnValuesToBeBetween::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  j.Set("min", min_);
  j.Set("max", max_);
  return j;
}

Json ExpectColumnValuesToMatchRegex::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  j.Set("regex", pattern_);
  return j;
}

Json ExpectColumnValuesToBeIncreasing::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  j.Set("strictly", strictly_);
  return j;
}

Json ExpectColumnPairValuesAToBeGreaterThanB::ToJson() const {
  Json j = Base(name());
  j.Set("column_a", column_a_);
  j.Set("column_b", column_b_);
  j.Set("or_equal", or_equal_);
  return j;
}

Json ExpectMulticolumnSumToEqual::ToJson() const {
  Json j = Base(name());
  Json columns = Json::MakeArray();
  for (const std::string& c : columns_) columns.Append(Json(c));
  j.Set("columns", std::move(columns));
  j.Set("total", total_);
  j.Set("tolerance", tolerance_);
  if (!where_column_.empty()) {
    j.Set("where_column", where_column_);
    j.Set("where_value", where_value_);
  }
  return j;
}

Json ExpectColumnValuesToBeInSet::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  Json values = Json::MakeArray();
  for (const std::string& v : values_) values.Append(Json(v));
  j.Set("values", std::move(values));
  return j;
}

Json ExpectColumnValuesToBeUnique::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  return j;
}

Json ExpectColumnMeanToBeBetween::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  j.Set("min", min_);
  j.Set("max", max_);
  return j;
}

Json ExpectColumnStdevToBeBetween::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  j.Set("min", min_);
  j.Set("max", max_);
  return j;
}

Json ExpectColumnValueLengthsToBeBetween::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  j.Set("min_length", static_cast<int64_t>(min_length_));
  j.Set("max_length", static_cast<int64_t>(max_length_));
  return j;
}

Json ExpectColumnValuesToBeOfType::ToJson() const {
  Json j = Base(name());
  j.Set("column", column_);
  j.Set("value_type", ValueTypeName(type_));
  return j;
}

}  // namespace dq
}  // namespace icewafl
