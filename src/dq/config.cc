#include "dq/config.h"

#include <fstream>
#include <set>
#include <sstream>

namespace icewafl {
namespace dq {

namespace {

// Thread-local pointer prefix for the helpers below; set once per
// ExpectationFromJson call so every field error carries its JSON pointer.
thread_local std::string t_path;

std::string At(const std::string& key) {
  return " at " + (t_path.empty() ? std::string("/") : t_path) + "/" + key;
}

Result<Json> GetField(const Json& json, const std::string& key) {
  if (!json.Has(key)) {
    return Status::NotFound("missing field '" + key + "'" + At(key));
  }
  return json.Get(key);
}

Result<std::string> RequireString(const Json& json, const std::string& key) {
  ICEWAFL_ASSIGN_OR_RETURN(Json field, GetField(json, key));
  if (!field.is_string()) {
    return Status::TypeError("field" + At(key) + " must be a string");
  }
  return field.AsString();
}

Result<double> RequireDouble(const Json& json, const std::string& key) {
  ICEWAFL_ASSIGN_OR_RETURN(Json field, GetField(json, key));
  if (!field.is_number()) {
    return Status::TypeError("field" + At(key) + " must be a number");
  }
  return field.AsDouble();
}

Result<std::vector<std::string>> RequireStringArray(const Json& json,
                                                    const std::string& key) {
  ICEWAFL_ASSIGN_OR_RETURN(Json field, GetField(json, key));
  if (!field.is_array()) {
    return Status::TypeError("field" + At(key) + " must be an array");
  }
  std::vector<std::string> out;
  for (const Json& item : field.items()) {
    if (!item.is_string()) {
      return Status::TypeError("field" + At(key) +
                               " must contain only strings");
    }
    out.push_back(item.AsString());
  }
  return out;
}

}  // namespace

Result<ExpectationPtr> ExpectationFromJson(const Json& json,
                                           const std::string& path) {
  t_path = path;
  if (!json.is_object()) {
    return Status::ParseError("expectation description at " +
                              (path.empty() ? std::string("/") : path) +
                              " must be an object");
  }
  ICEWAFL_ASSIGN_OR_RETURN(std::string type, RequireString(json, "type"));
  if (type == "expect_column_values_to_not_be_null") {
    ICEWAFL_ASSIGN_OR_RETURN(std::string column,
                             RequireString(json, "column"));
    return ExpectationPtr(
        std::make_unique<ExpectColumnValuesToNotBeNull>(std::move(column)));
  }
  if (type == "expect_column_values_to_be_null") {
    ICEWAFL_ASSIGN_OR_RETURN(std::string column,
                             RequireString(json, "column"));
    return ExpectationPtr(
        std::make_unique<ExpectColumnValuesToBeNull>(std::move(column)));
  }
  if (type == "expect_column_values_to_be_between") {
    ICEWAFL_ASSIGN_OR_RETURN(std::string column,
                             RequireString(json, "column"));
    ICEWAFL_ASSIGN_OR_RETURN(double min, RequireDouble(json, "min"));
    ICEWAFL_ASSIGN_OR_RETURN(double max, RequireDouble(json, "max"));
    return ExpectationPtr(std::make_unique<ExpectColumnValuesToBeBetween>(
        std::move(column), min, max));
  }
  if (type == "expect_column_values_to_match_regex") {
    ICEWAFL_ASSIGN_OR_RETURN(std::string column,
                             RequireString(json, "column"));
    ICEWAFL_ASSIGN_OR_RETURN(std::string pattern,
                             RequireString(json, "regex"));
    return ExpectationPtr(std::make_unique<ExpectColumnValuesToMatchRegex>(
        std::move(column), std::move(pattern)));
  }
  if (type == "expect_column_values_to_be_increasing") {
    ICEWAFL_ASSIGN_OR_RETURN(std::string column,
                             RequireString(json, "column"));
    return ExpectationPtr(std::make_unique<ExpectColumnValuesToBeIncreasing>(
        std::move(column), json.GetBool("strictly", true)));
  }
  if (type == "expect_column_pair_values_a_to_be_greater_than_b") {
    ICEWAFL_ASSIGN_OR_RETURN(std::string a, RequireString(json, "column_a"));
    ICEWAFL_ASSIGN_OR_RETURN(std::string b, RequireString(json, "column_b"));
    return ExpectationPtr(
        std::make_unique<ExpectColumnPairValuesAToBeGreaterThanB>(
            std::move(a), std::move(b), json.GetBool("or_equal", false)));
  }
  if (type == "expect_multicolumn_sum_to_equal") {
    ICEWAFL_ASSIGN_OR_RETURN(std::vector<std::string> columns,
                             RequireStringArray(json, "columns"));
    ICEWAFL_ASSIGN_OR_RETURN(double total, RequireDouble(json, "total"));
    auto expectation = std::make_unique<ExpectMulticolumnSumToEqual>(
        std::move(columns), total, json.GetDouble("tolerance", 1e-9));
    if (json.Has("where_column")) {
      ICEWAFL_ASSIGN_OR_RETURN(std::string where_column,
                               RequireString(json, "where_column"));
      ICEWAFL_ASSIGN_OR_RETURN(double where_value,
                               RequireDouble(json, "where_value"));
      expectation->WhereColumnEquals(std::move(where_column), where_value);
    }
    return ExpectationPtr(std::move(expectation));
  }
  if (type == "expect_column_values_to_be_in_set") {
    ICEWAFL_ASSIGN_OR_RETURN(std::string column,
                             RequireString(json, "column"));
    ICEWAFL_ASSIGN_OR_RETURN(std::vector<std::string> values,
                             RequireStringArray(json, "values"));
    return ExpectationPtr(std::make_unique<ExpectColumnValuesToBeInSet>(
        std::move(column),
        std::set<std::string>(values.begin(), values.end())));
  }
  if (type == "expect_column_values_to_be_unique") {
    ICEWAFL_ASSIGN_OR_RETURN(std::string column,
                             RequireString(json, "column"));
    return ExpectationPtr(
        std::make_unique<ExpectColumnValuesToBeUnique>(std::move(column)));
  }
  if (type == "expect_column_mean_to_be_between") {
    ICEWAFL_ASSIGN_OR_RETURN(std::string column,
                             RequireString(json, "column"));
    ICEWAFL_ASSIGN_OR_RETURN(double min, RequireDouble(json, "min"));
    ICEWAFL_ASSIGN_OR_RETURN(double max, RequireDouble(json, "max"));
    return ExpectationPtr(std::make_unique<ExpectColumnMeanToBeBetween>(
        std::move(column), min, max));
  }
  if (type == "expect_column_stdev_to_be_between") {
    ICEWAFL_ASSIGN_OR_RETURN(std::string column,
                             RequireString(json, "column"));
    ICEWAFL_ASSIGN_OR_RETURN(double min, RequireDouble(json, "min"));
    ICEWAFL_ASSIGN_OR_RETURN(double max, RequireDouble(json, "max"));
    return ExpectationPtr(std::make_unique<ExpectColumnStdevToBeBetween>(
        std::move(column), min, max));
  }
  if (type == "expect_column_value_lengths_to_be_between") {
    ICEWAFL_ASSIGN_OR_RETURN(std::string column,
                             RequireString(json, "column"));
    ICEWAFL_ASSIGN_OR_RETURN(double min, RequireDouble(json, "min_length"));
    ICEWAFL_ASSIGN_OR_RETURN(double max, RequireDouble(json, "max_length"));
    return ExpectationPtr(
        std::make_unique<ExpectColumnValueLengthsToBeBetween>(
            std::move(column), static_cast<size_t>(min),
            static_cast<size_t>(max)));
  }
  if (type == "expect_column_values_to_be_of_type") {
    ICEWAFL_ASSIGN_OR_RETURN(std::string column,
                             RequireString(json, "column"));
    ICEWAFL_ASSIGN_OR_RETURN(std::string type_name,
                             RequireString(json, "value_type"));
    ICEWAFL_ASSIGN_OR_RETURN(ValueType value_type,
                             ValueTypeFromName(type_name));
    return ExpectationPtr(std::make_unique<ExpectColumnValuesToBeOfType>(
        std::move(column), value_type));
  }
  return Status::ParseError("unknown expectation type '" + type + "' at " +
                            (path.empty() ? std::string("/") : path));
}

Result<ExpectationSuite> SuiteFromJson(const Json& json, SchemaPtr bind_schema) {
  if (!json.is_object()) {
    return Status::ParseError("suite description must be a JSON object");
  }
  ExpectationSuite suite(json.GetString("name", "suite"));
  if (!json.Has("expectations")) {
    return Status::NotFound("missing field 'expectations' at /");
  }
  ICEWAFL_ASSIGN_OR_RETURN(Json expectations, json.Get("expectations"));
  if (!expectations.is_array()) {
    return Status::TypeError("field at /expectations must be an array");
  }
  for (size_t i = 0; i < expectations.items().size(); ++i) {
    ICEWAFL_ASSIGN_OR_RETURN(
        ExpectationPtr expectation,
        ExpectationFromJson(expectations.items()[i],
                            "/expectations/" + std::to_string(i)));
    suite.Add(std::move(expectation));
  }
  if (bind_schema != nullptr) {
    ICEWAFL_RETURN_NOT_OK(suite.Bind(std::move(bind_schema)));
  }
  return suite;
}

Result<ExpectationSuite> SuiteFromConfigString(const std::string& text,
                                               SchemaPtr bind_schema) {
  ICEWAFL_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
  return SuiteFromJson(json, std::move(bind_schema));
}

Result<ExpectationSuite> SuiteFromConfigFile(const std::string& path,
                                             SchemaPtr bind_schema) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open suite file: '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return SuiteFromConfigString(buf.str(), std::move(bind_schema));
}

}  // namespace dq
}  // namespace icewafl
