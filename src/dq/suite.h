#ifndef ICEWAFL_DQ_SUITE_H_
#define ICEWAFL_DQ_SUITE_H_

#include <string>
#include <vector>

#include "dq/expectation.h"
#include "obs/metrics.h"

namespace icewafl {
namespace dq {

/// \brief Result of validating an expectation suite.
struct SuiteResult {
  std::vector<ExpectationResult> results;

  /// \brief True iff every expectation succeeded.
  bool success() const;

  /// \brief Total unexpected element count across expectations.
  uint64_t TotalUnexpected() const;

  /// \brief Distinct tuples flagged by at least one expectation.
  uint64_t DistinctFlaggedTuples() const;

  /// \brief Per-hour histogram of all failures across expectations.
  std::vector<uint64_t> FailureHourHistogram() const;

  /// \brief Human-readable validation report.
  std::string ToReport() const;
};

/// \brief Publishes a validation outcome to `registry`: pass/fail counts
/// per suite (`icewafl_dq_expectations_total{suite,result}`) and the
/// unexpected-element count per expectation
/// (`icewafl_dq_unexpected_total{suite,expectation,column}`). Counters
/// accumulate across repeated validations of the same suite. No-op when
/// `registry` is nullptr.
void PublishSuiteResult(const SuiteResult& result,
                        const std::string& suite_name,
                        obs::MetricRegistry* registry);

/// \brief An ordered collection of expectations validated together —
/// the analogue of a Great Expectations expectation suite.
class ExpectationSuite {
 public:
  ExpectationSuite() = default;
  explicit ExpectationSuite(std::string name) : name_(std::move(name)) {}

  ExpectationSuite(ExpectationSuite&&) = default;
  ExpectationSuite& operator=(ExpectationSuite&&) = default;

  const std::string& name() const { return name_; }

  void Add(ExpectationPtr expectation) {
    expectations_.push_back(std::move(expectation));
  }

  /// \brief Builder-style add, enabling
  /// `suite.Expect<ExpectColumnValuesToNotBeNull>("Distance")`.
  template <typename T, typename... Args>
  ExpectationSuite& Expect(Args&&... args) {
    expectations_.push_back(std::make_unique<T>(std::forward<Args>(args)...));
    return *this;
  }

  size_t size() const { return expectations_.size(); }

  /// \brief Binds every expectation against `schema` (DESIGN.md section
  /// 8). Errors carry the expectation's JSON-pointer path, e.g.
  /// "at /expectations/2/column: unknown attribute ...". After a
  /// successful Bind, Validate runs without per-call column resolution.
  Status Bind(SchemaPtr schema);

  /// \brief The schema this suite was bound against, or nullptr.
  const SchemaPtr& bound_schema() const { return bound_schema_; }

  /// \brief Validates all expectations against the stream.
  Result<SuiteResult> Validate(const TupleVector& tuples) const;

  /// \brief Config representation; round-trips through
  /// dq::SuiteFromJson (dq/config.h).
  Json ToJson() const;

 private:
  std::string name_ = "suite";
  std::vector<ExpectationPtr> expectations_;
  SchemaPtr bound_schema_;
};

}  // namespace dq
}  // namespace icewafl

#endif  // ICEWAFL_DQ_SUITE_H_
