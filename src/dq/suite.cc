#include "dq/suite.h"

#include <set>

#include "util/strings.h"

namespace icewafl {
namespace dq {

bool SuiteResult::success() const {
  for (const ExpectationResult& r : results) {
    if (!r.success) return false;
  }
  return true;
}

uint64_t SuiteResult::TotalUnexpected() const {
  uint64_t total = 0;
  for (const ExpectationResult& r : results) total += r.unexpected;
  return total;
}

uint64_t SuiteResult::DistinctFlaggedTuples() const {
  std::set<TupleId> flagged;
  for (const ExpectationResult& r : results) {
    for (const FailedRecord& f : r.failures) flagged.insert(f.id);
  }
  return flagged.size();
}

std::vector<uint64_t> SuiteResult::FailureHourHistogram() const {
  std::vector<uint64_t> hist(24, 0);
  for (const ExpectationResult& r : results) {
    const std::vector<uint64_t> h = r.FailureHourHistogram();
    for (size_t i = 0; i < 24; ++i) hist[i] += h[i];
  }
  return hist;
}

std::string SuiteResult::ToReport() const {
  std::string out;
  for (const ExpectationResult& r : results) {
    out += r.success ? "[ OK ] " : "[FAIL] ";
    out += r.expectation;
    out += "(";
    out += r.column;
    out += "): ";
    out += std::to_string(r.unexpected);
    out += "/";
    out += std::to_string(r.evaluated);
    out += " unexpected";
    if (!std::isnan(r.observed)) {
      out += ", observed=";
      out += FormatDouble(r.observed, 4);
    }
    out += "\n";
  }
  return out;
}

void PublishSuiteResult(const SuiteResult& result,
                        const std::string& suite_name,
                        obs::MetricRegistry* registry) {
  if (registry == nullptr) return;
  obs::Counter* passed = registry->GetCounter(
      "icewafl_dq_expectations_total",
      {{"suite", suite_name}, {"result", "pass"}},
      "Expectation validations by outcome");
  obs::Counter* failed = registry->GetCounter(
      "icewafl_dq_expectations_total",
      {{"suite", suite_name}, {"result", "fail"}},
      "Expectation validations by outcome");
  for (const ExpectationResult& r : result.results) {
    if (r.success) {
      if (passed != nullptr) passed->Increment();
    } else {
      if (failed != nullptr) failed->Increment();
    }
    obs::Counter* unexpected = registry->GetCounter(
        "icewafl_dq_unexpected_total",
        {{"suite", suite_name},
         {"expectation", r.expectation},
         {"column", r.column}},
        "Unexpected elements per expectation");
    if (unexpected != nullptr) unexpected->Increment(r.unexpected);
  }
}

Status ExpectationSuite::Bind(SchemaPtr schema) {
  if (schema == nullptr) {
    return Status::InvalidArgument("suite '" + name_ +
                                   "': cannot bind to a null schema");
  }
  for (size_t i = 0; i < expectations_.size(); ++i) {
    BindContext ctx(*schema, "/expectations/" + std::to_string(i));
    ICEWAFL_RETURN_NOT_OK(expectations_[i]->Bind(ctx));
  }
  bound_schema_ = std::move(schema);
  return Status::OK();
}

Result<SuiteResult> ExpectationSuite::Validate(
    const TupleVector& tuples) const {
  SuiteResult suite_result;
  suite_result.results.reserve(expectations_.size());
  for (const ExpectationPtr& e : expectations_) {
    ICEWAFL_ASSIGN_OR_RETURN(ExpectationResult r, e->Validate(tuples));
    suite_result.results.push_back(std::move(r));
  }
  return suite_result;
}

Json ExpectationSuite::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("name", name_);
  Json arr = Json::MakeArray();
  for (const ExpectationPtr& e : expectations_) arr.Append(e->ToJson());
  j.Set("expectations", std::move(arr));
  return j;
}

}  // namespace dq
}  // namespace icewafl
