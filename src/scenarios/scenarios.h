#ifndef ICEWAFL_SCENARIOS_SCENARIOS_H_
#define ICEWAFL_SCENARIOS_SCENARIOS_H_

#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/plan.h"
#include "dq/suite.h"
#include "stream/runtime.h"
#include "stream/sink.h"
#include "stream/source.h"
#include "util/json.h"

namespace icewafl {
namespace scenarios {

/// \file
/// The pollution scenarios and matching expectation suites of the
/// paper's evaluation (Section 3), expressed against this repository's
/// synthetic datasets. Benchmarks and examples share these builders so
/// that the experiment harnesses stay faithful to one definition.

// ---------------------------------------------------------------------
// Experiment 1 (wearable stream, Section 3.1)
// ---------------------------------------------------------------------

/// \brief Scenario 3.1.1 — random temporal errors: NULLs injected into
/// `Distance` with the daily sinusoidal probability
/// p(t) = 0.25 * cos(pi/12 * t) + 0.25.
PollutionPipeline RandomTemporalErrorsPipeline();

/// \brief Expectation detecting scenario 3.1.1's missing values.
dq::ExpectationSuite RandomTemporalErrorsSuite();

/// \brief Expected number of polluted tuples per hour-of-day for
/// scenario 3.1.1 given the tuple-count histogram of the clean stream
/// (the blue series of Figure 4).
std::vector<double> RandomTemporalExpectedPerHour(
    const std::vector<uint64_t>& tuples_per_hour);

/// \brief Scenario 3.1.2 — the software-update composite polluter of
/// Figure 5: after 2016-02-27, Distance km->cm, CaloriesBurned rounded
/// to 2 decimals, and BPM > 100 readings set to 0 then (p = 0.2) to NULL.
PollutionPipeline SoftwareUpdatePipeline();

/// \brief The four GX-style expectations of scenario 3.1.2 (order:
/// steps>=distance, calories regex, BPM-zero activity sum, BPM not null).
dq::ExpectationSuite SoftwareUpdateSuite();

/// \brief Table 1's expected post-pollution error counts for the default
/// wearable stream.
struct SoftwareUpdateExpectations {
  double bpm_zero = 26.4;      ///< 0.8 * 33 (plus 2 pre-existing found)
  int bpm_zero_preexisting = 2;
  double bpm_null = 6.6;       ///< 0.2 * 33
  int distance = 374;
  int calories = 960;
  int gated_tuples = 1056;     ///< tuples after the update date (Figure 5)
  int bpm_gated = 33;          ///< tuples with BPM > 100 (Figure 5)
};
SoftwareUpdateExpectations SoftwareUpdateExpectedCounts();

/// \brief Scenario 3.1.3 — bad network connection: tuples between 13:00
/// and 14:59 are delayed by one hour with nested probability 0.2.
PollutionPipeline NetworkDelayPipeline();

/// \brief Expectation detecting scenario 3.1.3's delays (increasing
/// timestamps).
dq::ExpectationSuite NetworkDelaySuite();

// ---------------------------------------------------------------------
// Experiment 2 (air-quality stream, Section 3.2)
// ---------------------------------------------------------------------

/// \brief D_noise pipeline — temporally increasing multiplicative
/// uniform noise (Equation 3) on the given numerical attributes, with
/// noise magnitude ramping from 0 to `pi_max` over the stream.
PollutionPipeline TemporalNoisePipeline(
    const std::vector<std::string>& attributes, double pi_max);

/// \brief D_scale pipeline — scale-by-`factor` errors gated by a prior
/// probability `prior` AND the stream-relative activation ramp of
/// Equation 4; an activation persists for `hold_hours` hours.
PollutionPipeline TemporalScalePipeline(
    const std::vector<std::string>& attributes, double factor, double prior,
    int hold_hours);

/// \brief The numerical air-quality attributes polluted in Experiment 2.
std::vector<std::string> AirQualityNumericAttributes();

// ---------------------------------------------------------------------
// Scenario registry
// ---------------------------------------------------------------------

/// \brief One paper scenario resolved end-to-end: the generated clean
/// dataset, the pollution pipeline, the matching expectation suite
/// (where Section 3 defines one), and the stream bounds that
/// stream-relative profiles (Equations 3/4) need. Every consumer of a
/// scenario by name — `icewafl_cli run`, `icewafl_cli serve`, benches —
/// resolves through this one definition, which is what makes the served
/// stream byte-identical to the offline run.
struct ResolvedScenario {
  std::string name;
  PollutionPipeline pipeline;
  std::optional<dq::ExpectationSuite> suite;
  SchemaPtr schema;
  TupleVector clean;
  Timestamp stream_start = 0;
  Timestamp stream_end = 0;
};

/// \brief The five runnable scenario names, in documentation order.
const std::vector<std::string>& ScenarioNames();

/// \brief Resolves `name` (one of ScenarioNames()) with the dataset
/// generated from `seed` (0 keeps the dataset default).
/// InvalidArgument for an unknown name.
Result<ResolvedScenario> ResolveScenario(const std::string& name,
                                         uint64_t seed);

// ---------------------------------------------------------------------
// Streaming execution
// ---------------------------------------------------------------------

/// \brief Core of ApplyPipelineStreaming with a caller-supplied sink:
/// runs `prototype` over `source` on the pipelined runtime and pushes
/// every output tuple into `sink` (which may fan out over TCP, write
/// CSV, or materialize). Same determinism contract as
/// ApplyPipelineStreaming.
Status StreamPipelineToSink(Source* source, const PollutionPipeline& prototype,
                            uint64_t seed, int parallelism, Sink* sink,
                            RuntimeStats* stats = nullptr,
                            obs::MetricRegistry* metrics = nullptr,
                            obs::TraceRecorder* trace = nullptr,
                            Timestamp stream_start = 0,
                            Timestamp stream_end = 0);

/// \brief Runs a scenario pipeline over `source` on the pipelined
/// runtime (`PipelineRuntime`): the source, `parallelism` polluter
/// workers (each owning a clone of `prototype` seeded `seed + worker`),
/// and the collecting sink run concurrently over bounded channels, so
/// the scenario streams at steady-state memory instead of materializing.
///
/// With `parallelism` 1 the output preserves input order; above 1 it is
/// the runtime's deterministic batch rotation. Optionally returns the
/// run's RuntimeStats through `stats`.
///
/// When `metrics` / `trace` are non-null the runtime and every worker's
/// PolluterOperator publish into them (stage counters, per-polluter
/// activation counts, trace spans); output bytes are identical either
/// way. Pipelines with stream-relative profiles (Equations 3/4) need
/// `stream_start` / `stream_end`; left at 0/0 those profiles evaluate
/// to their unbounded-stream degenerate value.
Result<TupleVector> ApplyPipelineStreaming(
    Source* source, const PollutionPipeline& prototype, uint64_t seed,
    int parallelism = 1, RuntimeStats* stats = nullptr,
    obs::MetricRegistry* metrics = nullptr, obs::TraceRecorder* trace = nullptr,
    Timestamp stream_start = 0, Timestamp stream_end = 0);

// ---------------------------------------------------------------------
// Versioned plan serving (DESIGN.md section 14)
// ---------------------------------------------------------------------

/// \brief Compiles a built-in scenario into an unpublished PlanSnapshot:
/// the resolved clean stream, the bound pipeline, the seed/parallelism
/// knobs, and the full-stream profile bounds, ready for
/// PollutionServer::AddSession / SwapPlan to version and publish.
Result<std::shared_ptr<PlanSnapshot>> BuildScenarioPlan(
    const std::string& name, uint64_t seed, int parallelism,
    double tuples_per_sec = 0.0);

/// \brief Compiles a raw pipeline document into an unpublished snapshot
/// that inherits everything else — schema, clean stream, seed,
/// parallelism, bounds, rate — from `base` (the session's current
/// plan). The document passes through PipelineFromJson, so the
/// installed AnalyzeOrDie hook lint-gates it against the schema before
/// a snapshot exists to publish; the new plan's scenario is "custom".
Result<std::shared_ptr<PlanSnapshot>> BuildPlanFromPipelineJson(
    const PlanSnapshot& base, const Json& pipeline_json);

/// \brief The plan-driven session function: streams `ctx.plan`'s clean
/// rows through its pipeline into `sink`, polling `ctx.latest()` every
/// few rows. When a newer snapshot has been published, the current
/// segment's in-flight rows drain under the old plan, then the runner
/// adopts the newest snapshot and continues from the next clean row —
/// no row is dropped, duplicated, or polluted by two plans. Each
/// adopted segment is reported through `ctx.on_segment` before its
/// first row, so the produced stream is exactly the concatenation of
/// offline runs of each segment's plan over its row slice (the cutover
/// determinism contract the loopback tests enforce). Pacing
/// (`tuples_per_sec`) delays rows but never changes bytes.
Status ServePlanToSink(const PlanContext& ctx, Sink* sink);

/// \brief Offline twin of one ServePlanToSink segment: runs `plan` over
/// its clean rows [start_row, end_row) with the plan's seed,
/// parallelism, and full-stream bounds. Concatenating the outputs for a
/// run's recorded segments reproduces the served stream byte-for-byte.
Result<TupleVector> RunPlanSegmentOffline(const PlanSnapshot& plan,
                                          uint64_t start_row,
                                          uint64_t end_row);

// ---------------------------------------------------------------------
// Static analysis gate
// ---------------------------------------------------------------------

/// \brief Lints every built-in scenario pipeline (round-tripped through
/// ToJson) against its dataset schema, cross-checked with its matching
/// expectation suite where one exists. OK when no pipeline has
/// error-severity findings; otherwise InvalidArgument carrying the
/// offending pipeline's report. An opt-in pre-flight for harnesses:
/// call it once before running experiments.
Status AnalyzeScenariosOrDie();

}  // namespace scenarios
}  // namespace icewafl

#endif  // ICEWAFL_SCENARIOS_SCENARIOS_H_
