#include "scenarios/closed_loop.h"

#include <cmath>
#include <unordered_map>
#include <utility>

#include "clean/config.h"
#include "core/process.h"
#include "stream/sink.h"
#include "stream/source.h"

namespace icewafl {
namespace scenarios {

namespace {

Json GuardJson(const std::string& column, const std::string& op,
               double value) {
  Json g = Json::MakeObject();
  g.Set("column", column);
  g.Set("op", op);
  g.Set("value", value);
  return g;
}

Json RuleJson(const std::string& label, const std::string& column, Json detect,
              const std::string& repair) {
  Json r = Json::MakeObject();
  r.Set("label", label);
  r.Set("column", column);
  r.Set("detect", std::move(detect));
  r.Set("repair", repair);
  return r;
}

/// The software-update cleaner (scenario 3.1.2). Rule order matters:
/// repairs apply before the next rule sees the tuple, so the broad
/// cross-field distance rule runs before the range backstop, and the
/// BPM zero rule before the BPM NULL rule.
ScenarioCleaner SoftwareUpdateCleaner() {
  ScenarioCleaner cleaner;
  Json rules = Json::MakeArray();

  // km->cm conversions make Distance (cm) exceed Steps; impute from the
  // recent accepted distances.
  Json cross = Json::MakeObject();
  cross.Set("type", "cross_field");
  cross.Set("op", "le");
  cross.Set("other", "Steps");
  rules.Append(
      RuleJson("distance_vs_steps", "Distance", std::move(cross),
               "window_mean"));

  // Backstop for converted distances that still undercut Steps.
  Json range = Json::MakeObject();
  range.Set("type", "range");
  range.Set("min", 0.0);
  range.Set("max", 50.0);
  rules.Append(
      RuleJson("distance_range", "Distance", std::move(range), "window_mean"));

  // Valid calories are 0 or carry >= 3 decimals; rounding to 2 strips
  // the precision. Carry the last accepted reading forward.
  Json regex = Json::MakeObject();
  regex.Set("type", "regex");
  regex.Set("pattern", R"(0|\d+\.\d{3,})");
  Json calories =
      RuleJson("calories_precision", "CaloriesBurned", std::move(regex),
               "last_good");
  Json calories_guard = Json::MakeArray();
  calories_guard.Append(GuardJson("CaloriesBurned", "gt", 0.0));
  calories.Set("when", std::move(calories_guard));
  rules.Append(std::move(calories));

  // A BPM of zero on an active row (Steps > 0) is a sensor fault — the
  // zeroed exercise readings plus the stream's pre-existing anomalies.
  Json bpm_range = Json::MakeObject();
  bpm_range.Set("type", "range");
  bpm_range.Set("min", 1.0);
  bpm_range.Set("max", 250.0);
  Json bpm_zero =
      RuleJson("bpm_zero", "BPM", std::move(bpm_range), "last_good");
  Json bpm_guard = Json::MakeArray();
  bpm_guard.Append(GuardJson("Steps", "gt", 0.0));
  bpm_zero.Set("when", std::move(bpm_guard));
  rules.Append(std::move(bpm_zero));

  Json not_null = Json::MakeObject();
  not_null.Set("type", "not_null");
  rules.Append(RuleJson("bpm_null", "BPM", std::move(not_null), "last_good"));

  Json doc = Json::MakeObject();
  doc.Set("name", "software_update_clean");
  doc.Set("history", static_cast<int64_t>(32));
  doc.Set("rules", std::move(rules));
  cleaner.rules = std::move(doc);

  cleaner.rule_families = {
      {"distance_vs_steps", {"distance_km_to_cm"}},
      {"distance_range", {"distance_km_to_cm"}},
      {"calories_precision", {"calories_precision_2"}},
      {"bpm_zero", {"bpm_to_zero"}},
      // A NULL BPM was zeroed first, then nulled: detecting the NULL
      // detects both injections on that tuple.
      {"bpm_null", {"bpm_to_zero", "bpm_to_null"}},
  };
  cleaner.deterministic_families = {"distance_km_to_cm",
                                    "calories_precision_2", "bpm_to_zero"};
  return cleaner;
}

/// The sinusoidal-NULLs cleaner (scenario 3.1.1): impute missing
/// distances from the recent accepted readings.
ScenarioCleaner RandomTemporalCleaner() {
  ScenarioCleaner cleaner;
  Json not_null = Json::MakeObject();
  not_null.Set("type", "not_null");
  Json rules = Json::MakeArray();
  rules.Append(RuleJson("distance_null", "Distance", std::move(not_null),
                        "window_mean"));
  Json doc = Json::MakeObject();
  doc.Set("name", "random_temporal_clean");
  doc.Set("history", static_cast<int64_t>(32));
  doc.Set("rules", std::move(rules));
  cleaner.rules = std::move(doc);
  cleaner.rule_families = {{"distance_null", {"sinusoidal_nulls"}}};
  // The injection condition is the sinusoidal probability — random, so
  // the family is scored but not part of the F1 acceptance gate.
  cleaner.deterministic_families = {};
  return cleaner;
}

Result<dq::ExpectationSuite> SuiteForScenario(const std::string& scenario) {
  if (scenario == "software_update") return SoftwareUpdateSuite();
  if (scenario == "random_temporal") return RandomTemporalErrorsSuite();
  if (scenario == "network_delay") return NetworkDelaySuite();
  return Status::InvalidArgument("scenario '" + scenario +
                                 "' has no expectation suite");
}

/// Repaired-value tolerance: windowed imputations land near, not on,
/// the original. Strings and NULL must match exactly.
bool RepairAccurate(const Value& repaired, const Value& original) {
  if (repaired.is_null() || original.is_null()) {
    return repaired.is_null() && original.is_null();
  }
  if (repaired.is_numeric() && original.is_numeric()) {
    const double r = repaired.ToDouble().ValueOrDie();
    const double c = original.ToDouble().ValueOrDie();
    const double diff = std::abs(r - c);
    return diff <= 0.5 || diff <= 0.1 * std::abs(c);
  }
  return repaired == original;
}

}  // namespace

Result<ScenarioCleaner> CleanerForScenario(const std::string& scenario) {
  if (scenario == "software_update") return SoftwareUpdateCleaner();
  if (scenario == "random_temporal") return RandomTemporalCleaner();
  return Status::InvalidArgument(
      "scenario '" + scenario +
      "' has no stock cleaner (closed-loop scenarios: software_update, "
      "random_temporal)");
}

Json FamilyScore::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("family", family);
  out.Set("deterministic", deterministic);
  out.Set("ground_truth", static_cast<int64_t>(ground_truth));
  out.Set("true_positives", static_cast<int64_t>(true_positives));
  out.Set("false_positives", static_cast<int64_t>(false_positives));
  out.Set("precision", precision);
  out.Set("recall", recall);
  out.Set("f1", f1);
  return out;
}

double ClosedLoopReport::MinDeterministicF1() const {
  double min_f1 = 1.0;
  for (const FamilyScore& f : families) {
    if (f.deterministic && f.f1 < min_f1) min_f1 = f.f1;
  }
  return min_f1;
}

Json ClosedLoopReport::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("scenario", scenario);
  out.Set("clean_rows", static_cast<int64_t>(clean_rows));
  out.Set("polluted_rows", static_cast<int64_t>(polluted_rows));
  out.Set("cleaned_rows", static_cast<int64_t>(cleaned_rows));
  out.Set("injections", static_cast<int64_t>(injections));
  out.Set("detections", static_cast<int64_t>(detections));
  Json fams = Json::MakeArray();
  for (const FamilyScore& f : families) fams.Append(f.ToJson());
  out.Set("families", std::move(fams));
  out.Set("min_deterministic_f1", MinDeterministicF1());
  out.Set("repairs_scored", static_cast<int64_t>(repairs_scored));
  out.Set("repairs_accurate", static_cast<int64_t>(repairs_accurate));
  out.Set("repair_accuracy", repair_accuracy);
  Json by_rule = Json::MakeObject();
  for (const auto& [rule, counts] : repairs_by_rule) {
    Json entry = Json::MakeObject();
    entry.Set("scored", static_cast<int64_t>(counts.first));
    entry.Set("accurate", static_cast<int64_t>(counts.second));
    by_rule.Set(rule, std::move(entry));
  }
  out.Set("repairs_by_rule", std::move(by_rule));
  out.Set("clean_stats", clean_stats.ToJson());
  out.Set("monitor_polluted", monitor_polluted);
  out.Set("monitor_cleaned", monitor_cleaned);
  return out;
}

Result<ClosedLoopReport> RunClosedLoop(const std::string& scenario,
                                       const ClosedLoopOptions& options,
                                       obs::MetricRegistry* metrics,
                                       TupleVector* cleaned_out) {
  ICEWAFL_ASSIGN_OR_RETURN(ScenarioCleaner cleaner,
                           CleanerForScenario(scenario));
  ICEWAFL_ASSIGN_OR_RETURN(ResolvedScenario resolved,
                           ResolveScenario(scenario, options.dataset_seed));

  // Pollute with ground-truth logging (Algorithm 1, log enabled).
  VectorSource source(resolved.schema, std::move(resolved.clean));
  ICEWAFL_ASSIGN_OR_RETURN(
      PollutionResult polluted,
      PollutionProcess::Pollute(&source, std::move(resolved.pipeline),
                                options.seed));

  ClosedLoopReport report;
  report.scenario = scenario;
  report.clean_rows = polluted.clean.size();
  report.polluted_rows = polluted.polluted.size();

  // Diff-filtered ground truth: an injection only counts when it
  // changed the value the cleaner can observe (a km->cm conversion of
  // 0 km, or a rounding that was already exact, injects nothing).
  std::unordered_map<TupleId, size_t> clean_row, polluted_row;
  clean_row.reserve(polluted.clean.size());
  for (size_t i = 0; i < polluted.clean.size(); ++i) {
    clean_row[polluted.clean[i].id()] = i;
  }
  polluted_row.reserve(polluted.polluted.size());
  for (size_t i = 0; i < polluted.polluted.size(); ++i) {
    polluted_row[polluted.polluted[i].id()] = i;
  }
  std::map<std::string, std::set<TupleId>> ground_truth;
  for (const PollutionLogEntry& entry : polluted.log.entries()) {
    auto c = clean_row.find(entry.tuple_id);
    auto p = polluted_row.find(entry.tuple_id);
    if (c == clean_row.end() || p == polluted_row.end()) continue;
    const Tuple& before = polluted.clean[c->second];
    const Tuple& after = polluted.polluted[p->second];
    bool changed = false;
    for (const std::string& attribute : entry.attributes) {
      Result<size_t> idx = resolved.schema->IndexOf(attribute);
      if (!idx.ok()) continue;
      if (!(before.value(idx.ValueOrDie()) == after.value(idx.ValueOrDie()))) {
        changed = true;
        break;
      }
    }
    // Attribute-less errors (delays) shift time, not values.
    if (changed) ground_truth[entry.polluter].insert(entry.tuple_id);
  }
  for (const auto& [family, ids] : ground_truth) {
    (void)family;
    report.injections += ids.size();
  }

  // Detect + repair.
  ICEWAFL_ASSIGN_OR_RETURN(
      clean::CleaningRules rules,
      clean::RulesFromJson(cleaner.rules, resolved.schema));
  VectorSink cleaned_sink;
  clean::RepairLog repair_log;
  ICEWAFL_RETURN_NOT_OK(clean::CleanTuples(
      rules, polluted.polluted, options.parallelism, &cleaned_sink, metrics,
      &repair_log, &report.clean_stats));
  TupleVector cleaned = cleaned_sink.TakeTuples();
  report.cleaned_rows = cleaned.size();
  report.detections = repair_log.size();

  // Score detection per family.
  std::map<std::string, std::set<TupleId>> detected;
  for (const clean::RepairLogEntry& entry : repair_log.entries()) {
    auto mapped = cleaner.rule_families.find(entry.rule);
    if (mapped == cleaner.rule_families.end()) continue;
    for (const std::string& family : mapped->second) {
      detected[family].insert(entry.tuple_id);
    }
  }
  std::set<std::string> all_families;
  for (const auto& [family, ids] : ground_truth) {
    (void)ids;
    all_families.insert(family);
  }
  for (const auto& [rule, families] : cleaner.rule_families) {
    (void)rule;
    all_families.insert(families.begin(), families.end());
  }
  for (const std::string& family : all_families) {
    FamilyScore score;
    score.family = family;
    score.deterministic = cleaner.deterministic_families.count(family) > 0;
    const std::set<TupleId>& gt = ground_truth[family];
    score.ground_truth = gt.size();
    for (TupleId id : detected[family]) {
      if (gt.count(id) > 0) {
        ++score.true_positives;
      } else {
        ++score.false_positives;
      }
    }
    const uint64_t flagged = score.true_positives + score.false_positives;
    score.precision =
        flagged == 0 ? (score.ground_truth == 0 ? 1.0 : 0.0)
                     : static_cast<double>(score.true_positives) /
                           static_cast<double>(flagged);
    score.recall = score.ground_truth == 0
                       ? 1.0
                       : static_cast<double>(score.true_positives) /
                             static_cast<double>(score.ground_truth);
    score.f1 = (score.precision + score.recall) == 0.0
                   ? 0.0
                   : 2.0 * score.precision * score.recall /
                         (score.precision + score.recall);
    report.families.push_back(std::move(score));
  }

  // Score repair accuracy: the final cleaned value of every repaired
  // (tuple, column) against the clean original.
  std::unordered_map<TupleId, size_t> cleaned_row;
  cleaned_row.reserve(cleaned.size());
  for (size_t i = 0; i < cleaned.size(); ++i) {
    cleaned_row[cleaned[i].id()] = i;
  }
  std::set<std::pair<TupleId, std::string>> scored;
  for (const clean::RepairLogEntry& entry : repair_log.entries()) {
    if (entry.action == "drop") continue;
    if (!scored.insert({entry.tuple_id, entry.column}).second) continue;
    auto c = clean_row.find(entry.tuple_id);
    auto r = cleaned_row.find(entry.tuple_id);
    if (c == clean_row.end() || r == cleaned_row.end()) continue;
    Result<size_t> idx = resolved.schema->IndexOf(entry.column);
    if (!idx.ok()) continue;
    ++report.repairs_scored;
    auto& rule_counts = report.repairs_by_rule[entry.rule];
    ++rule_counts.first;
    if (RepairAccurate(cleaned[r->second].value(idx.ValueOrDie()),
                       polluted.clean[c->second].value(idx.ValueOrDie()))) {
      ++report.repairs_accurate;
      ++rule_counts.second;
    }
  }
  report.repair_accuracy =
      report.repairs_scored == 0
          ? 1.0
          : static_cast<double>(report.repairs_accurate) /
                static_cast<double>(report.repairs_scored);

  // Re-validate: windowed suite verdicts before vs after cleaning.
  const dq::WindowSpec window =
      dq::WindowSpec::Tumbling(options.window_seconds);
  const dq::WatermarkPolicy lateness{options.allowed_lateness_seconds};
  {
    ICEWAFL_ASSIGN_OR_RETURN(dq::ExpectationSuite suite,
                             SuiteForScenario(scenario));
    ICEWAFL_RETURN_NOT_OK(suite.Bind(resolved.schema));
    dq::WindowedMonitor monitor(std::move(suite), window, lateness, metrics);
    ICEWAFL_RETURN_NOT_OK(monitor.ObserveAll(polluted.polluted));
    ICEWAFL_RETURN_NOT_OK(monitor.Flush());
    report.monitor_polluted = monitor.ToJson();
  }
  {
    ICEWAFL_ASSIGN_OR_RETURN(dq::ExpectationSuite suite,
                             SuiteForScenario(scenario));
    ICEWAFL_RETURN_NOT_OK(suite.Bind(resolved.schema));
    dq::WindowedMonitor monitor(std::move(suite), window, lateness, metrics);
    ICEWAFL_RETURN_NOT_OK(monitor.ObserveAll(cleaned));
    ICEWAFL_RETURN_NOT_OK(monitor.Flush());
    report.monitor_cleaned = monitor.ToJson();
  }

  if (cleaned_out != nullptr) *cleaned_out = std::move(cleaned);
  return report;
}

Result<std::shared_ptr<PlanSnapshot>> BuildPlanWithCleaner(
    const PlanSnapshot& base, const Json& rules_json) {
  std::shared_ptr<PlanSnapshot> next = ClonePlan(base);
  if (rules_json.is_null()) {
    next->cleaner = Json();
    return next;
  }
  // Compile against the session schema so a broken document is rejected
  // with JSON-pointer diagnostics before a snapshot exists to publish.
  ICEWAFL_RETURN_NOT_OK(
      clean::RulesFromJson(rules_json, base.schema).status());
  next->cleaner = rules_json;
  return next;
}

}  // namespace scenarios
}  // namespace icewafl
