#include "scenarios/scenarios.h"

#include <chrono>
#include <cmath>
#include <optional>
#include <thread>

#include "analysis/analyzer.h"
#include "clean/cleaner.h"
#include "clean/config.h"
#include "core/composite_polluter.h"
#include "core/config.h"
#include "core/derived_error.h"
#include "core/polluter_operator.h"
#include "core/errors_numeric.h"
#include "core/errors_temporal.h"
#include "core/errors_value.h"
#include "data/airquality.h"
#include "data/wearable.h"

namespace icewafl {
namespace scenarios {

PollutionPipeline RandomTemporalErrorsPipeline() {
  PollutionPipeline pipeline("random_temporal_errors");
  pipeline.Add(std::make_unique<StandardPolluter>(
      "sinusoidal_nulls", std::make_unique<MissingValueError>(),
      std::make_unique<ProfileProbabilityCondition>(
          std::make_unique<SinusoidalProfile>(24.0, 0.25, 0.25)),
      std::vector<std::string>{"Distance"}));
  return pipeline;
}

dq::ExpectationSuite RandomTemporalErrorsSuite() {
  dq::ExpectationSuite suite("random_temporal_errors");
  suite.Expect<dq::ExpectColumnValuesToNotBeNull>("Distance");
  return suite;
}

std::vector<double> RandomTemporalExpectedPerHour(
    const std::vector<uint64_t>& tuples_per_hour) {
  std::vector<double> expected(24, 0.0);
  for (int h = 0; h < 24; ++h) {
    const double p = 0.25 * std::cos(M_PI / 12.0 * h) + 0.25;
    expected[static_cast<size_t>(h)] =
        p * static_cast<double>(tuples_per_hour[static_cast<size_t>(h)]);
  }
  return expected;
}

PollutionPipeline SoftwareUpdatePipeline() {
  // Figure 5: a composite "Software Update" polluter gated on the update
  // date delegates to three children; the BPM child is itself composite.
  auto update = std::make_unique<SequentialPolluter>(
      "software_update",
      TimeWindowCondition::After(data::WearableUpdateTime()));
  update->Register(std::make_unique<StandardPolluter>(
      "distance_km_to_cm",
      std::make_unique<UnitConversionError>(100000.0, "km", "cm"),
      std::make_unique<AlwaysCondition>(),
      std::vector<std::string>{"Distance"}));
  update->Register(std::make_unique<StandardPolluter>(
      "calories_precision_2", std::make_unique<RoundError>(2),
      std::make_unique<AlwaysCondition>(),
      std::vector<std::string>{"CaloriesBurned"}));
  auto wrong_bpm = std::make_unique<SequentialPolluter>(
      "wrong_bpm_measurement",
      std::make_unique<ValueCondition>("BPM", CompareOp::kGt, Value(100.0)));
  wrong_bpm->Register(std::make_unique<StandardPolluter>(
      "bpm_to_zero", std::make_unique<SetConstantError>(Value(0.0)),
      std::make_unique<AlwaysCondition>(), std::vector<std::string>{"BPM"}));
  wrong_bpm->Register(std::make_unique<StandardPolluter>(
      "bpm_to_null", std::make_unique<MissingValueError>(),
      std::make_unique<RandomCondition>(0.2),
      std::vector<std::string>{"BPM"}));
  update->Register(std::move(wrong_bpm));

  PollutionPipeline pipeline("software_update");
  pipeline.Add(std::move(update));
  return pipeline;
}

dq::ExpectationSuite SoftwareUpdateSuite() {
  dq::ExpectationSuite suite("software_update");
  // (i) After km->cm, Distance exceeds Steps.
  suite.Expect<dq::ExpectColumnPairValuesAToBeGreaterThanB>(
      "Steps", "Distance", /*or_equal=*/true);
  // (ii) Valid CaloriesBurned are 0 or have >= 3 decimal places; the
  // rounding polluter reduces the precision below that.
  suite.Expect<dq::ExpectColumnValuesToMatchRegex>("CaloriesBurned",
                                                   R"(0|\d+\.\d{3,})");
  // (iii) Tuples with BPM = 0 must show no activity.
  auto sum_zero = std::make_unique<dq::ExpectMulticolumnSumToEqual>(
      std::vector<std::string>{"ActiveMinutes", "Distance", "Steps"}, 0.0);
  sum_zero->WhereColumnEquals("BPM", 0.0);
  suite.Add(std::move(sum_zero));
  // (iv) BPM must not be NULL.
  suite.Expect<dq::ExpectColumnValuesToNotBeNull>("BPM");
  return suite;
}

SoftwareUpdateExpectations SoftwareUpdateExpectedCounts() {
  return SoftwareUpdateExpectations{};
}

PollutionPipeline NetworkDelayPipeline() {
  // Delay by one hour, only between 13:00 and 14:59 and then only with
  // probability 0.2 (the nested condition of Section 3.1.3).
  std::vector<ConditionPtr> children;
  children.push_back(
      std::make_unique<DailyWindowCondition>(13 * 60, 14 * 60 + 59));
  children.push_back(std::make_unique<RandomCondition>(0.2));
  PollutionPipeline pipeline("bad_network_connection");
  pipeline.Add(std::make_unique<StandardPolluter>(
      "one_hour_delay", std::make_unique<DelayError>(3600),
      std::make_unique<AndCondition>(std::move(children)),
      std::vector<std::string>{}));
  return pipeline;
}

dq::ExpectationSuite NetworkDelaySuite() {
  dq::ExpectationSuite suite("bad_network_connection");
  suite.Expect<dq::ExpectColumnValuesToBeIncreasing>("Time",
                                                     /*strictly=*/true);
  return suite;
}

PollutionPipeline TemporalNoisePipeline(
    const std::vector<std::string>& attributes, double pi_max) {
  // Equation 3: multiplicative uniform noise whose bounds grow linearly
  // from 0 to pi_max over the stream. The derived temporal error scales
  // the U(0, pi_max) bounds by the stream-relative ramp.
  PollutionPipeline pipeline("temporally_increasing_noise");
  pipeline.Add(std::make_unique<StandardPolluter>(
      "ramped_uniform_noise",
      std::make_unique<DerivedTemporalError>(
          std::make_unique<UniformNoiseError>(0.0, pi_max),
          std::make_unique<StreamRampProfile>()),
      std::make_unique<AlwaysCondition>(), attributes));
  return pipeline;
}

PollutionPipeline TemporalScalePipeline(
    const std::vector<std::string>& attributes, double factor, double prior,
    int hold_hours) {
  // Equation 4: the polluter activates when BOTH the prior-probability
  // condition and the stream-relative ramp condition fire; an activation
  // persists for `hold_hours` hours (the paper's four-hour intervals).
  std::vector<ConditionPtr> children;
  children.push_back(std::make_unique<RandomCondition>(prior));
  children.push_back(std::make_unique<ProfileProbabilityCondition>(
      std::make_unique<StreamRampProfile>()));
  auto gate = std::make_unique<HoldCondition>(
      std::make_unique<AndCondition>(std::move(children)),
      static_cast<int64_t>(hold_hours) * kSecondsPerHour);
  PollutionPipeline pipeline("temporally_increasing_scale");
  pipeline.Add(std::make_unique<StandardPolluter>(
      "ramped_scale", std::make_unique<ScaleError>(factor), std::move(gate),
      attributes));
  return pipeline;
}

std::vector<std::string> AirQualityNumericAttributes() {
  return {"PM2_5", "PM10", "SO2", "NO2", "CO",
          "O3",    "TEMP", "PRES", "DEWP", "WSPM"};
}

const std::vector<std::string>& ScenarioNames() {
  static const std::vector<std::string> kNames = {
      "random_temporal", "software_update", "network_delay", "temporal_noise",
      "temporal_scale"};
  return kNames;
}

Result<ResolvedScenario> ResolveScenario(const std::string& name,
                                         uint64_t seed) {
  ResolvedScenario scenario;
  scenario.name = name;
  Result<TupleVector> tuples = Status::Internal("unset");
  if (name == "random_temporal" || name == "software_update" ||
      name == "network_delay") {
    data::WearableOptions options;
    if (seed != 0) options.seed = seed;
    tuples = data::GenerateWearable(options);
    scenario.schema = data::WearableSchema();
    if (name == "random_temporal") {
      scenario.pipeline = RandomTemporalErrorsPipeline();
      scenario.suite = RandomTemporalErrorsSuite();
    } else if (name == "software_update") {
      scenario.pipeline = SoftwareUpdatePipeline();
      scenario.suite = SoftwareUpdateSuite();
    } else {
      scenario.pipeline = NetworkDelayPipeline();
      scenario.suite = NetworkDelaySuite();
    }
  } else if (name == "temporal_noise" || name == "temporal_scale") {
    data::AirQualityOptions options;
    if (seed != 0) options.seed = seed;
    tuples = data::GenerateAirQuality(options);
    scenario.schema = data::AirQualitySchema();
    if (name == "temporal_noise") {
      scenario.pipeline =
          TemporalNoisePipeline(AirQualityNumericAttributes(), 0.5);
    } else {
      scenario.pipeline =
          TemporalScalePipeline(AirQualityNumericAttributes(), 10.0, 0.1, 24);
    }
  } else {
    return Status::InvalidArgument("unknown scenario: '" + name + "'");
  }
  ICEWAFL_ASSIGN_OR_RETURN(scenario.clean, std::move(tuples));
  if (scenario.clean.empty()) {
    return Status::Internal("scenario '" + name + "' generated no tuples");
  }
  ICEWAFL_ASSIGN_OR_RETURN(scenario.stream_start,
                           scenario.clean.front().GetTimestamp());
  ICEWAFL_ASSIGN_OR_RETURN(scenario.stream_end,
                           scenario.clean.back().GetTimestamp());
  return scenario;
}

Status StreamPipelineToSink(Source* source, const PollutionPipeline& prototype,
                            uint64_t seed, int parallelism, Sink* sink,
                            RuntimeStats* stats, obs::MetricRegistry* metrics,
                            obs::TraceRecorder* trace, Timestamp stream_start,
                            Timestamp stream_end) {
  RuntimeOptions options;
  options.parallelism = parallelism < 1 ? 1 : parallelism;
  options.metrics = metrics;
  options.trace = trace;
  PipelineRuntime runtime(options);
  ICEWAFL_RETURN_NOT_OK(runtime.Run(
      source,
      [&](int worker) {
        OperatorChain chain;
        auto polluter = std::make_unique<PolluterOperator>(
            prototype.Clone(), seed + static_cast<uint64_t>(worker),
            stream_start, stream_end);
        polluter->BindMetrics(metrics);
        chain.push_back(std::move(polluter));
        return chain;
      },
      sink));
  if (stats != nullptr) *stats = runtime.stats();
  return Status::OK();
}

Result<TupleVector> ApplyPipelineStreaming(
    Source* source, const PollutionPipeline& prototype, uint64_t seed,
    int parallelism, RuntimeStats* stats, obs::MetricRegistry* metrics,
    obs::TraceRecorder* trace, Timestamp stream_start, Timestamp stream_end) {
  VectorSink sink;
  ICEWAFL_RETURN_NOT_OK(StreamPipelineToSink(source, prototype, seed,
                                             parallelism, &sink, stats, metrics,
                                             trace, stream_start, stream_end));
  return sink.TakeTuples();
}

// ---------------------------------------------------------------------
// Versioned plan serving (DESIGN.md section 14)
// ---------------------------------------------------------------------

namespace {

/// Rows a serving segment produces between two probes of the newest
/// published plan. The probe is one mutex acquisition, so the interval
/// balances swap latency against per-row overhead; it also quantizes
/// cutover boundaries (a swap lands on a multiple of this many rows
/// into the segment, never between a probe and its batch).
constexpr uint64_t kCutoverCheckRows = 64;

/// Bounded source over `plan->clean[offset..]` that (a) paces emission
/// to `plan->tuples_per_sec` and (b) ends the stream early — reporting
/// the newer snapshot through cutover() — when a probe of `latest`
/// observes a version change. Ending the stream (instead of switching
/// pipelines in place) is what makes the cutover a clean boundary: the
/// runtime drains, every in-flight row finishes under the old plan, and
/// the next segment replays nothing.
class PlanSegmentSource : public Source {
 public:
  PlanSegmentSource(PlanPtr plan, uint64_t offset,
                    std::function<PlanPtr()> latest)
      : plan_(std::move(plan)),
        offset_(offset),
        pos_(offset),
        latest_(std::move(latest)) {}

  SchemaPtr schema() const override { return plan_->schema; }

  Result<bool> Next(Tuple* out) override {
    const TupleVector& clean = *plan_->clean;
    if (pos_ >= clean.size()) return false;
    if (latest_ != nullptr && consumed_ > 0 &&
        consumed_ % kCutoverCheckRows == 0) {
      PlanPtr newest = latest_();
      if (newest != nullptr && newest->version != plan_->version) {
        cutover_ = std::move(newest);
        return false;
      }
    }
    if (plan_->tuples_per_sec > 0) {
      if (consumed_ == 0) {
        segment_start_ = std::chrono::steady_clock::now();
      } else {
        std::this_thread::sleep_until(
            segment_start_ +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    static_cast<double>(consumed_) / plan_->tuples_per_sec)));
      }
    }
    *out = clean[pos_];
    ++pos_;
    ++consumed_;
    return true;
  }

  Status Reset() override {
    pos_ = offset_;
    consumed_ = 0;
    cutover_.reset();
    return Status::OK();
  }

  /// Clean rows emitted by this segment.
  uint64_t consumed() const { return consumed_; }
  /// The newer snapshot that ended the segment (null: stream end).
  const PlanPtr& cutover() const { return cutover_; }

 private:
  PlanPtr plan_;
  uint64_t offset_;
  uint64_t pos_;
  std::function<PlanPtr()> latest_;
  uint64_t consumed_ = 0;
  PlanPtr cutover_;
  std::chrono::steady_clock::time_point segment_start_{};
};

/// Sink decorator applying a plan's cleaner to the polluted stream as
/// it is produced: one sequential kAll CleanerOperator per segment
/// (fresh history state), so a serving segment's cleaned bytes equal an
/// offline sequential clean of the same polluted slice — the cleaner
/// extension of the cutover determinism contract.
class CleaningSink : public Sink {
 public:
  CleaningSink(const clean::CleaningRules& rules, Sink* inner)
      : op_(rules), emitter_(inner) {}

  Status Write(const Tuple& tuple) override {
    return op_.Process(tuple, &emitter_);
  }
  Status Write(Tuple&& tuple) override {
    return op_.Process(std::move(tuple), &emitter_);
  }
  Status Flush() override {
    ICEWAFL_RETURN_NOT_OK(op_.Finish(&emitter_));
    return emitter_.sink()->Flush();
  }

 private:
  class SinkEmitter : public Emitter {
   public:
    explicit SinkEmitter(Sink* sink) : sink_(sink) {}
    Status Emit(Tuple tuple) override { return sink_->Write(std::move(tuple)); }
    Sink* sink() const { return sink_; }

   private:
    Sink* sink_;
  };

  clean::CleanerOperator op_;
  SinkEmitter emitter_;
};

}  // namespace

Result<std::shared_ptr<PlanSnapshot>> BuildScenarioPlan(
    const std::string& name, uint64_t seed, int parallelism,
    double tuples_per_sec) {
  ICEWAFL_ASSIGN_OR_RETURN(ResolvedScenario scenario,
                           ResolveScenario(name, seed));
  Json config = scenario.pipeline.ToJson();
  auto clean =
      std::make_shared<const TupleVector>(std::move(scenario.clean));
  return MakePlanSnapshot(name, std::move(config), scenario.schema,
                          std::move(clean), std::move(scenario.pipeline), seed,
                          parallelism, scenario.stream_start,
                          scenario.stream_end, tuples_per_sec);
}

Result<std::shared_ptr<PlanSnapshot>> BuildPlanFromPipelineJson(
    const PlanSnapshot& base, const Json& pipeline_json) {
  // PipelineFromJson runs the installed AnalyzeOrDie hook and binds
  // against the session schema, so every rejection carries JSON-pointer
  // diagnostics and happens before a snapshot exists.
  ICEWAFL_ASSIGN_OR_RETURN(PollutionPipeline pipeline,
                           PipelineFromJson(pipeline_json, base.schema));
  return MakePlanSnapshot("custom", pipeline_json, base.schema, base.clean,
                          std::move(pipeline), base.seed, base.parallelism,
                          base.stream_start, base.stream_end,
                          base.tuples_per_sec);
}

Status ServePlanToSink(const PlanContext& ctx, Sink* sink) {
  PlanPtr plan = ctx.plan;
  if (plan == nullptr && ctx.latest != nullptr) plan = ctx.latest();
  if (plan == nullptr) {
    return Status::InvalidArgument("no plan snapshot to serve");
  }
  uint64_t offset = 0;
  while (true) {
    if (ctx.on_segment != nullptr) {
      ctx.on_segment(PlanSegment{plan->version, offset});
    }
    PlanSegmentSource source(plan, offset, ctx.latest);
    Sink* segment_sink = sink;
    std::optional<CleaningSink> cleaning;
    clean::CleaningRules rules;
    if (!plan->cleaner.is_null()) {
      // Compiled fresh per segment: cleaner history never crosses a
      // cutover, so each segment replays offline byte-identically.
      ICEWAFL_ASSIGN_OR_RETURN(
          rules, clean::RulesFromJson(plan->cleaner, plan->schema));
      cleaning.emplace(rules, sink);
      segment_sink = &cleaning.value();
    }
    ICEWAFL_RETURN_NOT_OK(StreamPipelineToSink(
        &source, plan->pipeline, plan->seed, plan->parallelism, segment_sink,
        /*stats=*/nullptr, /*metrics=*/nullptr, /*trace=*/nullptr,
        plan->stream_start, plan->stream_end));
    offset += source.consumed();
    if (source.cutover() == nullptr || offset >= plan->clean->size()) {
      return Status::OK();  // stream end (under whichever plan was last)
    }
    // Adopt the newest snapshot, not necessarily the one that tripped
    // the probe — back-to-back swaps collapse into one cutover.
    plan = ctx.latest != nullptr ? ctx.latest() : source.cutover();
    if (plan == nullptr) plan = source.cutover();
  }
}

Result<TupleVector> RunPlanSegmentOffline(const PlanSnapshot& plan,
                                          uint64_t start_row,
                                          uint64_t end_row) {
  const TupleVector& clean = *plan.clean;
  if (start_row > clean.size() || end_row > clean.size() ||
      start_row > end_row) {
    return Status::OutOfRange("segment [" + std::to_string(start_row) + ", " +
                              std::to_string(end_row) +
                              ") outside the clean stream of " +
                              std::to_string(clean.size()) + " rows");
  }
  TupleVector slice(clean.begin() + static_cast<ptrdiff_t>(start_row),
                    clean.begin() + static_cast<ptrdiff_t>(end_row));
  VectorSource source(plan.schema, std::move(slice));
  if (plan.cleaner.is_null()) {
    return ApplyPipelineStreaming(&source, plan.pipeline, plan.seed,
                                  plan.parallelism, /*stats=*/nullptr,
                                  /*metrics=*/nullptr, /*trace=*/nullptr,
                                  plan.stream_start, plan.stream_end);
  }
  // Mirror the serving path: pollute the slice, then clean it through a
  // fresh sequential kAll operator (exactly what CleaningSink does per
  // served segment).
  ICEWAFL_ASSIGN_OR_RETURN(clean::CleaningRules rules,
                           clean::RulesFromJson(plan.cleaner, plan.schema));
  VectorSink cleaned;
  CleaningSink cleaning(rules, &cleaned);
  ICEWAFL_RETURN_NOT_OK(StreamPipelineToSink(
      &source, plan.pipeline, plan.seed, plan.parallelism, &cleaning,
      /*stats=*/nullptr, /*metrics=*/nullptr, /*trace=*/nullptr,
      plan.stream_start, plan.stream_end));
  return cleaned.TakeTuples();
}

Status AnalyzeScenariosOrDie() {
  struct Artifact {
    const char* name;
    PollutionPipeline pipeline;
    std::optional<dq::ExpectationSuite> suite;
    SchemaPtr schema;
  };
  const SchemaPtr wearable = data::WearableSchema();
  const SchemaPtr airquality = data::AirQualitySchema();
  Artifact artifacts[] = {
      {"random_temporal", RandomTemporalErrorsPipeline(),
       RandomTemporalErrorsSuite(), wearable},
      {"software_update", SoftwareUpdatePipeline(), SoftwareUpdateSuite(),
       wearable},
      {"network_delay", NetworkDelayPipeline(), NetworkDelaySuite(),
       wearable},
      {"temporal_noise",
       TemporalNoisePipeline(AirQualityNumericAttributes(), 0.5),
       std::nullopt, airquality},
      {"temporal_scale",
       TemporalScalePipeline(AirQualityNumericAttributes(), 10.0, 0.1, 24),
       std::nullopt, airquality},
  };
  for (const Artifact& artifact : artifacts) {
    analysis::AnalyzeOptions options;
    options.schema = artifact.schema;
    Json suite_json;
    const Json* suite = nullptr;
    if (artifact.suite.has_value()) {
      suite_json = artifact.suite->ToJson();
      suite = &suite_json;
    }
    Diagnostics diags = analysis::AnalyzeArtifacts(
        artifact.pipeline.ToJson(), suite, options);
    if (diags.HasErrors()) {
      return Status::InvalidArgument(
          std::string("scenario '") + artifact.name +
          "' rejected by static analysis:\n" + diags.ToReport());
    }
  }
  return Status::OK();
}

}  // namespace scenarios
}  // namespace icewafl
