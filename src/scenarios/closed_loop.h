#ifndef ICEWAFL_SCENARIOS_CLOSED_LOOP_H_
#define ICEWAFL_SCENARIOS_CLOSED_LOOP_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "clean/cleaner.h"
#include "dq/monitor.h"
#include "obs/metrics.h"
#include "scenarios/scenarios.h"
#include "util/json.h"

namespace icewafl {
namespace scenarios {

/// \file
/// The closed pollute → detect → clean → re-validate loop (DESIGN.md
/// section 15): a scenario's pipeline pollutes the clean stream while
/// the PollutionLog tags every injected error; a stock cleaning
/// document detects and repairs; the repair log is scored against the
/// diff-filtered ground truth (per-polluter-family precision / recall /
/// F1 plus repair accuracy); and the windowed DQ monitor re-validates
/// the cleaned stream against the scenario's expectation suite.

/// \brief A scenario's stock cleaning setup: the rules document plus
/// the scoring map from rule label to the polluter families it is
/// designed to detect.
struct ScenarioCleaner {
  /// Cleaning document (clean::RulesFromJson shape).
  Json rules;
  /// Rule label -> polluter labels (families) it detects. A rule may
  /// detect several families (a NULL BPM was zeroed first, then
  /// nulled); an unmapped firing scores against no family.
  std::map<std::string, std::vector<std::string>> rule_families;
  /// Families injected by deterministic conditions — the ones the
  /// closed-loop acceptance gate (F1 >= 0.9) applies to. Families gated
  /// on RandomCondition are scored but not gated.
  std::set<std::string> deterministic_families;
};

/// \brief The stock cleaner for `scenario` ("software_update" or
/// "random_temporal"); InvalidArgument for scenarios without one
/// (temporal errors are not value-repairable).
Result<ScenarioCleaner> CleanerForScenario(const std::string& scenario);

/// \brief Detection score of one polluter family.
struct FamilyScore {
  std::string family;
  bool deterministic = false;
  /// Injections that actually changed a value (diff-filtered: a km->cm
  /// conversion of 0 km injects nothing observable).
  uint64_t ground_truth = 0;
  uint64_t true_positives = 0;
  uint64_t false_positives = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;

  Json ToJson() const;
};

struct ClosedLoopOptions {
  /// Dataset seed for ResolveScenario (0 keeps the dataset default —
  /// the stock scenario the acceptance thresholds are stated against).
  uint64_t dataset_seed = 0;
  /// Pollution seed (condition randomness).
  uint64_t seed = 42;
  /// Cleaning parallelism (output is byte-identical at every level).
  int parallelism = 1;
  /// Tumbling re-validation window (seconds of event time).
  int64_t window_seconds = 6 * 3600;
  int64_t allowed_lateness_seconds = 0;
};

/// \brief Everything one closed-loop run reports.
struct ClosedLoopReport {
  std::string scenario;
  uint64_t clean_rows = 0;
  uint64_t polluted_rows = 0;
  uint64_t cleaned_rows = 0;
  /// Value-changing ground-truth injections (all families).
  uint64_t injections = 0;
  /// Rule firings (repair-log entries).
  uint64_t detections = 0;
  std::vector<FamilyScore> families;
  /// Repairs whose repaired value landed within tolerance of the clean
  /// original (|r - c| <= 0.5 or within 10% of |c|; strings/NULL must
  /// match exactly). Dropped tuples are not scored.
  uint64_t repairs_scored = 0;
  uint64_t repairs_accurate = 0;
  double repair_accuracy = 0.0;
  /// Per-rule {scored, accurate} breakdown of the same scoring — a
  /// single headline number hides that statistical imputation on bursty
  /// signals (window_mean of a mostly-idle distance column) scores far
  /// worse than last_good on smooth ones (BPM).
  std::map<std::string, std::pair<uint64_t, uint64_t>> repairs_by_rule;
  clean::CleanStats clean_stats;
  /// Windowed suite verdicts before and after cleaning
  /// (dq::WindowedMonitor::ToJson()).
  Json monitor_polluted;
  Json monitor_cleaned;

  /// \brief Smallest F1 across deterministic families (1.0 when none).
  double MinDeterministicF1() const;

  Json ToJson() const;
};

/// \brief Runs the loop end-to-end for a scenario with a stock cleaner.
/// `metrics` (optional) receives the cleaner and window counter series;
/// `cleaned_out` (optional) receives the cleaned stream.
Result<ClosedLoopReport> RunClosedLoop(const std::string& scenario,
                                       const ClosedLoopOptions& options = {},
                                       obs::MetricRegistry* metrics = nullptr,
                                       TupleVector* cleaned_out = nullptr);

// ---------------------------------------------------------------------
// Serving integration: hot-swappable cleaners (PR 9 admin channel)
// ---------------------------------------------------------------------

/// \brief Clones `base` and installs (or, with a null `rules_json`,
/// removes) the cleaner document, validating it against the plan schema
/// first — a statically broken document never reaches a published
/// snapshot. The admin `set_cleaner` hook compiles through this.
Result<std::shared_ptr<PlanSnapshot>> BuildPlanWithCleaner(
    const PlanSnapshot& base, const Json& rules_json);

}  // namespace scenarios
}  // namespace icewafl

#endif  // ICEWAFL_SCENARIOS_CLOSED_LOOP_H_
