#include "core/condition.h"

#include <algorithm>

namespace icewafl {

bool AlwaysCondition::Evaluate(const Tuple&, PollutionContext*) noexcept {
  return true;
}

void AlwaysCondition::RefineMask(const Batch&, PollutionContext*,
                                 uint8_t*) noexcept {
  // Fires for every row: every pending row stays pending.
}

Json AlwaysCondition::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "always");
  return j;
}

ConditionPtr AlwaysCondition::Clone() const {
  return std::make_unique<AlwaysCondition>();
}

bool NeverCondition::Evaluate(const Tuple&, PollutionContext*) noexcept {
  return false;
}

void NeverCondition::RefineMask(const Batch& batch, PollutionContext*,
                                uint8_t* mask) noexcept {
  for (size_t r = 0; r < batch.rows(); ++r) mask[r] = 0;
}

Json NeverCondition::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "never");
  return j;
}

ConditionPtr NeverCondition::Clone() const {
  return std::make_unique<NeverCondition>();
}

RandomCondition::RandomCondition(double p)
    : p_(std::min(1.0, std::max(0.0, p))) {}

bool RandomCondition::Evaluate(const Tuple&, PollutionContext* ctx) noexcept {
  // Polluters install their private stream before evaluating; without
  // one there is no reproducible draw to make, so stay silent.
  if (ctx->rng == nullptr) return false;
  return ctx->rng->Bernoulli(p_);
}

void RandomCondition::RefineMask(const Batch& batch, PollutionContext* ctx,
                                 uint8_t* mask) noexcept {
  const size_t rows = batch.rows();
  if (ctx->rng == nullptr) {
    for (size_t r = 0; r < rows; ++r) mask[r] = 0;
    return;
  }
  // One draw per *pending* row, in row order — exactly the draws the
  // tuple path would make when short-circuiting reaches this node.
  for (size_t r = 0; r < rows; ++r) {
    if (mask[r] != 0 && !ctx->rng->Bernoulli(p_)) mask[r] = 0;
  }
}

Json RandomCondition::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "random");
  j.Set("p", p_);
  return j;
}

ConditionPtr RandomCondition::Clone() const {
  return std::make_unique<RandomCondition>(*this);
}

Result<CompareOp> ParseCompareOp(const std::string& text) {
  if (text == "==") return CompareOp::kEq;
  if (text == "!=") return CompareOp::kNe;
  if (text == "<") return CompareOp::kLt;
  if (text == "<=") return CompareOp::kLe;
  if (text == ">") return CompareOp::kGt;
  if (text == ">=") return CompareOp::kGe;
  if (text == "is_null") return CompareOp::kIsNull;
  if (text == "not_null") return CompareOp::kNotNull;
  return Status::ParseError("unknown comparison operator: '" + text + "'");
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kIsNull:
      return "is_null";
    case CompareOp::kNotNull:
      return "not_null";
  }
  return "?";
}

ValueCondition::ValueCondition(std::string attribute, CompareOp op,
                               Value operand)
    : attribute_(std::move(attribute)), op_(op), operand_(std::move(operand)) {}

Status ValueCondition::Bind(BindContext& ctx) {
  {
    BindContext::Scope scope(ctx, "attribute");
    ICEWAFL_ASSIGN_OR_RETURN(accessor_, ctx.Resolve(attribute_));
  }
  // Mirror of lint IW104: a numeric operand can never equal (or order
  // against) a string column and vice versa, so the condition is a
  // misconfiguration, not a per-tuple outcome.
  const ValueType column = accessor_.declared_type();
  const bool column_numeric =
      column == ValueType::kInt64 || column == ValueType::kDouble;
  if (operand_.is_numeric() && column == ValueType::kString) {
    BindContext::Scope scope(ctx, "operand");
    return ctx.Error(StatusCode::kTypeError,
                     "numeric operand compared against string column '" +
                         attribute_ + "'");
  }
  if (operand_.is_string() && column_numeric) {
    BindContext::Scope scope(ctx, "operand");
    return ctx.Error(StatusCode::kTypeError,
                     "string operand compared against numeric column '" +
                         attribute_ + "'");
  }
  bound_ = true;
  return Status::OK();
}

bool ValueCondition::Evaluate(const Tuple& tuple,
                              PollutionContext*) noexcept {
  if (!bound_) return false;
  return Decide(accessor_.at(tuple));
}

bool ValueCondition::Decide(const Value& v) const noexcept {
  switch (op_) {
    case CompareOp::kIsNull:
      return v.is_null();
    case CompareOp::kNotNull:
      return !v.is_null();
    default:
      break;
  }
  // NULL compares false against everything (SQL-like semantics) except
  // equality with an explicit NULL operand.
  if (v.is_null() || operand_.is_null()) {
    if (op_ == CompareOp::kEq) return v.is_null() && operand_.is_null();
    if (op_ == CompareOp::kNe) return v.is_null() != operand_.is_null();
    return false;
  }
  switch (op_) {
    case CompareOp::kEq:
      if (v.is_numeric() && operand_.is_numeric()) {
        return v.ToDouble().ValueOrDie() == operand_.ToDouble().ValueOrDie();
      }
      return v == operand_;
    case CompareOp::kNe:
      if (v.is_numeric() && operand_.is_numeric()) {
        return v.ToDouble().ValueOrDie() != operand_.ToDouble().ValueOrDie();
      }
      return !(v == operand_);
    case CompareOp::kLt:
      return v < operand_;
    case CompareOp::kLe:
      return !(operand_ < v);
    case CompareOp::kGt:
      return operand_ < v;
    case CompareOp::kGe:
      return !(v < operand_);
    default:
      return false;  // unreachable: null ops handled above
  }
}

void ValueCondition::RefineMask(const Batch& batch, PollutionContext*,
                                uint8_t* mask) noexcept {
  const size_t rows = batch.rows();
  if (!bound_) {
    for (size_t r = 0; r < rows; ++r) mask[r] = 0;
    return;
  }
  const Column& col = accessor_.column(batch);
  const ValueType declared = col.declared_type();
  const bool comparison =
      op_ != CompareOp::kIsNull && op_ != CompareOp::kNotNull;
  if (comparison && operand_.is_numeric() &&
      (declared == ValueType::kDouble || declared == ValueType::kInt64) &&
      col.divergent().empty()) {
    // Tight span loop: with no divergent entries, every row of a numeric
    // column is either in the typed buffer or NULL, and numeric-numeric
    // comparison is a plain double compare (Value::operator<).
    const double od = operand_.ToDouble().ValueOrDie();
    const double* doubles =
        declared == ValueType::kDouble ? col.doubles() : nullptr;
    const int64_t* int64s =
        declared == ValueType::kInt64 ? col.int64s() : nullptr;
    for (size_t r = 0; r < rows; ++r) {
      if (mask[r] == 0) continue;
      if (!col.IsValid(r)) {
        // NULL vs a non-null operand: only != fires.
        if (op_ != CompareOp::kNe) mask[r] = 0;
        continue;
      }
      const double v =
          doubles != nullptr ? doubles[r] : static_cast<double>(int64s[r]);
      bool fired = false;
      switch (op_) {
        case CompareOp::kEq: fired = v == od; break;
        case CompareOp::kNe: fired = v != od; break;
        case CompareOp::kLt: fired = v < od; break;
        case CompareOp::kLe: fired = v <= od; break;
        case CompareOp::kGt: fired = v > od; break;
        case CompareOp::kGe: fired = v >= od; break;
        default: break;  // unreachable: null ops excluded above
      }
      if (!fired) mask[r] = 0;
    }
    return;
  }
  for (size_t r = 0; r < rows; ++r) {
    if (mask[r] != 0 && !Decide(col.At(r))) mask[r] = 0;
  }
}

Json ValueCondition::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "value");
  j.Set("attribute", attribute_);
  j.Set("op", CompareOpName(op_));
  switch (operand_.type()) {
    case ValueType::kNull:
      j.Set("operand", Json());
      break;
    case ValueType::kBool:
      j.Set("operand", Json(operand_.AsBool()));
      break;
    case ValueType::kInt64:
      j.Set("operand", Json(operand_.AsInt64()));
      j.Set("operand_type", "int64");
      break;
    case ValueType::kDouble:
      j.Set("operand", Json(operand_.AsDouble()));
      break;
    case ValueType::kString:
      j.Set("operand", Json(operand_.AsString()));
      break;
  }
  return j;
}

ConditionPtr ValueCondition::Clone() const {
  // Copy construction preserves the bound accessor.
  return std::make_unique<ValueCondition>(*this);
}

TimeWindowCondition::TimeWindowCondition(Timestamp start, Timestamp end)
    : start_(start), end_(end) {}

ConditionPtr TimeWindowCondition::After(Timestamp start) {
  return std::make_unique<TimeWindowCondition>(start, INT64_MAX);
}

bool TimeWindowCondition::Evaluate(const Tuple&,
                                   PollutionContext* ctx) noexcept {
  return ctx->tau >= start_ && ctx->tau < end_;
}

void TimeWindowCondition::RefineMask(const Batch& batch, PollutionContext*,
                                     uint8_t* mask) noexcept {
  const Timestamp* tau = batch.event_times();
  for (size_t r = 0; r < batch.rows(); ++r) {
    if (mask[r] != 0 && !(tau[r] >= start_ && tau[r] < end_)) mask[r] = 0;
  }
}

Json TimeWindowCondition::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "time_window");
  // Open bounds are omitted: INT64_MIN/MAX do not survive the JSON
  // double representation, and the config loader defaults absent bounds
  // to fully open anyway.
  if (start_ != INT64_MIN) j.Set("start", static_cast<int64_t>(start_));
  if (end_ != INT64_MAX) j.Set("end", static_cast<int64_t>(end_));
  return j;
}

ConditionPtr TimeWindowCondition::Clone() const {
  return std::make_unique<TimeWindowCondition>(*this);
}

DailyWindowCondition::DailyWindowCondition(int start_minute, int end_minute)
    : start_minute_(start_minute), end_minute_(end_minute) {}

bool DailyWindowCondition::Evaluate(const Tuple&,
                                    PollutionContext* ctx) noexcept {
  const int minute = MinuteOfDay(ctx->tau);
  if (start_minute_ <= end_minute_) {
    return minute >= start_minute_ && minute <= end_minute_;
  }
  // Window wrapping midnight, e.g. 23:00-01:00.
  return minute >= start_minute_ || minute <= end_minute_;
}

void DailyWindowCondition::RefineMask(const Batch& batch, PollutionContext*,
                                      uint8_t* mask) noexcept {
  const Timestamp* tau = batch.event_times();
  for (size_t r = 0; r < batch.rows(); ++r) {
    if (mask[r] == 0) continue;
    const int minute = MinuteOfDay(tau[r]);
    const bool fired = start_minute_ <= end_minute_
                           ? minute >= start_minute_ && minute <= end_minute_
                           : minute >= start_minute_ || minute <= end_minute_;
    if (!fired) mask[r] = 0;
  }
}

Json DailyWindowCondition::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "daily_window");
  j.Set("start_minute", start_minute_);
  j.Set("end_minute", end_minute_);
  return j;
}

ConditionPtr DailyWindowCondition::Clone() const {
  return std::make_unique<DailyWindowCondition>(*this);
}

ProfileProbabilityCondition::ProfileProbabilityCondition(
    TimeProfilePtr profile)
    : profile_(std::move(profile)) {}

bool ProfileProbabilityCondition::Evaluate(const Tuple&,
                                           PollutionContext* ctx) noexcept {
  if (ctx->rng == nullptr) return false;
  return ctx->rng->Bernoulli(profile_->Evaluate(*ctx));
}

void ProfileProbabilityCondition::RefineMask(const Batch& batch,
                                             PollutionContext* ctx,
                                             uint8_t* mask) noexcept {
  const size_t rows = batch.rows();
  if (ctx->rng == nullptr) {
    for (size_t r = 0; r < rows; ++r) mask[r] = 0;
    return;
  }
  const Timestamp* tau = batch.event_times();
  for (size_t r = 0; r < rows; ++r) {
    if (mask[r] == 0) continue;
    // Profiles read the event time through the context; the RefineMask
    // contract lets us clobber ctx->tau row by row.
    ctx->tau = tau[r];
    if (!ctx->rng->Bernoulli(profile_->Evaluate(*ctx))) mask[r] = 0;
  }
}

Json ProfileProbabilityCondition::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "profile_probability");
  j.Set("profile", profile_->ToJson());
  return j;
}

ConditionPtr ProfileProbabilityCondition::Clone() const {
  return std::make_unique<ProfileProbabilityCondition>(profile_->Clone());
}

AndCondition::AndCondition(std::vector<ConditionPtr> children)
    : children_(std::move(children)) {}

Status AndCondition::Bind(BindContext& ctx) {
  BindContext::Scope scope(ctx, "children");
  for (size_t i = 0; i < children_.size(); ++i) {
    BindContext::Scope child_scope(ctx, i);
    ICEWAFL_RETURN_NOT_OK(children_[i]->Bind(ctx));
  }
  return Status::OK();
}

bool AndCondition::Evaluate(const Tuple& tuple,
                            PollutionContext* ctx) noexcept {
  for (const ConditionPtr& child : children_) {
    if (!child->Evaluate(tuple, ctx)) return false;
  }
  return true;
}

ColumnarSpec AndCondition::Columnar() const {
  ColumnarSpec spec{true, 0};
  for (const ConditionPtr& child : children_) {
    const ColumnarSpec c = child->Columnar();
    if (!c.supported) return {};
    spec.rng_consumers += c.rng_consumers;
  }
  return spec;
}

void AndCondition::RefineMask(const Batch& batch, PollutionContext* ctx,
                              uint8_t* mask) noexcept {
  // Sequential refinement replays short-circuit evaluation exactly: a
  // child only sees (and only draws for) the rows every earlier child
  // fired for.
  for (const ConditionPtr& child : children_) {
    child->RefineMask(batch, ctx, mask);
  }
}

Json AndCondition::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "and");
  Json arr = Json::MakeArray();
  for (const ConditionPtr& c : children_) arr.Append(c->ToJson());
  j.Set("children", std::move(arr));
  return j;
}

ConditionPtr AndCondition::Clone() const {
  std::vector<ConditionPtr> clones;
  clones.reserve(children_.size());
  for (const ConditionPtr& c : children_) clones.push_back(c->Clone());
  return std::make_unique<AndCondition>(std::move(clones));
}

OrCondition::OrCondition(std::vector<ConditionPtr> children)
    : children_(std::move(children)) {}

Status OrCondition::Bind(BindContext& ctx) {
  BindContext::Scope scope(ctx, "children");
  for (size_t i = 0; i < children_.size(); ++i) {
    BindContext::Scope child_scope(ctx, i);
    ICEWAFL_RETURN_NOT_OK(children_[i]->Bind(ctx));
  }
  return Status::OK();
}

bool OrCondition::Evaluate(const Tuple& tuple,
                           PollutionContext* ctx) noexcept {
  for (const ConditionPtr& child : children_) {
    if (child->Evaluate(tuple, ctx)) return true;
  }
  return false;
}

ColumnarSpec OrCondition::Columnar() const {
  ColumnarSpec spec{true, 0};
  for (const ConditionPtr& child : children_) {
    const ColumnarSpec c = child->Columnar();
    if (!c.supported) return {};
    spec.rng_consumers += c.rng_consumers;
  }
  return spec;
}

void OrCondition::RefineMask(const Batch& batch, PollutionContext* ctx,
                             uint8_t* mask) noexcept {
  // Disjunction with short-circuiting: a child is only consulted for
  // rows no earlier child fired for. `pending` tracks those; `mask`
  // accumulates the fired rows.
  const size_t rows = batch.rows();
  std::vector<uint8_t> pending(mask, mask + rows);
  std::vector<uint8_t> scratch(rows);
  for (size_t r = 0; r < rows; ++r) mask[r] = 0;
  for (const ConditionPtr& child : children_) {
    bool any_pending = false;
    for (size_t r = 0; r < rows; ++r) any_pending |= pending[r] != 0;
    if (!any_pending) break;
    scratch.assign(pending.begin(), pending.end());
    child->RefineMask(batch, ctx, scratch.data());
    for (size_t r = 0; r < rows; ++r) {
      if (scratch[r] != 0) {
        mask[r] = 1;
        pending[r] = 0;
      }
    }
  }
}

Json OrCondition::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "or");
  Json arr = Json::MakeArray();
  for (const ConditionPtr& c : children_) arr.Append(c->ToJson());
  j.Set("children", std::move(arr));
  return j;
}

ConditionPtr OrCondition::Clone() const {
  std::vector<ConditionPtr> clones;
  clones.reserve(children_.size());
  for (const ConditionPtr& c : children_) clones.push_back(c->Clone());
  return std::make_unique<OrCondition>(std::move(clones));
}

Result<WindowAgg> ParseWindowAgg(const std::string& text) {
  if (text == "mean") return WindowAgg::kMean;
  if (text == "min") return WindowAgg::kMin;
  if (text == "max") return WindowAgg::kMax;
  if (text == "sum") return WindowAgg::kSum;
  if (text == "count") return WindowAgg::kCount;
  return Status::ParseError("unknown window aggregate: '" + text + "'");
}

const char* WindowAggName(WindowAgg agg) {
  switch (agg) {
    case WindowAgg::kMean:
      return "mean";
    case WindowAgg::kMin:
      return "min";
    case WindowAgg::kMax:
      return "max";
    case WindowAgg::kSum:
      return "sum";
    case WindowAgg::kCount:
      return "count";
  }
  return "?";
}

WindowAggregateCondition::WindowAggregateCondition(std::string attribute,
                                                   int64_t window_seconds,
                                                   WindowAgg agg, CompareOp op,
                                                   double threshold)
    : attribute_(std::move(attribute)),
      window_seconds_(window_seconds),
      agg_(agg),
      op_(op),
      threshold_(threshold) {}

Status WindowAggregateCondition::Bind(BindContext& ctx) {
  if (op_ == CompareOp::kIsNull || op_ == CompareOp::kNotNull) {
    BindContext::Scope scope(ctx, "op");
    return ctx.Error(
        StatusCode::kInvalidArgument,
        "window_aggregate does not support null comparison operators");
  }
  BindContext::Scope scope(ctx, "attribute");
  ICEWAFL_ASSIGN_OR_RETURN(BoundAccessor accessor, ctx.Resolve(attribute_));
  // Mirror of lint IW104: only int64/double columns aggregate.
  const ValueType type = accessor.declared_type();
  if (type != ValueType::kInt64 && type != ValueType::kDouble) {
    return ctx.Error(StatusCode::kTypeError,
                     "window aggregate over non-numeric column '" +
                         attribute_ + "' (" + ValueTypeName(type) + ")");
  }
  accessor_ = accessor;
  bound_ = true;
  return Status::OK();
}

bool WindowAggregateCondition::Evaluate(const Tuple& tuple,
                                        PollutionContext* ctx) noexcept {
  if (!bound_) return false;
  // Ingest the current tuple's value into the window. Values whose
  // runtime type diverged from the declared column type (an upstream
  // polluter may have rewritten it) are skipped like NULLs.
  const Value& v = accessor_.at(tuple);
  if (v.is_numeric()) {
    const double x = v.is_double() ? v.AsDouble()
                                   : static_cast<double>(v.AsInt64());
    window_.emplace_back(ctx->tau, x);
    sum_ += x;
  }
  // Evict everything outside the half-open trailing window
  // (tau - window_seconds, tau].
  const Timestamp cutoff = ctx->tau - window_seconds_;
  while (!window_.empty() && window_.front().first <= cutoff) {
    sum_ -= window_.front().second;
    window_.pop_front();
  }

  double aggregate = 0.0;
  switch (agg_) {
    case WindowAgg::kCount:
      aggregate = static_cast<double>(window_.size());
      break;
    case WindowAgg::kSum:
      aggregate = sum_;
      break;
    case WindowAgg::kMean:
      if (window_.empty()) return false;
      aggregate = sum_ / static_cast<double>(window_.size());
      break;
    case WindowAgg::kMin:
    case WindowAgg::kMax: {
      if (window_.empty()) return false;
      aggregate = window_.front().second;
      for (const auto& [ts, value] : window_) {
        aggregate = agg_ == WindowAgg::kMin ? std::min(aggregate, value)
                                            : std::max(aggregate, value);
      }
      break;
    }
  }

  switch (op_) {
    case CompareOp::kEq:
      return aggregate == threshold_;
    case CompareOp::kNe:
      return aggregate != threshold_;
    case CompareOp::kLt:
      return aggregate < threshold_;
    case CompareOp::kLe:
      return aggregate <= threshold_;
    case CompareOp::kGt:
      return aggregate > threshold_;
    case CompareOp::kGe:
      return aggregate >= threshold_;
    default:
      return false;  // null ops rejected at Bind
  }
}

Json WindowAggregateCondition::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "window_aggregate");
  j.Set("attribute", attribute_);
  j.Set("window_seconds", window_seconds_);
  j.Set("agg", WindowAggName(agg_));
  j.Set("op", CompareOpName(op_));
  j.Set("threshold", threshold_);
  return j;
}

ConditionPtr WindowAggregateCondition::Clone() const {
  // Fresh clones start with an empty window but keep the bound accessor
  // so worker clones never re-resolve.
  auto clone = std::make_unique<WindowAggregateCondition>(
      attribute_, window_seconds_, agg_, op_, threshold_);
  clone->accessor_ = accessor_;
  clone->bound_ = bound_;
  return clone;
}

HoldCondition::HoldCondition(ConditionPtr inner, int64_t hold_seconds)
    : inner_(std::move(inner)), hold_seconds_(hold_seconds) {}

Status HoldCondition::Bind(BindContext& ctx) {
  BindContext::Scope scope(ctx, "inner");
  return inner_->Bind(ctx);
}

bool HoldCondition::Evaluate(const Tuple& tuple,
                             PollutionContext* ctx) noexcept {
  if (ctx->tau < hold_until_) return true;
  const bool fired = inner_->Evaluate(tuple, ctx);
  if (fired) hold_until_ = ctx->tau + hold_seconds_;
  return fired;
}

Json HoldCondition::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "hold");
  j.Set("hold_seconds", hold_seconds_);
  j.Set("inner", inner_->ToJson());
  return j;
}

ConditionPtr HoldCondition::Clone() const {
  // Fresh clones start without an active hold; the inner clone keeps
  // its bound state.
  return std::make_unique<HoldCondition>(inner_->Clone(), hold_seconds_);
}

NotCondition::NotCondition(ConditionPtr child) : child_(std::move(child)) {}

Status NotCondition::Bind(BindContext& ctx) {
  BindContext::Scope scope(ctx, "child");
  return child_->Bind(ctx);
}

bool NotCondition::Evaluate(const Tuple& tuple,
                            PollutionContext* ctx) noexcept {
  return !child_->Evaluate(tuple, ctx);
}

ColumnarSpec NotCondition::Columnar() const { return child_->Columnar(); }

void NotCondition::RefineMask(const Batch& batch, PollutionContext* ctx,
                              uint8_t* mask) noexcept {
  const size_t rows = batch.rows();
  std::vector<uint8_t> scratch(mask, mask + rows);
  child_->RefineMask(batch, ctx, scratch.data());
  // A pending row survives iff the child did NOT fire for it.
  for (size_t r = 0; r < rows; ++r) {
    if (scratch[r] != 0) mask[r] = 0;
  }
}

Json NotCondition::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "not");
  j.Set("child", child_->ToJson());
  return j;
}

ConditionPtr NotCondition::Clone() const {
  return std::make_unique<NotCondition>(child_->Clone());
}

}  // namespace icewafl
