#ifndef ICEWAFL_CORE_KEYED_POLLUTER_OPERATOR_H_
#define ICEWAFL_CORE_KEYED_POLLUTER_OPERATOR_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/pipeline.h"
#include "core/pollution_log.h"
#include "stream/operator.h"

namespace icewafl {

/// \brief Keyed pollution: an independent clone of the pipeline per key.
///
/// The analogue of Flink's keyed process functions sketched in the
/// paper's future work: the stream is logically partitioned by a key
/// attribute (e.g. the sensor/station id), and each partition gets its
/// own pipeline instance. Stateful error functions (frozen values) and
/// stateful conditions (holds, window aggregates) then evolve per key —
/// sensor A freezing must not freeze sensor B — while the per-key random
/// streams are derived deterministically from (seed, key), so the output
/// does not depend on how the keys interleave.
class KeyedPolluterOperator : public Operator {
 public:
  /// \param prototype pipeline cloned for every new key.
  /// \param key_attribute attribute whose rendered value partitions the
  ///   stream; NULL keys form their own partition.
  KeyedPolluterOperator(PollutionPipeline prototype,
                        std::string key_attribute, uint64_t seed,
                        Timestamp stream_start = 0, Timestamp stream_end = 0,
                        PollutionLog* log = nullptr);

  Status Process(Tuple tuple, Emitter* out) override;

  /// \brief Batched fast path: shares one context across the batch and
  /// resolves the per-key pipeline with a single hash lookup per tuple.
  Status ProcessBatch(TupleVector* batch, Emitter* out) override;

  /// \brief Number of distinct keys seen so far.
  size_t num_partitions() const { return partitions_.size(); }

  /// \brief Applied counts summed over all partitions.
  std::map<std::string, uint64_t> AppliedCounts() const;

 private:
  /// Transparent hashing so string keys probe the partition map from a
  /// string_view without materializing a std::string per tuple.
  struct KeyHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  Status PolluteOne(Tuple* tuple, PollutionContext* ctx);
  PollutionPipeline* PartitionFor(std::string_view key);

  PollutionPipeline prototype_;
  std::string key_attribute_;
  uint64_t seed_;
  Timestamp stream_start_;
  Timestamp stream_end_;
  PollutionLog* log_;
  TupleId next_id_ = 0;
  // Key column index, re-resolved whenever the tuple schema changes.
  const Schema* key_schema_ = nullptr;
  size_t key_index_ = 0;
  std::unordered_map<std::string, PollutionPipeline, KeyHash,
                     std::equal_to<>>
      partitions_;
};

}  // namespace icewafl

#endif  // ICEWAFL_CORE_KEYED_POLLUTER_OPERATOR_H_
