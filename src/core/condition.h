#ifndef ICEWAFL_CORE_CONDITION_H_
#define ICEWAFL_CORE_CONDITION_H_

#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/context.h"
#include "core/time_profile.h"
#include "stream/batch.h"
#include "stream/bind.h"
#include "stream/tuple.h"
#include "util/json.h"
#include "util/result.h"

namespace icewafl {

/// \brief Columnar capability of a condition subtree (DESIGN.md §13).
///
/// `supported` says whether RefineMask is implemented for the whole
/// subtree. `rng_consumers` counts the probabilistic nodes inside it:
/// the columnar driver stages condition evaluation before error
/// application, which preserves the tuple path's RNG draw order only
/// while the polluter has at most one RNG consumer in total (condition
/// tree plus error function) — more than one, and the interleaved
/// per-tuple draws cannot be replayed stage-by-stage, so the polluter
/// falls back to the tuple path.
struct ColumnarSpec {
  bool supported = false;
  int rng_consumers = 0;
};

/// \brief A pollution condition c(t, tau) (Section 2.2).
///
/// Determines per tuple whether the polluter's error is injected.
/// Following Schelter et al., conditions cover (i) completely-at-random,
/// (ii) depending on the values to be polluted, (iii) depending on other
/// values of the tuple; Icewafl adds (iv) temporal conditions on the event
/// time, and (v) composites conjoining any of the above.
///
/// Conditions follow the two-phase bind/run lifecycle (DESIGN.md §8):
/// Bind resolves attribute names against the schema once and surfaces
/// misconfiguration as a Status with a JSON-pointer path; Evaluate is the
/// noexcept per-tuple hot path with no error plumbing.
class Condition {
 public:
  virtual ~Condition() = default;

  /// \brief Compiles the condition against a schema: attribute names
  /// become column indices, type mismatches are rejected here. Default
  /// is a no-op for schema-independent conditions. Idempotent; callers
  /// may re-bind against a different schema.
  virtual Status Bind(BindContext& ctx) {
    (void)ctx;
    return Status::OK();
  }

  /// \brief Decides whether to pollute `tuple`. Schema-dependent
  /// conditions must be bound first; an unbound (or RNG-less random)
  /// condition conservatively returns false.
  virtual bool Evaluate(const Tuple& tuple,
                        PollutionContext* ctx) noexcept = 0;

  /// \brief Columnar capability of this subtree. Default: unsupported
  /// (stateful conditions like window aggregates and holds depend on
  /// tuple-at-a-time evaluation order across batches).
  virtual ColumnarSpec Columnar() const { return {}; }

  /// \brief Columnar twin of Evaluate: refines `mask` (one byte per
  /// batch row; non-zero = still pending) in place, clearing the byte of
  /// every pending row the condition does not fire for. Contract
  /// (byte-identity with the tuple path): pending rows are visited in
  /// ascending order, exactly the RNG draws Evaluate would make are
  /// made, and `ctx->tau` may be clobbered (the driver re-derives it).
  /// Only called when Columnar().supported; the default conservatively
  /// clears everything, mirroring Evaluate's unbound false.
  virtual void RefineMask(const Batch& batch, PollutionContext* ctx,
                          uint8_t* mask) noexcept {
    (void)ctx;
    for (size_t r = 0; r < batch.rows(); ++r) mask[r] = 0;
  }

  virtual std::string name() const = 0;
  virtual Json ToJson() const = 0;
  virtual std::unique_ptr<Condition> Clone() const = 0;
};

using ConditionPtr = std::unique_ptr<Condition>;

/// \brief Fires for every tuple.
class AlwaysCondition : public Condition {
 public:
  bool Evaluate(const Tuple& tuple, PollutionContext* ctx) noexcept override;
  ColumnarSpec Columnar() const override { return {true, 0}; }
  void RefineMask(const Batch& batch, PollutionContext* ctx,
                  uint8_t* mask) noexcept override;
  std::string name() const override { return "always"; }
  Json ToJson() const override;
  ConditionPtr Clone() const override;
};

/// \brief Never fires (disables a polluter without removing it).
class NeverCondition : public Condition {
 public:
  bool Evaluate(const Tuple& tuple, PollutionContext* ctx) noexcept override;
  ColumnarSpec Columnar() const override { return {true, 0}; }
  void RefineMask(const Batch& batch, PollutionContext* ctx,
                  uint8_t* mask) noexcept override;
  std::string name() const override { return "never"; }
  Json ToJson() const override;
  ConditionPtr Clone() const override;
};

/// \brief Completely-at-random condition: fires with probability p.
class RandomCondition : public Condition {
 public:
  explicit RandomCondition(double p);
  bool Evaluate(const Tuple& tuple, PollutionContext* ctx) noexcept override;
  ColumnarSpec Columnar() const override { return {true, 1}; }
  void RefineMask(const Batch& batch, PollutionContext* ctx,
                  uint8_t* mask) noexcept override;
  std::string name() const override { return "random"; }
  Json ToJson() const override;
  ConditionPtr Clone() const override;

  double probability() const { return p_; }

 private:
  double p_;
};

/// \brief Comparison operator for value conditions.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kIsNull,
  kNotNull,
};

/// \brief Parses "==", "!=", "<", "<=", ">", ">=", "is_null", "not_null".
Result<CompareOp> ParseCompareOp(const std::string& text);
const char* CompareOpName(CompareOp op);

/// \brief Value-dependent condition: compares one attribute of the input
/// tuple against a constant (e.g. "BPM > 100"). Whether this realizes
/// error mechanism (ii) or (iii) depends on whether the attribute is in
/// the polluter's target set.
class ValueCondition : public Condition {
 public:
  ValueCondition(std::string attribute, CompareOp op, Value operand = Value());

  /// Resolves the attribute and rejects operand/column type mismatches
  /// (a numeric operand against a string column and vice versa).
  Status Bind(BindContext& ctx) override;

  bool Evaluate(const Tuple& tuple, PollutionContext* ctx) noexcept override;
  ColumnarSpec Columnar() const override { return {true, 0}; }
  void RefineMask(const Batch& batch, PollutionContext* ctx,
                  uint8_t* mask) noexcept override;
  std::string name() const override { return "value"; }
  Json ToJson() const override;
  ConditionPtr Clone() const override;

 private:
  /// Post-bind comparison of one stored value against the operand; the
  /// single source of truth shared by Evaluate and RefineMask.
  bool Decide(const Value& v) const noexcept;

  std::string attribute_;
  CompareOp op_;
  Value operand_;
  BoundAccessor accessor_;
  bool bound_ = false;
};

/// \brief Temporal condition: fires while the event time lies in
/// [start, end) (absolute window). Either bound may be open
/// (INT64_MIN / INT64_MAX).
class TimeWindowCondition : public Condition {
 public:
  TimeWindowCondition(Timestamp start, Timestamp end);

  /// \brief Convenience: fires from `start` onward (e.g. the
  /// software-update date condition "Time >= 2016-02-27").
  static ConditionPtr After(Timestamp start);

  bool Evaluate(const Tuple& tuple, PollutionContext* ctx) noexcept override;
  ColumnarSpec Columnar() const override { return {true, 0}; }
  void RefineMask(const Batch& batch, PollutionContext* ctx,
                  uint8_t* mask) noexcept override;
  std::string name() const override { return "time_window"; }
  Json ToJson() const override;
  ConditionPtr Clone() const override;

 private:
  Timestamp start_;
  Timestamp end_;
};

/// \brief Recurring daily window on the wall clock: fires when the event
/// time's minute-of-day lies in [start_minute, end_minute] (inclusive;
/// e.g. 13:00-14:59 -> [780, 899]).
class DailyWindowCondition : public Condition {
 public:
  DailyWindowCondition(int start_minute, int end_minute);
  bool Evaluate(const Tuple& tuple, PollutionContext* ctx) noexcept override;
  ColumnarSpec Columnar() const override { return {true, 0}; }
  void RefineMask(const Batch& batch, PollutionContext* ctx,
                  uint8_t* mask) noexcept override;
  std::string name() const override { return "daily_window"; }
  Json ToJson() const override;
  ConditionPtr Clone() const override;

 private:
  int start_minute_;
  int end_minute_;
};

/// \brief Time-varying random condition: fires with probability
/// profile(tau) (e.g. the sinusoidal daily pattern of Experiment 3.1.1 or
/// the ramp of Equation 4).
class ProfileProbabilityCondition : public Condition {
 public:
  explicit ProfileProbabilityCondition(TimeProfilePtr profile);
  bool Evaluate(const Tuple& tuple, PollutionContext* ctx) noexcept override;
  ColumnarSpec Columnar() const override { return {true, 1}; }
  void RefineMask(const Batch& batch, PollutionContext* ctx,
                  uint8_t* mask) noexcept override;
  std::string name() const override { return "profile_probability"; }
  Json ToJson() const override;
  ConditionPtr Clone() const override;

 private:
  TimeProfilePtr profile_;
};

/// \brief Conjunction: fires iff all children fire. Children are
/// evaluated in order with short-circuiting.
class AndCondition : public Condition {
 public:
  explicit AndCondition(std::vector<ConditionPtr> children);
  Status Bind(BindContext& ctx) override;
  bool Evaluate(const Tuple& tuple, PollutionContext* ctx) noexcept override;
  ColumnarSpec Columnar() const override;
  void RefineMask(const Batch& batch, PollutionContext* ctx,
                  uint8_t* mask) noexcept override;
  std::string name() const override { return "and"; }
  Json ToJson() const override;
  ConditionPtr Clone() const override;

 private:
  std::vector<ConditionPtr> children_;
};

/// \brief Disjunction: fires iff any child fires (short-circuiting).
class OrCondition : public Condition {
 public:
  explicit OrCondition(std::vector<ConditionPtr> children);
  Status Bind(BindContext& ctx) override;
  bool Evaluate(const Tuple& tuple, PollutionContext* ctx) noexcept override;
  ColumnarSpec Columnar() const override;
  void RefineMask(const Batch& batch, PollutionContext* ctx,
                  uint8_t* mask) noexcept override;
  std::string name() const override { return "or"; }
  Json ToJson() const override;
  ConditionPtr Clone() const override;

 private:
  std::vector<ConditionPtr> children_;
};

/// \brief Aggregation operator for windowed conditions.
enum class WindowAgg {
  kMean,
  kMin,
  kMax,
  kSum,
  kCount,
};

Result<WindowAgg> ParseWindowAgg(const std::string& text);
const char* WindowAggName(WindowAgg agg);

/// \brief Stream-state condition: compares an aggregate of an attribute
/// over the trailing event-time window against a threshold (e.g. the
/// motivating example's "if Avg(Temp) > 20").
///
/// This realizes the paper's future-work extension of the pollution
/// model to "time-dependent states of the data stream": the condition
/// maintains the window incrementally as tuples flow past, so errors can
/// depend on the stream's recent history rather than only the current
/// tuple. NULL and non-numeric values are skipped; an empty window never
/// fires (except for kCount, which compares 0).
class WindowAggregateCondition : public Condition {
 public:
  /// \param op one of ==, !=, <, <=, >, >= (null checks are invalid and
  ///   rejected by Bind; the config loader rejects them at parse time).
  WindowAggregateCondition(std::string attribute, int64_t window_seconds,
                           WindowAgg agg, CompareOp op, double threshold);

  /// Resolves the attribute (which must be a numeric column) and
  /// rejects null comparison operators.
  Status Bind(BindContext& ctx) override;

  bool Evaluate(const Tuple& tuple, PollutionContext* ctx) noexcept override;
  std::string name() const override { return "window_aggregate"; }
  Json ToJson() const override;
  ConditionPtr Clone() const override;

 private:
  std::string attribute_;
  int64_t window_seconds_;
  WindowAgg agg_;
  CompareOp op_;
  double threshold_;
  BoundAccessor accessor_;
  bool bound_ = false;
  // Trailing window of (event time, value); sum_ kept incrementally.
  std::deque<std::pair<Timestamp, double>> window_;
  double sum_ = 0.0;
};

/// \brief Stateful temporal dependency: once the inner condition fires,
/// this condition stays active for `hold_seconds` of event time.
///
/// Models errors that persist for an interval after a trigger (e.g. the
/// paper's scale errors applied "for four-hour intervals"): a cheap
/// per-tuple trigger activates the polluter for a whole window. The
/// inner condition is not consulted while a hold is active.
class HoldCondition : public Condition {
 public:
  HoldCondition(ConditionPtr inner, int64_t hold_seconds);
  Status Bind(BindContext& ctx) override;
  bool Evaluate(const Tuple& tuple, PollutionContext* ctx) noexcept override;
  std::string name() const override { return "hold"; }
  Json ToJson() const override;
  ConditionPtr Clone() const override;

 private:
  ConditionPtr inner_;
  int64_t hold_seconds_;
  Timestamp hold_until_ = INT64_MIN;
};

/// \brief Negation of a child condition.
class NotCondition : public Condition {
 public:
  explicit NotCondition(ConditionPtr child);
  Status Bind(BindContext& ctx) override;
  bool Evaluate(const Tuple& tuple, PollutionContext* ctx) noexcept override;
  ColumnarSpec Columnar() const override;
  void RefineMask(const Batch& batch, PollutionContext* ctx,
                  uint8_t* mask) noexcept override;
  std::string name() const override { return "not"; }
  Json ToJson() const override;
  ConditionPtr Clone() const override;

 private:
  ConditionPtr child_;
};

}  // namespace icewafl

#endif  // ICEWAFL_CORE_CONDITION_H_
