#ifndef ICEWAFL_CORE_CONTEXT_H_
#define ICEWAFL_CORE_CONTEXT_H_

#include "util/rng.h"
#include "util/time_util.h"

namespace icewafl {

/// \brief Per-tuple evaluation context handed to conditions and error
/// functions.
///
/// Captures the temporal arguments of the pollution model (Section 2.2):
/// the event time tau of the current tuple plus the stream bounds tau_0 /
/// tau_n needed by stream-relative profiles (Equations 3 and 4 of the
/// paper). `severity` in [0, 1] is set by derived temporal errors to
/// modulate an otherwise static error over time (Figure 3, right);
/// standalone static errors run at severity 1.
struct PollutionContext {
  /// Event time tau of the current tuple (the immutable replica assigned
  /// in the preparation step, not the possibly polluted timestamp).
  Timestamp tau = 0;

  /// Event time of the first tuple of the stream (tau_0).
  Timestamp stream_start = 0;

  /// Event time of the last tuple (tau_n). For unbounded streams where it
  /// is unknown, equals stream_start; stream-relative profiles then
  /// evaluate to 0.
  Timestamp stream_end = 0;

  /// Severity multiplier in [0, 1] applied by change patterns.
  double severity = 1.0;

  /// Random source of the currently executing polluter. Each polluter
  /// owns an independently forked generator so that pipeline composition
  /// does not perturb sibling draws (reproducibility, Section 2.3).
  Rng* rng = nullptr;
};

}  // namespace icewafl

#endif  // ICEWAFL_CORE_CONTEXT_H_
