#ifndef ICEWAFL_CORE_ERROR_FUNCTION_H_
#define ICEWAFL_CORE_ERROR_FUNCTION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/context.h"
#include "stream/bind.h"
#include "stream/tuple.h"
#include "util/json.h"
#include "util/result.h"

namespace icewafl {

/// \brief Value domain an error function operates on; drives both the
/// static analyzer's schema-compatibility checks (analysis/analyzer.h)
/// and the default bind-time type validation.
enum class ErrorDomain {
  /// Works on values of any type (missing_value, set_constant, ...).
  kAnyValue = 0,
  /// Requires int64/double targets; rejected at Bind otherwise.
  kNumeric,
  /// Requires string targets; rejected at Bind otherwise.
  kString,
  /// Targets tuple metadata (arrival/event time), not attribute values.
  kMetadata,
};

/// \brief Static self-description of an error function.
///
/// The introspection surface the static analyzer uses to reason about a
/// configured error without executing it: which column types it is
/// compatible with, whether it consumes randomness (determinism audits),
/// and whether it perturbs temporal metadata (post-union sort checks).
struct ErrorTraits {
  ErrorDomain domain = ErrorDomain::kAnyValue;
  /// Draws from the polluter's random stream when applied.
  bool uses_rng = false;
  /// Rewrites the timestamp attribute value (timestamp_shift/jitter).
  bool mutates_timestamp = false;
  /// Postpones the tuple's arrival time (delay).
  bool delays_arrival = false;
};

/// \brief An error function e : dom(A) x 2^A x T -> dom(A) (Section 2.2).
///
/// Applies a specific data error to the targeted attributes of a tuple.
/// Implementations must honor `ctx.severity` in [0, 1] where meaningful
/// (severity scales error magnitude for continuous errors and acts as an
/// application probability for discrete ones); this is what turns a
/// static error into a derived temporal error when combined with a change
/// pattern (Figure 3).
///
/// Error functions follow the two-phase bind/run lifecycle (DESIGN.md
/// §8): Bind validates the target columns against the schema once (type
/// mismatches and arity errors become a Status with a JSON-pointer
/// path); Apply/Observe are the per-tuple hot path with no error
/// plumbing. Values whose runtime type diverged from the declared column
/// type (an upstream polluter may have rewritten them) are skipped like
/// NULLs.
class ErrorFunction {
 public:
  virtual ~ErrorFunction() = default;

  /// \brief Validates the resolved target columns against the schema.
  /// The default implementation enforces the declared ErrorDomain:
  /// kNumeric errors require int64/double columns, kString errors
  /// require string columns. Overrides add arity/parameter checks
  /// (swap_attributes, incorrect_category). `attrs` are the resolved
  /// indices of the polluter's target attributes, in config order.
  virtual Status Bind(BindContext& ctx, const std::vector<size_t>& attrs);

  /// \brief Transforms `*tuple` in place. `attrs` are the resolved indices
  /// of the polluter's target attributes A_p (may be empty for errors
  /// targeting tuple metadata, e.g. DelayError). Runs only after a
  /// successful Bind; values of unexpected runtime type are skipped.
  virtual void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                     PollutionContext* ctx) = 0;

  /// \brief Observation hook invoked for every tuple that passes the
  /// owning polluter, whether or not the condition fires. Stateful errors
  /// (FrozenValueError) use it to track the evolving clean stream.
  virtual void Observe(const Tuple& tuple, const std::vector<size_t>& attrs) {
    (void)tuple;
    (void)attrs;
  }

  /// \brief True when ApplyColumnar is implemented (DESIGN.md §13).
  /// Columnar errors must be stateless per tuple: a no-op Observe and an
  /// Apply that factors into independent per-row work.
  virtual bool SupportsColumnar() const { return false; }

  /// \brief Columnar twin of Apply: for every row with mask[row] != 0,
  /// in ascending row order, transforms the batch's target columns,
  /// making exactly the RNG draws Apply would make for that tuple (the
  /// byte-identity contract with the tuple path). Only called when
  /// SupportsColumnar(); the default is a no-op.
  virtual void ApplyColumnar(Batch* batch, const std::vector<size_t>& attrs,
                             const uint8_t* mask, PollutionContext* ctx) {
    (void)batch;
    (void)attrs;
    (void)mask;
    (void)ctx;
  }

  /// \brief Stable identifier used in configs and logs.
  virtual std::string name() const = 0;

  /// \brief Static traits for the analyzer; see ErrorTraits.
  virtual ErrorTraits Describe() const { return {}; }

  /// \brief Config/log representation (round-trips through config.h).
  virtual Json ToJson() const = 0;

  /// \brief Deep copy (fresh state); required for parallel sub-pipelines.
  virtual std::unique_ptr<ErrorFunction> Clone() const = 0;
};

using ErrorFunctionPtr = std::unique_ptr<ErrorFunction>;

}  // namespace icewafl

#endif  // ICEWAFL_CORE_ERROR_FUNCTION_H_
