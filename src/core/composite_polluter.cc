#include "core/composite_polluter.h"

namespace icewafl {

CompositePolluter::CompositePolluter(std::string label, ConditionPtr condition)
    : Polluter(std::move(label)), condition_(std::move(condition)), rng_(0) {}

void CompositePolluter::Register(PolluterPtr child) {
  children_.push_back(std::move(child));
}

Status CompositePolluter::Bind(BindContext& ctx) {
  bound_schema_ = nullptr;
  {
    BindContext::Scope condition_scope(ctx, "condition");
    ICEWAFL_RETURN_NOT_OK(condition_->Bind(ctx));
  }
  {
    BindContext::Scope children_scope(ctx, "children");
    for (size_t i = 0; i < children_.size(); ++i) {
      BindContext::Scope index_scope(ctx, i);
      ICEWAFL_RETURN_NOT_OK(children_[i]->Bind(ctx));
    }
  }
  bound_schema_ = &ctx.schema();
  return Status::OK();
}

void CompositePolluter::Seed(Rng* parent) {
  rng_ = parent->Fork();
  for (const PolluterPtr& child : children_) child->Seed(&rng_);
}

void CompositePolluter::ResetStats() {
  Polluter::ResetStats();
  for (const PolluterPtr& child : children_) child->ResetStats();
}

Json CompositePolluter::ChildrenToJson() const {
  Json arr = Json::MakeArray();
  for (const PolluterPtr& child : children_) arr.Append(child->ToJson());
  return arr;
}

std::vector<PolluterPtr> CompositePolluter::CloneChildren() const {
  std::vector<PolluterPtr> clones;
  clones.reserve(children_.size());
  for (const PolluterPtr& child : children_) clones.push_back(child->Clone());
  return clones;
}

SequentialPolluter::SequentialPolluter(std::string label,
                                       ConditionPtr condition)
    : CompositePolluter(std::move(label), std::move(condition)) {}

Status SequentialPolluter::Pollute(Tuple* tuple, PollutionContext* ctx,
                                   PollutionLog* log) {
  ICEWAFL_RETURN_NOT_OK(EnsureBound(*tuple));
  Rng* const outer_rng = ctx->rng;
  ctx->rng = &rng_;
  const bool gate = condition_->Evaluate(*tuple, ctx);
  ctx->rng = outer_rng;
  if (!gate) return Status::OK();
  ++applied_count_;
  for (const PolluterPtr& child : children_) {
    ICEWAFL_RETURN_NOT_OK(child->Pollute(tuple, ctx, log));
  }
  return Status::OK();
}

Json SequentialPolluter::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "sequential");
  j.Set("label", label_);
  j.Set("condition", condition_->ToJson());
  j.Set("children", ChildrenToJson());
  return j;
}

PolluterPtr SequentialPolluter::Clone() const {
  auto clone =
      std::make_unique<SequentialPolluter>(label_, condition_->Clone());
  for (const PolluterPtr& child : children_) {
    clone->Register(child->Clone());
  }
  clone->bound_schema_ = bound_schema_;
  return clone;
}

ExclusivePolluter::ExclusivePolluter(std::string label, ConditionPtr condition)
    : CompositePolluter(std::move(label), std::move(condition)) {}

void ExclusivePolluter::RegisterWeighted(PolluterPtr child, double weight) {
  // Keep weights_ aligned with children_: pad any children registered via
  // the unweighted Register() with weight 1.
  while (weights_.size() < children_.size()) weights_.push_back(1.0);
  children_.push_back(std::move(child));
  weights_.push_back(weight);
}

double ExclusivePolluter::TotalWeight() const {
  double total = 0.0;
  for (size_t i = 0; i < children_.size(); ++i) {
    total += i < weights_.size() ? weights_[i] : 1.0;
  }
  return total;
}

Status ExclusivePolluter::Bind(BindContext& ctx) {
  if (!children_.empty() && TotalWeight() <= 0.0) {
    BindContext::Scope weights_scope(ctx, "weights");
    return ctx.Error(StatusCode::kInvalidArgument,
                     "exclusive polluter '" + label_ +
                         "': total child weight must be > 0");
  }
  return CompositePolluter::Bind(ctx);
}

Status ExclusivePolluter::Pollute(Tuple* tuple, PollutionContext* ctx,
                                  PollutionLog* log) {
  if (children_.empty()) return Status::OK();
  ICEWAFL_RETURN_NOT_OK(EnsureBound(*tuple));
  Rng* const outer_rng = ctx->rng;
  ctx->rng = &rng_;
  Status st = [&]() -> Status {
    if (!condition_->Evaluate(*tuple, ctx)) return Status::OK();
    ++applied_count_;
    // Weighted draw among children (unweighted children count as 1).
    const double total = TotalWeight();
    if (total <= 0.0) {
      return Status::InvalidArgument("exclusive polluter '" + label_ +
                                     "': total child weight must be > 0");
    }
    double pick = rng_.Uniform(0.0, total);
    size_t chosen = children_.size() - 1;
    for (size_t i = 0; i < children_.size(); ++i) {
      pick -= i < weights_.size() ? weights_[i] : 1.0;
      if (pick < 0.0) {
        chosen = i;
        break;
      }
    }
    return children_[chosen]->Pollute(tuple, ctx, log);
  }();
  ctx->rng = outer_rng;
  return st;
}

Json ExclusivePolluter::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "exclusive");
  j.Set("label", label_);
  j.Set("condition", condition_->ToJson());
  j.Set("children", ChildrenToJson());
  Json w = Json::MakeArray();
  for (size_t i = 0; i < children_.size(); ++i) {
    w.Append(Json(i < weights_.size() ? weights_[i] : 1.0));
  }
  j.Set("weights", std::move(w));
  return j;
}

PolluterPtr ExclusivePolluter::Clone() const {
  auto clone = std::make_unique<ExclusivePolluter>(label_, condition_->Clone());
  for (size_t i = 0; i < children_.size(); ++i) {
    clone->RegisterWeighted(children_[i]->Clone(),
                            i < weights_.size() ? weights_[i] : 1.0);
  }
  clone->bound_schema_ = bound_schema_;
  return clone;
}

}  // namespace icewafl
