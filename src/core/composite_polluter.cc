#include "core/composite_polluter.h"

namespace icewafl {

CompositePolluter::CompositePolluter(std::string label, ConditionPtr condition)
    : Polluter(std::move(label)), condition_(std::move(condition)), rng_(0) {}

void CompositePolluter::Register(PolluterPtr child) {
  children_.push_back(std::move(child));
}

void CompositePolluter::Seed(Rng* parent) {
  rng_ = parent->Fork();
  for (const PolluterPtr& child : children_) child->Seed(&rng_);
}

void CompositePolluter::ResetStats() {
  Polluter::ResetStats();
  for (const PolluterPtr& child : children_) child->ResetStats();
}

Json CompositePolluter::ChildrenToJson() const {
  Json arr = Json::MakeArray();
  for (const PolluterPtr& child : children_) arr.Append(child->ToJson());
  return arr;
}

std::vector<PolluterPtr> CompositePolluter::CloneChildren() const {
  std::vector<PolluterPtr> clones;
  clones.reserve(children_.size());
  for (const PolluterPtr& child : children_) clones.push_back(child->Clone());
  return clones;
}

SequentialPolluter::SequentialPolluter(std::string label,
                                       ConditionPtr condition)
    : CompositePolluter(std::move(label), std::move(condition)) {}

Status SequentialPolluter::Pollute(Tuple* tuple, PollutionContext* ctx,
                                   PollutionLog* log) {
  Rng* const outer_rng = ctx->rng;
  ctx->rng = &rng_;
  auto gate = condition_->Evaluate(*tuple, ctx);
  ctx->rng = outer_rng;
  if (!gate.ok()) return gate.status();
  if (!gate.ValueOrDie()) return Status::OK();
  ++applied_count_;
  for (const PolluterPtr& child : children_) {
    ICEWAFL_RETURN_NOT_OK(child->Pollute(tuple, ctx, log));
  }
  return Status::OK();
}

Json SequentialPolluter::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "sequential");
  j.Set("label", label_);
  j.Set("condition", condition_->ToJson());
  j.Set("children", ChildrenToJson());
  return j;
}

PolluterPtr SequentialPolluter::Clone() const {
  auto clone =
      std::make_unique<SequentialPolluter>(label_, condition_->Clone());
  for (const PolluterPtr& child : children_) {
    clone->Register(child->Clone());
  }
  return clone;
}

ExclusivePolluter::ExclusivePolluter(std::string label, ConditionPtr condition)
    : CompositePolluter(std::move(label), std::move(condition)) {}

void ExclusivePolluter::RegisterWeighted(PolluterPtr child, double weight) {
  // Keep weights_ aligned with children_: pad any children registered via
  // the unweighted Register() with weight 1.
  while (weights_.size() < children_.size()) weights_.push_back(1.0);
  children_.push_back(std::move(child));
  weights_.push_back(weight);
}

Status ExclusivePolluter::Pollute(Tuple* tuple, PollutionContext* ctx,
                                  PollutionLog* log) {
  if (children_.empty()) return Status::OK();
  Rng* const outer_rng = ctx->rng;
  ctx->rng = &rng_;
  Status st = [&]() -> Status {
    ICEWAFL_ASSIGN_OR_RETURN(bool fired, condition_->Evaluate(*tuple, ctx));
    if (!fired) return Status::OK();
    ++applied_count_;
    // Weighted draw among children (unweighted children count as 1).
    double total = 0.0;
    for (size_t i = 0; i < children_.size(); ++i) {
      total += i < weights_.size() ? weights_[i] : 1.0;
    }
    if (total <= 0.0) {
      return Status::InvalidArgument("exclusive polluter '" + label_ +
                                     "': total child weight must be > 0");
    }
    double pick = rng_.Uniform(0.0, total);
    size_t chosen = children_.size() - 1;
    for (size_t i = 0; i < children_.size(); ++i) {
      pick -= i < weights_.size() ? weights_[i] : 1.0;
      if (pick < 0.0) {
        chosen = i;
        break;
      }
    }
    return children_[chosen]->Pollute(tuple, ctx, log);
  }();
  ctx->rng = outer_rng;
  return st;
}

Json ExclusivePolluter::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "exclusive");
  j.Set("label", label_);
  j.Set("condition", condition_->ToJson());
  j.Set("children", ChildrenToJson());
  Json w = Json::MakeArray();
  for (size_t i = 0; i < children_.size(); ++i) {
    w.Append(Json(i < weights_.size() ? weights_[i] : 1.0));
  }
  j.Set("weights", std::move(w));
  return j;
}

PolluterPtr ExclusivePolluter::Clone() const {
  auto clone = std::make_unique<ExclusivePolluter>(label_, condition_->Clone());
  for (size_t i = 0; i < children_.size(); ++i) {
    clone->RegisterWeighted(children_[i]->Clone(),
                            i < weights_.size() ? weights_[i] : 1.0);
  }
  return clone;
}

}  // namespace icewafl
