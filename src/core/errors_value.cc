#include "core/errors_value.h"

#include <cctype>
#include <utility>

namespace icewafl {

namespace {

bool SeverityGate(PollutionContext* ctx) {
  if (ctx->severity >= 1.0) return true;
  if (ctx->rng == nullptr) return ctx->severity > 0.5;
  return ctx->rng->Bernoulli(ctx->severity);
}

// Misconfiguration is rejected at Bind; the per-tuple loops below keep
// only a cheap range guard (for direct unbound Apply calls) and skip
// values whose runtime type diverged from the declared column type.
bool InRange(const Tuple& tuple, size_t idx) {
  return idx < tuple.num_values();
}

}  // namespace

void MissingValueError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                              PollutionContext* ctx) {
  if (!SeverityGate(ctx)) return;
  for (size_t idx : attrs) {
    if (InRange(*tuple, idx)) tuple->set_value(idx, Value::Null());
  }
}

void MissingValueError::ApplyColumnar(Batch* batch,
                                      const std::vector<size_t>& attrs,
                                      const uint8_t* mask,
                                      PollutionContext* ctx) {
  const size_t rows = batch->rows();
  for (size_t r = 0; r < rows; ++r) {
    if (mask[r] == 0 || !SeverityGate(ctx)) continue;
    for (size_t idx : attrs) {
      if (idx < batch->num_columns()) batch->column(idx).SetNull(r);
    }
  }
}

Json MissingValueError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "missing_value");
  return j;
}

ErrorFunctionPtr MissingValueError::Clone() const {
  return std::make_unique<MissingValueError>();
}

SetConstantError::SetConstantError(Value value) : value_(std::move(value)) {}

void SetConstantError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                             PollutionContext* ctx) {
  if (!SeverityGate(ctx)) return;
  for (size_t idx : attrs) {
    if (InRange(*tuple, idx)) tuple->set_value(idx, value_);
  }
}

void SetConstantError::ApplyColumnar(Batch* batch,
                                     const std::vector<size_t>& attrs,
                                     const uint8_t* mask,
                                     PollutionContext* ctx) {
  const size_t rows = batch->rows();
  for (size_t r = 0; r < rows; ++r) {
    if (mask[r] == 0 || !SeverityGate(ctx)) continue;
    for (size_t idx : attrs) {
      if (idx < batch->num_columns()) batch->column(idx).Set(r, value_);
    }
  }
}

Json SetConstantError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "set_constant");
  switch (value_.type()) {
    case ValueType::kNull:
      j.Set("value", Json());
      break;
    case ValueType::kBool:
      j.Set("value", Json(value_.AsBool()));
      break;
    case ValueType::kInt64:
      j.Set("value", Json(value_.AsInt64()));
      j.Set("value_type", "int64");
      break;
    case ValueType::kDouble:
      j.Set("value", Json(value_.AsDouble()));
      break;
    case ValueType::kString:
      j.Set("value", Json(value_.AsString()));
      break;
  }
  return j;
}

ErrorFunctionPtr SetConstantError::Clone() const {
  return std::make_unique<SetConstantError>(*this);
}

IncorrectCategoryError::IncorrectCategoryError(
    std::vector<std::string> categories)
    : categories_(std::move(categories)) {}

Status IncorrectCategoryError::Bind(BindContext& ctx,
                                    const std::vector<size_t>& attrs) {
  if (categories_.size() < 2) {
    return ctx.Error(StatusCode::kInvalidArgument,
                     "incorrect_category needs >= 2 categories, got " +
                         std::to_string(categories_.size()));
  }
  return ErrorFunction::Bind(ctx, attrs);
}

void IncorrectCategoryError::Apply(Tuple* tuple,
                                   const std::vector<size_t>& attrs,
                                   PollutionContext* ctx) {
  if (categories_.size() < 2) return;  // unbound misuse; Bind rejects this
  if (!SeverityGate(ctx)) return;
  for (size_t idx : attrs) {
    if (!InRange(*tuple, idx)) continue;
    const Value& v = tuple->value(idx);
    if (!v.is_string()) continue;
    const std::string& current = v.AsString();
    // Draw until a category different from the current value comes up;
    // bounded because >= 2 distinct categories exist (if the current
    // value is outside the domain, the first draw differs already).
    std::string replacement = current;
    for (int attempts = 0; attempts < 64 && replacement == current;
         ++attempts) {
      const size_t pick =
          ctx->rng != nullptr
              ? static_cast<size_t>(ctx->rng->UniformInt(
                    0, static_cast<int64_t>(categories_.size()) - 1))
              : 0;
      replacement = categories_[pick];
    }
    if (replacement == current) {
      // Degenerate domain (all categories equal to current): pick first.
      replacement = categories_[0] == current && categories_.size() > 1
                        ? categories_[1]
                        : categories_[0];
    }
    tuple->set_value(idx, Value(replacement));
  }
}

Json IncorrectCategoryError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "incorrect_category");
  Json cats = Json::MakeArray();
  for (const std::string& c : categories_) cats.Append(Json(c));
  j.Set("categories", std::move(cats));
  return j;
}

ErrorFunctionPtr IncorrectCategoryError::Clone() const {
  return std::make_unique<IncorrectCategoryError>(*this);
}

void TypoError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                      PollutionContext* ctx) {
  if (!SeverityGate(ctx)) return;
  for (size_t idx : attrs) {
    if (!InRange(*tuple, idx)) continue;
    const Value& v = tuple->value(idx);
    if (!v.is_string()) continue;
    std::string s = v.AsString();
    if (s.empty() || ctx->rng == nullptr) continue;
    const size_t pos = static_cast<size_t>(
        ctx->rng->UniformInt(0, static_cast<int64_t>(s.size()) - 1));
    switch (ctx->rng->UniformInt(0, 3)) {
      case 0:  // swap with next character
        if (pos + 1 < s.size()) std::swap(s[pos], s[pos + 1]);
        break;
      case 1:  // delete
        s.erase(pos, 1);
        break;
      case 2:  // duplicate
        s.insert(pos, 1, s[pos]);
        break;
      default:  // replace with a random lowercase letter
        s[pos] = static_cast<char>('a' + ctx->rng->UniformInt(0, 25));
        break;
    }
    tuple->set_value(idx, Value(std::move(s)));
  }
}

Json TypoError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "typo");
  return j;
}

ErrorFunctionPtr TypoError::Clone() const {
  return std::make_unique<TypoError>();
}

Status SwapAttributesError::Bind(BindContext& ctx,
                                 const std::vector<size_t>& attrs) {
  if (attrs.size() != 2) {
    return ctx.Error(StatusCode::kInvalidArgument,
                     "swap_attributes requires exactly 2 target attributes, "
                     "got " + std::to_string(attrs.size()));
  }
  return ErrorFunction::Bind(ctx, attrs);
}

void SwapAttributesError::Apply(Tuple* tuple,
                                const std::vector<size_t>& attrs,
                                PollutionContext* ctx) {
  if (attrs.size() != 2 || !InRange(*tuple, attrs[0]) ||
      !InRange(*tuple, attrs[1])) {
    return;  // unbound misuse; Bind rejects this
  }
  if (!SeverityGate(ctx)) return;
  Value a = tuple->value(attrs[0]);
  Value b = tuple->value(attrs[1]);
  tuple->set_value(attrs[0], std::move(b));
  tuple->set_value(attrs[1], std::move(a));
}

Json SwapAttributesError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "swap_attributes");
  return j;
}

ErrorFunctionPtr SwapAttributesError::Clone() const {
  return std::make_unique<SwapAttributesError>();
}

CaseError::CaseError(double flip_probability)
    : flip_probability_(flip_probability) {}

void CaseError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                      PollutionContext* ctx) {
  if (!SeverityGate(ctx)) return;
  for (size_t idx : attrs) {
    if (!InRange(*tuple, idx)) continue;
    const Value& v = tuple->value(idx);
    if (!v.is_string()) continue;
    std::string s = v.AsString();
    for (char& c : s) {
      const bool flip = ctx->rng != nullptr
                            ? ctx->rng->Bernoulli(flip_probability_)
                            : flip_probability_ > 0.5;
      if (!flip) continue;
      const unsigned char uc = static_cast<unsigned char>(c);
      if (std::islower(uc)) {
        c = static_cast<char>(std::toupper(uc));
      } else if (std::isupper(uc)) {
        c = static_cast<char>(std::tolower(uc));
      }
    }
    tuple->set_value(idx, Value(std::move(s)));
  }
}

Json CaseError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "case");
  j.Set("flip_probability", flip_probability_);
  return j;
}

ErrorFunctionPtr CaseError::Clone() const {
  return std::make_unique<CaseError>(*this);
}

TruncateError::TruncateError(size_t max_length) : max_length_(max_length) {}

void TruncateError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                          PollutionContext* ctx) {
  if (!SeverityGate(ctx)) return;
  for (size_t idx : attrs) {
    if (!InRange(*tuple, idx)) continue;
    const Value& v = tuple->value(idx);
    if (!v.is_string()) continue;
    if (v.AsString().size() > max_length_) {
      tuple->set_value(idx, Value(v.AsString().substr(0, max_length_)));
    }
  }
}

Json TruncateError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "truncate");
  j.Set("max_length", static_cast<int64_t>(max_length_));
  return j;
}

ErrorFunctionPtr TruncateError::Clone() const {
  return std::make_unique<TruncateError>(*this);
}

}  // namespace icewafl
