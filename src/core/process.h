#ifndef ICEWAFL_CORE_PROCESS_H_
#define ICEWAFL_CORE_PROCESS_H_

#include <optional>
#include <vector>

#include "core/pipeline.h"
#include "core/pollution_log.h"
#include "stream/source.h"

namespace icewafl {

/// \brief Configuration of the end-to-end pollution process.
struct ProcessOptions {
  /// Number m of (overlapping) sub-streams; one pipeline per sub-stream
  /// must be registered. m = 1 disables splitting.
  int num_substreams = 1;

  /// Probability that a tuple is additionally copied into a second,
  /// different sub-stream. Overlap produces fuzzy duplicates after the
  /// merge (Section 2.2.2) because the copies are polluted independently.
  double overlap_fraction = 0.0;

  /// Master seed: sub-stream assignment and every pipeline derive their
  /// random streams from it, making the whole run reproducible.
  uint64_t seed = 0x1CE3AF1ULL;

  /// Record every injected error into the result's PollutionLog.
  bool enable_log = true;

  /// Pollute the m sub-streams on m concurrent threads (the distributed
  /// execution mode; semantics are identical because pipelines are
  /// independent per sub-stream).
  bool parallel = false;

  /// Explicit stream bounds for stream-relative profiles (Equations 3/4).
  /// Set both or neither; when unset, bounds are derived from the
  /// prepared input's minimum and maximum event time. When set,
  /// `stream_start <= stream_end` is validated at Run.
  std::optional<Timestamp> stream_start;
  std::optional<Timestamp> stream_end;
};

/// \brief Output of a pollution run.
struct PollutionResult {
  SchemaPtr schema;
  /// D_c: the prepared clean stream (ids and event-time replicas
  /// assigned), in input order.
  TupleVector clean;
  /// D_p: the merged polluted stream, ordered by arrival time (stable:
  /// ties keep input order), each tuple tagged with its sub-stream.
  TupleVector polluted;
  /// Ground-truth record of injected errors (empty if logging disabled).
  PollutionLog log;
};

/// \brief Icewafl's data stream pollution process (Algorithm 1).
///
/// Step 1 prepares the data: every tuple receives a unique id and an
/// event-time replica tau of its timestamp, and the stream is split into
/// m (overlapping) sub-streams. Step 2 pushes every sub-stream tuple
/// through the sub-stream's pollution pipeline. Step 3 merges the
/// polluted sub-streams (union of tuples, tagged with the sub-stream id)
/// and orders the result by arrival time.
///
/// Steps 2 and 3 are streamed: the split feeds each sub-stream's
/// pipeline tuple-wise (in parallel mode through bounded channels, so
/// splitting, pollution, and collection overlap with backpressure)
/// instead of materializing every sub-stream up front. Output is
/// byte-identical to the materializing implementation for the same seed
/// and configuration, in both sequential and parallel mode.
class PollutionProcess {
 public:
  explicit PollutionProcess(ProcessOptions options);

  /// \brief Registers the pipeline for the next sub-stream. Exactly
  /// `options.num_substreams` pipelines must be added before Run.
  void AddPipeline(PollutionPipeline pipeline);

  /// \brief Runs the three steps over a bounded source.
  Result<PollutionResult> Run(Source* source);

  /// \brief Convenience entry point for the common single-pipeline case.
  static Result<PollutionResult> Pollute(Source* source,
                                         PollutionPipeline pipeline,
                                         uint64_t seed, bool enable_log = true);

 private:
  ProcessOptions options_;
  std::vector<PollutionPipeline> pipelines_;
};

}  // namespace icewafl

#endif  // ICEWAFL_CORE_PROCESS_H_
