#ifndef ICEWAFL_CORE_ERRORS_NUMERIC_H_
#define ICEWAFL_CORE_ERRORS_NUMERIC_H_

#include <string>
#include <vector>

#include "core/error_function.h"

namespace icewafl {

/// \brief Additive or multiplicative Gaussian noise.
///
/// Additive: v' = v + N(0, stddev * severity).
/// Multiplicative: v' = v * (1 + N(0, stddev * severity)).
class GaussianNoiseError : public ErrorFunction {
 public:
  explicit GaussianNoiseError(double stddev, bool multiplicative = false);
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  bool SupportsColumnar() const override { return true; }
  void ApplyColumnar(Batch* batch, const std::vector<size_t>& attrs,
                     const uint8_t* mask, PollutionContext* ctx) override;
  std::string name() const override { return "gaussian_noise"; }
  ErrorTraits Describe() const override {
    return {.domain = ErrorDomain::kNumeric, .uses_rng = true};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;

 private:
  double stddev_;
  bool multiplicative_;
};

/// \brief Multiplicative uniform noise as used in Experiment 3.2 (Eq. 3):
/// a factor f is drawn from U(lo * severity, hi * severity) and, on a fair
/// coin toss, the value is either increased, v' = v * (1 + f), or
/// decreased, v' = v * (1 - f).
class UniformNoiseError : public ErrorFunction {
 public:
  UniformNoiseError(double lo, double hi);
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  bool SupportsColumnar() const override { return true; }
  void ApplyColumnar(Batch* batch, const std::vector<size_t>& attrs,
                     const uint8_t* mask, PollutionContext* ctx) override;
  std::string name() const override { return "uniform_noise"; }
  ErrorTraits Describe() const override {
    return {.domain = ErrorDomain::kNumeric, .uses_rng = true};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;

 private:
  double lo_;
  double hi_;
};

/// \brief Scaled-by-factor error: v' = v * lerp(1, factor, severity).
class ScaleError : public ErrorFunction {
 public:
  explicit ScaleError(double factor);
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  bool SupportsColumnar() const override { return true; }
  void ApplyColumnar(Batch* batch, const std::vector<size_t>& attrs,
                     const uint8_t* mask, PollutionContext* ctx) override;
  std::string name() const override { return "scale"; }
  ErrorTraits Describe() const override {
    return {.domain = ErrorDomain::kNumeric};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;

 private:
  double factor_;
};

/// \brief Constant additive offset (miscalibrated sensor):
/// v' = v + delta * severity.
class OffsetError : public ErrorFunction {
 public:
  explicit OffsetError(double delta);
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  bool SupportsColumnar() const override { return true; }
  void ApplyColumnar(Batch* batch, const std::vector<size_t>& attrs,
                     const uint8_t* mask, PollutionContext* ctx) override;
  std::string name() const override { return "offset"; }
  ErrorTraits Describe() const override {
    return {.domain = ErrorDomain::kNumeric};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;

 private:
  double delta_;
};

/// \brief Rounds to a fixed number of decimal places (precision loss, as
/// in the CaloriesBurned polluter of Experiment 3.1.2). severity < 1 gates
/// application with that probability.
class RoundError : public ErrorFunction {
 public:
  explicit RoundError(int precision);
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  bool SupportsColumnar() const override { return true; }
  void ApplyColumnar(Batch* batch, const std::vector<size_t>& attrs,
                     const uint8_t* mask, PollutionContext* ctx) override;
  std::string name() const override { return "round"; }
  ErrorTraits Describe() const override {
    return {.domain = ErrorDomain::kNumeric};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;

 private:
  int precision_;
};

/// \brief Unit conversion error (e.g. km recorded as cm): v' = v * factor.
/// Semantically a scale error, but logged with its unit labels; severity
/// gates application.
class UnitConversionError : public ErrorFunction {
 public:
  UnitConversionError(double factor, std::string from_unit,
                      std::string to_unit);
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  bool SupportsColumnar() const override { return true; }
  void ApplyColumnar(Batch* batch, const std::vector<size_t>& attrs,
                     const uint8_t* mask, PollutionContext* ctx) override;
  std::string name() const override { return "unit_conversion"; }
  ErrorTraits Describe() const override {
    return {.domain = ErrorDomain::kNumeric};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;

 private:
  double factor_;
  std::string from_unit_;
  std::string to_unit_;
};

/// \brief Outlier spike: v' = v * f or v / f with f ~ U(min_factor,
/// max_factor); severity gates application.
class OutlierError : public ErrorFunction {
 public:
  OutlierError(double min_factor, double max_factor);
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  bool SupportsColumnar() const override { return true; }
  void ApplyColumnar(Batch* batch, const std::vector<size_t>& attrs,
                     const uint8_t* mask, PollutionContext* ctx) override;
  std::string name() const override { return "outlier"; }
  ErrorTraits Describe() const override {
    return {.domain = ErrorDomain::kNumeric, .uses_rng = true};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;

 private:
  double min_factor_;
  double max_factor_;
};

/// \brief Digit-transposition entry error: swaps two adjacent digits of
/// the decimal rendering (e.g. 12.34 -> 21.34). Values whose rendering
/// has fewer than two adjacent digits are left unchanged; severity gates
/// application.
class DigitSwapError : public ErrorFunction {
 public:
  DigitSwapError() = default;
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  std::string name() const override { return "digit_swap"; }
  ErrorTraits Describe() const override {
    return {.domain = ErrorDomain::kNumeric, .uses_rng = true};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;
};

/// \brief Sign-flip error: v' = -v (polarity wiring fault / entry
/// error); severity gates application.
class SignFlipError : public ErrorFunction {
 public:
  SignFlipError() = default;
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  bool SupportsColumnar() const override { return true; }
  void ApplyColumnar(Batch* batch, const std::vector<size_t>& attrs,
                     const uint8_t* mask, PollutionContext* ctx) override;
  std::string name() const override { return "sign_flip"; }
  ErrorTraits Describe() const override {
    return {.domain = ErrorDomain::kNumeric};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;
};

}  // namespace icewafl

#endif  // ICEWAFL_CORE_ERRORS_NUMERIC_H_
