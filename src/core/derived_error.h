#ifndef ICEWAFL_CORE_DERIVED_ERROR_H_
#define ICEWAFL_CORE_DERIVED_ERROR_H_

#include <string>
#include <vector>

#include "core/error_function.h"
#include "core/time_profile.h"

namespace icewafl {

/// \brief Derived temporal error: a static error combined with a change
/// pattern (Figure 3, right).
///
/// On each application the wrapped profile is evaluated at the tuple's
/// event time and installed as `ctx.severity` (multiplied with any outer
/// severity, so derived errors nest), then the static error runs.
/// Continuous errors scale their magnitude with severity (e.g. noise
/// stddev grows over an incremental ramp); discrete errors use it as an
/// application probability (e.g. missing values become more frequent).
class DerivedTemporalError : public ErrorFunction {
 public:
  DerivedTemporalError(ErrorFunctionPtr base, TimeProfilePtr profile);

  Status Bind(BindContext& ctx, const std::vector<size_t>& attrs) override;
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  void Observe(const Tuple& tuple,
               const std::vector<size_t>& attrs) override;
  std::string name() const override;

  /// \brief Inherits the base error's traits; always reports rng use
  /// because severity gating and intermediate profiles draw randomness.
  ErrorTraits Describe() const override;

  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;

  const ErrorFunction& base() const { return *base_; }
  const TimeProfile& profile() const { return *profile_; }

 private:
  ErrorFunctionPtr base_;
  TimeProfilePtr profile_;
};

}  // namespace icewafl

#endif  // ICEWAFL_CORE_DERIVED_ERROR_H_
