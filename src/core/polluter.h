#ifndef ICEWAFL_CORE_POLLUTER_H_
#define ICEWAFL_CORE_POLLUTER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/condition.h"
#include "core/error_function.h"
#include "core/pollution_log.h"
#include "stream/bind.h"
#include "stream/tuple.h"

namespace icewafl {

/// \brief A polluter p = <e, c, A_p> (Section 2.2, Equation 2).
///
/// Icewafl distinguishes standard polluters, which inject a specific data
/// error when their condition fires, from composite polluters
/// (composite_polluter.h), which structure the pipeline by delegating to
/// registered children.
///
/// Polluters follow the two-phase bind/run lifecycle (DESIGN.md §8):
/// Bind resolves attribute names against the schema once and validates
/// the error/condition configuration; Pollute is the per-tuple run phase.
/// A polluter invoked against a schema it was not bound to re-binds
/// lazily on the first tuple (and whenever the schema pointer changes),
/// so direct use without an explicit Bind keeps working.
class Polluter {
 public:
  explicit Polluter(std::string label) : label_(std::move(label)) {}
  virtual ~Polluter() = default;

  /// \brief Resolves attribute names to column indices and validates the
  /// configuration against `ctx.schema()`. Misconfiguration (unknown
  /// attribute, domain/type mismatch, bad arity) is reported as a Status
  /// whose message carries the JSON-pointer path of the offending config
  /// fragment. Composites recurse into their children.
  virtual Status Bind(BindContext& ctx) = 0;

  /// \brief Applies the polluter to `*tuple`: evaluates the condition and,
  /// if it fires, the error function. `log` may be nullptr.
  virtual Status Pollute(Tuple* tuple, PollutionContext* ctx,
                         PollutionLog* log) = 0;

  /// \brief (Re-)derives this polluter's private random stream from the
  /// parent generator. Must be called once before processing; pipelines do
  /// this for all their polluters (composites recurse into children).
  /// Deterministic: the same parent state yields the same child streams.
  virtual void Seed(Rng* parent) = 0;

  /// \brief True when this polluter can execute over a columnar Batch
  /// (DESIGN.md §13): the condition tree supports mask refinement, the
  /// error implements ApplyColumnar, and at most one of the two draws
  /// from the random stream — staged whole-batch execution (all
  /// condition draws, then all error draws) replays the tuple path's
  /// interleaved draw order only when a single consumer exists.
  virtual bool SupportsColumnar() const { return false; }

  /// \brief Columnar twin of Pollute: refines a condition mask over the
  /// whole batch, then applies the error to the fired rows in one pass.
  /// Sets polluted[row] = 1 for every row that fired; rows that did not
  /// fire are left untouched so pipelines can OR across polluters.
  /// Byte-identical to per-tuple Pollute when ctx->severity == 1.0 (the
  /// streaming operator's invariant — derived temporal errors are not
  /// columnarized). Only called when SupportsColumnar().
  virtual Status PolluteColumnar(Batch* batch, PollutionContext* ctx,
                                 uint8_t* polluted) {
    (void)batch;
    (void)ctx;
    (void)polluted;
    return Status::Internal("polluter '" + label_ +
                            "': no columnar support");
  }

  /// \brief Unique label within a pipeline, used in logs and configs.
  const std::string& label() const { return label_; }

  /// \brief Number of tuples this polluter actually polluted.
  uint64_t applied_count() const { return applied_count_; }
  virtual void ResetStats() { applied_count_ = 0; }

  virtual Json ToJson() const = 0;
  virtual std::unique_ptr<Polluter> Clone() const = 0;

 protected:
  /// \brief Lazy-bind helper for direct (pipeline-less) use: re-binds
  /// against the tuple's schema when it differs from the bound one.
  Status EnsureBound(const Tuple& tuple) {
    if (bound_schema_ == tuple.schema().get()) return Status::OK();
    if (tuple.schema() == nullptr) {
      return Status::Internal("polluter '" + label_ +
                              "': tuple has no schema");
    }
    BindContext ctx(*tuple.schema());
    return Bind(ctx);
  }

  /// \brief Batch twin of EnsureBound: re-binds when the batch's schema
  /// differs (by identity) from the bound one.
  Status EnsureBoundSchema(const SchemaPtr& schema) {
    if (bound_schema_ == schema.get()) return Status::OK();
    if (schema == nullptr) {
      return Status::Internal("polluter '" + label_ +
                              "': batch has no schema");
    }
    BindContext ctx(*schema);
    return Bind(ctx);
  }

  std::string label_;
  uint64_t applied_count_ = 0;
  // Schema this polluter is currently bound against (identity compare).
  const Schema* bound_schema_ = nullptr;
};

using PolluterPtr = std::unique_ptr<Polluter>;

/// \brief Standard polluter: applies one error function to a fixed set of
/// target attributes whenever its condition fires.
class StandardPolluter : public Polluter {
 public:
  /// \param attributes target attribute names A_p; may be empty for
  ///   metadata errors (delay, timestamp shift).
  StandardPolluter(std::string label, ErrorFunctionPtr error,
                   ConditionPtr condition, std::vector<std::string> attributes);

  Status Bind(BindContext& ctx) override;
  Status Pollute(Tuple* tuple, PollutionContext* ctx,
                 PollutionLog* log) override;
  void Seed(Rng* parent) override;
  bool SupportsColumnar() const override;
  Status PolluteColumnar(Batch* batch, PollutionContext* ctx,
                         uint8_t* polluted) override;
  Json ToJson() const override;
  PolluterPtr Clone() const override;

  const ErrorFunction& error() const { return *error_; }
  const Condition& condition() const { return *condition_; }
  const std::vector<std::string>& attributes() const { return attributes_; }

 private:
  ErrorFunctionPtr error_;
  ConditionPtr condition_;
  std::vector<std::string> attributes_;
  Rng rng_;

  // Target attribute indices, resolved by Bind.
  std::vector<size_t> attr_indices_;
  // Condition-mask scratch reused across PolluteColumnar calls.
  std::vector<uint8_t> mask_;
};

}  // namespace icewafl

#endif  // ICEWAFL_CORE_POLLUTER_H_
