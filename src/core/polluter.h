#ifndef ICEWAFL_CORE_POLLUTER_H_
#define ICEWAFL_CORE_POLLUTER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/condition.h"
#include "core/error_function.h"
#include "core/pollution_log.h"
#include "stream/tuple.h"

namespace icewafl {

/// \brief A polluter p = <e, c, A_p> (Section 2.2, Equation 2).
///
/// Icewafl distinguishes standard polluters, which inject a specific data
/// error when their condition fires, from composite polluters
/// (composite_polluter.h), which structure the pipeline by delegating to
/// registered children.
class Polluter {
 public:
  explicit Polluter(std::string label) : label_(std::move(label)) {}
  virtual ~Polluter() = default;

  /// \brief Applies the polluter to `*tuple`: evaluates the condition and,
  /// if it fires, the error function. `log` may be nullptr.
  virtual Status Pollute(Tuple* tuple, PollutionContext* ctx,
                         PollutionLog* log) = 0;

  /// \brief (Re-)derives this polluter's private random stream from the
  /// parent generator. Must be called once before processing; pipelines do
  /// this for all their polluters (composites recurse into children).
  /// Deterministic: the same parent state yields the same child streams.
  virtual void Seed(Rng* parent) = 0;

  /// \brief Unique label within a pipeline, used in logs and configs.
  const std::string& label() const { return label_; }

  /// \brief Number of tuples this polluter actually polluted.
  uint64_t applied_count() const { return applied_count_; }
  virtual void ResetStats() { applied_count_ = 0; }

  virtual Json ToJson() const = 0;
  virtual std::unique_ptr<Polluter> Clone() const = 0;

 protected:
  std::string label_;
  uint64_t applied_count_ = 0;
};

using PolluterPtr = std::unique_ptr<Polluter>;

/// \brief Standard polluter: applies one error function to a fixed set of
/// target attributes whenever its condition fires.
class StandardPolluter : public Polluter {
 public:
  /// \param attributes target attribute names A_p; may be empty for
  ///   metadata errors (delay, timestamp shift).
  StandardPolluter(std::string label, ErrorFunctionPtr error,
                   ConditionPtr condition, std::vector<std::string> attributes);

  Status Pollute(Tuple* tuple, PollutionContext* ctx,
                 PollutionLog* log) override;
  void Seed(Rng* parent) override;
  Json ToJson() const override;
  PolluterPtr Clone() const override;

  const ErrorFunction& error() const { return *error_; }
  const Condition& condition() const { return *condition_; }
  const std::vector<std::string>& attributes() const { return attributes_; }

 private:
  Status ResolveAttributes(const Tuple& tuple);

  ErrorFunctionPtr error_;
  ConditionPtr condition_;
  std::vector<std::string> attributes_;
  Rng rng_;

  // Attribute indices resolved against the schema of the first tuple.
  const Schema* resolved_schema_ = nullptr;
  std::vector<size_t> attr_indices_;
};

}  // namespace icewafl

#endif  // ICEWAFL_CORE_POLLUTER_H_
