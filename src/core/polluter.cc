#include "core/polluter.h"

namespace icewafl {

StandardPolluter::StandardPolluter(std::string label, ErrorFunctionPtr error,
                                   ConditionPtr condition,
                                   std::vector<std::string> attributes)
    : Polluter(std::move(label)),
      error_(std::move(error)),
      condition_(std::move(condition)),
      attributes_(std::move(attributes)),
      rng_(0) {}

Status StandardPolluter::ResolveAttributes(const Tuple& tuple) {
  if (tuple.schema() == nullptr) {
    return Status::Internal("polluter '" + label_ + "': tuple has no schema");
  }
  if (resolved_schema_ == tuple.schema().get()) return Status::OK();
  attr_indices_.clear();
  attr_indices_.reserve(attributes_.size());
  for (const std::string& name : attributes_) {
    ICEWAFL_ASSIGN_OR_RETURN(size_t idx, tuple.schema()->IndexOf(name));
    attr_indices_.push_back(idx);
  }
  resolved_schema_ = tuple.schema().get();
  return Status::OK();
}

Status StandardPolluter::Pollute(Tuple* tuple, PollutionContext* ctx,
                                 PollutionLog* log) {
  ICEWAFL_RETURN_NOT_OK(ResolveAttributes(*tuple));
  Rng* const outer_rng = ctx->rng;
  ctx->rng = &rng_;
  Status st = [&]() -> Status {
    // Stateful errors watch the full stream regardless of the condition.
    ICEWAFL_RETURN_NOT_OK(error_->Observe(*tuple, attr_indices_));
    ICEWAFL_ASSIGN_OR_RETURN(bool fired, condition_->Evaluate(*tuple, ctx));
    if (!fired) return Status::OK();
    ICEWAFL_RETURN_NOT_OK(error_->Apply(tuple, attr_indices_, ctx));
    ++applied_count_;
    if (log != nullptr) {
      PollutionLogEntry entry;
      entry.tuple_id = tuple->id();
      entry.substream = tuple->substream();
      entry.polluter = label_;
      entry.error_type = error_->name();
      entry.attributes = attributes_;
      entry.tau = ctx->tau;
      log->Record(std::move(entry));
    }
    return Status::OK();
  }();
  ctx->rng = outer_rng;
  return st;
}

void StandardPolluter::Seed(Rng* parent) { rng_ = parent->Fork(); }

Json StandardPolluter::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "standard");
  j.Set("label", label_);
  j.Set("error", error_->ToJson());
  j.Set("condition", condition_->ToJson());
  Json attrs = Json::MakeArray();
  for (const std::string& a : attributes_) attrs.Append(Json(a));
  j.Set("attributes", std::move(attrs));
  return j;
}

PolluterPtr StandardPolluter::Clone() const {
  return std::make_unique<StandardPolluter>(label_, error_->Clone(),
                                            condition_->Clone(), attributes_);
}

}  // namespace icewafl
