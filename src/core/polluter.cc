#include "core/polluter.h"

namespace icewafl {

StandardPolluter::StandardPolluter(std::string label, ErrorFunctionPtr error,
                                   ConditionPtr condition,
                                   std::vector<std::string> attributes)
    : Polluter(std::move(label)),
      error_(std::move(error)),
      condition_(std::move(condition)),
      attributes_(std::move(attributes)),
      rng_(0) {}

Status StandardPolluter::Bind(BindContext& ctx) {
  bound_schema_ = nullptr;
  attr_indices_.clear();
  attr_indices_.reserve(attributes_.size());
  {
    BindContext::Scope attrs_scope(ctx, "attributes");
    for (size_t i = 0; i < attributes_.size(); ++i) {
      BindContext::Scope index_scope(ctx, i);
      ICEWAFL_ASSIGN_OR_RETURN(BoundAccessor accessor,
                               ctx.Resolve(attributes_[i]));
      attr_indices_.push_back(accessor.index());
    }
  }
  {
    BindContext::Scope error_scope(ctx, "error");
    ICEWAFL_RETURN_NOT_OK(error_->Bind(ctx, attr_indices_));
  }
  {
    BindContext::Scope condition_scope(ctx, "condition");
    ICEWAFL_RETURN_NOT_OK(condition_->Bind(ctx));
  }
  bound_schema_ = &ctx.schema();
  return Status::OK();
}

Status StandardPolluter::Pollute(Tuple* tuple, PollutionContext* ctx,
                                 PollutionLog* log) {
  ICEWAFL_RETURN_NOT_OK(EnsureBound(*tuple));
  Rng* const outer_rng = ctx->rng;
  ctx->rng = &rng_;
  // Stateful errors watch the full stream regardless of the condition.
  error_->Observe(*tuple, attr_indices_);
  if (condition_->Evaluate(*tuple, ctx)) {
    error_->Apply(tuple, attr_indices_, ctx);
    ++applied_count_;
    if (log != nullptr) {
      PollutionLogEntry entry;
      entry.tuple_id = tuple->id();
      entry.substream = tuple->substream();
      entry.polluter = label_;
      entry.error_type = error_->name();
      entry.attributes = attributes_;
      entry.tau = ctx->tau;
      log->Record(std::move(entry));
    }
  }
  ctx->rng = outer_rng;
  return Status::OK();
}

void StandardPolluter::Seed(Rng* parent) { rng_ = parent->Fork(); }

bool StandardPolluter::SupportsColumnar() const {
  const ColumnarSpec cond = condition_->Columnar();
  if (!cond.supported || !error_->SupportsColumnar()) return false;
  // Staged execution (all condition draws, then all error draws) only
  // replays the tuple path's interleaved order with <= 1 RNG consumer.
  const int consumers =
      cond.rng_consumers + (error_->Describe().uses_rng ? 1 : 0);
  return consumers <= 1;
}

Status StandardPolluter::PolluteColumnar(Batch* batch, PollutionContext* ctx,
                                         uint8_t* polluted) {
  ICEWAFL_RETURN_NOT_OK(EnsureBoundSchema(batch->schema()));
  const size_t rows = batch->rows();
  Rng* const outer_rng = ctx->rng;
  ctx->rng = &rng_;
  // Columnar errors have a no-op Observe (the SupportsColumnar
  // contract), so the per-tuple Observe pass is skipped entirely.
  mask_.assign(rows, 1);
  condition_->RefineMask(*batch, ctx, mask_.data());
  error_->ApplyColumnar(batch, attr_indices_, mask_.data(), ctx);
  for (size_t r = 0; r < rows; ++r) {
    if (mask_[r] != 0) {
      ++applied_count_;
      polluted[r] = 1;
    }
  }
  ctx->rng = outer_rng;
  return Status::OK();
}

Json StandardPolluter::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "standard");
  j.Set("label", label_);
  j.Set("error", error_->ToJson());
  j.Set("condition", condition_->ToJson());
  Json attrs = Json::MakeArray();
  for (const std::string& a : attributes_) attrs.Append(Json(a));
  j.Set("attributes", std::move(attrs));
  return j;
}

PolluterPtr StandardPolluter::Clone() const {
  auto clone = std::make_unique<StandardPolluter>(
      label_, error_->Clone(), condition_->Clone(), attributes_);
  // Clones share the immutable bound plan (condition Clone already
  // preserves its accessors); only RNG/statistics state starts fresh.
  clone->bound_schema_ = bound_schema_;
  clone->attr_indices_ = attr_indices_;
  return clone;
}

}  // namespace icewafl
