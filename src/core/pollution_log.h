#ifndef ICEWAFL_CORE_POLLUTION_LOG_H_
#define ICEWAFL_CORE_POLLUTION_LOG_H_

#include <map>
#include <string>
#include <vector>

#include "stream/tuple.h"
#include "util/json.h"
#include "util/result.h"

namespace icewafl {

/// \brief One recorded error injection.
struct PollutionLogEntry {
  TupleId tuple_id = kInvalidTupleId;
  int substream = kNoSubstream;
  /// Label of the polluter that fired (unique within a pipeline).
  std::string polluter;
  /// Error-function name (e.g. "missing_value").
  std::string error_type;
  /// Target attribute names A_p.
  std::vector<std::string> attributes;
  /// Event time of the polluted tuple.
  Timestamp tau = 0;

  bool operator==(const PollutionLogEntry&) const = default;
};

/// \brief The optional "Log Data" output of the pollution process
/// (Figure 2): a ground-truth record of every injected error.
///
/// Benchmarck harnesses use it to compare expected against detected error
/// counts, and it makes a pollution run auditable and reproducible.
class PollutionLog {
 public:
  void Record(PollutionLogEntry entry) {
    entries_.push_back(std::move(entry));
  }

  const std::vector<PollutionLogEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void Clear() { entries_.clear(); }

  /// \brief Number of injections per polluter label.
  std::map<std::string, uint64_t> CountsByPolluter() const;

  /// \brief Number of distinct polluted tuples (a tuple hit by several
  /// polluters counts once).
  uint64_t DistinctTupleCount() const;

  /// \brief Histogram of injections by hour-of-day of tau (Figure 4).
  std::vector<uint64_t> HourOfDayHistogram() const;

  /// \brief JSON serialization (round-trips through FromJson).
  Json ToJson() const;
  static Result<PollutionLog> FromJson(const Json& json);

 private:
  std::vector<PollutionLogEntry> entries_;
};

}  // namespace icewafl

#endif  // ICEWAFL_CORE_POLLUTION_LOG_H_
