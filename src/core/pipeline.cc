#include "core/pipeline.h"

namespace icewafl {

void PollutionPipeline::Seed(uint64_t seed) {
  Rng master(seed);
  for (const PolluterPtr& p : polluters_) p->Seed(&master);
}

Status PollutionPipeline::Apply(Tuple* tuple, PollutionContext* ctx,
                                PollutionLog* log) const {
  for (const PolluterPtr& p : polluters_) {
    ICEWAFL_RETURN_NOT_OK(p->Pollute(tuple, ctx, log));
  }
  return Status::OK();
}

void PollutionPipeline::ResetStats() {
  for (const PolluterPtr& p : polluters_) p->ResetStats();
}

std::map<std::string, uint64_t> PollutionPipeline::AppliedCounts() const {
  std::map<std::string, uint64_t> counts;
  for (const PolluterPtr& p : polluters_) {
    counts[p->label()] += p->applied_count();
  }
  return counts;
}

PollutionPipeline PollutionPipeline::Clone() const {
  PollutionPipeline clone(name_);
  for (const PolluterPtr& p : polluters_) clone.Add(p->Clone());
  return clone;
}

Json PollutionPipeline::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("name", name_);
  Json arr = Json::MakeArray();
  for (const PolluterPtr& p : polluters_) arr.Append(p->ToJson());
  j.Set("polluters", std::move(arr));
  return j;
}

}  // namespace icewafl
