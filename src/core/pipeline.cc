#include "core/pipeline.h"

#include "core/composite_polluter.h"

namespace icewafl {

namespace {

const char* DomainName(ErrorDomain domain) {
  switch (domain) {
    case ErrorDomain::kAnyValue:
      return "any";
    case ErrorDomain::kNumeric:
      return "numeric";
    case ErrorDomain::kString:
      return "string";
    case ErrorDomain::kMetadata:
      return "metadata";
  }
  return "any";
}

/// Recursive activation-count publisher; composites contribute their
/// gate-fire count and recurse into their children.
void PublishPolluter(const Polluter& polluter, const std::string& pipeline,
                     obs::MetricRegistry* registry) {
  std::string error = "composite";
  std::string domain = "any";
  if (const auto* standard = dynamic_cast<const StandardPolluter*>(&polluter);
      standard != nullptr) {
    error = standard->error().name();
    domain = DomainName(standard->error().Describe().domain);
  } else if (dynamic_cast<const SequentialPolluter*>(&polluter) != nullptr) {
    error = "composite_sequential";
  } else if (dynamic_cast<const ExclusivePolluter*>(&polluter) != nullptr) {
    error = "composite_exclusive";
  }
  obs::Counter* counter = registry->GetCounter(
      "icewafl_polluter_applied_total",
      {{"pipeline", pipeline},
       {"polluter", polluter.label()},
       {"error", error},
       {"domain", domain}},
      "Activations per polluter (composite gates count gate fires)");
  if (counter != nullptr) counter->Increment(polluter.applied_count());
  if (const auto* composite = dynamic_cast<const CompositePolluter*>(&polluter);
      composite != nullptr) {
    for (const PolluterPtr& child : composite->children()) {
      PublishPolluter(*child, pipeline, registry);
    }
  }
}

}  // namespace

void PollutionPipeline::Seed(uint64_t seed) {
  Rng master(seed);
  for (const PolluterPtr& p : polluters_) p->Seed(&master);
}

Status PollutionPipeline::Bind(SchemaPtr schema) {
  if (schema == nullptr) {
    return Status::InvalidArgument("pipeline '" + name_ +
                                   "': cannot bind to a null schema");
  }
  for (size_t i = 0; i < polluters_.size(); ++i) {
    BindContext ctx(*schema, "/polluters/" + std::to_string(i));
    ICEWAFL_RETURN_NOT_OK(polluters_[i]->Bind(ctx));
  }
  bound_schema_ = std::move(schema);
  return Status::OK();
}

Status PollutionPipeline::Apply(Tuple* tuple, PollutionContext* ctx,
                                PollutionLog* log) const {
  for (const PolluterPtr& p : polluters_) {
    ICEWAFL_RETURN_NOT_OK(p->Pollute(tuple, ctx, log));
  }
  return Status::OK();
}

bool PollutionPipeline::SupportsColumnar() const {
  for (const PolluterPtr& p : polluters_) {
    if (!p->SupportsColumnar()) return false;
  }
  return true;
}

Status PollutionPipeline::ApplyColumnar(Batch* batch, PollutionContext* ctx,
                                        uint8_t* polluted) const {
  for (const PolluterPtr& p : polluters_) {
    ICEWAFL_RETURN_NOT_OK(p->PolluteColumnar(batch, ctx, polluted));
  }
  return Status::OK();
}

void PollutionPipeline::ResetStats() {
  for (const PolluterPtr& p : polluters_) p->ResetStats();
}

std::map<std::string, uint64_t> PollutionPipeline::AppliedCounts() const {
  std::map<std::string, uint64_t> counts;
  for (const PolluterPtr& p : polluters_) {
    counts[p->label()] += p->applied_count();
  }
  return counts;
}

uint64_t PollutionPipeline::TotalAppliedCount() const {
  uint64_t total = 0;
  for (const PolluterPtr& p : polluters_) total += p->applied_count();
  return total;
}

void PollutionPipeline::PublishMetrics(obs::MetricRegistry* registry) const {
  if (registry == nullptr) return;
  for (const PolluterPtr& p : polluters_) {
    PublishPolluter(*p, name_, registry);
  }
}

PollutionPipeline PollutionPipeline::Clone() const {
  PollutionPipeline clone(name_);
  for (const PolluterPtr& p : polluters_) clone.Add(p->Clone());
  // Worker clones share the immutable bound plan: polluter clones carry
  // their resolved indices, and the shared_ptr keeps the schema alive.
  clone.bound_schema_ = bound_schema_;
  return clone;
}

Json PollutionPipeline::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("name", name_);
  Json arr = Json::MakeArray();
  for (const PolluterPtr& p : polluters_) arr.Append(p->ToJson());
  j.Set("polluters", std::move(arr));
  return j;
}

}  // namespace icewafl
