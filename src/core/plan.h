#ifndef ICEWAFL_CORE_PLAN_H_
#define ICEWAFL_CORE_PLAN_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/pipeline.h"
#include "stream/tuple.h"
#include "util/json.h"
#include "util/result.h"

namespace icewafl {

/// \file
/// Versioned immutable execution plans (DESIGN.md section 14).
///
/// A PlanSnapshot freezes everything one serving session needs to
/// replay its polluted stream deterministically: the clean dataset, the
/// bound pollution pipeline, the seed/parallelism knobs, the
/// stream-relative profile bounds, and the pacing rate. Snapshots are
/// published through `shared_ptr<const PlanSnapshot>` with a
/// monotonically increasing per-session version, so a running pipeline
/// and a concurrent reconfiguration never race on shared mutable state:
/// the server swaps the pointer, in-flight rows finish under the old
/// snapshot, and the serving runner adopts the newest snapshot at the
/// next cutover boundary (scenarios::ServePlanToSink).

/// \brief One immutable, versioned execution plan of a serving session.
///
/// Mutable only between construction and publication: the publisher
/// (PollutionServer::SwapPlan / AddSession) assigns `version` and
/// `published_at`, then freezes the snapshot behind a PlanPtr. Never
/// mutate a snapshot that has been published.
struct PlanSnapshot {
  /// Monotonically increasing per session, starting at 1; assigned by
  /// the publisher immediately before the snapshot is frozen.
  uint64_t version = 0;
  /// The scenario this plan was built from ("custom" when compiled from
  /// a raw pipeline document over the admin channel).
  std::string scenario;
  /// The pipeline document the plan was compiled from (the lintable
  /// ToJson form) — what `admin get_config` reports.
  Json config;
  SchemaPtr schema;
  /// The clean stream the pipeline pollutes. Shared (not copied) across
  /// snapshots that only changed the pipeline or the rate.
  std::shared_ptr<const TupleVector> clean;
  /// Bound prototype; per-worker Clone()s share the bound plan.
  PollutionPipeline pipeline;
  uint64_t seed = 42;
  int parallelism = 1;
  /// Full-stream bounds for stream-relative profiles (Equations 3/4).
  /// Kept identical across versions of one session, so a mid-stream
  /// swap does not shift profile positions.
  Timestamp stream_start = 0;
  Timestamp stream_end = 0;
  /// Serving pace in rows per second; 0 streams unpaced. Pacing never
  /// changes the produced bytes, only their timing.
  double tuples_per_sec = 0.0;
  /// Optional cleaning document (clean::RulesFromJson shape) applied to
  /// the polluted stream of every segment — null serves uncleaned. Kept
  /// as the raw JSON so the core stays free of the cleaning layer; the
  /// scenarios runner compiles and validates it (set_cleaner rejects a
  /// broken document before a snapshot exists). Cleaner state is fresh
  /// per plan segment, preserving the cutover determinism contract.
  Json cleaner;
  /// Publication instant (swap-latency measurement).
  std::chrono::steady_clock::time_point published_at{};
};

/// \brief How every layer above the publisher holds a plan.
using PlanPtr = std::shared_ptr<const PlanSnapshot>;

/// \brief One contiguous slice of a serving run executed under a single
/// plan version. A run's output is the concatenation of its segments,
/// each byte-identical to an offline run of that segment's plan over
/// the same clean-row slice (the cutover determinism contract).
struct PlanSegment {
  uint64_t version = 0;
  /// First clean-stream row (0-based) of the segment.
  uint64_t start_row = 0;
};

/// \brief What a plan-driven session function receives per run.
///
/// `plan` is the snapshot current when the run started; `latest`
/// re-reads the newest published snapshot (both may be null for
/// sessions that do not serve plans). `on_segment` — when set — is
/// invoked once per adopted segment, before its first row is produced;
/// the server uses it for cutover bookkeeping and swap-latency metrics.
struct PlanContext {
  PlanPtr plan;
  std::function<PlanPtr()> latest;
  std::function<void(const PlanSegment&)> on_segment;
};

/// \brief Assembles an as-yet unpublished snapshot, binding `pipeline`
/// against `schema` (JSON-pointer bind errors surface here, before the
/// plan can ever be published). `config` should be the pipeline's
/// lintable JSON document; `version`/`published_at` are left for the
/// publisher.
Result<std::shared_ptr<PlanSnapshot>> MakePlanSnapshot(
    std::string scenario, Json config, SchemaPtr schema,
    std::shared_ptr<const TupleVector> clean, PollutionPipeline pipeline,
    uint64_t seed, int parallelism, Timestamp stream_start,
    Timestamp stream_end, double tuples_per_sec = 0.0);

/// \brief Deep-copies `plan` into a fresh unpublished snapshot (the
/// pipeline is Clone()d — bound state shared, mutable state fresh).
/// The base of every delta update (e.g. `admin set_rate`): clone,
/// mutate the copy, republish.
std::shared_ptr<PlanSnapshot> ClonePlan(const PlanSnapshot& plan);

}  // namespace icewafl

#endif  // ICEWAFL_CORE_PLAN_H_
