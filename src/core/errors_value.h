#ifndef ICEWAFL_CORE_ERRORS_VALUE_H_
#define ICEWAFL_CORE_ERRORS_VALUE_H_

#include <string>
#include <vector>

#include "core/error_function.h"

namespace icewafl {

/// \brief Missing-value error: sets targeted attributes to NULL.
/// severity < 1 gates application with that probability.
class MissingValueError : public ErrorFunction {
 public:
  MissingValueError() = default;
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  bool SupportsColumnar() const override { return true; }
  void ApplyColumnar(Batch* batch, const std::vector<size_t>& attrs,
                     const uint8_t* mask, PollutionContext* ctx) override;
  std::string name() const override { return "missing_value"; }
  ErrorTraits Describe() const override {
    return {};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;
};

/// \brief Overwrites targeted attributes with a fixed value (e.g. the
/// "BPM set to 0" polluter of the software-update scenario).
class SetConstantError : public ErrorFunction {
 public:
  explicit SetConstantError(Value value);
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  bool SupportsColumnar() const override { return true; }
  void ApplyColumnar(Batch* batch, const std::vector<size_t>& attrs,
                     const uint8_t* mask, PollutionContext* ctx) override;
  std::string name() const override { return "set_constant"; }
  ErrorTraits Describe() const override {
    return {};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;

 private:
  Value value_;
};

/// \brief Incorrect-category error: replaces a categorical (string) value
/// by a different category drawn uniformly from the domain.
class IncorrectCategoryError : public ErrorFunction {
 public:
  /// \param categories the categorical domain; must have >= 2 entries for
  ///   the error to be able to change anything (enforced by Bind).
  explicit IncorrectCategoryError(std::vector<std::string> categories);
  Status Bind(BindContext& ctx, const std::vector<size_t>& attrs) override;
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  std::string name() const override { return "incorrect_category"; }
  ErrorTraits Describe() const override {
    return {.domain = ErrorDomain::kString, .uses_rng = true};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;

 private:
  std::vector<std::string> categories_;
};

/// \brief Typographical error: applies one random character edit
/// (swap adjacent, delete, duplicate, or replace) to a string value.
class TypoError : public ErrorFunction {
 public:
  TypoError() = default;
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  std::string name() const override { return "typo"; }
  ErrorTraits Describe() const override {
    return {.domain = ErrorDomain::kString, .uses_rng = true};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;
};

/// \brief Swaps the values of the first two targeted attributes
/// (transposed-fields entry error). Requires exactly two attributes
/// (enforced by Bind).
class SwapAttributesError : public ErrorFunction {
 public:
  SwapAttributesError() = default;
  Status Bind(BindContext& ctx, const std::vector<size_t>& attrs) override;
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  std::string name() const override { return "swap_attributes"; }
  ErrorTraits Describe() const override {
    return {};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;
};

/// \brief Random case corruption: each letter of a string value flips
/// case with probability `flip_probability` (inconsistent manual entry).
class CaseError : public ErrorFunction {
 public:
  explicit CaseError(double flip_probability = 0.5);
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  std::string name() const override { return "case"; }
  ErrorTraits Describe() const override {
    return {.domain = ErrorDomain::kString, .uses_rng = true};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;

 private:
  double flip_probability_;
};

/// \brief Truncation error: string values are cut to `max_length`
/// characters (fixed-width column overflow); severity gates application.
class TruncateError : public ErrorFunction {
 public:
  explicit TruncateError(size_t max_length);
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  std::string name() const override { return "truncate"; }
  ErrorTraits Describe() const override {
    return {.domain = ErrorDomain::kString};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;

 private:
  size_t max_length_;
};

}  // namespace icewafl

#endif  // ICEWAFL_CORE_ERRORS_VALUE_H_
