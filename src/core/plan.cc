#include "core/plan.h"

#include <utility>

namespace icewafl {

Result<std::shared_ptr<PlanSnapshot>> MakePlanSnapshot(
    std::string scenario, Json config, SchemaPtr schema,
    std::shared_ptr<const TupleVector> clean, PollutionPipeline pipeline,
    uint64_t seed, int parallelism, Timestamp stream_start,
    Timestamp stream_end, double tuples_per_sec) {
  if (schema == nullptr) {
    return Status::InvalidArgument("plan snapshot needs a schema");
  }
  if (clean == nullptr) {
    return Status::InvalidArgument("plan snapshot needs a clean stream");
  }
  ICEWAFL_RETURN_NOT_OK(pipeline.Bind(schema));
  auto plan = std::make_shared<PlanSnapshot>();
  plan->scenario = std::move(scenario);
  plan->config = std::move(config);
  plan->schema = std::move(schema);
  plan->clean = std::move(clean);
  plan->pipeline = std::move(pipeline);
  plan->seed = seed;
  plan->parallelism = parallelism < 1 ? 1 : parallelism;
  plan->stream_start = stream_start;
  plan->stream_end = stream_end;
  plan->tuples_per_sec = tuples_per_sec < 0 ? 0.0 : tuples_per_sec;
  return plan;
}

std::shared_ptr<PlanSnapshot> ClonePlan(const PlanSnapshot& plan) {
  auto copy = std::make_shared<PlanSnapshot>();
  copy->scenario = plan.scenario;
  copy->config = plan.config;
  copy->schema = plan.schema;
  copy->clean = plan.clean;
  copy->pipeline = plan.pipeline.Clone();
  copy->seed = plan.seed;
  copy->parallelism = plan.parallelism;
  copy->stream_start = plan.stream_start;
  copy->stream_end = plan.stream_end;
  copy->tuples_per_sec = plan.tuples_per_sec;
  copy->cleaner = plan.cleaner;
  // version / published_at stay unset: the publisher assigns them.
  return copy;
}

}  // namespace icewafl
