#include "core/keyed_polluter_operator.h"

namespace icewafl {

namespace {

/// FNV-1a; combined with the operator seed it derives the per-key seed.
uint64_t HashKey(const std::string& key) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

KeyedPolluterOperator::KeyedPolluterOperator(PollutionPipeline prototype,
                                             std::string key_attribute,
                                             uint64_t seed,
                                             Timestamp stream_start,
                                             Timestamp stream_end,
                                             PollutionLog* log)
    : prototype_(std::move(prototype)),
      key_attribute_(std::move(key_attribute)),
      seed_(seed),
      stream_start_(stream_start),
      stream_end_(stream_end),
      log_(log) {}

Status KeyedPolluterOperator::PolluteOne(Tuple* tuple, PollutionContext* ctx) {
  if (tuple->id() == kInvalidTupleId) {
    tuple->set_id(next_id_++);
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp ts, tuple->GetTimestamp());
    tuple->set_event_time(ts);
    tuple->set_arrival_time(ts);
  }
  ICEWAFL_ASSIGN_OR_RETURN(Value key_value, tuple->Get(key_attribute_));
  const std::string key = key_value.ToString("<null>");

  auto it = partitions_.find(key);
  if (it == partitions_.end()) {
    PollutionPipeline clone = prototype_.Clone();
    // Deterministic per-key randomness, independent of key interleaving.
    clone.Seed(seed_ ^ HashKey(key));
    it = partitions_.emplace(key, std::move(clone)).first;
  }

  ctx->tau = tuple->event_time();
  ctx->severity = 1.0;
  ctx->rng = nullptr;
  return it->second.Apply(tuple, ctx, log_);
}

Status KeyedPolluterOperator::Process(Tuple tuple, Emitter* out) {
  PollutionContext ctx;
  ctx.stream_start = stream_start_;
  ctx.stream_end = stream_end_;
  ICEWAFL_RETURN_NOT_OK(PolluteOne(&tuple, &ctx));
  return out->Emit(std::move(tuple));
}

Status KeyedPolluterOperator::ProcessBatch(TupleVector* batch, Emitter* out) {
  PollutionContext ctx;
  ctx.stream_start = stream_start_;
  ctx.stream_end = stream_end_;
  for (Tuple& tuple : *batch) {
    ICEWAFL_RETURN_NOT_OK(PolluteOne(&tuple, &ctx));
    ICEWAFL_RETURN_NOT_OK(out->Emit(std::move(tuple)));
  }
  batch->clear();
  return Status::OK();
}

std::map<std::string, uint64_t> KeyedPolluterOperator::AppliedCounts() const {
  std::map<std::string, uint64_t> totals;
  for (const auto& [key, pipeline] : partitions_) {
    for (const auto& [label, count] : pipeline.AppliedCounts()) {
      totals[label] += count;
    }
  }
  return totals;
}

}  // namespace icewafl
