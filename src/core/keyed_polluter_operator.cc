#include "core/keyed_polluter_operator.h"

namespace icewafl {

namespace {

/// FNV-1a; combined with the operator seed it derives the per-key seed.
uint64_t HashKey(std::string_view key) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

KeyedPolluterOperator::KeyedPolluterOperator(PollutionPipeline prototype,
                                             std::string key_attribute,
                                             uint64_t seed,
                                             Timestamp stream_start,
                                             Timestamp stream_end,
                                             PollutionLog* log)
    : prototype_(std::move(prototype)),
      key_attribute_(std::move(key_attribute)),
      seed_(seed),
      stream_start_(stream_start),
      stream_end_(stream_end),
      log_(log) {}

PollutionPipeline* KeyedPolluterOperator::PartitionFor(std::string_view key) {
  auto it = partitions_.find(key);
  if (it == partitions_.end()) {
    PollutionPipeline clone = prototype_.Clone();
    // Deterministic per-key randomness, independent of key interleaving.
    clone.Seed(seed_ ^ HashKey(key));
    it = partitions_.emplace(std::string(key), std::move(clone)).first;
  }
  return &it->second;
}

Status KeyedPolluterOperator::PolluteOne(Tuple* tuple, PollutionContext* ctx) {
  if (tuple->id() == kInvalidTupleId) {
    tuple->set_id(next_id_++);
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp ts, tuple->GetTimestamp());
    tuple->set_event_time(ts);
    tuple->set_arrival_time(ts);
  }
  if (key_schema_ != tuple->schema().get()) {
    if (tuple->schema() == nullptr) {
      return Status::Internal("keyed polluter: tuple has no schema");
    }
    ICEWAFL_ASSIGN_OR_RETURN(key_index_,
                             tuple->schema()->IndexOf(key_attribute_));
    key_schema_ = tuple->schema().get();
  }

  // Read the key by reference; string keys probe the map without a copy
  // (same bytes as ToString, so the per-key seeds are unchanged).
  const Value& key_value = tuple->value(key_index_);
  PollutionPipeline* partition =
      key_value.is_string() ? PartitionFor(key_value.AsString())
                            : PartitionFor(key_value.ToString("<null>"));

  ctx->tau = tuple->event_time();
  ctx->severity = 1.0;
  ctx->rng = nullptr;
  return partition->Apply(tuple, ctx, log_);
}

Status KeyedPolluterOperator::Process(Tuple tuple, Emitter* out) {
  PollutionContext ctx;
  ctx.stream_start = stream_start_;
  ctx.stream_end = stream_end_;
  ICEWAFL_RETURN_NOT_OK(PolluteOne(&tuple, &ctx));
  return out->Emit(std::move(tuple));
}

Status KeyedPolluterOperator::ProcessBatch(TupleVector* batch, Emitter* out) {
  PollutionContext ctx;
  ctx.stream_start = stream_start_;
  ctx.stream_end = stream_end_;
  for (Tuple& tuple : *batch) {
    ICEWAFL_RETURN_NOT_OK(PolluteOne(&tuple, &ctx));
    ICEWAFL_RETURN_NOT_OK(out->Emit(std::move(tuple)));
  }
  batch->clear();
  return Status::OK();
}

std::map<std::string, uint64_t> KeyedPolluterOperator::AppliedCounts() const {
  std::map<std::string, uint64_t> totals;
  for (const auto& [key, pipeline] : partitions_) {
    for (const auto& [label, count] : pipeline.AppliedCounts()) {
      totals[label] += count;
    }
  }
  return totals;
}

}  // namespace icewafl
