#ifndef ICEWAFL_CORE_TIME_PROFILE_H_
#define ICEWAFL_CORE_TIME_PROFILE_H_

#include <memory>
#include <string>

#include "core/context.h"
#include "util/json.h"

namespace icewafl {

/// \brief Conservative enclosure of a profile's value range over all
/// event times: every Evaluate() result lies in [lo, hi] (both within
/// [0, 1]). The static analyzer uses it to decide whether a
/// profile-driven activation probability can ever exceed zero (hi == 0
/// means the polluter is unreachable) or ever drops below one (lo >= 1
/// means a "probabilistic" condition always fires).
struct ProfileBounds {
  double lo = 0.0;
  double hi = 1.0;
};

/// \brief A change pattern: a function of event time into [0, 1].
///
/// Profiles implement the change patterns of Figure 3 (abrupt,
/// incremental, intermediate; after Gama et al.) plus the periodic and
/// stream-relative shapes used in the paper's experiments. They serve two
/// roles: (a) severity modulation of a static error in a derived temporal
/// error, and (b) time-varying activation probability inside a
/// ProfileProbabilityCondition.
class TimeProfile {
 public:
  virtual ~TimeProfile() = default;

  /// \brief Profile value at the context's event time, clamped to [0, 1].
  virtual double Evaluate(const PollutionContext& ctx) const = 0;

  virtual std::string name() const = 0;

  /// \brief Conservative value-range enclosure; see ProfileBounds. The
  /// default is the whole [0, 1] range.
  virtual ProfileBounds Bounds() const { return {}; }

  /// \brief Config/log representation.
  virtual Json ToJson() const = 0;

  virtual std::unique_ptr<TimeProfile> Clone() const = 0;
};

using TimeProfilePtr = std::unique_ptr<TimeProfile>;

/// \brief Constant value (degenerates a derived error to a static one).
class ConstantProfile : public TimeProfile {
 public:
  explicit ConstantProfile(double value);
  double Evaluate(const PollutionContext& ctx) const override;
  std::string name() const override { return "constant"; }
  ProfileBounds Bounds() const override;
  Json ToJson() const override;
  TimeProfilePtr Clone() const override;

 private:
  double value_;
};

/// \brief Abrupt change: `before` until `change_time`, `after` from then on.
class AbruptProfile : public TimeProfile {
 public:
  AbruptProfile(Timestamp change_time, double before = 0.0, double after = 1.0);
  double Evaluate(const PollutionContext& ctx) const override;
  std::string name() const override { return "abrupt"; }
  ProfileBounds Bounds() const override;
  Json ToJson() const override;
  TimeProfilePtr Clone() const override;

 private:
  Timestamp change_time_;
  double before_;
  double after_;
};

/// \brief Incremental change: linear ramp from `from` to `to` over
/// [ramp_start, ramp_end] (e.g. "over the next five minutes, missing-value
/// probability increases from 40% to 90%").
class IncrementalProfile : public TimeProfile {
 public:
  IncrementalProfile(Timestamp ramp_start, Timestamp ramp_end,
                     double from = 0.0, double to = 1.0);
  double Evaluate(const PollutionContext& ctx) const override;
  std::string name() const override { return "incremental"; }
  ProfileBounds Bounds() const override;
  Json ToJson() const override;
  TimeProfilePtr Clone() const override;

 private:
  Timestamp ramp_start_;
  Timestamp ramp_end_;
  double from_;
  double to_;
};

/// \brief Intermediate (gradual) change: during the transition window the
/// profile alternates between the old and new level, switching to the new
/// one with probability growing linearly across the window.
class IntermediateProfile : public TimeProfile {
 public:
  IntermediateProfile(Timestamp ramp_start, Timestamp ramp_end,
                      double before = 0.0, double after = 1.0);
  double Evaluate(const PollutionContext& ctx) const override;
  std::string name() const override { return "intermediate"; }
  ProfileBounds Bounds() const override;
  Json ToJson() const override;
  TimeProfilePtr Clone() const override;

 private:
  Timestamp ramp_start_;
  Timestamp ramp_end_;
  double before_;
  double after_;
};

/// \brief Periodic (co)sinusoidal profile over the hour of day:
/// amplitude * cos(2*pi/period_hours * h + phase) + offset, clamped.
///
/// With amplitude = offset = 0.25, period 24h, phase 0, this is exactly
/// the daily error pattern of Experiment 3.1.1:
/// p(t) = 0.25 * cos(pi/12 * t) + 0.25.
class SinusoidalProfile : public TimeProfile {
 public:
  SinusoidalProfile(double period_hours, double amplitude, double offset,
                    double phase = 0.0);
  double Evaluate(const PollutionContext& ctx) const override;
  std::string name() const override { return "sinusoidal"; }
  ProfileBounds Bounds() const override;
  Json ToJson() const override;
  TimeProfilePtr Clone() const override;

 private:
  double period_hours_;
  double amplitude_;
  double offset_;
  double phase_;
};

/// \brief Reoccurring drift: a square wave alternating between `low` and
/// `high` with the given period (hours); the pattern class Gama et al.
/// call "reoccurring concepts" — an error regime that comes and goes.
class ReoccurringProfile : public TimeProfile {
 public:
  ReoccurringProfile(double period_hours, double low = 0.0, double high = 1.0,
                     double duty_cycle = 0.5);
  double Evaluate(const PollutionContext& ctx) const override;
  std::string name() const override { return "reoccurring"; }
  ProfileBounds Bounds() const override;
  Json ToJson() const override;
  TimeProfilePtr Clone() const override;

 private:
  double period_hours_;
  double low_;
  double high_;
  double duty_cycle_;
};

/// \brief Transient spike: a Gaussian bump of height `peak` centered at
/// `center` with the given width (stddev, seconds) — a one-off incident
/// like a brief outage or interference burst.
class SpikeProfile : public TimeProfile {
 public:
  SpikeProfile(Timestamp center, int64_t width_seconds, double peak = 1.0);
  double Evaluate(const PollutionContext& ctx) const override;
  std::string name() const override { return "spike"; }
  ProfileBounds Bounds() const override;
  Json ToJson() const override;
  TimeProfilePtr Clone() const override;

 private:
  Timestamp center_;
  int64_t width_seconds_;
  double peak_;
};

/// \brief Stream-relative linear ramp:
/// value(tau) = scale * hours(tau - tau_0) / hours(tau_n - tau_0).
///
/// Implements Equations 3 and 4 of the paper (temporally increasing noise
/// magnitude / activation probability).
class StreamRampProfile : public TimeProfile {
 public:
  explicit StreamRampProfile(double scale = 1.0);
  double Evaluate(const PollutionContext& ctx) const override;
  std::string name() const override { return "stream_ramp"; }
  ProfileBounds Bounds() const override;
  Json ToJson() const override;
  TimeProfilePtr Clone() const override;

 private:
  double scale_;
};

}  // namespace icewafl

#endif  // ICEWAFL_CORE_TIME_PROFILE_H_
