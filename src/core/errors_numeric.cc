#include "core/errors_numeric.h"

#include <cctype>
#include <cmath>
#include <utility>

#include "util/strings.h"

namespace icewafl {

namespace {

/// Applies `fn` to every targeted numeric value. Column types are
/// validated at Bind (ErrorDomain::kNumeric); per tuple we only skip
/// NULLs and values whose runtime type diverged from the declared one.
/// Integer attributes stay integers (rounded).
template <typename Fn>
void TransformNumeric(Tuple* tuple, const std::vector<size_t>& attrs,
                      Fn&& fn) {
  for (size_t idx : attrs) {
    if (idx >= tuple->num_values()) continue;
    const Value& v = tuple->value(idx);
    if (!v.is_numeric()) continue;
    const double in =
        v.is_double() ? v.AsDouble() : static_cast<double>(v.AsInt64());
    const double out = fn(in);
    if (v.is_int64()) {
      tuple->set_value(idx, Value(static_cast<int64_t>(std::llround(out))));
    } else {
      tuple->set_value(idx, Value(out));
    }
  }
}

/// Discrete errors treat severity as an application probability.
bool SeverityGate(PollutionContext* ctx) {
  if (ctx->severity >= 1.0) return true;
  if (ctx->rng == nullptr) return ctx->severity > 0.5;
  return ctx->rng->Bernoulli(ctx->severity);
}

}  // namespace

GaussianNoiseError::GaussianNoiseError(double stddev, bool multiplicative)
    : stddev_(stddev), multiplicative_(multiplicative) {}

void GaussianNoiseError::Apply(Tuple* tuple,
                               const std::vector<size_t>& attrs,
                               PollutionContext* ctx) {
  const double sigma = stddev_ * ctx->severity;
  TransformNumeric(tuple, attrs, [&](double v) {
    const double noise = ctx->rng != nullptr ? ctx->rng->Gaussian(0.0, sigma)
                                             : 0.0;
    return multiplicative_ ? v * (1.0 + noise) : v + noise;
  });
}

Json GaussianNoiseError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "gaussian_noise");
  j.Set("stddev", stddev_);
  j.Set("multiplicative", multiplicative_);
  return j;
}

ErrorFunctionPtr GaussianNoiseError::Clone() const {
  return std::make_unique<GaussianNoiseError>(*this);
}

UniformNoiseError::UniformNoiseError(double lo, double hi)
    : lo_(lo), hi_(hi) {}

void UniformNoiseError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                              PollutionContext* ctx) {
  const double lo = lo_ * ctx->severity;
  const double hi = hi_ * ctx->severity;
  TransformNumeric(tuple, attrs, [&](double v) {
    if (ctx->rng == nullptr) return v;
    const double f = ctx->rng->Uniform(lo, hi);
    const bool increase = ctx->rng->Bernoulli(0.5);
    return increase ? v * (1.0 + f) : v * (1.0 - f);
  });
}

Json UniformNoiseError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "uniform_noise");
  j.Set("lo", lo_);
  j.Set("hi", hi_);
  return j;
}

ErrorFunctionPtr UniformNoiseError::Clone() const {
  return std::make_unique<UniformNoiseError>(*this);
}

ScaleError::ScaleError(double factor) : factor_(factor) {}

void ScaleError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                       PollutionContext* ctx) {
  const double factor = 1.0 + (factor_ - 1.0) * ctx->severity;
  TransformNumeric(tuple, attrs, [&](double v) { return v * factor; });
}

Json ScaleError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "scale");
  j.Set("factor", factor_);
  return j;
}

ErrorFunctionPtr ScaleError::Clone() const {
  return std::make_unique<ScaleError>(*this);
}

OffsetError::OffsetError(double delta) : delta_(delta) {}

void OffsetError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                        PollutionContext* ctx) {
  const double delta = delta_ * ctx->severity;
  TransformNumeric(tuple, attrs, [&](double v) { return v + delta; });
}

Json OffsetError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "offset");
  j.Set("delta", delta_);
  return j;
}

ErrorFunctionPtr OffsetError::Clone() const {
  return std::make_unique<OffsetError>(*this);
}

RoundError::RoundError(int precision) : precision_(precision) {}

void RoundError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                       PollutionContext* ctx) {
  if (!SeverityGate(ctx)) return;
  const double scale = std::pow(10.0, precision_);
  TransformNumeric(tuple, attrs,
                   [&](double v) { return std::round(v * scale) / scale; });
}

Json RoundError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "round");
  j.Set("precision", precision_);
  return j;
}

ErrorFunctionPtr RoundError::Clone() const {
  return std::make_unique<RoundError>(*this);
}

UnitConversionError::UnitConversionError(double factor, std::string from_unit,
                                         std::string to_unit)
    : factor_(factor),
      from_unit_(std::move(from_unit)),
      to_unit_(std::move(to_unit)) {}

void UnitConversionError::Apply(Tuple* tuple,
                                const std::vector<size_t>& attrs,
                                PollutionContext* ctx) {
  if (!SeverityGate(ctx)) return;
  TransformNumeric(tuple, attrs, [&](double v) { return v * factor_; });
}

Json UnitConversionError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "unit_conversion");
  j.Set("factor", factor_);
  j.Set("from_unit", from_unit_);
  j.Set("to_unit", to_unit_);
  return j;
}

ErrorFunctionPtr UnitConversionError::Clone() const {
  return std::make_unique<UnitConversionError>(*this);
}

OutlierError::OutlierError(double min_factor, double max_factor)
    : min_factor_(min_factor), max_factor_(max_factor) {}

void OutlierError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                         PollutionContext* ctx) {
  if (!SeverityGate(ctx)) return;
  TransformNumeric(tuple, attrs, [&](double v) {
    if (ctx->rng == nullptr) return v * max_factor_;
    const double f = ctx->rng->Uniform(min_factor_, max_factor_);
    return ctx->rng->Bernoulli(0.5) ? v * f : v / f;
  });
}

Json OutlierError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "outlier");
  j.Set("min_factor", min_factor_);
  j.Set("max_factor", max_factor_);
  return j;
}

ErrorFunctionPtr OutlierError::Clone() const {
  return std::make_unique<OutlierError>(*this);
}

void DigitSwapError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                           PollutionContext* ctx) {
  if (!SeverityGate(ctx)) return;
  for (size_t idx : attrs) {
    if (idx >= tuple->num_values()) continue;
    const Value& v = tuple->value(idx);
    if (!v.is_numeric()) continue;
    std::string text = v.ToString();
    // Positions where this digit and the next are both digits.
    std::vector<size_t> swappable;
    for (size_t i = 0; i + 1 < text.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(text[i])) &&
          std::isdigit(static_cast<unsigned char>(text[i + 1])) &&
          text[i] != text[i + 1]) {
        swappable.push_back(i);
      }
    }
    if (swappable.empty()) continue;
    const size_t pick =
        ctx->rng != nullptr
            ? static_cast<size_t>(ctx->rng->UniformInt(
                  0, static_cast<int64_t>(swappable.size()) - 1))
            : 0;
    std::swap(text[swappable[pick]], text[swappable[pick] + 1]);
    if (v.is_int64()) {
      auto parsed = ParseInt64(text);
      if (parsed.ok()) tuple->set_value(idx, Value(parsed.ValueOrDie()));
    } else {
      auto parsed = ParseDouble(text);
      if (parsed.ok()) tuple->set_value(idx, Value(parsed.ValueOrDie()));
    }
  }
}

Json DigitSwapError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "digit_swap");
  return j;
}

ErrorFunctionPtr DigitSwapError::Clone() const {
  return std::make_unique<DigitSwapError>();
}

void SignFlipError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                          PollutionContext* ctx) {
  if (!SeverityGate(ctx)) return;
  TransformNumeric(tuple, attrs, [](double v) { return -v; });
}

Json SignFlipError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "sign_flip");
  return j;
}

ErrorFunctionPtr SignFlipError::Clone() const {
  return std::make_unique<SignFlipError>();
}

}  // namespace icewafl
