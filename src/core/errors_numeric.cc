#include "core/errors_numeric.h"

#include <cctype>
#include <cmath>
#include <utility>

#include "util/strings.h"

namespace icewafl {

namespace {

/// Applies `fn` to every targeted numeric value. Column types are
/// validated at Bind (ErrorDomain::kNumeric); per tuple we only skip
/// NULLs and values whose runtime type diverged from the declared one.
/// Integer attributes stay integers (rounded).
template <typename Fn>
void TransformNumeric(Tuple* tuple, const std::vector<size_t>& attrs,
                      Fn&& fn) {
  for (size_t idx : attrs) {
    if (idx >= tuple->num_values()) continue;
    const Value& v = tuple->value(idx);
    if (!v.is_numeric()) continue;
    const double in =
        v.is_double() ? v.AsDouble() : static_cast<double>(v.AsInt64());
    const double out = fn(in);
    if (v.is_int64()) {
      tuple->set_value(idx, Value(static_cast<int64_t>(std::llround(out))));
    } else {
      tuple->set_value(idx, Value(out));
    }
  }
}

/// Discrete errors treat severity as an application probability.
bool SeverityGate(PollutionContext* ctx) {
  if (ctx->severity >= 1.0) return true;
  if (ctx->rng == nullptr) return ctx->severity > 0.5;
  return ctx->rng->Bernoulli(ctx->severity);
}

/// Per-row columnar twin of TransformNumeric: rewrites the targeted
/// columns of one batch row. Valid slots are transformed in place in
/// the typed buffers; divergent values are transformed only when
/// numeric, preserving their runtime type, so a row round-trips to
/// exactly the bytes the tuple path would produce.
template <typename Fn>
void TransformNumericRow(Batch* batch, const std::vector<size_t>& attrs,
                         size_t row, Fn&& fn) {
  for (size_t idx : attrs) {
    if (idx >= batch->num_columns()) continue;
    Column& col = batch->column(idx);
    if (col.IsValid(row)) {
      if (col.declared_type() == ValueType::kDouble) {
        double* slot = col.doubles() + row;
        *slot = fn(*slot);
      } else if (col.declared_type() == ValueType::kInt64) {
        int64_t* slot = col.int64s() + row;
        *slot = static_cast<int64_t>(
            std::llround(fn(static_cast<double>(*slot))));
      }
      continue;
    }
    Value* dv = col.DivergentAt(row);
    if (dv == nullptr || !dv->is_numeric()) continue;
    const double in =
        dv->is_double() ? dv->AsDouble() : static_cast<double>(dv->AsInt64());
    const double out = fn(in);
    *dv = dv->is_int64() ? Value(static_cast<int64_t>(std::llround(out)))
                         : Value(out);
  }
}

/// Column-major twin for draw-free transforms (scale/offset, or gated
/// errors running at severity 1.0 where the gate never draws): tight
/// loops over the typed buffers for masked valid rows, then the
/// divergent tail. Must not be used when fn draws from the RNG — the
/// column-major order would permute the tuple path's row-major draws.
template <typename Fn>
void TransformNumericColumns(Batch* batch, const std::vector<size_t>& attrs,
                             const uint8_t* mask, Fn&& fn) {
  const size_t rows = batch->rows();
  for (size_t idx : attrs) {
    if (idx >= batch->num_columns()) continue;
    Column& col = batch->column(idx);
    if (col.declared_type() == ValueType::kDouble) {
      double* values = col.doubles();
      for (size_t r = 0; r < rows; ++r) {
        if (mask[r] != 0 && col.IsValid(r)) values[r] = fn(values[r]);
      }
    } else if (col.declared_type() == ValueType::kInt64) {
      int64_t* values = col.int64s();
      for (size_t r = 0; r < rows; ++r) {
        if (mask[r] != 0 && col.IsValid(r)) {
          values[r] = static_cast<int64_t>(
              std::llround(fn(static_cast<double>(values[r]))));
        }
      }
    }
    for (auto& [row, dv] : col.mutable_divergent()) {
      if (mask[row] == 0 || !dv.is_numeric()) continue;
      const double in =
          dv.is_double() ? dv.AsDouble() : static_cast<double>(dv.AsInt64());
      const double out = fn(in);
      dv = dv.is_int64() ? Value(static_cast<int64_t>(std::llround(out)))
                         : Value(out);
    }
  }
}

}  // namespace

GaussianNoiseError::GaussianNoiseError(double stddev, bool multiplicative)
    : stddev_(stddev), multiplicative_(multiplicative) {}

void GaussianNoiseError::Apply(Tuple* tuple,
                               const std::vector<size_t>& attrs,
                               PollutionContext* ctx) {
  const double sigma = stddev_ * ctx->severity;
  TransformNumeric(tuple, attrs, [&](double v) {
    const double noise = ctx->rng != nullptr ? ctx->rng->Gaussian(0.0, sigma)
                                             : 0.0;
    return multiplicative_ ? v * (1.0 + noise) : v + noise;
  });
}

void GaussianNoiseError::ApplyColumnar(Batch* batch,
                                       const std::vector<size_t>& attrs,
                                       const uint8_t* mask,
                                       PollutionContext* ctx) {
  const double sigma = stddev_ * ctx->severity;
  const size_t rows = batch->rows();
  for (size_t r = 0; r < rows; ++r) {
    if (mask[r] == 0) continue;
    TransformNumericRow(batch, attrs, r, [&](double v) {
      const double noise =
          ctx->rng != nullptr ? ctx->rng->Gaussian(0.0, sigma) : 0.0;
      return multiplicative_ ? v * (1.0 + noise) : v + noise;
    });
  }
}

Json GaussianNoiseError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "gaussian_noise");
  j.Set("stddev", stddev_);
  j.Set("multiplicative", multiplicative_);
  return j;
}

ErrorFunctionPtr GaussianNoiseError::Clone() const {
  return std::make_unique<GaussianNoiseError>(*this);
}

UniformNoiseError::UniformNoiseError(double lo, double hi)
    : lo_(lo), hi_(hi) {}

void UniformNoiseError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                              PollutionContext* ctx) {
  const double lo = lo_ * ctx->severity;
  const double hi = hi_ * ctx->severity;
  TransformNumeric(tuple, attrs, [&](double v) {
    if (ctx->rng == nullptr) return v;
    const double f = ctx->rng->Uniform(lo, hi);
    const bool increase = ctx->rng->Bernoulli(0.5);
    return increase ? v * (1.0 + f) : v * (1.0 - f);
  });
}

void UniformNoiseError::ApplyColumnar(Batch* batch,
                                      const std::vector<size_t>& attrs,
                                      const uint8_t* mask,
                                      PollutionContext* ctx) {
  const double lo = lo_ * ctx->severity;
  const double hi = hi_ * ctx->severity;
  const size_t rows = batch->rows();
  for (size_t r = 0; r < rows; ++r) {
    if (mask[r] == 0) continue;
    TransformNumericRow(batch, attrs, r, [&](double v) {
      if (ctx->rng == nullptr) return v;
      const double f = ctx->rng->Uniform(lo, hi);
      const bool increase = ctx->rng->Bernoulli(0.5);
      return increase ? v * (1.0 + f) : v * (1.0 - f);
    });
  }
}

Json UniformNoiseError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "uniform_noise");
  j.Set("lo", lo_);
  j.Set("hi", hi_);
  return j;
}

ErrorFunctionPtr UniformNoiseError::Clone() const {
  return std::make_unique<UniformNoiseError>(*this);
}

ScaleError::ScaleError(double factor) : factor_(factor) {}

void ScaleError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                       PollutionContext* ctx) {
  const double factor = 1.0 + (factor_ - 1.0) * ctx->severity;
  TransformNumeric(tuple, attrs, [&](double v) { return v * factor; });
}

void ScaleError::ApplyColumnar(Batch* batch, const std::vector<size_t>& attrs,
                               const uint8_t* mask, PollutionContext* ctx) {
  const double factor = 1.0 + (factor_ - 1.0) * ctx->severity;
  TransformNumericColumns(batch, attrs, mask,
                          [&](double v) { return v * factor; });
}

Json ScaleError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "scale");
  j.Set("factor", factor_);
  return j;
}

ErrorFunctionPtr ScaleError::Clone() const {
  return std::make_unique<ScaleError>(*this);
}

OffsetError::OffsetError(double delta) : delta_(delta) {}

void OffsetError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                        PollutionContext* ctx) {
  const double delta = delta_ * ctx->severity;
  TransformNumeric(tuple, attrs, [&](double v) { return v + delta; });
}

void OffsetError::ApplyColumnar(Batch* batch, const std::vector<size_t>& attrs,
                                const uint8_t* mask, PollutionContext* ctx) {
  const double delta = delta_ * ctx->severity;
  TransformNumericColumns(batch, attrs, mask,
                          [&](double v) { return v + delta; });
}

Json OffsetError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "offset");
  j.Set("delta", delta_);
  return j;
}

ErrorFunctionPtr OffsetError::Clone() const {
  return std::make_unique<OffsetError>(*this);
}

RoundError::RoundError(int precision) : precision_(precision) {}

void RoundError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                       PollutionContext* ctx) {
  if (!SeverityGate(ctx)) return;
  const double scale = std::pow(10.0, precision_);
  TransformNumeric(tuple, attrs,
                   [&](double v) { return std::round(v * scale) / scale; });
}

void RoundError::ApplyColumnar(Batch* batch, const std::vector<size_t>& attrs,
                               const uint8_t* mask, PollutionContext* ctx) {
  const double scale = std::pow(10.0, precision_);
  auto fn = [&](double v) { return std::round(v * scale) / scale; };
  if (ctx->severity >= 1.0) {
    // Gate always passes without drawing; column-major is draw-free.
    TransformNumericColumns(batch, attrs, mask, fn);
    return;
  }
  const size_t rows = batch->rows();
  for (size_t r = 0; r < rows; ++r) {
    if (mask[r] != 0 && SeverityGate(ctx)) {
      TransformNumericRow(batch, attrs, r, fn);
    }
  }
}

Json RoundError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "round");
  j.Set("precision", precision_);
  return j;
}

ErrorFunctionPtr RoundError::Clone() const {
  return std::make_unique<RoundError>(*this);
}

UnitConversionError::UnitConversionError(double factor, std::string from_unit,
                                         std::string to_unit)
    : factor_(factor),
      from_unit_(std::move(from_unit)),
      to_unit_(std::move(to_unit)) {}

void UnitConversionError::Apply(Tuple* tuple,
                                const std::vector<size_t>& attrs,
                                PollutionContext* ctx) {
  if (!SeverityGate(ctx)) return;
  TransformNumeric(tuple, attrs, [&](double v) { return v * factor_; });
}

void UnitConversionError::ApplyColumnar(Batch* batch,
                                        const std::vector<size_t>& attrs,
                                        const uint8_t* mask,
                                        PollutionContext* ctx) {
  auto fn = [&](double v) { return v * factor_; };
  if (ctx->severity >= 1.0) {
    TransformNumericColumns(batch, attrs, mask, fn);
    return;
  }
  const size_t rows = batch->rows();
  for (size_t r = 0; r < rows; ++r) {
    if (mask[r] != 0 && SeverityGate(ctx)) {
      TransformNumericRow(batch, attrs, r, fn);
    }
  }
}

Json UnitConversionError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "unit_conversion");
  j.Set("factor", factor_);
  j.Set("from_unit", from_unit_);
  j.Set("to_unit", to_unit_);
  return j;
}

ErrorFunctionPtr UnitConversionError::Clone() const {
  return std::make_unique<UnitConversionError>(*this);
}

OutlierError::OutlierError(double min_factor, double max_factor)
    : min_factor_(min_factor), max_factor_(max_factor) {}

void OutlierError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                         PollutionContext* ctx) {
  if (!SeverityGate(ctx)) return;
  TransformNumeric(tuple, attrs, [&](double v) {
    if (ctx->rng == nullptr) return v * max_factor_;
    const double f = ctx->rng->Uniform(min_factor_, max_factor_);
    return ctx->rng->Bernoulli(0.5) ? v * f : v / f;
  });
}

void OutlierError::ApplyColumnar(Batch* batch,
                                 const std::vector<size_t>& attrs,
                                 const uint8_t* mask, PollutionContext* ctx) {
  const size_t rows = batch->rows();
  for (size_t r = 0; r < rows; ++r) {
    if (mask[r] == 0 || !SeverityGate(ctx)) continue;
    TransformNumericRow(batch, attrs, r, [&](double v) {
      if (ctx->rng == nullptr) return v * max_factor_;
      const double f = ctx->rng->Uniform(min_factor_, max_factor_);
      return ctx->rng->Bernoulli(0.5) ? v * f : v / f;
    });
  }
}

Json OutlierError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "outlier");
  j.Set("min_factor", min_factor_);
  j.Set("max_factor", max_factor_);
  return j;
}

ErrorFunctionPtr OutlierError::Clone() const {
  return std::make_unique<OutlierError>(*this);
}

void DigitSwapError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                           PollutionContext* ctx) {
  if (!SeverityGate(ctx)) return;
  for (size_t idx : attrs) {
    if (idx >= tuple->num_values()) continue;
    const Value& v = tuple->value(idx);
    if (!v.is_numeric()) continue;
    std::string text = v.ToString();
    // Positions where this digit and the next are both digits.
    std::vector<size_t> swappable;
    for (size_t i = 0; i + 1 < text.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(text[i])) &&
          std::isdigit(static_cast<unsigned char>(text[i + 1])) &&
          text[i] != text[i + 1]) {
        swappable.push_back(i);
      }
    }
    if (swappable.empty()) continue;
    const size_t pick =
        ctx->rng != nullptr
            ? static_cast<size_t>(ctx->rng->UniformInt(
                  0, static_cast<int64_t>(swappable.size()) - 1))
            : 0;
    std::swap(text[swappable[pick]], text[swappable[pick] + 1]);
    if (v.is_int64()) {
      auto parsed = ParseInt64(text);
      if (parsed.ok()) tuple->set_value(idx, Value(parsed.ValueOrDie()));
    } else {
      auto parsed = ParseDouble(text);
      if (parsed.ok()) tuple->set_value(idx, Value(parsed.ValueOrDie()));
    }
  }
}

Json DigitSwapError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "digit_swap");
  return j;
}

ErrorFunctionPtr DigitSwapError::Clone() const {
  return std::make_unique<DigitSwapError>();
}

void SignFlipError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                          PollutionContext* ctx) {
  if (!SeverityGate(ctx)) return;
  TransformNumeric(tuple, attrs, [](double v) { return -v; });
}

void SignFlipError::ApplyColumnar(Batch* batch,
                                  const std::vector<size_t>& attrs,
                                  const uint8_t* mask, PollutionContext* ctx) {
  auto fn = [](double v) { return -v; };
  if (ctx->severity >= 1.0) {
    TransformNumericColumns(batch, attrs, mask, fn);
    return;
  }
  const size_t rows = batch->rows();
  for (size_t r = 0; r < rows; ++r) {
    if (mask[r] != 0 && SeverityGate(ctx)) {
      TransformNumericRow(batch, attrs, r, fn);
    }
  }
}

Json SignFlipError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "sign_flip");
  return j;
}

ErrorFunctionPtr SignFlipError::Clone() const {
  return std::make_unique<SignFlipError>();
}

}  // namespace icewafl
