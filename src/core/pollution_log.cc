#include "core/pollution_log.h"

#include <set>

namespace icewafl {

std::map<std::string, uint64_t> PollutionLog::CountsByPolluter() const {
  std::map<std::string, uint64_t> counts;
  for (const PollutionLogEntry& e : entries_) ++counts[e.polluter];
  return counts;
}

uint64_t PollutionLog::DistinctTupleCount() const {
  std::set<std::pair<TupleId, int>> seen;
  for (const PollutionLogEntry& e : entries_) {
    seen.emplace(e.tuple_id, e.substream);
  }
  return seen.size();
}

std::vector<uint64_t> PollutionLog::HourOfDayHistogram() const {
  std::vector<uint64_t> hist(24, 0);
  for (const PollutionLogEntry& e : entries_) {
    ++hist[static_cast<size_t>(HourOfDay(e.tau))];
  }
  return hist;
}

Json PollutionLog::ToJson() const {
  Json arr = Json::MakeArray();
  for (const PollutionLogEntry& e : entries_) {
    Json obj = Json::MakeObject();
    obj.Set("tuple_id", static_cast<int64_t>(e.tuple_id));
    obj.Set("substream", e.substream);
    obj.Set("polluter", e.polluter);
    obj.Set("error_type", e.error_type);
    Json attrs = Json::MakeArray();
    for (const std::string& a : e.attributes) attrs.Append(Json(a));
    obj.Set("attributes", std::move(attrs));
    obj.Set("tau", static_cast<int64_t>(e.tau));
    arr.Append(std::move(obj));
  }
  Json root = Json::MakeObject();
  root.Set("entries", std::move(arr));
  return root;
}

Result<PollutionLog> PollutionLog::FromJson(const Json& json) {
  PollutionLog log;
  ICEWAFL_ASSIGN_OR_RETURN(Json entries, json.Get("entries"));
  if (!entries.is_array()) {
    return Status::ParseError("pollution log 'entries' must be an array");
  }
  for (const Json& item : entries.items()) {
    if (!item.is_object()) {
      return Status::ParseError("pollution log entry must be an object");
    }
    PollutionLogEntry e;
    e.tuple_id = static_cast<TupleId>(item.GetInt("tuple_id", -1));
    e.substream = static_cast<int>(item.GetInt("substream", kNoSubstream));
    e.polluter = item.GetString("polluter", "");
    e.error_type = item.GetString("error_type", "");
    e.tau = item.GetInt("tau", 0);
    auto attrs = item.Get("attributes");
    if (attrs.ok() && attrs.ValueOrDie().is_array()) {
      for (const Json& a : attrs.ValueOrDie().items()) {
        if (a.is_string()) e.attributes.push_back(a.AsString());
      }
    }
    log.Record(std::move(e));
  }
  return log;
}

}  // namespace icewafl
