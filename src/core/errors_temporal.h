#ifndef ICEWAFL_CORE_ERRORS_TEMPORAL_H_
#define ICEWAFL_CORE_ERRORS_TEMPORAL_H_

#include <optional>
#include <string>
#include <vector>

#include "core/error_function.h"

namespace icewafl {

/// \brief Native temporal error: delays the tuple's arrival by
/// `delay_seconds` (bad network connection, Experiment 3.1.3).
///
/// The tuple's attribute values — including its timestamp attribute —
/// stay untouched; only the arrival time shifts, so after the integration
/// step (which orders by arrival) the tuple appears late in the stream
/// and breaks the increasing-timestamp property a DQ tool checks.
class DelayError : public ErrorFunction {
 public:
  explicit DelayError(int64_t delay_seconds);
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  std::string name() const override { return "delay"; }
  ErrorTraits Describe() const override {
    return {.domain = ErrorDomain::kMetadata, .delays_arrival = true};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;

 private:
  int64_t delay_seconds_;
};

/// \brief Native temporal error: a stuck sensor repeating its last
/// reading.
///
/// While active, targeted attributes are replaced by the value observed
/// just before the freeze began; a freeze lasts `hold_seconds` of event
/// time from its first application, after which a new freeze (with a new
/// captured value) can begin.
class FrozenValueError : public ErrorFunction {
 public:
  explicit FrozenValueError(int64_t hold_seconds);
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  void Observe(const Tuple& tuple,
               const std::vector<size_t>& attrs) override;
  std::string name() const override { return "frozen_value"; }
  ErrorTraits Describe() const override {
    return {};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;

 private:
  int64_t hold_seconds_;
  // Values of the previous and the current tuple, in `attrs` order.
  std::optional<std::vector<Value>> prev_values_;
  std::optional<std::vector<Value>> last_values_;
  // Values written while the freeze is active.
  std::optional<std::vector<Value>> frozen_values_;
  Timestamp freeze_until_ = INT64_MIN;
};

/// \brief Native temporal error: shifts the tuple's *timestamp attribute*
/// by a constant (clock skew). Unlike DelayError, the tuple's stream
/// position is unchanged — the recorded time is wrong.
class TimestampShiftError : public ErrorFunction {
 public:
  explicit TimestampShiftError(int64_t shift_seconds);
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  std::string name() const override { return "timestamp_shift"; }
  ErrorTraits Describe() const override {
    return {.domain = ErrorDomain::kMetadata, .mutates_timestamp = true};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;

 private:
  int64_t shift_seconds_;
};

/// \brief Native temporal error: adds uniform jitter in
/// [-max_jitter_seconds, +max_jitter_seconds] to the timestamp attribute
/// (unstable clock).
class TimestampJitterError : public ErrorFunction {
 public:
  explicit TimestampJitterError(int64_t max_jitter_seconds);
  void Apply(Tuple* tuple, const std::vector<size_t>& attrs,
             PollutionContext* ctx) override;
  std::string name() const override { return "timestamp_jitter"; }
  ErrorTraits Describe() const override {
    return {.domain = ErrorDomain::kMetadata, .uses_rng = true,
            .mutates_timestamp = true};
  }
  Json ToJson() const override;
  ErrorFunctionPtr Clone() const override;

 private:
  int64_t max_jitter_seconds_;
};

}  // namespace icewafl

#endif  // ICEWAFL_CORE_ERRORS_TEMPORAL_H_
