#ifndef ICEWAFL_CORE_DUPLICATING_OPERATOR_H_
#define ICEWAFL_CORE_DUPLICATING_OPERATOR_H_

#include <utility>

#include "core/pipeline.h"
#include "stream/operator.h"
#include "util/rng.h"

namespace icewafl {

/// \brief Injects (fuzzy) duplicate tuples — an error class the
/// tuple-to-tuple polluter model cannot express because it needs 1:N
/// semantics (Section 2.2.2 obtains duplicates from overlapping
/// sub-streams; this operator produces them directly inside a
/// topology).
///
/// With probability `probability`, a copy of the tuple is emitted after
/// the original; the copy keeps the original's id (ground truth), is run
/// through an optional pollution pipeline (making the duplicate fuzzy),
/// and its arrival time is shifted by a uniform delay in
/// [0, max_arrival_delay] (duplicates typically arrive late, e.g.
/// at-least-once redelivery).
class DuplicatingOperator : public Operator {
 public:
  DuplicatingOperator(double probability, uint64_t seed,
                      PollutionPipeline duplicate_pipeline,
                      int64_t max_arrival_delay = 0)
      : probability_(probability),
        rng_(seed),
        duplicate_pipeline_(std::move(duplicate_pipeline)),
        max_arrival_delay_(max_arrival_delay) {
    duplicate_pipeline_.Seed(rng_.Next());
  }

  /// \brief Convenience: exact duplicates only.
  DuplicatingOperator(double probability, uint64_t seed)
      : DuplicatingOperator(probability, seed, PollutionPipeline("noop")) {}

  Status Process(Tuple tuple, Emitter* out) override {
    const bool duplicate = rng_.Bernoulli(probability_);
    Tuple copy = tuple;
    ICEWAFL_RETURN_NOT_OK(out->Emit(std::move(tuple)));
    if (!duplicate) return Status::OK();
    PollutionContext ctx;
    ctx.tau = copy.event_time();
    ctx.rng = &rng_;
    ICEWAFL_RETURN_NOT_OK(duplicate_pipeline_.Apply(&copy, &ctx, nullptr));
    if (max_arrival_delay_ > 0) {
      copy.set_arrival_time(copy.arrival_time() +
                            rng_.UniformInt(0, max_arrival_delay_));
    }
    ++duplicates_emitted_;
    return out->Emit(std::move(copy));
  }

  uint64_t duplicates_emitted() const { return duplicates_emitted_; }

 private:
  double probability_;
  Rng rng_;
  PollutionPipeline duplicate_pipeline_;
  int64_t max_arrival_delay_;
  uint64_t duplicates_emitted_ = 0;
};

}  // namespace icewafl

#endif  // ICEWAFL_CORE_DUPLICATING_OPERATOR_H_
