#ifndef ICEWAFL_CORE_CONFIG_H_
#define ICEWAFL_CORE_CONFIG_H_

#include <functional>
#include <string>

#include "core/pipeline.h"
#include "util/json.h"

namespace icewafl {

/// \file
/// Declarative configuration of pollution pipelines (Figure 2: the error
/// configuration is an input to the pollution process). The JSON forms
/// accepted here are exactly what the components' ToJson() methods emit,
/// so pipelines round-trip: Build -> ToJson -> *FromJson -> Build.
///
/// Example:
/// \code{.json}
/// {
///   "name": "software_update",
///   "polluters": [
///     {"type": "standard", "label": "km_to_cm",
///      "attributes": ["Distance"],
///      "condition": {"type": "time_window",
///                    "start": "2016-02-27 00:00:00"},
///      "error": {"type": "unit_conversion", "factor": 100000,
///                "from_unit": "km", "to_unit": "cm"}}
///   ]
/// }
/// \endcode
///
/// Timestamps in conditions/profiles may be given either as epoch-second
/// numbers or as "YYYY-MM-DD[ HH:MM:SS]" strings.

/// Loader errors carry the JSON pointer (RFC 6901) of the offending
/// fragment, e.g. "at /polluters/0/error: missing field 'stddev'". The
/// optional `path` argument of the builders below is the pointer prefix
/// of `json` within the enclosing document (empty for the root).

/// \brief Builds a change pattern from its JSON description.
Result<TimeProfilePtr> TimeProfileFromJson(const Json& json,
                                           const std::string& path = "");

/// \brief Builds an error function from its JSON description.
Result<ErrorFunctionPtr> ErrorFunctionFromJson(const Json& json,
                                               const std::string& path = "");

/// \brief Builds a condition from its JSON description.
Result<ConditionPtr> ConditionFromJson(const Json& json,
                                       const std::string& path = "");

/// \brief Builds a (possibly composite) polluter from its JSON description.
Result<PolluterPtr> PolluterFromJson(const Json& json,
                                     const std::string& path = "");

/// \brief Builds a whole pipeline from {"name": ..., "polluters": [...]}.
/// When `bind_schema` is non-null the pipeline is additionally bound
/// against it (two-phase bind/run lifecycle, DESIGN.md §8), so unknown
/// attributes and type mismatches surface at load time — with the same
/// JSON-pointer paths as parse errors — instead of mid-stream.
Result<PollutionPipeline> PipelineFromJson(const Json& json,
                                           SchemaPtr bind_schema = nullptr);

/// \brief Opt-in pipeline-load hook, run by PipelineFromJson on the raw
/// document before construction. A non-OK return aborts the load with
/// that status. The static analyzer installs its AnalyzeOrDie gate here
/// (analysis/analyzer.h: InstallAnalyzeOrDieHook); pass nullptr to
/// uninstall. Not thread-safe; install once at startup.
using PipelineLoadHook = std::function<Status(const Json& pipeline_json)>;
void SetPipelineLoadHook(PipelineLoadHook hook);

/// \brief Parses JSON text and builds (and, with a schema, binds) the
/// pipeline.
Result<PollutionPipeline> PipelineFromConfigString(
    const std::string& text, SchemaPtr bind_schema = nullptr);

/// \brief Reads a JSON config file and builds (and, with a schema,
/// binds) the pipeline.
Result<PollutionPipeline> PipelineFromConfigFile(
    const std::string& path, SchemaPtr bind_schema = nullptr);

}  // namespace icewafl

#endif  // ICEWAFL_CORE_CONFIG_H_
