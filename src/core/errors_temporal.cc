#include "core/errors_temporal.h"

namespace icewafl {

namespace {

bool SeverityGate(PollutionContext* ctx) {
  if (ctx->severity >= 1.0) return true;
  if (ctx->rng == nullptr) return ctx->severity > 0.5;
  return ctx->rng->Bernoulli(ctx->severity);
}

}  // namespace

DelayError::DelayError(int64_t delay_seconds)
    : delay_seconds_(delay_seconds) {}

void DelayError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                       PollutionContext* ctx) {
  (void)attrs;  // operates on tuple metadata, not attribute values
  if (!SeverityGate(ctx)) return;
  tuple->set_arrival_time(tuple->arrival_time() + delay_seconds_);
}

Json DelayError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "delay");
  j.Set("delay_seconds", delay_seconds_);
  return j;
}

ErrorFunctionPtr DelayError::Clone() const {
  return std::make_unique<DelayError>(*this);
}

FrozenValueError::FrozenValueError(int64_t hold_seconds)
    : hold_seconds_(hold_seconds) {}

void FrozenValueError::Observe(const Tuple& tuple,
                               const std::vector<size_t>& attrs) {
  std::vector<Value> snapshot;
  snapshot.reserve(attrs.size());
  for (size_t idx : attrs) {
    if (idx >= tuple.num_values()) return;  // unbound misuse
    snapshot.push_back(tuple.value(idx));
  }
  prev_values_ = std::move(last_values_);
  last_values_ = std::move(snapshot);
}

void FrozenValueError::Apply(Tuple* tuple, const std::vector<size_t>& attrs,
                             PollutionContext* ctx) {
  if (ctx->tau >= freeze_until_ + hold_seconds_ ||
      freeze_until_ == INT64_MIN) {
    // Start a new freeze: capture the value of the previous tuple (the
    // last reading before the sensor got stuck).
    if (!prev_values_.has_value()) return;  // first tuple
    frozen_values_ = prev_values_;
    freeze_until_ = ctx->tau;
  }
  if (!frozen_values_.has_value()) return;
  if (frozen_values_->size() != attrs.size()) return;  // attrs changed
  for (size_t i = 0; i < attrs.size(); ++i) {
    tuple->set_value(attrs[i], (*frozen_values_)[i]);
  }
}

Json FrozenValueError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "frozen_value");
  j.Set("hold_seconds", hold_seconds_);
  return j;
}

ErrorFunctionPtr FrozenValueError::Clone() const {
  // Fresh state: clones start unfrozen.
  return std::make_unique<FrozenValueError>(hold_seconds_);
}

TimestampShiftError::TimestampShiftError(int64_t shift_seconds)
    : shift_seconds_(shift_seconds) {}

void TimestampShiftError::Apply(Tuple* tuple,
                                const std::vector<size_t>& attrs,
                                PollutionContext* ctx) {
  (void)attrs;
  if (!SeverityGate(ctx)) return;
  Result<Timestamp> ts = tuple->GetTimestamp();
  if (!ts.ok()) return;  // timestamp already polluted to a non-time value
  (void)tuple->SetTimestamp(ts.ValueOrDie() + shift_seconds_);
}

Json TimestampShiftError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "timestamp_shift");
  j.Set("shift_seconds", shift_seconds_);
  return j;
}

ErrorFunctionPtr TimestampShiftError::Clone() const {
  return std::make_unique<TimestampShiftError>(*this);
}

TimestampJitterError::TimestampJitterError(int64_t max_jitter_seconds)
    : max_jitter_seconds_(max_jitter_seconds) {}

void TimestampJitterError::Apply(Tuple* tuple,
                                 const std::vector<size_t>& attrs,
                                 PollutionContext* ctx) {
  (void)attrs;
  if (!SeverityGate(ctx)) return;
  const int64_t jitter =
      ctx->rng != nullptr
          ? ctx->rng->UniformInt(-max_jitter_seconds_, max_jitter_seconds_)
          : max_jitter_seconds_;
  Result<Timestamp> ts = tuple->GetTimestamp();
  if (!ts.ok()) return;
  (void)tuple->SetTimestamp(ts.ValueOrDie() + jitter);
}

Json TimestampJitterError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "timestamp_jitter");
  j.Set("max_jitter_seconds", max_jitter_seconds_);
  return j;
}

ErrorFunctionPtr TimestampJitterError::Clone() const {
  return std::make_unique<TimestampJitterError>(*this);
}

}  // namespace icewafl
