#include "core/config.h"

#include <fstream>
#include <sstream>

#include "core/composite_polluter.h"
#include "core/derived_error.h"
#include "core/errors_numeric.h"
#include "core/errors_temporal.h"
#include "core/errors_value.h"
#include "util/time_util.h"

namespace icewafl {

namespace {

/// Reads a timestamp field that is either an epoch-second number or a
/// calendar string; `fallback` is returned when the key is absent.
Result<Timestamp> GetTimestampField(const Json& json, const std::string& key,
                                    Timestamp fallback) {
  if (!json.Has(key)) return fallback;
  ICEWAFL_ASSIGN_OR_RETURN(Json field, json.Get(key));
  if (field.is_number()) return field.AsInt64();
  if (field.is_string()) return ParseTimestamp(field.AsString());
  return Status::TypeError("field '" + key +
                           "' must be a number or timestamp string");
}

/// Reads a Value field; "<key>_type": "int64" forces integer values.
Result<Value> GetValueField(const Json& json, const std::string& key) {
  ICEWAFL_ASSIGN_OR_RETURN(Json field, json.Get(key));
  switch (field.type()) {
    case Json::Type::kNull:
      return Value::Null();
    case Json::Type::kBool:
      return Value(field.AsBool());
    case Json::Type::kNumber:
      if (json.GetString(key + "_type", "") == "int64") {
        return Value(field.AsInt64());
      }
      return Value(field.AsDouble());
    case Json::Type::kString:
      return Value(field.AsString());
    default:
      return Status::TypeError("field '" + key + "' must be a scalar");
  }
}

Result<double> RequireDouble(const Json& json, const std::string& key) {
  ICEWAFL_ASSIGN_OR_RETURN(Json field, json.Get(key));
  if (!field.is_number()) {
    return Status::TypeError("field '" + key + "' must be a number");
  }
  return field.AsDouble();
}

Result<std::string> RequireString(const Json& json, const std::string& key) {
  ICEWAFL_ASSIGN_OR_RETURN(Json field, json.Get(key));
  if (!field.is_string()) {
    return Status::TypeError("field '" + key + "' must be a string");
  }
  return field.AsString();
}

}  // namespace

Result<TimeProfilePtr> TimeProfileFromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::ParseError("profile description must be a JSON object");
  }
  ICEWAFL_ASSIGN_OR_RETURN(std::string type, RequireString(json, "type"));
  if (type == "constant") {
    ICEWAFL_ASSIGN_OR_RETURN(double value, RequireDouble(json, "value"));
    return TimeProfilePtr(std::make_unique<ConstantProfile>(value));
  }
  if (type == "abrupt") {
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp change,
                             GetTimestampField(json, "change_time", 0));
    return TimeProfilePtr(std::make_unique<AbruptProfile>(
        change, json.GetDouble("before", 0.0), json.GetDouble("after", 1.0)));
  }
  if (type == "incremental") {
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp start,
                             GetTimestampField(json, "ramp_start", 0));
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp end,
                             GetTimestampField(json, "ramp_end", 0));
    return TimeProfilePtr(std::make_unique<IncrementalProfile>(
        start, end, json.GetDouble("from", 0.0), json.GetDouble("to", 1.0)));
  }
  if (type == "intermediate") {
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp start,
                             GetTimestampField(json, "ramp_start", 0));
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp end,
                             GetTimestampField(json, "ramp_end", 0));
    return TimeProfilePtr(std::make_unique<IntermediateProfile>(
        start, end, json.GetDouble("before", 0.0),
        json.GetDouble("after", 1.0)));
  }
  if (type == "sinusoidal") {
    return TimeProfilePtr(std::make_unique<SinusoidalProfile>(
        json.GetDouble("period_hours", 24.0), json.GetDouble("amplitude", 0.5),
        json.GetDouble("offset", 0.5), json.GetDouble("phase", 0.0)));
  }
  if (type == "stream_ramp") {
    return TimeProfilePtr(
        std::make_unique<StreamRampProfile>(json.GetDouble("scale", 1.0)));
  }
  if (type == "reoccurring") {
    return TimeProfilePtr(std::make_unique<ReoccurringProfile>(
        json.GetDouble("period_hours", 24.0), json.GetDouble("low", 0.0),
        json.GetDouble("high", 1.0), json.GetDouble("duty_cycle", 0.5)));
  }
  if (type == "spike") {
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp center,
                             GetTimestampField(json, "center", 0));
    return TimeProfilePtr(std::make_unique<SpikeProfile>(
        center, json.GetInt("width_seconds", 1),
        json.GetDouble("peak", 1.0)));
  }
  return Status::ParseError("unknown profile type: '" + type + "'");
}

Result<ErrorFunctionPtr> ErrorFunctionFromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::ParseError("error description must be a JSON object");
  }
  ICEWAFL_ASSIGN_OR_RETURN(std::string type, RequireString(json, "type"));
  if (type == "gaussian_noise") {
    ICEWAFL_ASSIGN_OR_RETURN(double stddev, RequireDouble(json, "stddev"));
    return ErrorFunctionPtr(std::make_unique<GaussianNoiseError>(
        stddev, json.GetBool("multiplicative", false)));
  }
  if (type == "uniform_noise") {
    ICEWAFL_ASSIGN_OR_RETURN(double lo, RequireDouble(json, "lo"));
    ICEWAFL_ASSIGN_OR_RETURN(double hi, RequireDouble(json, "hi"));
    return ErrorFunctionPtr(std::make_unique<UniformNoiseError>(lo, hi));
  }
  if (type == "scale") {
    ICEWAFL_ASSIGN_OR_RETURN(double factor, RequireDouble(json, "factor"));
    return ErrorFunctionPtr(std::make_unique<ScaleError>(factor));
  }
  if (type == "offset") {
    ICEWAFL_ASSIGN_OR_RETURN(double delta, RequireDouble(json, "delta"));
    return ErrorFunctionPtr(std::make_unique<OffsetError>(delta));
  }
  if (type == "round") {
    return ErrorFunctionPtr(std::make_unique<RoundError>(
        static_cast<int>(json.GetInt("precision", 0))));
  }
  if (type == "unit_conversion") {
    ICEWAFL_ASSIGN_OR_RETURN(double factor, RequireDouble(json, "factor"));
    return ErrorFunctionPtr(std::make_unique<UnitConversionError>(
        factor, json.GetString("from_unit", ""), json.GetString("to_unit", "")));
  }
  if (type == "outlier") {
    ICEWAFL_ASSIGN_OR_RETURN(double lo, RequireDouble(json, "min_factor"));
    ICEWAFL_ASSIGN_OR_RETURN(double hi, RequireDouble(json, "max_factor"));
    return ErrorFunctionPtr(std::make_unique<OutlierError>(lo, hi));
  }
  if (type == "missing_value") {
    return ErrorFunctionPtr(std::make_unique<MissingValueError>());
  }
  if (type == "set_constant") {
    ICEWAFL_ASSIGN_OR_RETURN(Value value, GetValueField(json, "value"));
    return ErrorFunctionPtr(
        std::make_unique<SetConstantError>(std::move(value)));
  }
  if (type == "incorrect_category") {
    ICEWAFL_ASSIGN_OR_RETURN(Json cats, json.Get("categories"));
    if (!cats.is_array()) {
      return Status::TypeError("'categories' must be an array of strings");
    }
    std::vector<std::string> categories;
    for (const Json& c : cats.items()) {
      if (!c.is_string()) {
        return Status::TypeError("'categories' must contain only strings");
      }
      categories.push_back(c.AsString());
    }
    return ErrorFunctionPtr(
        std::make_unique<IncorrectCategoryError>(std::move(categories)));
  }
  if (type == "typo") {
    return ErrorFunctionPtr(std::make_unique<TypoError>());
  }
  if (type == "digit_swap") {
    return ErrorFunctionPtr(std::make_unique<DigitSwapError>());
  }
  if (type == "sign_flip") {
    return ErrorFunctionPtr(std::make_unique<SignFlipError>());
  }
  if (type == "case") {
    return ErrorFunctionPtr(
        std::make_unique<CaseError>(json.GetDouble("flip_probability", 0.5)));
  }
  if (type == "truncate") {
    return ErrorFunctionPtr(std::make_unique<TruncateError>(
        static_cast<size_t>(json.GetInt("max_length", 0))));
  }
  if (type == "swap_attributes") {
    return ErrorFunctionPtr(std::make_unique<SwapAttributesError>());
  }
  if (type == "delay") {
    return ErrorFunctionPtr(
        std::make_unique<DelayError>(json.GetInt("delay_seconds", 0)));
  }
  if (type == "frozen_value") {
    return ErrorFunctionPtr(
        std::make_unique<FrozenValueError>(json.GetInt("hold_seconds", 0)));
  }
  if (type == "timestamp_shift") {
    return ErrorFunctionPtr(
        std::make_unique<TimestampShiftError>(json.GetInt("shift_seconds", 0)));
  }
  if (type == "timestamp_jitter") {
    return ErrorFunctionPtr(std::make_unique<TimestampJitterError>(
        json.GetInt("max_jitter_seconds", 0)));
  }
  if (type == "derived") {
    ICEWAFL_ASSIGN_OR_RETURN(Json base_json, json.Get("base"));
    ICEWAFL_ASSIGN_OR_RETURN(Json profile_json, json.Get("profile"));
    ICEWAFL_ASSIGN_OR_RETURN(ErrorFunctionPtr base,
                             ErrorFunctionFromJson(base_json));
    ICEWAFL_ASSIGN_OR_RETURN(TimeProfilePtr profile,
                             TimeProfileFromJson(profile_json));
    return ErrorFunctionPtr(std::make_unique<DerivedTemporalError>(
        std::move(base), std::move(profile)));
  }
  return Status::ParseError("unknown error type: '" + type + "'");
}

Result<ConditionPtr> ConditionFromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::ParseError("condition description must be a JSON object");
  }
  ICEWAFL_ASSIGN_OR_RETURN(std::string type, RequireString(json, "type"));
  if (type == "always") return ConditionPtr(std::make_unique<AlwaysCondition>());
  if (type == "never") return ConditionPtr(std::make_unique<NeverCondition>());
  if (type == "random") {
    ICEWAFL_ASSIGN_OR_RETURN(double p, RequireDouble(json, "p"));
    return ConditionPtr(std::make_unique<RandomCondition>(p));
  }
  if (type == "value") {
    ICEWAFL_ASSIGN_OR_RETURN(std::string attr,
                             RequireString(json, "attribute"));
    ICEWAFL_ASSIGN_OR_RETURN(std::string op_text, RequireString(json, "op"));
    ICEWAFL_ASSIGN_OR_RETURN(CompareOp op, ParseCompareOp(op_text));
    Value operand;
    if (json.Has("operand")) {
      ICEWAFL_ASSIGN_OR_RETURN(operand, GetValueField(json, "operand"));
    }
    return ConditionPtr(std::make_unique<ValueCondition>(
        std::move(attr), op, std::move(operand)));
  }
  if (type == "time_window") {
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp start,
                             GetTimestampField(json, "start", INT64_MIN));
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp end,
                             GetTimestampField(json, "end", INT64_MAX));
    return ConditionPtr(std::make_unique<TimeWindowCondition>(start, end));
  }
  if (type == "daily_window") {
    return ConditionPtr(std::make_unique<DailyWindowCondition>(
        static_cast<int>(json.GetInt("start_minute", 0)),
        static_cast<int>(json.GetInt("end_minute", 1439))));
  }
  if (type == "profile_probability") {
    ICEWAFL_ASSIGN_OR_RETURN(Json profile_json, json.Get("profile"));
    ICEWAFL_ASSIGN_OR_RETURN(TimeProfilePtr profile,
                             TimeProfileFromJson(profile_json));
    return ConditionPtr(
        std::make_unique<ProfileProbabilityCondition>(std::move(profile)));
  }
  if (type == "and" || type == "or") {
    ICEWAFL_ASSIGN_OR_RETURN(Json children_json, json.Get("children"));
    if (!children_json.is_array()) {
      return Status::TypeError("'children' must be an array");
    }
    std::vector<ConditionPtr> children;
    for (const Json& c : children_json.items()) {
      ICEWAFL_ASSIGN_OR_RETURN(ConditionPtr child, ConditionFromJson(c));
      children.push_back(std::move(child));
    }
    if (type == "and") {
      return ConditionPtr(std::make_unique<AndCondition>(std::move(children)));
    }
    return ConditionPtr(std::make_unique<OrCondition>(std::move(children)));
  }
  if (type == "not") {
    ICEWAFL_ASSIGN_OR_RETURN(Json child_json, json.Get("child"));
    ICEWAFL_ASSIGN_OR_RETURN(ConditionPtr child, ConditionFromJson(child_json));
    return ConditionPtr(std::make_unique<NotCondition>(std::move(child)));
  }
  if (type == "window_aggregate") {
    ICEWAFL_ASSIGN_OR_RETURN(std::string attr,
                             RequireString(json, "attribute"));
    ICEWAFL_ASSIGN_OR_RETURN(std::string agg_text,
                             RequireString(json, "agg"));
    ICEWAFL_ASSIGN_OR_RETURN(WindowAgg agg, ParseWindowAgg(agg_text));
    ICEWAFL_ASSIGN_OR_RETURN(std::string op_text, RequireString(json, "op"));
    ICEWAFL_ASSIGN_OR_RETURN(CompareOp op, ParseCompareOp(op_text));
    ICEWAFL_ASSIGN_OR_RETURN(double threshold,
                             RequireDouble(json, "threshold"));
    return ConditionPtr(std::make_unique<WindowAggregateCondition>(
        std::move(attr), json.GetInt("window_seconds", 0), agg, op,
        threshold));
  }
  if (type == "hold") {
    ICEWAFL_ASSIGN_OR_RETURN(Json inner_json, json.Get("inner"));
    ICEWAFL_ASSIGN_OR_RETURN(ConditionPtr inner, ConditionFromJson(inner_json));
    return ConditionPtr(std::make_unique<HoldCondition>(
        std::move(inner), json.GetInt("hold_seconds", 0)));
  }
  return Status::ParseError("unknown condition type: '" + type + "'");
}

Result<PolluterPtr> PolluterFromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::ParseError("polluter description must be a JSON object");
  }
  ICEWAFL_ASSIGN_OR_RETURN(std::string type, RequireString(json, "type"));
  const std::string label = json.GetString("label", type);
  if (type == "standard") {
    ICEWAFL_ASSIGN_OR_RETURN(Json error_json, json.Get("error"));
    ICEWAFL_ASSIGN_OR_RETURN(ErrorFunctionPtr error,
                             ErrorFunctionFromJson(error_json));
    ConditionPtr condition = std::make_unique<AlwaysCondition>();
    if (json.Has("condition")) {
      ICEWAFL_ASSIGN_OR_RETURN(Json cond_json, json.Get("condition"));
      ICEWAFL_ASSIGN_OR_RETURN(condition, ConditionFromJson(cond_json));
    }
    std::vector<std::string> attributes;
    if (json.Has("attributes")) {
      ICEWAFL_ASSIGN_OR_RETURN(Json attrs, json.Get("attributes"));
      if (!attrs.is_array()) {
        return Status::TypeError("'attributes' must be an array");
      }
      for (const Json& a : attrs.items()) {
        if (!a.is_string()) {
          return Status::TypeError("'attributes' must contain only strings");
        }
        attributes.push_back(a.AsString());
      }
    }
    return PolluterPtr(std::make_unique<StandardPolluter>(
        label, std::move(error), std::move(condition), std::move(attributes)));
  }
  if (type == "sequential" || type == "exclusive") {
    ConditionPtr condition = std::make_unique<AlwaysCondition>();
    if (json.Has("condition")) {
      ICEWAFL_ASSIGN_OR_RETURN(Json cond_json, json.Get("condition"));
      ICEWAFL_ASSIGN_OR_RETURN(condition, ConditionFromJson(cond_json));
    }
    ICEWAFL_ASSIGN_OR_RETURN(Json children_json, json.Get("children"));
    if (!children_json.is_array()) {
      return Status::TypeError("'children' must be an array");
    }
    if (type == "sequential") {
      auto composite =
          std::make_unique<SequentialPolluter>(label, std::move(condition));
      for (const Json& c : children_json.items()) {
        ICEWAFL_ASSIGN_OR_RETURN(PolluterPtr child, PolluterFromJson(c));
        composite->Register(std::move(child));
      }
      return PolluterPtr(std::move(composite));
    }
    auto composite =
        std::make_unique<ExclusivePolluter>(label, std::move(condition));
    std::vector<double> weights;
    if (json.Has("weights")) {
      ICEWAFL_ASSIGN_OR_RETURN(Json w, json.Get("weights"));
      for (const Json& x : w.items()) {
        if (!x.is_number()) {
          return Status::TypeError("'weights' must contain only numbers");
        }
        weights.push_back(x.AsDouble());
      }
    }
    size_t i = 0;
    for (const Json& c : children_json.items()) {
      ICEWAFL_ASSIGN_OR_RETURN(PolluterPtr child, PolluterFromJson(c));
      composite->RegisterWeighted(std::move(child),
                                  i < weights.size() ? weights[i] : 1.0);
      ++i;
    }
    return PolluterPtr(std::move(composite));
  }
  return Status::ParseError("unknown polluter type: '" + type + "'");
}

Result<PollutionPipeline> PipelineFromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::ParseError("pipeline description must be a JSON object");
  }
  PollutionPipeline pipeline(json.GetString("name", "pipeline"));
  ICEWAFL_ASSIGN_OR_RETURN(Json polluters, json.Get("polluters"));
  if (!polluters.is_array()) {
    return Status::TypeError("'polluters' must be an array");
  }
  for (const Json& p : polluters.items()) {
    ICEWAFL_ASSIGN_OR_RETURN(PolluterPtr polluter, PolluterFromJson(p));
    pipeline.Add(std::move(polluter));
  }
  return pipeline;
}

Result<PollutionPipeline> PipelineFromConfigString(const std::string& text) {
  ICEWAFL_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
  return PipelineFromJson(json);
}

Result<PollutionPipeline> PipelineFromConfigFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open config file: '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return PipelineFromConfigString(buf.str());
}

}  // namespace icewafl
