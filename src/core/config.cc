#include "core/config.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "core/composite_polluter.h"
#include "core/derived_error.h"
#include "core/errors_numeric.h"
#include "core/errors_temporal.h"
#include "core/errors_value.h"
#include "util/time_util.h"

namespace icewafl {

namespace {

PipelineLoadHook g_pipeline_load_hook;

/// Renders a JSON pointer for error messages ("" is the document root).
std::string AtPath(const std::string& path) {
  return path.empty() ? std::string("/") : path;
}

/// Child pointer of an object member / array element.
std::string Sub(const std::string& path, const std::string& key) {
  return path + "/" + key;
}
std::string SubIdx(const std::string& path, size_t index) {
  return path + "/" + std::to_string(index);
}

Result<Json> GetField(const Json& json, const std::string& key,
                      const std::string& path) {
  if (!json.Has(key)) {
    return Status::NotFound("missing field '" + key + "' at " + AtPath(path));
  }
  return json.Get(key);
}

/// Reads a timestamp field that is either an epoch-second number or a
/// calendar string; `fallback` is returned when the key is absent.
Result<Timestamp> GetTimestampField(const Json& json, const std::string& key,
                                    Timestamp fallback,
                                    const std::string& path) {
  if (!json.Has(key)) return fallback;
  ICEWAFL_ASSIGN_OR_RETURN(Json field, json.Get(key));
  if (field.is_number()) return field.AsInt64();
  if (field.is_string()) {
    auto parsed = ParseTimestamp(field.AsString());
    if (!parsed.ok()) {
      return Status::ParseError("invalid timestamp at " + Sub(path, key) +
                                ": " + parsed.status().message());
    }
    return parsed;
  }
  return Status::TypeError("field at " + Sub(path, key) +
                           " must be a number or timestamp string");
}

/// Reads a Value field; "<key>_type": "int64" forces integer values.
Result<Value> GetValueField(const Json& json, const std::string& key,
                            const std::string& path) {
  ICEWAFL_ASSIGN_OR_RETURN(Json field, GetField(json, key, path));
  switch (field.type()) {
    case Json::Type::kNull:
      return Value::Null();
    case Json::Type::kBool:
      return Value(field.AsBool());
    case Json::Type::kNumber:
      if (json.GetString(key + "_type", "") == "int64") {
        return Value(field.AsInt64());
      }
      return Value(field.AsDouble());
    case Json::Type::kString:
      return Value(field.AsString());
    default:
      return Status::TypeError("field at " + Sub(path, key) +
                               " must be a scalar");
  }
}

Result<double> RequireDouble(const Json& json, const std::string& key,
                             const std::string& path) {
  ICEWAFL_ASSIGN_OR_RETURN(Json field, GetField(json, key, path));
  if (!field.is_number()) {
    return Status::TypeError("field at " + Sub(path, key) +
                             " must be a number");
  }
  return field.AsDouble();
}

Result<std::string> RequireString(const Json& json, const std::string& key,
                                  const std::string& path) {
  ICEWAFL_ASSIGN_OR_RETURN(Json field, GetField(json, key, path));
  if (!field.is_string()) {
    return Status::TypeError("field at " + Sub(path, key) +
                             " must be a string");
  }
  return field.AsString();
}

}  // namespace

Result<TimeProfilePtr> TimeProfileFromJson(const Json& json,
                                           const std::string& path) {
  if (!json.is_object()) {
    return Status::ParseError("profile description at " + AtPath(path) +
                              " must be a JSON object");
  }
  ICEWAFL_ASSIGN_OR_RETURN(std::string type,
                           RequireString(json, "type", path));
  if (type == "constant") {
    ICEWAFL_ASSIGN_OR_RETURN(double value,
                             RequireDouble(json, "value", path));
    return TimeProfilePtr(std::make_unique<ConstantProfile>(value));
  }
  if (type == "abrupt") {
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp change,
                             GetTimestampField(json, "change_time", 0, path));
    return TimeProfilePtr(std::make_unique<AbruptProfile>(
        change, json.GetDouble("before", 0.0), json.GetDouble("after", 1.0)));
  }
  if (type == "incremental") {
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp start,
                             GetTimestampField(json, "ramp_start", 0, path));
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp end,
                             GetTimestampField(json, "ramp_end", 0, path));
    return TimeProfilePtr(std::make_unique<IncrementalProfile>(
        start, end, json.GetDouble("from", 0.0), json.GetDouble("to", 1.0)));
  }
  if (type == "intermediate") {
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp start,
                             GetTimestampField(json, "ramp_start", 0, path));
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp end,
                             GetTimestampField(json, "ramp_end", 0, path));
    return TimeProfilePtr(std::make_unique<IntermediateProfile>(
        start, end, json.GetDouble("before", 0.0),
        json.GetDouble("after", 1.0)));
  }
  if (type == "sinusoidal") {
    return TimeProfilePtr(std::make_unique<SinusoidalProfile>(
        json.GetDouble("period_hours", 24.0), json.GetDouble("amplitude", 0.5),
        json.GetDouble("offset", 0.5), json.GetDouble("phase", 0.0)));
  }
  if (type == "stream_ramp") {
    return TimeProfilePtr(
        std::make_unique<StreamRampProfile>(json.GetDouble("scale", 1.0)));
  }
  if (type == "reoccurring") {
    return TimeProfilePtr(std::make_unique<ReoccurringProfile>(
        json.GetDouble("period_hours", 24.0), json.GetDouble("low", 0.0),
        json.GetDouble("high", 1.0), json.GetDouble("duty_cycle", 0.5)));
  }
  if (type == "spike") {
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp center,
                             GetTimestampField(json, "center", 0, path));
    return TimeProfilePtr(std::make_unique<SpikeProfile>(
        center, json.GetInt("width_seconds", 1),
        json.GetDouble("peak", 1.0)));
  }
  return Status::ParseError("unknown profile type '" + type + "' at " +
                            AtPath(path));
}

Result<ErrorFunctionPtr> ErrorFunctionFromJson(const Json& json,
                                               const std::string& path) {
  if (!json.is_object()) {
    return Status::ParseError("error description at " + AtPath(path) +
                              " must be a JSON object");
  }
  ICEWAFL_ASSIGN_OR_RETURN(std::string type,
                           RequireString(json, "type", path));
  if (type == "gaussian_noise") {
    ICEWAFL_ASSIGN_OR_RETURN(double stddev,
                             RequireDouble(json, "stddev", path));
    return ErrorFunctionPtr(std::make_unique<GaussianNoiseError>(
        stddev, json.GetBool("multiplicative", false)));
  }
  if (type == "uniform_noise") {
    ICEWAFL_ASSIGN_OR_RETURN(double lo, RequireDouble(json, "lo", path));
    ICEWAFL_ASSIGN_OR_RETURN(double hi, RequireDouble(json, "hi", path));
    return ErrorFunctionPtr(std::make_unique<UniformNoiseError>(lo, hi));
  }
  if (type == "scale") {
    ICEWAFL_ASSIGN_OR_RETURN(double factor,
                             RequireDouble(json, "factor", path));
    return ErrorFunctionPtr(std::make_unique<ScaleError>(factor));
  }
  if (type == "offset") {
    ICEWAFL_ASSIGN_OR_RETURN(double delta, RequireDouble(json, "delta", path));
    return ErrorFunctionPtr(std::make_unique<OffsetError>(delta));
  }
  if (type == "round") {
    return ErrorFunctionPtr(std::make_unique<RoundError>(
        static_cast<int>(json.GetInt("precision", 0))));
  }
  if (type == "unit_conversion") {
    ICEWAFL_ASSIGN_OR_RETURN(double factor,
                             RequireDouble(json, "factor", path));
    return ErrorFunctionPtr(std::make_unique<UnitConversionError>(
        factor, json.GetString("from_unit", ""), json.GetString("to_unit", "")));
  }
  if (type == "outlier") {
    ICEWAFL_ASSIGN_OR_RETURN(double lo,
                             RequireDouble(json, "min_factor", path));
    ICEWAFL_ASSIGN_OR_RETURN(double hi,
                             RequireDouble(json, "max_factor", path));
    return ErrorFunctionPtr(std::make_unique<OutlierError>(lo, hi));
  }
  if (type == "missing_value") {
    return ErrorFunctionPtr(std::make_unique<MissingValueError>());
  }
  if (type == "set_constant") {
    ICEWAFL_ASSIGN_OR_RETURN(Value value, GetValueField(json, "value", path));
    return ErrorFunctionPtr(
        std::make_unique<SetConstantError>(std::move(value)));
  }
  if (type == "incorrect_category") {
    ICEWAFL_ASSIGN_OR_RETURN(Json cats, GetField(json, "categories", path));
    if (!cats.is_array()) {
      return Status::TypeError("field at " + Sub(path, "categories") +
                               " must be an array of strings");
    }
    std::vector<std::string> categories;
    for (const Json& c : cats.items()) {
      if (!c.is_string()) {
        return Status::TypeError("field at " + Sub(path, "categories") +
                                 " must contain only strings");
      }
      categories.push_back(c.AsString());
    }
    return ErrorFunctionPtr(
        std::make_unique<IncorrectCategoryError>(std::move(categories)));
  }
  if (type == "typo") {
    return ErrorFunctionPtr(std::make_unique<TypoError>());
  }
  if (type == "digit_swap") {
    return ErrorFunctionPtr(std::make_unique<DigitSwapError>());
  }
  if (type == "sign_flip") {
    return ErrorFunctionPtr(std::make_unique<SignFlipError>());
  }
  if (type == "case") {
    return ErrorFunctionPtr(
        std::make_unique<CaseError>(json.GetDouble("flip_probability", 0.5)));
  }
  if (type == "truncate") {
    return ErrorFunctionPtr(std::make_unique<TruncateError>(
        static_cast<size_t>(json.GetInt("max_length", 0))));
  }
  if (type == "swap_attributes") {
    return ErrorFunctionPtr(std::make_unique<SwapAttributesError>());
  }
  if (type == "delay") {
    return ErrorFunctionPtr(
        std::make_unique<DelayError>(json.GetInt("delay_seconds", 0)));
  }
  if (type == "frozen_value") {
    return ErrorFunctionPtr(
        std::make_unique<FrozenValueError>(json.GetInt("hold_seconds", 0)));
  }
  if (type == "timestamp_shift") {
    return ErrorFunctionPtr(
        std::make_unique<TimestampShiftError>(json.GetInt("shift_seconds", 0)));
  }
  if (type == "timestamp_jitter") {
    return ErrorFunctionPtr(std::make_unique<TimestampJitterError>(
        json.GetInt("max_jitter_seconds", 0)));
  }
  if (type == "derived") {
    ICEWAFL_ASSIGN_OR_RETURN(Json base_json, GetField(json, "base", path));
    ICEWAFL_ASSIGN_OR_RETURN(Json profile_json,
                             GetField(json, "profile", path));
    ICEWAFL_ASSIGN_OR_RETURN(
        ErrorFunctionPtr base,
        ErrorFunctionFromJson(base_json, Sub(path, "base")));
    ICEWAFL_ASSIGN_OR_RETURN(
        TimeProfilePtr profile,
        TimeProfileFromJson(profile_json, Sub(path, "profile")));
    return ErrorFunctionPtr(std::make_unique<DerivedTemporalError>(
        std::move(base), std::move(profile)));
  }
  return Status::ParseError("unknown error type '" + type + "' at " +
                            AtPath(path));
}

Result<ConditionPtr> ConditionFromJson(const Json& json,
                                       const std::string& path) {
  if (!json.is_object()) {
    return Status::ParseError("condition description at " + AtPath(path) +
                              " must be a JSON object");
  }
  ICEWAFL_ASSIGN_OR_RETURN(std::string type,
                           RequireString(json, "type", path));
  if (type == "always") return ConditionPtr(std::make_unique<AlwaysCondition>());
  if (type == "never") return ConditionPtr(std::make_unique<NeverCondition>());
  if (type == "random") {
    ICEWAFL_ASSIGN_OR_RETURN(double p, RequireDouble(json, "p", path));
    return ConditionPtr(std::make_unique<RandomCondition>(p));
  }
  if (type == "value") {
    ICEWAFL_ASSIGN_OR_RETURN(std::string attr,
                             RequireString(json, "attribute", path));
    ICEWAFL_ASSIGN_OR_RETURN(std::string op_text,
                             RequireString(json, "op", path));
    auto op = ParseCompareOp(op_text);
    if (!op.ok()) {
      return Status::ParseError("invalid op at " + Sub(path, "op") + ": " +
                                op.status().message());
    }
    Value operand;
    if (json.Has("operand")) {
      ICEWAFL_ASSIGN_OR_RETURN(operand, GetValueField(json, "operand", path));
    }
    return ConditionPtr(std::make_unique<ValueCondition>(
        std::move(attr), op.ValueOrDie(), std::move(operand)));
  }
  if (type == "time_window") {
    ICEWAFL_ASSIGN_OR_RETURN(
        Timestamp start, GetTimestampField(json, "start", INT64_MIN, path));
    ICEWAFL_ASSIGN_OR_RETURN(
        Timestamp end, GetTimestampField(json, "end", INT64_MAX, path));
    return ConditionPtr(std::make_unique<TimeWindowCondition>(start, end));
  }
  if (type == "daily_window") {
    return ConditionPtr(std::make_unique<DailyWindowCondition>(
        static_cast<int>(json.GetInt("start_minute", 0)),
        static_cast<int>(json.GetInt("end_minute", 1439))));
  }
  if (type == "profile_probability") {
    ICEWAFL_ASSIGN_OR_RETURN(Json profile_json,
                             GetField(json, "profile", path));
    ICEWAFL_ASSIGN_OR_RETURN(
        TimeProfilePtr profile,
        TimeProfileFromJson(profile_json, Sub(path, "profile")));
    return ConditionPtr(
        std::make_unique<ProfileProbabilityCondition>(std::move(profile)));
  }
  if (type == "and" || type == "or") {
    ICEWAFL_ASSIGN_OR_RETURN(Json children_json,
                             GetField(json, "children", path));
    if (!children_json.is_array()) {
      return Status::TypeError("field at " + Sub(path, "children") +
                               " must be an array");
    }
    std::vector<ConditionPtr> children;
    for (size_t i = 0; i < children_json.items().size(); ++i) {
      ICEWAFL_ASSIGN_OR_RETURN(
          ConditionPtr child,
          ConditionFromJson(children_json.items()[i],
                            SubIdx(Sub(path, "children"), i)));
      children.push_back(std::move(child));
    }
    if (type == "and") {
      return ConditionPtr(std::make_unique<AndCondition>(std::move(children)));
    }
    return ConditionPtr(std::make_unique<OrCondition>(std::move(children)));
  }
  if (type == "not") {
    ICEWAFL_ASSIGN_OR_RETURN(Json child_json, GetField(json, "child", path));
    ICEWAFL_ASSIGN_OR_RETURN(
        ConditionPtr child,
        ConditionFromJson(child_json, Sub(path, "child")));
    return ConditionPtr(std::make_unique<NotCondition>(std::move(child)));
  }
  if (type == "window_aggregate") {
    ICEWAFL_ASSIGN_OR_RETURN(std::string attr,
                             RequireString(json, "attribute", path));
    ICEWAFL_ASSIGN_OR_RETURN(std::string agg_text,
                             RequireString(json, "agg", path));
    auto agg = ParseWindowAgg(agg_text);
    if (!agg.ok()) {
      return Status::ParseError("invalid agg at " + Sub(path, "agg") + ": " +
                                agg.status().message());
    }
    ICEWAFL_ASSIGN_OR_RETURN(std::string op_text,
                             RequireString(json, "op", path));
    auto op = ParseCompareOp(op_text);
    if (!op.ok()) {
      return Status::ParseError("invalid op at " + Sub(path, "op") + ": " +
                                op.status().message());
    }
    if (op.ValueOrDie() == CompareOp::kIsNull ||
        op.ValueOrDie() == CompareOp::kNotNull) {
      return Status::ParseError(
          "invalid op at " + Sub(path, "op") +
          ": window_aggregate does not support null comparison operator '" +
          op_text + "'");
    }
    ICEWAFL_ASSIGN_OR_RETURN(double threshold,
                             RequireDouble(json, "threshold", path));
    return ConditionPtr(std::make_unique<WindowAggregateCondition>(
        std::move(attr), json.GetInt("window_seconds", 0), agg.ValueOrDie(),
        op.ValueOrDie(), threshold));
  }
  if (type == "hold") {
    ICEWAFL_ASSIGN_OR_RETURN(Json inner_json, GetField(json, "inner", path));
    ICEWAFL_ASSIGN_OR_RETURN(
        ConditionPtr inner,
        ConditionFromJson(inner_json, Sub(path, "inner")));
    return ConditionPtr(std::make_unique<HoldCondition>(
        std::move(inner), json.GetInt("hold_seconds", 0)));
  }
  return Status::ParseError("unknown condition type '" + type + "' at " +
                            AtPath(path));
}

Result<PolluterPtr> PolluterFromJson(const Json& json,
                                     const std::string& path) {
  if (!json.is_object()) {
    return Status::ParseError("polluter description at " + AtPath(path) +
                              " must be a JSON object");
  }
  ICEWAFL_ASSIGN_OR_RETURN(std::string type,
                           RequireString(json, "type", path));
  const std::string label = json.GetString("label", type);
  if (type == "standard") {
    ICEWAFL_ASSIGN_OR_RETURN(Json error_json, GetField(json, "error", path));
    ICEWAFL_ASSIGN_OR_RETURN(
        ErrorFunctionPtr error,
        ErrorFunctionFromJson(error_json, Sub(path, "error")));
    ConditionPtr condition = std::make_unique<AlwaysCondition>();
    if (json.Has("condition")) {
      ICEWAFL_ASSIGN_OR_RETURN(Json cond_json, json.Get("condition"));
      ICEWAFL_ASSIGN_OR_RETURN(
          condition, ConditionFromJson(cond_json, Sub(path, "condition")));
    }
    std::vector<std::string> attributes;
    if (json.Has("attributes")) {
      ICEWAFL_ASSIGN_OR_RETURN(Json attrs, json.Get("attributes"));
      if (!attrs.is_array()) {
        return Status::TypeError("field at " + Sub(path, "attributes") +
                                 " must be an array");
      }
      for (const Json& a : attrs.items()) {
        if (!a.is_string()) {
          return Status::TypeError("field at " + Sub(path, "attributes") +
                                   " must contain only strings");
        }
        attributes.push_back(a.AsString());
      }
    }
    return PolluterPtr(std::make_unique<StandardPolluter>(
        label, std::move(error), std::move(condition), std::move(attributes)));
  }
  if (type == "sequential" || type == "exclusive") {
    ConditionPtr condition = std::make_unique<AlwaysCondition>();
    if (json.Has("condition")) {
      ICEWAFL_ASSIGN_OR_RETURN(Json cond_json, json.Get("condition"));
      ICEWAFL_ASSIGN_OR_RETURN(
          condition, ConditionFromJson(cond_json, Sub(path, "condition")));
    }
    ICEWAFL_ASSIGN_OR_RETURN(Json children_json,
                             GetField(json, "children", path));
    if (!children_json.is_array()) {
      return Status::TypeError("field at " + Sub(path, "children") +
                               " must be an array");
    }
    const std::string children_path = Sub(path, "children");
    if (type == "sequential") {
      auto composite =
          std::make_unique<SequentialPolluter>(label, std::move(condition));
      for (size_t i = 0; i < children_json.items().size(); ++i) {
        ICEWAFL_ASSIGN_OR_RETURN(
            PolluterPtr child,
            PolluterFromJson(children_json.items()[i],
                             SubIdx(children_path, i)));
        composite->Register(std::move(child));
      }
      return PolluterPtr(std::move(composite));
    }
    auto composite =
        std::make_unique<ExclusivePolluter>(label, std::move(condition));
    std::vector<double> weights;
    if (json.Has("weights")) {
      ICEWAFL_ASSIGN_OR_RETURN(Json w, json.Get("weights"));
      if (!w.is_array()) {
        return Status::TypeError("field at " + Sub(path, "weights") +
                                 " must be an array");
      }
      for (const Json& x : w.items()) {
        if (!x.is_number()) {
          return Status::TypeError("field at " + Sub(path, "weights") +
                                   " must contain only numbers");
        }
        weights.push_back(x.AsDouble());
      }
    }
    for (size_t i = 0; i < children_json.items().size(); ++i) {
      ICEWAFL_ASSIGN_OR_RETURN(
          PolluterPtr child,
          PolluterFromJson(children_json.items()[i], SubIdx(children_path, i)));
      composite->RegisterWeighted(std::move(child),
                                  i < weights.size() ? weights[i] : 1.0);
    }
    return PolluterPtr(std::move(composite));
  }
  return Status::ParseError("unknown polluter type '" + type + "' at " +
                            AtPath(path));
}

Result<PollutionPipeline> PipelineFromJson(const Json& json,
                                           SchemaPtr bind_schema) {
  if (!json.is_object()) {
    return Status::ParseError("pipeline description must be a JSON object");
  }
  if (g_pipeline_load_hook) {
    ICEWAFL_RETURN_NOT_OK(g_pipeline_load_hook(json));
  }
  PollutionPipeline pipeline(json.GetString("name", "pipeline"));
  ICEWAFL_ASSIGN_OR_RETURN(Json polluters, GetField(json, "polluters", ""));
  if (!polluters.is_array()) {
    return Status::TypeError("field at /polluters must be an array");
  }
  for (size_t i = 0; i < polluters.items().size(); ++i) {
    ICEWAFL_ASSIGN_OR_RETURN(
        PolluterPtr polluter,
        PolluterFromJson(polluters.items()[i], SubIdx("/polluters", i)));
    pipeline.Add(std::move(polluter));
  }
  if (bind_schema != nullptr) {
    ICEWAFL_RETURN_NOT_OK(pipeline.Bind(std::move(bind_schema)));
  }
  return pipeline;
}

void SetPipelineLoadHook(PipelineLoadHook hook) {
  g_pipeline_load_hook = std::move(hook);
}

Result<PollutionPipeline> PipelineFromConfigString(const std::string& text,
                                                   SchemaPtr bind_schema) {
  ICEWAFL_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
  return PipelineFromJson(json, std::move(bind_schema));
}

Result<PollutionPipeline> PipelineFromConfigFile(const std::string& path,
                                                 SchemaPtr bind_schema) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open config file: '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return PipelineFromConfigString(buf.str(), std::move(bind_schema));
}

}  // namespace icewafl
