#include "core/process.h"

#include <algorithm>
#include <thread>

namespace icewafl {

PollutionProcess::PollutionProcess(ProcessOptions options)
    : options_(options) {}

void PollutionProcess::AddPipeline(PollutionPipeline pipeline) {
  pipelines_.push_back(std::move(pipeline));
}

namespace {

/// Pollutes one sub-stream in place. Tuples are processed in stream
/// order; each carries its event time in the context.
Status PolluteSubstream(TupleVector* tuples, const PollutionPipeline& pipeline,
                        Timestamp stream_start, Timestamp stream_end,
                        PollutionLog* log) {
  PollutionContext ctx;
  ctx.stream_start = stream_start;
  ctx.stream_end = stream_end;
  for (Tuple& t : *tuples) {
    ctx.tau = t.event_time();
    ctx.severity = 1.0;
    ctx.rng = nullptr;
    ICEWAFL_RETURN_NOT_OK(pipeline.Apply(&t, &ctx, log));
  }
  return Status::OK();
}

}  // namespace

Result<PollutionResult> PollutionProcess::Run(Source* source) {
  const int m = options_.num_substreams;
  if (m < 1) {
    return Status::InvalidArgument("num_substreams must be >= 1");
  }
  if (static_cast<int>(pipelines_.size()) != m) {
    return Status::InvalidArgument(
        "expected " + std::to_string(m) + " pipelines, got " +
        std::to_string(pipelines_.size()));
  }
  if (options_.overlap_fraction < 0.0 || options_.overlap_fraction > 1.0) {
    return Status::InvalidArgument("overlap_fraction must be in [0, 1]");
  }

  PollutionResult result;
  result.schema = source->schema();

  // --- Step 1: prepare data -------------------------------------------
  // Assign ids, replicate the timestamp into the event-time replica tau,
  // and initialize the arrival time (Algorithm 1, lines 1-3).
  ICEWAFL_ASSIGN_OR_RETURN(result.clean, CollectAll(source));
  TupleId next_id = 0;
  for (Tuple& t : result.clean) {
    t.set_id(next_id++);
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp ts, t.GetTimestamp());
    t.set_event_time(ts);
    t.set_arrival_time(ts);
  }

  Timestamp stream_start = options_.stream_start;
  Timestamp stream_end = options_.stream_end;
  if (stream_start > stream_end) {
    // Derive bounds from the materialized input.
    if (!result.clean.empty()) {
      stream_start = result.clean.front().event_time();
      stream_end = result.clean.back().event_time();
      for (const Tuple& t : result.clean) {
        stream_start = std::min(stream_start, t.event_time());
        stream_end = std::max(stream_end, t.event_time());
      }
    } else {
      stream_start = stream_end = 0;
    }
  }

  // Split into m (overlapping) sub-streams (line 4). The primary
  // assignment is round-robin (deterministic and balanced); with
  // probability overlap_fraction a tuple is copied into a second,
  // different sub-stream drawn from the process RNG.
  Rng master(options_.seed);
  Rng assign_rng = master.Fork();
  std::vector<TupleVector> substreams(static_cast<size_t>(m));
  for (size_t i = 0; i < result.clean.size(); ++i) {
    const int primary = static_cast<int>(i % static_cast<size_t>(m));
    Tuple copy = result.clean[i];
    copy.set_substream(primary);
    substreams[static_cast<size_t>(primary)].push_back(std::move(copy));
    if (m > 1 && assign_rng.Bernoulli(options_.overlap_fraction)) {
      int other =
          static_cast<int>(assign_rng.UniformInt(0, static_cast<int64_t>(m) - 2));
      if (other >= primary) ++other;
      Tuple dup = result.clean[i];
      dup.set_substream(other);
      substreams[static_cast<size_t>(other)].push_back(std::move(dup));
    }
  }

  // --- Step 2: pollute data (lines 5-9) -------------------------------
  std::vector<PollutionLog> logs(static_cast<size_t>(m));
  for (PollutionPipeline& pipeline : pipelines_) {
    pipeline.Seed(master.Next());
  }
  if (options_.parallel && m > 1) {
    std::vector<Status> statuses(static_cast<size_t>(m));
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      workers.emplace_back([&, i] {
        statuses[i] = PolluteSubstream(
            &substreams[i], pipelines_[i], stream_start, stream_end,
            options_.enable_log ? &logs[i] : nullptr);
      });
    }
    for (std::thread& w : workers) w.join();
    for (const Status& st : statuses) ICEWAFL_RETURN_NOT_OK(st);
  } else {
    for (int i = 0; i < m; ++i) {
      ICEWAFL_RETURN_NOT_OK(PolluteSubstream(
          &substreams[i], pipelines_[i], stream_start, stream_end,
          options_.enable_log ? &logs[i] : nullptr));
    }
  }

  // --- Step 3: integrate and output (lines 10-11) ---------------------
  size_t total = 0;
  for (const TupleVector& s : substreams) total += s.size();
  result.polluted.reserve(total);
  for (TupleVector& s : substreams) {
    for (Tuple& t : s) result.polluted.push_back(std::move(t));
  }
  std::stable_sort(result.polluted.begin(), result.polluted.end(),
                   [](const Tuple& a, const Tuple& b) {
                     if (a.arrival_time() != b.arrival_time()) {
                       return a.arrival_time() < b.arrival_time();
                     }
                     return a.id() < b.id();
                   });
  for (PollutionLog& log : logs) {
    for (const PollutionLogEntry& e : log.entries()) {
      result.log.Record(e);
    }
  }
  return result;
}

Result<PollutionResult> PollutionProcess::Pollute(Source* source,
                                                  PollutionPipeline pipeline,
                                                  uint64_t seed,
                                                  bool enable_log) {
  ProcessOptions options;
  options.num_substreams = 1;
  options.seed = seed;
  options.enable_log = enable_log;
  PollutionProcess process(options);
  process.AddPipeline(std::move(pipeline));
  return process.Run(source);
}

}  // namespace icewafl
