#include "core/process.h"

#include <algorithm>
#include <memory>
#include <thread>

#include "stream/channel.h"

namespace icewafl {

PollutionProcess::PollutionProcess(ProcessOptions options)
    : options_(std::move(options)) {}

void PollutionProcess::AddPipeline(PollutionPipeline pipeline) {
  pipelines_.push_back(std::move(pipeline));
}

namespace {

/// Tuples per channel batch in parallel mode; small enough that the
/// split stage and the pipeline workers overlap on short streams, large
/// enough to amortize channel locking.
constexpr size_t kSubstreamBatch = 256;
/// Batches each sub-stream channel may buffer (backpressure bound).
constexpr size_t kSubstreamChannelCapacity = 4;

/// Applies `pipeline` to one prepared tuple; mirrors the per-tuple
/// context reset of the materializing implementation exactly so seeded
/// runs stay byte-identical.
Status PolluteTuple(const PollutionPipeline& pipeline, Tuple* t,
                    PollutionContext* ctx, PollutionLog* log) {
  ctx->tau = t->event_time();
  ctx->severity = 1.0;
  ctx->rng = nullptr;
  return pipeline.Apply(t, ctx, log);
}

}  // namespace

Result<PollutionResult> PollutionProcess::Run(Source* source) {
  const int m = options_.num_substreams;
  if (m < 1) {
    return Status::InvalidArgument("num_substreams must be >= 1");
  }
  if (static_cast<int>(pipelines_.size()) != m) {
    return Status::InvalidArgument(
        "expected " + std::to_string(m) + " pipelines, got " +
        std::to_string(pipelines_.size()));
  }
  if (options_.overlap_fraction < 0.0 || options_.overlap_fraction > 1.0) {
    return Status::InvalidArgument("overlap_fraction must be in [0, 1]");
  }
  if (options_.stream_start.has_value() != options_.stream_end.has_value()) {
    return Status::InvalidArgument(
        "stream_start and stream_end must be set together");
  }
  if (options_.stream_start.has_value() &&
      *options_.stream_start > *options_.stream_end) {
    return Status::InvalidArgument(
        "stream_start must be <= stream_end (got start=" +
        std::to_string(*options_.stream_start) +
        ", end=" + std::to_string(*options_.stream_end) + ")");
  }

  PollutionResult result;
  result.schema = source->schema();

  // --- Step 1: prepare data -------------------------------------------
  // Assign ids, replicate the timestamp into the event-time replica tau,
  // and initialize the arrival time (Algorithm 1, lines 1-3).
  ICEWAFL_ASSIGN_OR_RETURN(result.clean, CollectAll(source));
  TupleId next_id = 0;
  for (Tuple& t : result.clean) {
    t.set_id(next_id++);
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp ts, t.GetTimestamp());
    t.set_event_time(ts);
    t.set_arrival_time(ts);
  }

  Timestamp stream_start = 0;
  Timestamp stream_end = 0;
  if (options_.stream_start.has_value()) {
    stream_start = *options_.stream_start;
    stream_end = *options_.stream_end;
  } else if (!result.clean.empty()) {
    // Derive bounds from the prepared input.
    stream_start = result.clean.front().event_time();
    stream_end = stream_start;
    for (const Tuple& t : result.clean) {
      stream_start = std::min(stream_start, t.event_time());
      stream_end = std::max(stream_end, t.event_time());
    }
  }

  // --- Steps 2+3: split -> pollute -> collect, streamed ----------------
  // The split (line 4) assigns tuples round-robin (deterministic and
  // balanced); with probability overlap_fraction a tuple is copied into
  // a second, different sub-stream drawn from the process RNG. Instead
  // of materializing all m sub-streams and polluting them afterwards,
  // each assigned copy flows straight into its sub-stream's pipeline
  // (lines 5-9) — sequentially in-line, or in parallel mode through a
  // bounded channel per sub-stream so that splitting and pollution
  // overlap under backpressure. Per-pipeline work order is identical to
  // the materializing implementation, so seeded output does not change.
  // Bind every pipeline against the source schema up front (DESIGN.md
  // §8): misconfiguration fails here with a JSON-pointer path instead of
  // surfacing on the first tuple inside a worker. The workers' pipeline
  // state then shares the immutable bound plan.
  if (result.schema != nullptr) {
    for (PollutionPipeline& pipeline : pipelines_) {
      ICEWAFL_RETURN_NOT_OK(pipeline.Bind(result.schema));
    }
  }

  Rng master(options_.seed);
  Rng assign_rng = master.Fork();
  for (PollutionPipeline& pipeline : pipelines_) {
    pipeline.Seed(master.Next());
  }

  std::vector<TupleVector> outputs(static_cast<size_t>(m));
  std::vector<PollutionLog> logs(static_cast<size_t>(m));

  // Yields each prepared copy as (substream, tuple) in input order —
  // primary assignment first, then the optional overlap duplicate.
  auto for_each_assignment = [&](auto&& deliver) -> Status {
    for (size_t i = 0; i < result.clean.size(); ++i) {
      const int primary = static_cast<int>(i % static_cast<size_t>(m));
      Tuple copy = result.clean[i];
      copy.set_substream(primary);
      ICEWAFL_RETURN_NOT_OK(deliver(primary, std::move(copy)));
      if (m > 1 && assign_rng.Bernoulli(options_.overlap_fraction)) {
        int other = static_cast<int>(
            assign_rng.UniformInt(0, static_cast<int64_t>(m) - 2));
        if (other >= primary) ++other;
        Tuple dup = result.clean[i];
        dup.set_substream(other);
        ICEWAFL_RETURN_NOT_OK(deliver(other, std::move(dup)));
      }
    }
    return Status::OK();
  };

  if (options_.parallel && m > 1) {
    // One bounded channel + pipeline worker per sub-stream; the splitter
    // (caller thread) pushes batches and blocks when a worker lags.
    std::vector<std::unique_ptr<BatchChannel>> channels;
    channels.reserve(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      channels.push_back(
          std::make_unique<BatchChannel>(kSubstreamChannelCapacity));
    }
    std::vector<Status> statuses(static_cast<size_t>(m));
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      workers.emplace_back([&, i] {
        PollutionContext ctx;
        ctx.stream_start = stream_start;
        ctx.stream_end = stream_end;
        PollutionLog* log = options_.enable_log ? &logs[i] : nullptr;
        TupleVector batch;
        while (channels[i]->Pop(&batch)) {
          for (Tuple& t : batch) {
            Status st = PolluteTuple(pipelines_[i], &t, &ctx, log);
            if (!st.ok()) {
              statuses[i] = st;
              channels[i]->Poison();  // unblock and stop the splitter
              return;
            }
            outputs[i].push_back(std::move(t));
          }
        }
      });
    }

    std::vector<TupleVector> pending(static_cast<size_t>(m));
    for (TupleVector& p : pending) p.reserve(kSubstreamBatch);
    Status split_status = for_each_assignment(
        [&](int substream, Tuple tuple) -> Status {
          TupleVector& batch = pending[static_cast<size_t>(substream)];
          batch.push_back(std::move(tuple));
          if (batch.size() >= kSubstreamBatch) {
            if (!channels[substream]->Push(std::move(batch))) {
              return Status::Internal("substream worker aborted");
            }
            batch = TupleVector();
            batch.reserve(kSubstreamBatch);
          }
          return Status::OK();
        });
    if (split_status.ok()) {
      for (int i = 0; i < m; ++i) {
        if (!pending[static_cast<size_t>(i)].empty()) {
          // A failed push only means the worker aborted; its status is
          // reported below.
          channels[i]->Push(std::move(pending[static_cast<size_t>(i)]));
        }
      }
    }
    for (auto& channel : channels) channel->Close();
    for (std::thread& w : workers) w.join();
    for (const Status& st : statuses) {
      if (!st.ok()) return st;
    }
    // A split failure not caused by a worker abort (worker statuses all
    // OK) is a genuine error.
    if (!split_status.ok()) return split_status;
  } else {
    // Sequential streaming: each assigned copy runs through its
    // pipeline immediately. Pipelines are independent, so interleaving
    // sub-streams consumes each pipeline's random stream in exactly the
    // order the sub-stream-at-a-time implementation did.
    std::vector<PollutionContext> contexts(static_cast<size_t>(m));
    for (PollutionContext& ctx : contexts) {
      ctx.stream_start = stream_start;
      ctx.stream_end = stream_end;
    }
    ICEWAFL_RETURN_NOT_OK(for_each_assignment(
        [&](int substream, Tuple tuple) -> Status {
          const auto s = static_cast<size_t>(substream);
          ICEWAFL_RETURN_NOT_OK(PolluteTuple(
              pipelines_[s], &tuple, &contexts[s],
              options_.enable_log ? &logs[s] : nullptr));
          outputs[s].push_back(std::move(tuple));
          return Status::OK();
        }));
  }

  // --- Step 3: integrate and output (lines 10-11) ---------------------
  size_t total = 0;
  for (const TupleVector& s : outputs) total += s.size();
  result.polluted.reserve(total);
  for (TupleVector& s : outputs) {
    for (Tuple& t : s) result.polluted.push_back(std::move(t));
  }
  std::stable_sort(result.polluted.begin(), result.polluted.end(),
                   [](const Tuple& a, const Tuple& b) {
                     if (a.arrival_time() != b.arrival_time()) {
                       return a.arrival_time() < b.arrival_time();
                     }
                     return a.id() < b.id();
                   });
  for (PollutionLog& log : logs) {
    for (const PollutionLogEntry& e : log.entries()) {
      result.log.Record(e);
    }
  }
  return result;
}

Result<PollutionResult> PollutionProcess::Pollute(Source* source,
                                                  PollutionPipeline pipeline,
                                                  uint64_t seed,
                                                  bool enable_log) {
  ProcessOptions options;
  options.num_substreams = 1;
  options.seed = seed;
  options.enable_log = enable_log;
  PollutionProcess process(options);
  process.AddPipeline(std::move(pipeline));
  return process.Run(source);
}

}  // namespace icewafl
