#include "core/derived_error.h"

namespace icewafl {

DerivedTemporalError::DerivedTemporalError(ErrorFunctionPtr base,
                                           TimeProfilePtr profile)
    : base_(std::move(base)), profile_(std::move(profile)) {}

Status DerivedTemporalError::Bind(BindContext& ctx,
                                  const std::vector<size_t>& attrs) {
  // Delegate to the wrapped static error; the profile has no schema
  // dependency (it reads only the tuple's event time via the context).
  return base_->Bind(ctx, attrs);
}

void DerivedTemporalError::Apply(Tuple* tuple,
                                 const std::vector<size_t>& attrs,
                                 PollutionContext* ctx) {
  const double outer = ctx->severity;
  ctx->severity = outer * profile_->Evaluate(*ctx);
  base_->Apply(tuple, attrs, ctx);
  ctx->severity = outer;
}

void DerivedTemporalError::Observe(const Tuple& tuple,
                                   const std::vector<size_t>& attrs) {
  base_->Observe(tuple, attrs);
}

std::string DerivedTemporalError::name() const {
  return base_->name() + "@" + profile_->name();
}

ErrorTraits DerivedTemporalError::Describe() const {
  ErrorTraits traits = base_->Describe();
  traits.uses_rng = true;
  return traits;
}

Json DerivedTemporalError::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "derived");
  j.Set("base", base_->ToJson());
  j.Set("profile", profile_->ToJson());
  return j;
}

ErrorFunctionPtr DerivedTemporalError::Clone() const {
  return std::make_unique<DerivedTemporalError>(base_->Clone(),
                                                profile_->Clone());
}

}  // namespace icewafl
