#ifndef ICEWAFL_CORE_POLLUTER_OPERATOR_H_
#define ICEWAFL_CORE_POLLUTER_OPERATOR_H_

#include <utility>

#include "core/pipeline.h"
#include "stream/operator.h"

namespace icewafl {

/// \brief Adapter running a pollution pipeline as a dataflow operator.
///
/// This is how Icewafl plugs into an existing streaming topology (the
/// paper's "seamless integration with existing data stream pipelines"):
/// the operator prepares each tuple (id + event-time replica) if the
/// upstream has not done so, applies the pipeline, and forwards the
/// result. Stream bounds for stream-relative profiles must be supplied
/// up front since an operator cannot see the end of the stream.
class PolluterOperator : public Operator {
 public:
  PolluterOperator(PollutionPipeline pipeline, uint64_t seed,
                   Timestamp stream_start = 0, Timestamp stream_end = 0,
                   PollutionLog* log = nullptr)
      : pipeline_(std::move(pipeline)),
        stream_start_(stream_start),
        stream_end_(stream_end),
        log_(log) {
    pipeline_.Seed(seed);
  }

  Status Process(Tuple tuple, Emitter* out) override {
    ICEWAFL_RETURN_NOT_OK(Prepare(&tuple));
    PollutionContext ctx;
    ctx.stream_start = stream_start_;
    ctx.stream_end = stream_end_;
    ctx.tau = tuple.event_time();
    ICEWAFL_RETURN_NOT_OK(pipeline_.Apply(&tuple, &ctx, log_));
    return out->Emit(std::move(tuple));
  }

  /// \brief Batched fast path: the context (with its fixed stream
  /// bounds) is set up once per batch instead of once per tuple, and the
  /// pipeline is applied in a tight loop.
  Status ProcessBatch(TupleVector* batch, Emitter* out) override {
    PollutionContext ctx;
    ctx.stream_start = stream_start_;
    ctx.stream_end = stream_end_;
    for (Tuple& tuple : *batch) {
      ICEWAFL_RETURN_NOT_OK(Prepare(&tuple));
      ctx.tau = tuple.event_time();
      ctx.severity = 1.0;
      ctx.rng = nullptr;
      ICEWAFL_RETURN_NOT_OK(pipeline_.Apply(&tuple, &ctx, log_));
      ICEWAFL_RETURN_NOT_OK(out->Emit(std::move(tuple)));
    }
    batch->clear();
    return Status::OK();
  }

  const PollutionPipeline& pipeline() const { return pipeline_; }

 private:
  /// Assigns id and event-time replica if the upstream has not done so.
  Status Prepare(Tuple* tuple) {
    if (tuple->id() != kInvalidTupleId) return Status::OK();
    tuple->set_id(next_id_++);
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp ts, tuple->GetTimestamp());
    tuple->set_event_time(ts);
    tuple->set_arrival_time(ts);
    return Status::OK();
  }

  PollutionPipeline pipeline_;
  Timestamp stream_start_;
  Timestamp stream_end_;
  PollutionLog* log_;
  TupleId next_id_ = 0;
};

}  // namespace icewafl

#endif  // ICEWAFL_CORE_POLLUTER_OPERATOR_H_
