#ifndef ICEWAFL_CORE_POLLUTER_OPERATOR_H_
#define ICEWAFL_CORE_POLLUTER_OPERATOR_H_

#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "obs/metrics.h"
#include "stream/batch.h"
#include "stream/operator.h"

namespace icewafl {

/// \brief Adapter running a pollution pipeline as a dataflow operator.
///
/// This is how Icewafl plugs into an existing streaming topology (the
/// paper's "seamless integration with existing data stream pipelines"):
/// the operator prepares each tuple (id + event-time replica) if the
/// upstream has not done so, applies the pipeline, and forwards the
/// result. Stream bounds for stream-relative profiles must be supplied
/// up front since an operator cannot see the end of the stream.
class PolluterOperator : public Operator {
 public:
  PolluterOperator(PollutionPipeline pipeline, uint64_t seed,
                   Timestamp stream_start = 0, Timestamp stream_end = 0,
                   PollutionLog* log = nullptr)
      : pipeline_(std::move(pipeline)),
        stream_start_(stream_start),
        stream_end_(stream_end),
        log_(log),
        columnar_(pipeline_.SupportsColumnar()) {
    pipeline_.Seed(seed);
  }

  /// \brief Attaches per-operator instrumentation. Live counters track
  /// tuples seen / tuples polluted; Finish() additionally publishes the
  /// per-error-function activation counts of the whole polluter tree.
  /// When never called (or called with nullptr) the processing loops pay
  /// exactly one pointer-null check per tuple.
  void BindMetrics(obs::MetricRegistry* registry) {
    metrics_ = registry;
    if (registry == nullptr) {
      tuples_seen_ = nullptr;
      tuples_polluted_ = nullptr;
      return;
    }
    const obs::Labels labels = {{"pipeline", pipeline_.name()}};
    tuples_seen_ =
        registry->GetCounter("icewafl_polluter_tuples_total", labels,
                             "Tuples that entered a pollution pipeline");
    tuples_polluted_ = registry->GetCounter(
        "icewafl_polluter_polluted_total", labels,
        "Tuples hit by at least one top-level polluter");
    // The processing loops gate on tuples_seen_ alone; if either counter
    // failed to register (metric-type conflict) disable both so the
    // polluted path never dereferences null.
    if (tuples_seen_ == nullptr || tuples_polluted_ == nullptr) {
      tuples_seen_ = nullptr;
      tuples_polluted_ = nullptr;
    }
  }

  Status Process(Tuple tuple, Emitter* out) override {
    ICEWAFL_RETURN_NOT_OK(Prepare(&tuple));
    PollutionContext ctx;
    ctx.stream_start = stream_start_;
    ctx.stream_end = stream_end_;
    ctx.tau = tuple.event_time();
    const uint64_t applied_before =
        tuples_seen_ != nullptr ? pipeline_.TotalAppliedCount() : 0;
    ICEWAFL_RETURN_NOT_OK(pipeline_.Apply(&tuple, &ctx, log_));
    if (tuples_seen_ != nullptr) {
      tuples_seen_->Increment();
      if (pipeline_.TotalAppliedCount() > applied_before) {
        tuples_polluted_->Increment();
      }
    }
    return out->Emit(std::move(tuple));
  }

  /// \brief Batched fast path: the context (with its fixed stream
  /// bounds) is set up once per batch instead of once per tuple, and the
  /// pipeline is applied in a tight loop. When every polluter supports
  /// columnar execution (and no pollution log is attached), the batch is
  /// transposed to a columnar Batch and the pipeline runs over typed
  /// column buffers instead of per-value variant dispatch (DESIGN.md
  /// §13) — output is byte-identical either way.
  Status ProcessBatch(TupleVector* batch, Emitter* out) override {
    PollutionContext ctx;
    ctx.stream_start = stream_start_;
    ctx.stream_end = stream_end_;
    const bool instrumented = tuples_seen_ != nullptr;
    if (columnar_ && log_ == nullptr && !batch->empty()) {
      for (Tuple& tuple : *batch) {
        ICEWAFL_RETURN_NOT_OK(Prepare(&tuple));
      }
      // Mixed schemas or missing ones fall through to the tuple path.
      Result<Batch> transposed = Batch::FromTuples(*batch);
      if (transposed.ok()) {
        Batch columnar = std::move(transposed).ValueOrDie();
        ctx.severity = 1.0;
        ctx.rng = nullptr;
        polluted_.assign(columnar.rows(), 0);
        // Seen is counted before Apply so a mid-batch failure can never
        // leave polluted_total > tuples_total.
        if (instrumented) tuples_seen_->Increment(columnar.rows());
        ICEWAFL_RETURN_NOT_OK(
            pipeline_.ApplyColumnar(&columnar, &ctx, polluted_.data()));
        if (instrumented) {
          uint64_t hit = 0;
          for (uint8_t p : polluted_) hit += p;
          if (hit > 0) tuples_polluted_->Increment(hit);
        }
        TupleVector result = columnar.ToTuples();
        for (Tuple& tuple : result) {
          ICEWAFL_RETURN_NOT_OK(out->Emit(std::move(tuple)));
        }
        batch->clear();
        return Status::OK();
      }
    }
    for (Tuple& tuple : *batch) {
      ICEWAFL_RETURN_NOT_OK(Prepare(&tuple));
      ctx.tau = tuple.event_time();
      ctx.severity = 1.0;
      ctx.rng = nullptr;
      const uint64_t applied_before =
          instrumented ? pipeline_.TotalAppliedCount() : 0;
      // Seen is counted before Apply so a mid-batch failure can never
      // leave polluted_total > tuples_total.
      if (instrumented) tuples_seen_->Increment();
      ICEWAFL_RETURN_NOT_OK(pipeline_.Apply(&tuple, &ctx, log_));
      if (instrumented && pipeline_.TotalAppliedCount() > applied_before) {
        tuples_polluted_->Increment();
      }
      ICEWAFL_RETURN_NOT_OK(out->Emit(std::move(tuple)));
    }
    batch->clear();
    return Status::OK();
  }

  /// \brief End-of-stream hook: publishes the activation count of every
  /// polluter in the tree to the bound registry. Counters are shared by
  /// label set, so per-worker clones aggregate into one series.
  Status Finish(Emitter* out) override {
    (void)out;
    pipeline_.PublishMetrics(metrics_);
    return Status::OK();
  }

  const PollutionPipeline& pipeline() const { return pipeline_; }

 private:
  /// Assigns id and event-time replica if the upstream has not done so.
  Status Prepare(Tuple* tuple) {
    if (tuple->id() != kInvalidTupleId) return Status::OK();
    tuple->set_id(next_id_++);
    ICEWAFL_ASSIGN_OR_RETURN(Timestamp ts, tuple->GetTimestamp());
    tuple->set_event_time(ts);
    tuple->set_arrival_time(ts);
    return Status::OK();
  }

  PollutionPipeline pipeline_;
  Timestamp stream_start_;
  Timestamp stream_end_;
  PollutionLog* log_;
  TupleId next_id_ = 0;
  obs::MetricRegistry* metrics_ = nullptr;
  obs::Counter* tuples_seen_ = nullptr;
  obs::Counter* tuples_polluted_ = nullptr;
  // Whether every polluter supports columnar execution (fixed at
  // construction; the polluter set never changes afterwards).
  const bool columnar_;
  // Per-batch polluted-row scratch reused across ProcessBatch calls.
  std::vector<uint8_t> polluted_;
};

}  // namespace icewafl

#endif  // ICEWAFL_CORE_POLLUTER_OPERATOR_H_
