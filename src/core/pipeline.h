#ifndef ICEWAFL_CORE_PIPELINE_H_
#define ICEWAFL_CORE_PIPELINE_H_

#include <map>
#include <string>
#include <vector>

#include "core/polluter.h"
#include "obs/metrics.h"
#include "stream/schema.h"

namespace icewafl {

/// \brief A pollution pipeline P = p_1, ..., p_o (Section 2.2.1): an
/// ordered sequence of polluters applied to every tuple, i.e.
/// t' = p_o(...p_1(t, tau)..., tau).
class PollutionPipeline {
 public:
  PollutionPipeline() = default;
  explicit PollutionPipeline(std::string name) : name_(std::move(name)) {}

  PollutionPipeline(PollutionPipeline&&) = default;
  PollutionPipeline& operator=(PollutionPipeline&&) = default;
  PollutionPipeline(const PollutionPipeline&) = delete;
  PollutionPipeline& operator=(const PollutionPipeline&) = delete;

  const std::string& name() const { return name_; }

  /// \brief Appends a polluter; execution follows insertion order.
  void Add(PolluterPtr polluter) { polluters_.push_back(std::move(polluter)); }

  size_t size() const { return polluters_.size(); }
  bool empty() const { return polluters_.empty(); }
  const std::vector<PolluterPtr>& polluters() const { return polluters_; }

  /// \brief Derives fresh random streams for every polluter from `seed`.
  /// Call once before a run; identical seeds reproduce identical output.
  void Seed(uint64_t seed);

  /// \brief Binds every polluter against `schema` (two-phase bind/run
  /// lifecycle, DESIGN.md §8): attribute names resolve to column indices
  /// once, and misconfiguration surfaces here as a Status whose message
  /// carries a JSON-pointer path ("at /polluters/0/condition/attribute:
  /// unknown attribute ..."). The pipeline keeps `schema` alive for its
  /// bound polluters; clones share the same immutable bound plan.
  Status Bind(SchemaPtr schema);

  /// \brief The schema this pipeline was last successfully bound
  /// against, or nullptr.
  const SchemaPtr& bound_schema() const { return bound_schema_; }

  /// \brief Runs the tuple through all polluters in order.
  Status Apply(Tuple* tuple, PollutionContext* ctx, PollutionLog* log) const;

  /// \brief True when every polluter supports columnar execution, so
  /// the whole pipeline can run over a Batch (DESIGN.md §13).
  bool SupportsColumnar() const;

  /// \brief Columnar twin of Apply: runs every polluter's
  /// PolluteColumnar over the batch in order. `polluted` must hold
  /// batch->rows() zero-initialized bytes; rows touched by any polluter
  /// are set to 1. Byte-identical to the tuple path when
  /// ctx->severity == 1.0; only call when SupportsColumnar().
  Status ApplyColumnar(Batch* batch, PollutionContext* ctx,
                       uint8_t* polluted) const;

  /// \brief Clears the applied counters of all polluters.
  void ResetStats();

  /// \brief Applied counts per polluter label (top-level polluters only;
  /// for nested counts use the pollution log).
  std::map<std::string, uint64_t> AppliedCounts() const;

  /// \brief Sum of the top-level polluters' applied counts; cheap enough
  /// to sample per tuple, which is how the operator adapters count
  /// polluted tuples without touching the data path.
  uint64_t TotalAppliedCount() const;

  /// \brief Pushes every polluter's activation count (composites
  /// recursively, so nested children appear as their own series) into
  /// `registry` as `icewafl_polluter_applied_total` counters labeled with
  /// the pipeline name, the polluter label, and the error function's
  /// name/domain (from ErrorFunction::Describe()). Counters aggregate
  /// across the per-worker pipeline clones of a parallel run. No-op when
  /// `registry` is nullptr.
  void PublishMetrics(obs::MetricRegistry* registry) const;

  /// \brief Deep copy with fresh polluter state.
  PollutionPipeline Clone() const;

  /// \brief Config representation.
  Json ToJson() const;

 private:
  std::string name_ = "pipeline";
  std::vector<PolluterPtr> polluters_;
  SchemaPtr bound_schema_;
};

}  // namespace icewafl

#endif  // ICEWAFL_CORE_PIPELINE_H_
