#include "core/time_profile.h"

#include <algorithm>
#include <cmath>

namespace icewafl {

namespace {

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

}  // namespace

ConstantProfile::ConstantProfile(double value) : value_(Clamp01(value)) {}

double ConstantProfile::Evaluate(const PollutionContext&) const {
  return value_;
}

Json ConstantProfile::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "constant");
  j.Set("value", value_);
  return j;
}

TimeProfilePtr ConstantProfile::Clone() const {
  return std::make_unique<ConstantProfile>(*this);
}

AbruptProfile::AbruptProfile(Timestamp change_time, double before, double after)
    : change_time_(change_time), before_(Clamp01(before)), after_(Clamp01(after)) {}

double AbruptProfile::Evaluate(const PollutionContext& ctx) const {
  return ctx.tau >= change_time_ ? after_ : before_;
}

Json AbruptProfile::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "abrupt");
  j.Set("change_time", static_cast<int64_t>(change_time_));
  j.Set("before", before_);
  j.Set("after", after_);
  return j;
}

TimeProfilePtr AbruptProfile::Clone() const {
  return std::make_unique<AbruptProfile>(*this);
}

IncrementalProfile::IncrementalProfile(Timestamp ramp_start, Timestamp ramp_end,
                                       double from, double to)
    : ramp_start_(ramp_start),
      ramp_end_(std::max(ramp_end, ramp_start)),
      from_(Clamp01(from)),
      to_(Clamp01(to)) {}

double IncrementalProfile::Evaluate(const PollutionContext& ctx) const {
  // A zero-length window degenerates to an abrupt change at ramp_start.
  if (ramp_end_ == ramp_start_) {
    return ctx.tau >= ramp_start_ ? to_ : from_;
  }
  if (ctx.tau <= ramp_start_) return from_;
  if (ctx.tau >= ramp_end_) return to_;
  const double frac = static_cast<double>(ctx.tau - ramp_start_) /
                      static_cast<double>(ramp_end_ - ramp_start_);
  return from_ + (to_ - from_) * frac;
}

Json IncrementalProfile::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "incremental");
  j.Set("ramp_start", static_cast<int64_t>(ramp_start_));
  j.Set("ramp_end", static_cast<int64_t>(ramp_end_));
  j.Set("from", from_);
  j.Set("to", to_);
  return j;
}

TimeProfilePtr IncrementalProfile::Clone() const {
  return std::make_unique<IncrementalProfile>(*this);
}

IntermediateProfile::IntermediateProfile(Timestamp ramp_start,
                                         Timestamp ramp_end, double before,
                                         double after)
    : ramp_start_(ramp_start),
      ramp_end_(std::max(ramp_end, ramp_start)),
      before_(Clamp01(before)),
      after_(Clamp01(after)) {}

double IntermediateProfile::Evaluate(const PollutionContext& ctx) const {
  if (ramp_end_ == ramp_start_) {
    return ctx.tau >= ramp_start_ ? after_ : before_;
  }
  if (ctx.tau <= ramp_start_) return before_;
  if (ctx.tau >= ramp_end_) return after_;
  const double frac = static_cast<double>(ctx.tau - ramp_start_) /
                      static_cast<double>(ramp_end_ - ramp_start_);
  // Gradual drift: inside the window the stream flips between the old and
  // the new regime; the new regime is sampled with probability `frac`.
  if (ctx.rng != nullptr) {
    return ctx.rng->Bernoulli(frac) ? after_ : before_;
  }
  // Without randomness fall back to the expected value.
  return before_ + (after_ - before_) * frac;
}

Json IntermediateProfile::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "intermediate");
  j.Set("ramp_start", static_cast<int64_t>(ramp_start_));
  j.Set("ramp_end", static_cast<int64_t>(ramp_end_));
  j.Set("before", before_);
  j.Set("after", after_);
  return j;
}

TimeProfilePtr IntermediateProfile::Clone() const {
  return std::make_unique<IntermediateProfile>(*this);
}

SinusoidalProfile::SinusoidalProfile(double period_hours, double amplitude,
                                     double offset, double phase)
    : period_hours_(period_hours),
      amplitude_(amplitude),
      offset_(offset),
      phase_(phase) {}

double SinusoidalProfile::Evaluate(const PollutionContext& ctx) const {
  if (period_hours_ <= 0.0) return Clamp01(offset_);
  // Hour of day (fractional) drives the cycle, so that the pattern
  // repeats every day for 24h periods regardless of the stream start.
  const double hour =
      static_cast<double>(MinuteOfDay(ctx.tau)) / 60.0 +
      static_cast<double>(ctx.tau % kSecondsPerMinute) / 3600.0;
  const double angle = 2.0 * M_PI / period_hours_ * hour + phase_;
  return Clamp01(amplitude_ * std::cos(angle) + offset_);
}

Json SinusoidalProfile::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "sinusoidal");
  j.Set("period_hours", period_hours_);
  j.Set("amplitude", amplitude_);
  j.Set("offset", offset_);
  j.Set("phase", phase_);
  return j;
}

TimeProfilePtr SinusoidalProfile::Clone() const {
  return std::make_unique<SinusoidalProfile>(*this);
}

ReoccurringProfile::ReoccurringProfile(double period_hours, double low,
                                       double high, double duty_cycle)
    : period_hours_(period_hours),
      low_(Clamp01(low)),
      high_(Clamp01(high)),
      duty_cycle_(std::min(1.0, std::max(0.0, duty_cycle))) {}

double ReoccurringProfile::Evaluate(const PollutionContext& ctx) const {
  if (period_hours_ <= 0.0) return high_;
  const double period_seconds = period_hours_ * kSecondsPerHour;
  // Phase relative to the stream start so the first regime is "high".
  double phase = std::fmod(
      static_cast<double>(ctx.tau - ctx.stream_start), period_seconds);
  if (phase < 0.0) phase += period_seconds;
  return phase < duty_cycle_ * period_seconds ? high_ : low_;
}

Json ReoccurringProfile::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "reoccurring");
  j.Set("period_hours", period_hours_);
  j.Set("low", low_);
  j.Set("high", high_);
  j.Set("duty_cycle", duty_cycle_);
  return j;
}

TimeProfilePtr ReoccurringProfile::Clone() const {
  return std::make_unique<ReoccurringProfile>(*this);
}

SpikeProfile::SpikeProfile(Timestamp center, int64_t width_seconds,
                           double peak)
    : center_(center),
      width_seconds_(std::max(int64_t{1}, width_seconds)),
      peak_(Clamp01(peak)) {}

double SpikeProfile::Evaluate(const PollutionContext& ctx) const {
  const double z = static_cast<double>(ctx.tau - center_) /
                   static_cast<double>(width_seconds_);
  return Clamp01(peak_ * std::exp(-0.5 * z * z));
}

Json SpikeProfile::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "spike");
  j.Set("center", static_cast<int64_t>(center_));
  j.Set("width_seconds", width_seconds_);
  j.Set("peak", peak_);
  return j;
}

TimeProfilePtr SpikeProfile::Clone() const {
  return std::make_unique<SpikeProfile>(*this);
}

StreamRampProfile::StreamRampProfile(double scale) : scale_(scale) {}

double StreamRampProfile::Evaluate(const PollutionContext& ctx) const {
  const double total = HoursBetween(ctx.stream_start, ctx.stream_end);
  if (total <= 0.0) return 0.0;
  const double elapsed = HoursBetween(ctx.stream_start, ctx.tau);
  return Clamp01(scale_ * elapsed / total);
}

Json StreamRampProfile::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("type", "stream_ramp");
  j.Set("scale", scale_);
  return j;
}

TimeProfilePtr StreamRampProfile::Clone() const {
  return std::make_unique<StreamRampProfile>(*this);
}

// ---------------------------------------------------------------------
// Value-range enclosures (introspection for the static analyzer). Each
// must be a superset of the values Evaluate() can produce.
// ---------------------------------------------------------------------

ProfileBounds ConstantProfile::Bounds() const { return {value_, value_}; }

ProfileBounds AbruptProfile::Bounds() const {
  return {std::min(before_, after_), std::max(before_, after_)};
}

ProfileBounds IncrementalProfile::Bounds() const {
  return {std::min(from_, to_), std::max(from_, to_)};
}

ProfileBounds IntermediateProfile::Bounds() const {
  return {std::min(before_, after_), std::max(before_, after_)};
}

ProfileBounds SinusoidalProfile::Bounds() const {
  if (period_hours_ <= 0.0) {
    const double v = Clamp01(offset_);
    return {v, v};
  }
  const double amp = std::abs(amplitude_);
  return {Clamp01(offset_ - amp), Clamp01(offset_ + amp)};
}

ProfileBounds ReoccurringProfile::Bounds() const {
  if (period_hours_ <= 0.0 || duty_cycle_ >= 1.0) return {high_, high_};
  if (duty_cycle_ <= 0.0) return {low_, low_};
  return {std::min(low_, high_), std::max(low_, high_)};
}

ProfileBounds SpikeProfile::Bounds() const {
  // Far from the center the bump decays towards (but never exactly to)
  // zero, so the lower bound is 0.
  return {0.0, peak_};
}

ProfileBounds StreamRampProfile::Bounds() const {
  // Evaluate() is scale * frac with frac in [0, 1], clamped to [0, 1];
  // for unbounded streams it degenerates to 0.
  return {0.0, Clamp01(std::max(0.0, scale_))};
}

}  // namespace icewafl
