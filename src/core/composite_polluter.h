#ifndef ICEWAFL_CORE_COMPOSITE_POLLUTER_H_
#define ICEWAFL_CORE_COMPOSITE_POLLUTER_H_

#include <string>
#include <vector>

#include "core/polluter.h"

namespace icewafl {

/// \brief Base for polluters that structure the pipeline by delegating to
/// registered child polluters (Section 2.2.1).
///
/// The composite's own condition acts as a shared gate: children are only
/// consulted when it fires, which is how scenarios like the software
/// update (several error types occurring together after one date) are
/// modeled. Children keep their own conditions, enabling nesting of
/// arbitrary depth.
class CompositePolluter : public Polluter {
 public:
  CompositePolluter(std::string label, ConditionPtr condition);

  /// \brief Registers a child; children execute in registration order.
  void Register(PolluterPtr child);

  size_t num_children() const { return children_.size(); }
  const std::vector<PolluterPtr>& children() const { return children_; }

  /// \brief Binds the gate condition (at "condition") and recurses into
  /// the children (at "children/<i>").
  Status Bind(BindContext& ctx) override;

  void Seed(Rng* parent) override;
  void ResetStats() override;

 protected:
  Json ChildrenToJson() const;
  std::vector<PolluterPtr> CloneChildren() const;

  ConditionPtr condition_;
  std::vector<PolluterPtr> children_;
  Rng rng_;
};

/// \brief Runs all children in sequence when the gate condition fires
/// (errors that occur together; children may chain on each other's
/// output, like the BPM "set to 0, then maybe to null" pair).
class SequentialPolluter : public CompositePolluter {
 public:
  SequentialPolluter(std::string label, ConditionPtr condition);

  Status Pollute(Tuple* tuple, PollutionContext* ctx,
                 PollutionLog* log) override;
  Json ToJson() const override;
  PolluterPtr Clone() const override;
};

/// \brief Runs exactly one child, drawn by weight, when the gate fires
/// (mutually exclusive error types).
class ExclusivePolluter : public CompositePolluter {
 public:
  /// Children registered via Register() get weight 1; use RegisterWeighted
  /// for non-uniform choice.
  ExclusivePolluter(std::string label, ConditionPtr condition);

  void RegisterWeighted(PolluterPtr child, double weight);

  /// \brief Additionally rejects a non-positive total child weight.
  Status Bind(BindContext& ctx) override;

  Status Pollute(Tuple* tuple, PollutionContext* ctx,
                 PollutionLog* log) override;
  Json ToJson() const override;
  PolluterPtr Clone() const override;

 private:
  double TotalWeight() const;

  std::vector<double> weights_;
};

}  // namespace icewafl

#endif  // ICEWAFL_CORE_COMPOSITE_POLLUTER_H_
