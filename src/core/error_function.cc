#include "core/error_function.h"

namespace icewafl {

Status ErrorFunction::Bind(BindContext& ctx,
                           const std::vector<size_t>& attrs) {
  const ErrorTraits traits = Describe();
  for (size_t idx : attrs) {
    const Attribute& attribute = ctx.schema().attribute(idx);
    switch (traits.domain) {
      case ErrorDomain::kNumeric:
        if (attribute.type != ValueType::kInt64 &&
            attribute.type != ValueType::kDouble) {
          return ctx.Error(StatusCode::kTypeError,
                           "numeric error '" + name() +
                               "' targets non-numeric attribute '" +
                               attribute.name + "' (" +
                               ValueTypeName(attribute.type) + ")");
        }
        break;
      case ErrorDomain::kString:
        if (attribute.type != ValueType::kString) {
          return ctx.Error(StatusCode::kTypeError,
                           "string error '" + name() +
                               "' targets non-string attribute '" +
                               attribute.name + "' (" +
                               ValueTypeName(attribute.type) + ")");
        }
        break;
      case ErrorDomain::kAnyValue:
      case ErrorDomain::kMetadata:
        break;
    }
  }
  return Status::OK();
}

}  // namespace icewafl
