#ifndef ICEWAFL_NET_SERVER_H_
#define ICEWAFL_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "obs/net_metrics.h"
#include "stream/channel.h"
#include "stream/schema.h"
#include "stream/sink.h"
#include "util/result.h"

namespace icewafl {
namespace net {

/// \brief What the server does with a subscriber whose bounded queue is
/// full (the slow-consumer decision every fan-out system has to make).
enum class SlowConsumerPolicy {
  /// Block the pollution pipeline until the consumer catches up —
  /// backpressure propagates through the runtime's channels all the way
  /// to the source. Every subscriber sees the complete stream.
  kBlock = 0,
  /// Drop the oldest queued frame to make room. The pipeline never
  /// stalls; slow consumers see gaps (drops are counted per server).
  kDropOldest,
  /// Close the slow subscriber's connection. The pipeline never stalls
  /// and surviving subscribers see the complete stream; the victim
  /// observes a mid-stream disconnect.
  kDisconnect,
};

/// \brief Wire name of a policy ("block", "drop_oldest", "disconnect").
const char* SlowConsumerPolicyName(SlowConsumerPolicy policy);

/// \brief Inverse of SlowConsumerPolicyName.
Result<SlowConsumerPolicy> SlowConsumerPolicyFromName(const std::string& name);

/// \brief All valid policy names, for diagnostics and lint hints.
const std::vector<std::string>& SlowConsumerPolicyNames();

/// \brief Configuration of a PollutionServer.
struct ServerOptions {
  /// Interface to bind; empty means INADDR_ANY.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (see PollutionServer::port()).
  uint16_t port = 0;
  int backlog = 16;
  /// Subscribers that must be connected before a session starts. A
  /// session snapshots the waiting subscribers and streams one full
  /// pollution run to them; late joiners wait for the next session.
  int min_subscribers = 1;
  /// Sessions to serve before Wait() returns; 0 = until RequestStop().
  uint64_t max_sessions = 0;
  /// Frames each subscriber queue buffers before the slow-consumer
  /// policy applies (must be >= 1).
  size_t queue_capacity = 256;
  SlowConsumerPolicy slow_consumer = SlowConsumerPolicy::kBlock;
  /// Optional metrics sink (not owned; may be nullptr).
  obs::MetricRegistry* metrics = nullptr;
};

/// \brief TCP fan-out server for polluted streams (DESIGN.md section 9).
///
/// Topology: one *network thread* owns a poll()-driven loop over the
/// listening socket, a self-pipe, and every subscriber connection; one
/// *session thread* repeatedly runs the bound pollution pipeline (the
/// `SessionFn`, typically `PipelineRuntime` over a scenario source) into
/// a fan-out sink. Each subscriber has a bounded `BoundedChannel` frame
/// queue between the two threads: the sink encodes each tuple once and
/// enqueues the shared frame per subscriber; the network thread drains
/// queues into per-connection write buffers and the sockets.
///
/// Protocol per connection: the server immediately sends a Schema frame
/// (handshake), then — once a session starts — Tuple frames, then one
/// End frame carrying the session's tuple count, then closes. A session
/// failure is reported with an Error frame instead of End.
///
/// Lifecycle: Start() binds and spawns the threads; Wait() blocks until
/// `max_sessions` sessions completed, then drains and closes every
/// connection gracefully; RequestStop() aborts (queues poisoned, fds
/// closed). The destructor aborts if still running — no fd or thread
/// leaks on any path.
class PollutionServer {
 public:
  /// \brief One pollution session: stream the full (bounded) polluted
  /// stream into `sink`. Invoked on the session thread once per
  /// session; must create its own Source so sessions are independent
  /// replays.
  using SessionFn = std::function<Status(Sink* sink)>;

  PollutionServer(SchemaPtr schema, SessionFn session,
                  ServerOptions options = {});
  ~PollutionServer();

  PollutionServer(const PollutionServer&) = delete;
  PollutionServer& operator=(const PollutionServer&) = delete;

  /// \brief Binds, listens, and spawns the serving threads.
  Status Start();

  /// \brief The actually bound port (differs from options.port when 0).
  uint16_t port() const { return port_; }

  /// \brief Blocks until the configured sessions are served, then
  /// flushes and closes every subscriber. Returns the first session
  /// error, if any. With max_sessions == 0 this returns only after
  /// RequestStop().
  Status Wait();

  /// \brief Aborts serving: poisons every queue, wakes every thread.
  /// Idempotent and safe from any thread (including signal-free CLI
  /// teardown paths).
  void RequestStop();

  /// \brief Completed sessions so far.
  uint64_t sessions_served() const {
    return sessions_served_.load(std::memory_order_relaxed);
  }

  /// \brief Currently connected subscribers (tests / introspection).
  size_t clients_connected() const;

 private:
  struct QueuedFrame {
    std::shared_ptr<const std::string> bytes;
    std::chrono::steady_clock::time_point enqueued;
  };
  using FrameQueue = BoundedChannel<QueuedFrame>;

  struct Client {
    uint64_t id = 0;
    UniqueFd fd;
    std::shared_ptr<FrameQueue> queue;
    /// Write buffer; owned exclusively by the network thread.
    std::string outbuf;
    size_t outpos = 0;
    /// Guarded by mu_: session membership and the disconnect-policy
    /// kill flag.
    bool in_session = false;
    bool kill = false;
    obs::Histogram* send_latency = nullptr;
  };
  using ClientPtr = std::shared_ptr<Client>;

  class FanoutSink;

  void NetLoop();
  void SessionLoop();
  /// Applies the slow-consumer policy to enqueue `frame` for `client`.
  /// Returns false when the client can no longer receive (closed/killed).
  bool EnqueueFrame(const ClientPtr& client,
                    const std::shared_ptr<const std::string>& frame);
  /// Network-thread helper: moves queued frames into the write buffer
  /// and writes to the socket. Returns false when the connection is
  /// finished (drained or broken) and should be removed.
  bool ServiceClient(const ClientPtr& client);
  void RemoveClient(const ClientPtr& client);

  SchemaPtr schema_;
  SessionFn session_;
  ServerOptions options_;
  std::string schema_frame_;

  UniqueFd listen_fd_;
  WakePipe wake_;
  uint16_t port_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ClientPtr> clients_;
  bool started_ = false;
  bool accepting_ = false;
  bool draining_ = false;
  bool stop_requested_ = false;
  bool session_thread_done_ = false;
  Status first_error_;
  uint64_t next_client_id_ = 1;

  std::atomic<uint64_t> sessions_served_{0};
  obs::ServerMetrics metrics_;

  std::thread net_thread_;
  std::thread session_thread_;
};

}  // namespace net
}  // namespace icewafl

#endif  // ICEWAFL_NET_SERVER_H_
