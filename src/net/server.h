#ifndef ICEWAFL_NET_SERVER_H_
#define ICEWAFL_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/plan.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/net_metrics.h"
#include "stream/channel.h"
#include "stream/schema.h"
#include "stream/sink.h"
#include "util/result.h"
#include "util/sync.h"

namespace icewafl {
namespace net {

/// \brief What the server does with a subscriber whose bounded queue is
/// full (the slow-consumer decision every fan-out system has to make).
enum class SlowConsumerPolicy {
  /// Block the pollution pipeline until the consumer catches up —
  /// backpressure propagates through the runtime's channels all the way
  /// to the source. Every subscriber sees the complete stream.
  kBlock = 0,
  /// Drop the oldest queued frame to make room. The pipeline never
  /// stalls; slow consumers see gaps (drops are counted per session).
  kDropOldest,
  /// Close the slow subscriber's connection. The pipeline never stalls
  /// and surviving subscribers see the complete stream; the victim
  /// observes a mid-stream disconnect.
  kDisconnect,
};

/// \brief Wire name of a policy ("block", "drop_oldest", "disconnect").
const char* SlowConsumerPolicyName(SlowConsumerPolicy policy);

/// \brief Inverse of SlowConsumerPolicyName.
Result<SlowConsumerPolicy> SlowConsumerPolicyFromName(const std::string& name);

/// \brief All valid policy names, for diagnostics and lint hints.
const std::vector<std::string>& SlowConsumerPolicyNames();

/// \brief Server-wide configuration of a PollutionServer.
struct ServerOptions {
  /// Interface to bind; empty means INADDR_ANY.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (see PollutionServer::port()).
  uint16_t port = 0;
  int backlog = 16;
  /// Size of the worker pool that drives ready sessions' pipelines. A
  /// server hosts many sessions over few workers (many-sessions-few-
  /// workers sharding); must be >= 1.
  int workers = 2;
  /// Frames each subscriber queue buffers before the slow-consumer
  /// policy applies (must be >= 1).
  size_t queue_capacity = 256;
  /// Tuples per Batch frame for subscribers that negotiated
  /// kCapBatchFrames in their Subscribe hello (must be >= 1). Tuple
  /// subscribers are unaffected; a trailing partial batch is flushed
  /// before the End frame.
  size_t batch_rows = 256;
  SlowConsumerPolicy slow_consumer = SlowConsumerPolicy::kBlock;
  /// Optional metrics sink (not owned; may be nullptr).
  obs::MetricRegistry* metrics = nullptr;
};

/// \brief Per-session configuration.
struct SessionOptions {
  /// Subscribers that must be waiting before a run starts. A run
  /// snapshots the waiting subscribers and streams one full pollution
  /// run to them; late joiners wait for the session's next run.
  int min_subscribers = 1;
  /// Pipeline runs to serve before the session retires; 0 = until
  /// StopSession() / RequestStop().
  uint64_t max_runs = 0;
  /// Optional initial plan snapshot. When set, AddSession publishes it
  /// as version 1, the session becomes plan-driven (SwapPlan /
  /// UpdateSession apply), and its runs receive the snapshot through
  /// their PlanContext. The plan's schema must match the session's.
  /// (The explicit initializer keeps designated-initializer call sites
  /// that omit it clean under -Wmissing-field-initializers.)
  std::shared_ptr<PlanSnapshot> plan = nullptr;
};

/// \brief Introspection snapshot of one session (tests, `admin
/// list_sessions`).
struct SessionInfo {
  std::string id;
  std::string scenario;  ///< plan scenario; empty for plan-less sessions
  std::string state;     ///< "waiting" | "queued" | "running" | "retired"
  uint64_t runs = 0;
  int waiting_subscribers = 0;
  uint64_t plan_version = 0;  ///< 0 for plan-less sessions
  uint64_t plan_swaps = 0;
  /// Segments of the current (or most recent) run, in adoption order:
  /// where each plan version took over the clean stream.
  std::vector<PlanSegment> segments;
};

/// \brief Multi-tenant TCP fan-out server for polluted streams
/// (DESIGN.md section 11).
///
/// Topology: one *reactor thread* owns a poll()-driven event loop over
/// the listening socket, a self-pipe, and every connection, advancing
/// small heap-allocated per-connection state machines (kHandshake →
/// kStreaming → kClosing); a registry of *named sessions* — each owning
/// a scenario pipeline factory, its encode-once frame stream, and its
/// subscriber set — moves through its own state machine (kWaiting →
/// kQueued → kRunning → kWaiting…, terminally kRetired); a fixed
/// *worker pool* pops ready sessions from a run queue and drives one
/// full pipeline run each (many sessions, few workers). Each subscriber
/// has a bounded `BoundedChannel` frame queue between a worker and the
/// reactor: the per-run fan-out sink encodes each tuple once and
/// enqueues the shared frame per subscriber; the reactor drains queues
/// into per-connection write buffers and the sockets. The reactor never
/// ticks: every cross-thread transition pokes the self-pipe, so poll()
/// blocks indefinitely when nothing is happening.
///
/// Protocol per connection (wire version 2): the client speaks first
/// with a Subscribe frame naming a session; the server answers with
/// that session's Schema frame (handshake), then — once a run starts —
/// Tuple frames, then one End frame carrying the run's tuple count,
/// then closes. A bad hello (unknown session, version mismatch,
/// malformed frame) or a run failure is reported with an Error frame.
///
/// Lifecycle: sessions can be added before or after Start() and stopped
/// at runtime; Start() binds and spawns the threads; Wait() blocks
/// until every registered session has retired, then drains and closes
/// every connection gracefully; RequestStop() aborts (queues poisoned,
/// fds closed). The destructor aborts if still running — no fd or
/// thread leaks on any path.
///
/// Locking (checked under `-Wthread-safety`; DESIGN.md §12). Three lock
/// layers, acquired strictly in this order and never reversed:
///
///   registry `mu_` (kLockRankServerRegistry)
///     → `Session::mu` (kLockRankSession)
///       → `Connection::mu` (kLockRankConnection)
///         → frame-queue channel locks (kLockRankChannel)
///
/// The registry lock guards the collections (`sessions_`, `conns_`,
/// `run_queue_`) and the server-wide flags; each session and connection
/// guards its own mutable state. Two sessions (or two connections) are
/// never locked at once — same-rank acquisitions are always sequential,
/// one at a time. `cv_` is associated with the registry lock, so every
/// session *state transition* holds both `mu_` and the session's `mu`
/// (registry first): a waiter's predicate re-check can then never miss
/// a transition. Ordering is enforced at runtime by the lockdep-lite
/// rank check in util/sync.h.
class PollutionServer {
 public:
  /// \brief One pollution run: stream the full (bounded) polluted
  /// stream into `sink`. Invoked on a worker thread once per run; must
  /// create its own Source so runs are independent replays. `ctx`
  /// carries the session's plan snapshot (null members for plan-less
  /// sessions): plan-driven runs read `ctx.plan`, poll `ctx.latest()`
  /// at cutover boundaries, and report adopted segments through
  /// `ctx.on_segment` (scenarios::ServePlanToSink does all three).
  using SessionFn = std::function<Status(const PlanContext& ctx, Sink* sink)>;

  explicit PollutionServer(ServerOptions options = {});
  ~PollutionServer();

  PollutionServer(const PollutionServer&) = delete;
  PollutionServer& operator=(const PollutionServer&) = delete;

  /// \brief Registers a named session. Valid before or after Start()
  /// (runtime creation); fails once the server is stopping. The id must
  /// be non-empty, unique, and at most kMaxSessionIdBytes bytes.
  Status AddSession(const std::string& id, SchemaPtr schema, SessionFn fn,
                    SessionOptions options = {}) EXCLUDES(mu_);

  /// \brief Retires a session at runtime. A waiting session retires
  /// immediately (its waiting subscribers get an Error frame); a
  /// running session aborts its current run. Idempotent once retired;
  /// NotFound for an unknown id.
  Status StopSession(const std::string& id) EXCLUDES(mu_);

  /// \brief Atomically publishes `next` as the session's newest plan.
  ///
  /// The server assigns the next version and the publication timestamp,
  /// then swaps the session's snapshot pointer under the lock hierarchy
  /// (registry → session). A running pipeline finishes its in-flight
  /// rows under the old snapshot and adopts the new one at its next
  /// cutover boundary; a waiting session picks it up at its next run.
  /// Subscribers are never disconnected. Fails without applying when
  /// the session is unknown, retired, plan-less, or when the new plan's
  /// schema differs from the session's (subscribers already hold the
  /// session's Schema frame from their handshake).
  Status SwapPlan(const std::string& id, std::shared_ptr<PlanSnapshot> next)
      EXCLUDES(mu_);

  /// \brief Delta update: clones the session's current snapshot, lets
  /// `mutate` adjust the copy (e.g. the pacing rate), and republishes
  /// it as the next version. Same atomicity and failure contract as
  /// SwapPlan.
  Status UpdateSession(const std::string& id,
                       const std::function<void(PlanSnapshot*)>& mutate)
      EXCLUDES(mu_);

  /// \brief Introspection for one session; NotFound for an unknown id.
  /// Valid on retired sessions (their last run's segments persist).
  Result<SessionInfo> session_info(const std::string& id) const EXCLUDES(mu_);

  /// \brief Introspection for every session, in registration order.
  std::vector<SessionInfo> ListSessions() const EXCLUDES(mu_);

  /// \brief The session's current published plan (NotFound for an
  /// unknown id; null for a plan-less session).
  Result<PlanPtr> session_plan(const std::string& id) const EXCLUDES(mu_);

  /// \brief Binds, listens, and spawns the reactor and worker threads.
  Status Start() EXCLUDES(mu_);

  /// \brief The actually bound port (differs from options.port when 0).
  uint16_t port() const { return port_; }

  /// \brief Blocks until every registered session has retired (a
  /// session with max_runs == 0 retires only via StopSession), then
  /// flushes and closes every subscriber. Returns the first run error,
  /// if any. With no sessions registered this returns only after
  /// RequestStop().
  Status Wait() EXCLUDES(mu_);

  /// \brief Aborts serving: poisons every queue, wakes every thread.
  /// Idempotent and safe from any thread (including signal-free CLI
  /// teardown paths).
  void RequestStop() EXCLUDES(mu_);

  /// \brief Completed pipeline runs so far, across all sessions.
  uint64_t runs_completed() const {
    return runs_completed_.load(std::memory_order_relaxed);
  }

  /// \brief Currently connected subscribers (tests / introspection).
  size_t clients_connected() const EXCLUDES(mu_);

  /// \brief Aggregated frame-queue statistics across every subscriber
  /// connection this server has seen — live queues plus the accumulated
  /// totals of departed ones — so TryPush rejections under a
  /// slow-consumer policy reconcile with the session drop/disconnect
  /// metrics (tests / introspection).
  ChannelStats frame_queue_stats() const EXCLUDES(mu_);

  /// \brief Ids of all registered sessions, in registration order.
  std::vector<std::string> session_ids() const EXCLUDES(mu_);

 private:
  struct QueuedFrame {
    std::shared_ptr<const std::string> bytes;
    std::chrono::steady_clock::time_point enqueued;
  };
  using FrameQueue = BoundedChannel<QueuedFrame>;

  struct Connection;

  /// \brief A named tenant: pipeline factory + subscriber set + state.
  struct Session {
    enum class State {
      kWaiting,  ///< registered, short of min_subscribers
      kQueued,   ///< enough subscribers; awaiting a free worker
      kRunning,  ///< a worker is streaming one pipeline run
      kRetired,  ///< terminal: max_runs reached or stopped
    };

    // Immutable after AddSession() publishes the session.
    std::string id;
    SchemaPtr schema;
    SessionFn fn;
    SessionOptions options;
    std::string schema_frame;
    obs::SessionMetrics metrics;

    /// Second rank of the hierarchy: acquired after the registry lock
    /// (state transitions hold both), before connection/channel locks.
    mutable Mutex mu{kLockRankSession};
    State state GUARDED_BY(mu) = State::kWaiting;
    bool stop_requested GUARDED_BY(mu) = false;
    uint64_t runs GUARDED_BY(mu) = 0;
    std::vector<std::shared_ptr<Connection>> waiting GUARDED_BY(mu);
    /// Newest published snapshot (null for plan-less sessions). Swapped
    /// whole — the snapshot behind the pointer is immutable, so a
    /// running pipeline holding the old PlanPtr is never raced.
    PlanPtr plan GUARDED_BY(mu);
    /// Publications after the initial one (SwapPlan / UpdateSession).
    uint64_t plan_swaps GUARDED_BY(mu) = 0;
    /// Segments of the current run, reset when a run starts.
    std::vector<PlanSegment> segments GUARDED_BY(mu);
    /// Highest version a serving runner has adopted (swap-latency
    /// bookkeeping: each version's adoption is observed once).
    uint64_t adopted_version GUARDED_BY(mu) = 0;
  };
  using SessionPtr = std::shared_ptr<Session>;

  /// \brief Heap-allocated per-connection state machine, advanced by
  /// the reactor.
  struct Connection {
    enum class State {
      kHandshake,  ///< accepted; awaiting the Subscribe hello
      kStreaming,  ///< subscribed; frames flow queue → outbuf → socket
      kClosing,    ///< flush outbuf (an Error tail), then hang up
    };

    // Immutable after the accept path publishes the connection.
    uint64_t id = 0;
    UniqueFd fd;
    std::shared_ptr<FrameQueue> queue;

    /// Reactor-thread only: hello parser and write buffer. Never
    /// touched off the reactor, so they need no lock.
    FrameDecoder decoder;
    std::string outbuf;
    size_t outpos = 0;

    /// Third rank of the hierarchy: acquired after registry/session
    /// locks, before channel locks; never while holding another
    /// connection's lock.
    mutable Mutex mu{kLockRankConnection};
    State state GUARDED_BY(mu) = State::kHandshake;
    SessionPtr session GUARDED_BY(mu);
    obs::Histogram* send_latency GUARDED_BY(mu) = nullptr;
    bool in_run GUARDED_BY(mu) = false;
    bool kill GUARDED_BY(mu) = false;
    /// The hello negotiated kCapBatchFrames: runs send this subscriber
    /// Batch frames instead of per-tuple frames.
    bool batch_frames GUARDED_BY(mu) = false;
  };
  using ConnPtr = std::shared_ptr<Connection>;

  class FanoutSink;

  void ReactorLoop() EXCLUDES(mu_);
  void WorkerLoop() EXCLUDES(mu_);
  /// Looks up a session by id in registration order.
  SessionPtr FindSessionLocked(const std::string& id) const REQUIRES(mu_);
  /// Versions, timestamps, and publishes `next` as `session`'s newest
  /// snapshot; shared tail of SwapPlan and UpdateSession.
  Status PublishPlanLocked(const SessionPtr& session,
                           std::shared_ptr<PlanSnapshot> next)
      REQUIRES(mu_, session->mu);
  /// Cutover bookkeeping: records an adopted segment and observes the
  /// swap-latency histogram on the first adoption of each version.
  /// Runs on a serving runner's source thread with no locks held.
  void OnSegment(Session* session, const PlanSegment& segment)
      EXCLUDES(mu_);
  /// Runs one pipeline run of `session` for `participants` (worker).
  void RunSession(const SessionPtr& session,
                  std::vector<ConnPtr> participants) EXCLUDES(mu_);
  /// Moves every waiting session with enough subscribers to the run
  /// queue. Locks each candidate session in turn; caller notifies.
  void ScheduleReadyLocked() REQUIRES(mu_);
  /// Retires `session`: terminal state + an Error tail for its waiting
  /// subscribers. A state transition, so it requires both the registry
  /// and the session lock; caller pokes the reactor.
  void RetireLocked(const SessionPtr& session, const std::string& reason)
      REQUIRES(mu_, session->mu);
  /// Reactor: parses and answers the Subscribe hello in `payload`.
  void HandleSubscribe(const ConnPtr& conn, const std::string& payload)
      EXCLUDES(mu_);
  /// Applies the slow-consumer policy to enqueue `frame` for `conn`.
  /// Returns false when the conn can no longer receive (closed/killed).
  bool EnqueueFrame(const ConnPtr& conn,
                    const std::shared_ptr<const std::string>& frame,
                    const obs::SessionMetrics& metrics) EXCLUDES(mu_);
  /// Reactor: advances one connection (read side, queue drain, socket
  /// flush). Returns false when the connection is finished and should
  /// be removed.
  bool ServiceConn(const ConnPtr& conn) EXCLUDES(mu_);
  void RemoveConn(const ConnPtr& conn) EXCLUDES(mu_);

  /// Written by the constructor and Start() before any thread exists;
  /// read-only afterwards (thread creation is the publication edge).
  ServerOptions options_;

  UniqueFd listen_fd_;
  WakePipe wake_;
  uint16_t port_ = 0;

  /// First rank of the hierarchy; `cv_` waits are predicated only on
  /// fields this lock guards (plus session states, whose transitions
  /// also hold this lock — see the class comment).
  mutable Mutex mu_{kLockRankServerRegistry};
  CondVar cv_;
  std::vector<SessionPtr> sessions_ GUARDED_BY(mu_);
  std::vector<ConnPtr> conns_ GUARDED_BY(mu_);
  std::deque<SessionPtr> run_queue_ GUARDED_BY(mu_);
  bool started_ GUARDED_BY(mu_) = false;
  bool accepting_ GUARDED_BY(mu_) = false;
  bool draining_ GUARDED_BY(mu_) = false;
  bool stop_requested_ GUARDED_BY(mu_) = false;
  Status first_error_ GUARDED_BY(mu_);
  uint64_t next_conn_id_ GUARDED_BY(mu_) = 1;
  /// Frame-queue stats of departed connections (see frame_queue_stats).
  ChannelStats retired_queue_stats_ GUARDED_BY(mu_);

  std::atomic<uint64_t> runs_completed_{0};
  obs::ServerMetrics metrics_;

  std::thread reactor_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace net
}  // namespace icewafl

#endif  // ICEWAFL_NET_SERVER_H_
