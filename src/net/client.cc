#include "net/client.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace icewafl {
namespace net {

namespace {

std::string ContextOf(const std::string& session_id, const std::string& peer) {
  if (session_id.empty()) return "peer " + peer;
  return "session '" + session_id + "' at " + peer;
}

/// Writes the whole buffer (the socket is blocking at this point).
Status SendAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError("send: " + ErrnoMessage(errno));
  }
  return Status::OK();
}

}  // namespace

std::string StreamClient::Context() const {
  return ContextOf(session_id_, peer_);
}

Status StreamClient::ReadFrame(int fd, FrameDecoder* decoder, uint8_t* type,
                               std::string* payload) {
  char buf[64 * 1024];
  while (true) {
    ICEWAFL_ASSIGN_OR_RETURN(const bool have, decoder->Next(type, payload));
    if (have) return Status::OK();
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::IOError("connection closed mid-stream (" +
                             std::to_string(decoder->buffered()) +
                             " bytes of partial frame buffered)");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("recv: " + ErrnoMessage(errno));
    }
    decoder->Feed(buf, static_cast<size_t>(n));
  }
}

Result<std::unique_ptr<StreamClient>> StreamClient::Connect(
    const std::string& host, uint16_t port, const std::string& session_id,
    uint64_t capabilities) {
  const std::string peer = host + ":" + std::to_string(port);
  const std::string context = ContextOf(session_id, peer);
  ICEWAFL_ASSIGN_OR_RETURN(UniqueFd fd, ConnectTcp(host, port));
  // Hello: the client speaks first, naming the session it wants and
  // the optional frame capabilities it can consume.
  ICEWAFL_RETURN_NOT_OK(SendAll(
      fd.get(), EncodeSubscribeFrame(kWireVersion, session_id, capabilities)));
  // Handshake: the server answers with the session's schema.
  FrameDecoder decoder;
  uint8_t type = 0;
  std::string payload;
  ICEWAFL_RETURN_NOT_OK(ReadFrame(fd.get(), &decoder, &type, &payload));
  if (type == kFrameError) {
    return Status::IOError(context + ": server error during handshake: " +
                           payload);
  }
  if (type != kFrameSchema) {
    return Status::ParseError(
        context + ": expected Schema frame in handshake, got type " +
        std::to_string(static_cast<int>(type)));
  }
  ICEWAFL_ASSIGN_OR_RETURN(SchemaPtr schema, DecodeSchemaPayload(payload));
  auto client = std::unique_ptr<StreamClient>(new StreamClient(
      std::move(fd), std::move(schema), session_id, peer));
  client->decoder_ = std::move(decoder);  // may hold early tuple bytes
  client->capabilities_ = capabilities;
  return client;
}

Result<bool> StreamClient::Next(Tuple* out) {
  // Rows unpacked from an earlier Batch frame are served first; the
  // socket is only read again once they are exhausted.
  if (!pending_.empty()) {
    *out = std::move(pending_.front());
    pending_.pop_front();
    ++tuples_received_;
    return true;
  }
  if (finished_) return false;
  while (true) {
    uint8_t type = 0;
    std::string payload;
    Status read = ReadFrame(fd_.get(), &decoder_, &type, &payload);
    if (!read.ok()) {
      // Attribute the failure: a bare "connection closed mid-stream" is
      // useless when one process tails many sessions.
      return Status(read.code(), Context() + ": " + read.message());
    }
    switch (type) {
      case kFrameTuple: {
        ICEWAFL_ASSIGN_OR_RETURN(*out, DecodeTuplePayload(payload, schema_));
        ++tuples_received_;
        return true;
      }
      case kFrameBatch: {
        if ((capabilities_ & kCapBatchFrames) == 0) {
          return Status::ParseError(
              Context() +
              ": server sent a Batch frame this client did not negotiate");
        }
        ICEWAFL_ASSIGN_OR_RETURN(Batch batch,
                                 DecodeBatchPayload(payload, schema_));
        TupleVector rows = batch.ToTuples();
        for (Tuple& t : rows) pending_.push_back(std::move(t));
        if (pending_.empty()) continue;  // tolerate an empty batch
        *out = std::move(pending_.front());
        pending_.pop_front();
        ++tuples_received_;
        return true;
      }
      case kFrameEnd: {
        ICEWAFL_ASSIGN_OR_RETURN(reported_total_, DecodeEndPayload(payload));
        finished_ = true;
        fd_.Reset();
        if (reported_total_ != tuples_received_) {
          return Status::IOError(
              Context() + ": stream ended after " +
              std::to_string(tuples_received_) +
              " tuples but the server reported " +
              std::to_string(reported_total_));
        }
        return false;
      }
      case kFrameError:
        finished_ = true;
        fd_.Reset();
        return Status::IOError(Context() + ": server error: " + payload);
      case kFrameSchema:
        return Status::ParseError(Context() +
                                  ": unexpected mid-stream Schema frame");
      default:
        return Status::ParseError(Context() + ": unknown frame type " +
                                  std::to_string(static_cast<int>(type)));
    }
  }
}

}  // namespace net
}  // namespace icewafl
