#include "net/client.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace icewafl {
namespace net {

Status StreamClient::ReadFrame(int fd, FrameDecoder* decoder, uint8_t* type,
                               std::string* payload) {
  char buf[64 * 1024];
  while (true) {
    ICEWAFL_ASSIGN_OR_RETURN(const bool have, decoder->Next(type, payload));
    if (have) return Status::OK();
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::IOError("connection closed mid-stream (" +
                             std::to_string(decoder->buffered()) +
                             " bytes of partial frame buffered)");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    decoder->Feed(buf, static_cast<size_t>(n));
  }
}

Result<std::unique_ptr<StreamClient>> StreamClient::Connect(
    const std::string& host, uint16_t port) {
  ICEWAFL_ASSIGN_OR_RETURN(UniqueFd fd, ConnectTcp(host, port));
  // Handshake: the server's first frame is the stream schema.
  FrameDecoder decoder;
  uint8_t type = 0;
  std::string payload;
  ICEWAFL_RETURN_NOT_OK(ReadFrame(fd.get(), &decoder, &type, &payload));
  if (type == kFrameError) {
    return Status::IOError("server error during handshake: " + payload);
  }
  if (type != kFrameSchema) {
    return Status::ParseError("expected Schema frame in handshake, got type " +
                              std::to_string(static_cast<int>(type)));
  }
  ICEWAFL_ASSIGN_OR_RETURN(SchemaPtr schema, DecodeSchemaPayload(payload));
  auto client = std::unique_ptr<StreamClient>(
      new StreamClient(std::move(fd), std::move(schema)));
  client->decoder_ = std::move(decoder);  // may hold early tuple bytes
  return client;
}

Result<bool> StreamClient::Next(Tuple* out) {
  if (finished_) return false;
  uint8_t type = 0;
  std::string payload;
  ICEWAFL_RETURN_NOT_OK(ReadFrame(fd_.get(), &decoder_, &type, &payload));
  switch (type) {
    case kFrameTuple: {
      ICEWAFL_ASSIGN_OR_RETURN(*out, DecodeTuplePayload(payload, schema_));
      ++tuples_received_;
      return true;
    }
    case kFrameEnd: {
      ICEWAFL_ASSIGN_OR_RETURN(reported_total_, DecodeEndPayload(payload));
      finished_ = true;
      fd_.Reset();
      if (reported_total_ != tuples_received_) {
        return Status::IOError(
            "stream ended after " + std::to_string(tuples_received_) +
            " tuples but the server reported " +
            std::to_string(reported_total_));
      }
      return false;
    }
    case kFrameError:
      finished_ = true;
      fd_.Reset();
      return Status::IOError("server error: " + payload);
    case kFrameSchema:
      return Status::ParseError("unexpected mid-stream Schema frame");
    default:
      return Status::ParseError("unknown frame type " +
                                std::to_string(static_cast<int>(type)));
  }
}

}  // namespace net
}  // namespace icewafl
