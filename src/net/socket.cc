#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace icewafl {
namespace net {

namespace {

// strerror_r comes in two flavours: XSI returns int and fills the
// buffer, GNU returns the message pointer (which may ignore the
// buffer). Overload resolution picks the right unpacking at compile
// time, so this builds against either libc.
[[maybe_unused]] const char* PickErrnoText(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}
[[maybe_unused]] const char* PickErrnoText(const char* message,
                                           const char* /*buf*/) {
  return message;
}

Status ErrnoStatus(const std::string& what) {
  return Status::IOError(what + ": " + ErrnoMessage(errno));
}

/// Resolves `host` to an IPv4 sockaddr_in. getaddrinfo handles both
/// numeric addresses and names like "localhost".
Status ResolveIpv4(const std::string& host, uint16_t port,
                   sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (host.empty()) {
    addr->sin_addr.s_addr = htonl(INADDR_ANY);
    return Status::OK();
  }
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1) {
    return Status::OK();
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* info = nullptr;
  const int rc = getaddrinfo(host.c_str(), nullptr, &hints, &info);
  if (rc != 0 || info == nullptr) {
    return Status::IOError("cannot resolve host '" + host +
                           "': " + gai_strerror(rc));
  }
  addr->sin_addr =
      reinterpret_cast<const sockaddr_in*>(info->ai_addr)->sin_addr;
  freeaddrinfo(info);
  return Status::OK();
}

}  // namespace

std::string ErrnoMessage(int errnum) {
  char buf[128] = {};
  return PickErrnoText(strerror_r(errnum, buf, sizeof(buf)), buf);
}

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(F_SETFL)");
  }
  return Status::OK();
}

Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog, uint16_t* bound_port) {
  sockaddr_in addr{};
  ICEWAFL_RETURN_NOT_OK(ResolveIpv4(host, port, &addr));
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return ErrnoStatus("bind to port " + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) < 0) return ErrnoStatus("listen");
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) <
        0) {
      return ErrnoStatus("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  ICEWAFL_RETURN_NOT_OK(SetNonBlocking(fd.get()));
  return fd;
}

Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  ICEWAFL_RETURN_NOT_OK(
      ResolveIpv4(host.empty() ? "127.0.0.1" : host, port, &addr));
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return ErrnoStatus("connect to " + host + ":" + std::to_string(port));
  }
  // Tuple frames are small; without TCP_NODELAY Nagle batches them
  // behind the peer's delayed ACKs and per-tuple latency jumps to ~40ms.
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<WakePipe> WakePipe::Make() {
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) < 0) {
    return ErrnoStatus("pipe2");
  }
  WakePipe pipe;
  pipe.read_end = UniqueFd(fds[0]);
  pipe.write_end = UniqueFd(fds[1]);
  return pipe;
}

void WakePipe::Poke() const {
  const char byte = 1;
  // EAGAIN means a wake is already pending — exactly what we want.
  [[maybe_unused]] ssize_t n = ::write(write_end.get(), &byte, 1);
}

void WakePipe::Drain() const {
  char buf[256];
  while (::read(read_end.get(), buf, sizeof(buf)) > 0) {
  }
}

}  // namespace net
}  // namespace icewafl
