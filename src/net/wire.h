#ifndef ICEWAFL_NET_WIRE_H_
#define ICEWAFL_NET_WIRE_H_

#include <cstdint>
#include <string>

#include "stream/schema.h"
#include "stream/tuple.h"
#include "util/result.h"

namespace icewafl {
namespace net {

/// \file
/// Length-prefixed binary wire format of the serving subsystem
/// (DESIGN.md section 9). A connection carries a sequence of frames:
///
///   frame   := type:u8  payload_len:varint  payload:u8[payload_len]
///   varint  := LEB128 (7 bits per byte, LSB group first, high bit =
///              continuation; at most 10 bytes)
///
/// Numerics are explicit little-endian regardless of host order: int64
/// as 8-byte two's complement, double as the 8-byte IEEE-754 bit
/// pattern — NaN payloads and signed zeros round-trip bit-exactly.
/// Decoding is total: truncated input reports "need more bytes",
/// corrupt input (bad tags, overlong varints, oversized or
/// under-consumed payloads) returns a Status — never UB, never a
/// crash.

/// \brief Frame type tags. Values are part of the wire contract.
enum FrameType : uint8_t {
  kFrameSchema = 0x01,     ///< handshake: the stream's schema
  kFrameTuple = 0x02,      ///< one stream element
  kFrameEnd = 0x03,        ///< graceful end of stream (payload: total count)
  kFrameError = 0x04,      ///< server-side failure (payload: UTF-8 message)
  kFrameSubscribe = 0x05,  ///< client hello: wire version + session id
};

/// \brief Wire protocol version. Bumped to 2 when the client-side
/// Subscribe hello frame became mandatory (a v1 client that waits
/// silently for a Schema frame is answered with an Error frame, which
/// its FrameDecoder already understands — the failure mode is a clean
/// error message, not a hang or a parse crash).
constexpr uint64_t kWireVersion = 2;

/// \brief Upper bound on a frame payload; decode rejects larger length
/// prefixes before allocating (a corrupt length must not OOM the peer).
constexpr uint64_t kMaxFramePayload = 16ull << 20;  // 16 MiB

/// \brief Upper bound on a session id on the wire (also enforced by
/// lint as IW607 before a config ever reaches the server).
constexpr uint64_t kMaxSessionIdBytes = 256;

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

/// \brief Appends `v` as a LEB128 varint.
void AppendVarint(uint64_t v, std::string* out);

/// \brief Appends `v` as 8 bytes little-endian.
void AppendFixed64(uint64_t v, std::string* out);

/// \brief Zigzag mapping for signed varints (small magnitudes of either
/// sign stay short).
inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// \brief Bounds-checked sequential reader over one frame payload.
///
/// Every accessor returns a Status instead of reading past the end, so
/// decoding a hostile buffer degrades to an error, never UB.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit ByteReader(const std::string& buf)
      : ByteReader(buf.data(), buf.size()) {}

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

  Result<uint8_t> U8();
  Result<uint64_t> Fixed64();
  Result<uint64_t> Varint();
  /// \brief Reads `n` raw bytes into a string.
  Result<std::string> Bytes(size_t n);
  /// \brief Error unless the payload was consumed exactly.
  Status ExpectEnd() const;

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Frame encoding
// ---------------------------------------------------------------------

/// \brief Appends one complete frame (type + length prefix + payload).
void AppendFrame(uint8_t type, const std::string& payload, std::string* out);

/// \brief Schema payload: attr_count:varint, then per attribute
/// name_len:varint name:bytes type:u8, then timestamp_index:varint.
std::string EncodeSchemaPayload(const Schema& schema);

/// \brief Tuple payload: id:fixed64, event_time:fixed64,
/// arrival_time:fixed64, substream:zigzag-varint, value_count:varint,
/// then per value type:u8 + type-specific payload (bool u8, int64
/// fixed64, double IEEE bits fixed64, string varint-length + bytes;
/// null has no payload).
std::string EncodeTuplePayload(const Tuple& tuple);

/// \brief End payload: total tuples sent in this stream, as a varint.
std::string EncodeEndPayload(uint64_t total_tuples);

/// \brief Subscribe payload: version:varint, id_len:varint, id:bytes.
/// An empty id means "the server's sole session" (convenience for
/// single-session deployments; a multi-session server rejects it).
std::string EncodeSubscribePayload(uint64_t version,
                                   const std::string& session_id);

/// Convenience: full frames, ready to write to a socket.
std::string EncodeSchemaFrame(const Schema& schema);
std::string EncodeTupleFrame(const Tuple& tuple);
std::string EncodeEndFrame(uint64_t total_tuples);
std::string EncodeErrorFrame(const std::string& message);
std::string EncodeSubscribeFrame(uint64_t version,
                                 const std::string& session_id);

// ---------------------------------------------------------------------
// Frame decoding
// ---------------------------------------------------------------------

/// \brief Validates and decodes a schema payload.
Result<SchemaPtr> DecodeSchemaPayload(const std::string& payload);

/// \brief Validates and decodes a tuple payload against `schema` (the
/// value count must match the schema arity; value types are
/// self-describing, since polluters may NULL any attribute).
Result<Tuple> DecodeTuplePayload(const std::string& payload,
                                 const SchemaPtr& schema);

/// \brief Decodes the total-count payload of an End frame.
Result<uint64_t> DecodeEndPayload(const std::string& payload);

/// \brief Decoded Subscribe hello.
struct SubscribeRequest {
  uint64_t version = 0;
  std::string session_id;
};

/// \brief Decodes a Subscribe payload. Rejects ids longer than
/// kMaxSessionIdBytes; version compatibility is the server's call.
Result<SubscribeRequest> DecodeSubscribePayload(const std::string& payload);

/// \brief Incremental frame splitter over a byte stream.
///
/// Feed() appends raw received bytes; Next() extracts the next complete
/// frame. A partial frame is not an error — Next() returns false until
/// the rest arrives — but a malformed header (overlong varint, payload
/// length above kMaxFramePayload) is a Status, because no amount of
/// further input can repair it.
class FrameDecoder {
 public:
  void Feed(const void* data, size_t n);

  /// \return true and fills `*type` / `*payload` when a complete frame
  /// was extracted; false when more bytes are needed.
  Result<bool> Next(uint8_t* type, std::string* payload);

  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
};

}  // namespace net
}  // namespace icewafl

#endif  // ICEWAFL_NET_WIRE_H_
