#ifndef ICEWAFL_NET_WIRE_H_
#define ICEWAFL_NET_WIRE_H_

#include <cstdint>
#include <string>

#include "stream/batch.h"
#include "stream/schema.h"
#include "stream/tuple.h"
#include "util/result.h"

namespace icewafl {
namespace net {

/// \file
/// Length-prefixed binary wire format of the serving subsystem
/// (DESIGN.md section 9). A connection carries a sequence of frames:
///
///   frame   := type:u8  payload_len:varint  payload:u8[payload_len]
///   varint  := LEB128 (7 bits per byte, LSB group first, high bit =
///              continuation; at most 10 bytes)
///
/// Numerics are explicit little-endian regardless of host order: int64
/// as 8-byte two's complement, double as the 8-byte IEEE-754 bit
/// pattern — NaN payloads and signed zeros round-trip bit-exactly.
/// Decoding is total: truncated input reports "need more bytes",
/// corrupt input (bad tags, overlong varints, oversized or
/// under-consumed payloads) returns a Status — never UB, never a
/// crash.

/// \brief Frame type tags. Values are part of the wire contract.
enum FrameType : uint8_t {
  kFrameSchema = 0x01,     ///< handshake: the stream's schema
  kFrameTuple = 0x02,      ///< one stream element
  kFrameEnd = 0x03,        ///< graceful end of stream (payload: total count)
  kFrameError = 0x04,      ///< server-side failure (payload: UTF-8 message)
  kFrameSubscribe = 0x05,  ///< client hello: wire version + session id
  kFrameBatch = 0x06,      ///< columnar micro-batch (capability-gated)
  /// Admin-channel request (payload: one UTF-8 JSON object with "id",
  /// "method", "params"). Only spoken on the separate admin port —
  /// the streaming port rejects it like any non-Subscribe hello.
  kFrameAdminRequest = 0x07,
  /// Admin-channel response (payload: one UTF-8 JSON object with "id"
  /// and either "result" or "error").
  kFrameAdminResponse = 0x08,
};

/// \brief Capability bits a client advertises in its Subscribe hello.
/// The server only sends a gated frame type to subscribers that set the
/// matching bit; everyone else keeps receiving per-tuple frames, so a
/// capability-oblivious client never sees a frame it cannot parse.
constexpr uint64_t kCapBatchFrames = 1;  ///< client decodes Batch frames

/// \brief Wire protocol version. Bumped to 2 when the client-side
/// Subscribe hello frame became mandatory (a v1 client that waits
/// silently for a Schema frame is answered with an Error frame, which
/// its FrameDecoder already understands — the failure mode is a clean
/// error message, not a hang or a parse crash).
constexpr uint64_t kWireVersion = 2;

/// \brief Upper bound on a frame payload; decode rejects larger length
/// prefixes before allocating (a corrupt length must not OOM the peer).
constexpr uint64_t kMaxFramePayload = 16ull << 20;  // 16 MiB

/// \brief Upper bound on a session id on the wire (also enforced by
/// lint as IW607 before a config ever reaches the server).
constexpr uint64_t kMaxSessionIdBytes = 256;

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

/// \brief Appends `v` as a LEB128 varint.
void AppendVarint(uint64_t v, std::string* out);

/// \brief Appends `v` as 8 bytes little-endian.
void AppendFixed64(uint64_t v, std::string* out);

/// \brief Zigzag mapping for signed varints (small magnitudes of either
/// sign stay short).
inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// \brief Bounds-checked sequential reader over one frame payload.
///
/// Every accessor returns a Status instead of reading past the end, so
/// decoding a hostile buffer degrades to an error, never UB.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit ByteReader(const std::string& buf)
      : ByteReader(buf.data(), buf.size()) {}

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

  Result<uint8_t> U8();
  Result<uint64_t> Fixed64();
  Result<uint64_t> Varint();
  /// \brief Reads `n` raw bytes into a string.
  Result<std::string> Bytes(size_t n);
  /// \brief Copies `n` raw bytes into `dst` (bulk fixed-width arrays).
  Status ReadRaw(void* dst, size_t n);
  /// \brief Splits off a bounds-checked reader over the next `n` bytes
  /// and advances past them (length-prefixed sub-blobs).
  Result<ByteReader> SubReader(size_t n);
  /// \brief Error unless the payload was consumed exactly.
  Status ExpectEnd() const;

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Frame encoding
// ---------------------------------------------------------------------

/// \brief Appends one complete frame (type + length prefix + payload).
void AppendFrame(uint8_t type, const std::string& payload, std::string* out);

/// \brief Schema payload: attr_count:varint, then per attribute
/// name_len:varint name:bytes type:u8, then timestamp_index:varint.
std::string EncodeSchemaPayload(const Schema& schema);

/// \brief Tuple payload: id:fixed64, event_time:fixed64,
/// arrival_time:fixed64, substream:zigzag-varint, value_count:varint,
/// then per value type:u8 + type-specific payload (bool u8, int64
/// fixed64, double IEEE bits fixed64, string varint-length + bytes;
/// null has no payload).
std::string EncodeTuplePayload(const Tuple& tuple);

/// \brief End payload: total tuples sent in this stream, as a varint.
std::string EncodeEndPayload(uint64_t total_tuples);

/// \brief Batch payload (DESIGN.md section 13): row_count:varint, then
/// the per-row metadata arrays column-major (ids, event_times,
/// arrival_times each row_count × fixed64; substreams as row_count
/// zigzag-varints), then column_count:varint and per attribute one
/// length-prefixed column blob:
///
///   blob     := blob_len:varint  declared_type:u8  validity  values
///               divergent_count:varint  divergent*
///   validity := ceil(row_count/8) bytes, LSB-first (bit set = typed
///               slot holds the value; trailing bits must be zero)
///   values   := bool: row_count bytes · int64/double: row_count ×
///               fixed64 (invalid slots all-zero) · string: one
///               varint-length + bytes per *valid* row, ascending ·
///               null-typed column: nothing
///   divergent:= row:varint + self-describing value (as in the tuple
///               frame) for each non-null value whose runtime type
///               differs from the declared column type, rows strictly
///               ascending
///
/// Encoding serializes straight from the column buffers — one memcpy
/// per fixed-width column, no per-tuple framing.
std::string EncodeBatchPayload(const Batch& batch);

/// \brief Subscribe payload: version:varint, id_len:varint, id:bytes,
/// then optionally capabilities:varint (absent on the wire when zero,
/// so a capability-less hello is byte-identical to the v2 form).
/// An empty id means "the server's sole session" (convenience for
/// single-session deployments; a multi-session server rejects it).
std::string EncodeSubscribePayload(uint64_t version,
                                   const std::string& session_id,
                                   uint64_t capabilities = 0);

/// Convenience: full frames, ready to write to a socket.
std::string EncodeSchemaFrame(const Schema& schema);
std::string EncodeTupleFrame(const Tuple& tuple);
std::string EncodeBatchFrame(const Batch& batch);
std::string EncodeEndFrame(uint64_t total_tuples);
std::string EncodeErrorFrame(const std::string& message);
std::string EncodeSubscribeFrame(uint64_t version,
                                 const std::string& session_id,
                                 uint64_t capabilities = 0);

// ---------------------------------------------------------------------
// Frame decoding
// ---------------------------------------------------------------------

/// \brief Validates and decodes a schema payload.
Result<SchemaPtr> DecodeSchemaPayload(const std::string& payload);

/// \brief Validates and decodes a tuple payload against `schema` (the
/// value count must match the schema arity; value types are
/// self-describing, since polluters may NULL any attribute).
Result<Tuple> DecodeTuplePayload(const std::string& payload,
                                 const SchemaPtr& schema);

/// \brief Validates and decodes a batch payload against `schema`. The
/// column count and declared column types must match the schema, and
/// the decode is strict: zero padding in invalid fixed-width slots,
/// zero trailing validity bits, strictly ascending divergent rows whose
/// validity bit is clear and whose value type actually diverges —
/// anything else is a ParseError, so served batch bytes have exactly
/// one accepted spelling.
Result<Batch> DecodeBatchPayload(const std::string& payload,
                                 const SchemaPtr& schema);

/// \brief Decodes the total-count payload of an End frame.
Result<uint64_t> DecodeEndPayload(const std::string& payload);

/// \brief Decoded Subscribe hello.
struct SubscribeRequest {
  uint64_t version = 0;
  std::string session_id;
  uint64_t capabilities = 0;  ///< kCap* bits; unknown bits are ignored
};

/// \brief Decodes a Subscribe payload. Rejects ids longer than
/// kMaxSessionIdBytes; version compatibility is the server's call.
Result<SubscribeRequest> DecodeSubscribePayload(const std::string& payload);

/// \brief Incremental frame splitter over a byte stream.
///
/// Feed() appends raw received bytes; Next() extracts the next complete
/// frame. A partial frame is not an error — Next() returns false until
/// the rest arrives — but a malformed header (overlong varint, payload
/// length above kMaxFramePayload) is a Status, because no amount of
/// further input can repair it.
class FrameDecoder {
 public:
  void Feed(const void* data, size_t n);

  /// \return true and fills `*type` / `*payload` when a complete frame
  /// was extracted; false when more bytes are needed.
  Result<bool> Next(uint8_t* type, std::string* payload);

  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
};

}  // namespace net
}  // namespace icewafl

#endif  // ICEWAFL_NET_WIRE_H_
