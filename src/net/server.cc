#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/wire.h"

namespace icewafl {
namespace net {

namespace {

/// Upper bound on a connection's write buffer before the network thread
/// stops refilling it from the frame queue (backpressure then builds in
/// the bounded queue, where the slow-consumer policy applies).
constexpr size_t kMaxOutbufBytes = 256 * 1024;

/// Grace period for flushing connected subscribers during Wait(); an
/// unresponsive peer cannot hold shutdown hostage forever.
constexpr std::chrono::seconds kDrainGrace(10);

const std::vector<std::string> kPolicyNames = {"block", "drop_oldest",
                                               "disconnect"};

}  // namespace

const char* SlowConsumerPolicyName(SlowConsumerPolicy policy) {
  switch (policy) {
    case SlowConsumerPolicy::kBlock:
      return "block";
    case SlowConsumerPolicy::kDropOldest:
      return "drop_oldest";
    case SlowConsumerPolicy::kDisconnect:
      return "disconnect";
  }
  return "unknown";
}

Result<SlowConsumerPolicy> SlowConsumerPolicyFromName(
    const std::string& name) {
  if (name == "block") return SlowConsumerPolicy::kBlock;
  if (name == "drop_oldest") return SlowConsumerPolicy::kDropOldest;
  if (name == "disconnect") return SlowConsumerPolicy::kDisconnect;
  return Status::InvalidArgument(
      "unknown slow-consumer policy '" + name +
      "' (expected block, drop_oldest, or disconnect)");
}

const std::vector<std::string>& SlowConsumerPolicyNames() {
  return kPolicyNames;
}

// ---------------------------------------------------------------------
// Fan-out sink: runs on the session thread inside the pipeline runtime.
// ---------------------------------------------------------------------

class PollutionServer::FanoutSink : public Sink {
 public:
  FanoutSink(PollutionServer* server, std::vector<ClientPtr> subscribers)
      : server_(server),
        subscribers_(std::move(subscribers)),
        open_(subscribers_.size(), true) {}

  using Sink::Write;

  Status Write(const Tuple& tuple) override {
    {
      std::lock_guard<std::mutex> lock(server_->mu_);
      if (server_->stop_requested_) {
        return Status::IOError("server stopping");
      }
    }
    // Encode once; every subscriber queue shares the same frame bytes.
    auto frame =
        std::make_shared<const std::string>(EncodeTupleFrame(tuple));
    for (size_t i = 0; i < subscribers_.size(); ++i) {
      if (!open_[i]) continue;
      if (server_->EnqueueFrame(subscribers_[i], frame)) {
        if (server_->metrics_.tuples_sent != nullptr) {
          server_->metrics_.tuples_sent->Increment();
        }
      } else {
        open_[i] = false;  // disconnected or cut by policy
      }
    }
    ++count_;
    return Status::OK();
  }

  /// \brief Tuples the session produced (End-frame payload).
  uint64_t count() const { return count_; }

  const std::vector<ClientPtr>& subscribers() const { return subscribers_; }
  bool open(size_t i) const { return open_[i]; }

 private:
  PollutionServer* server_;
  std::vector<ClientPtr> subscribers_;
  std::vector<bool> open_;
  uint64_t count_ = 0;
};

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

PollutionServer::PollutionServer(SchemaPtr schema, SessionFn session,
                                 ServerOptions options)
    : schema_(std::move(schema)),
      session_(std::move(session)),
      options_(std::move(options)) {}

PollutionServer::~PollutionServer() {
  RequestStop();
  if (session_thread_.joinable()) session_thread_.join();
  if (net_thread_.joinable()) net_thread_.join();
}

Status PollutionServer::Start() {
  if (schema_ == nullptr) {
    return Status::InvalidArgument("PollutionServer needs a schema");
  }
  if (session_ == nullptr) {
    return Status::InvalidArgument("PollutionServer needs a session fn");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::AlreadyExists("server already started");
  }
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
  if (options_.min_subscribers < 1) options_.min_subscribers = 1;
  schema_frame_ = EncodeSchemaFrame(*schema_);
  ICEWAFL_ASSIGN_OR_RETURN(wake_, WakePipe::Make());
  ICEWAFL_ASSIGN_OR_RETURN(
      listen_fd_,
      ListenTcp(options_.host, options_.port, options_.backlog, &port_));
  metrics_ = obs::ServerMetrics::Bind(options_.metrics);
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    accepting_ = true;
  }
  net_thread_ = std::thread(&PollutionServer::NetLoop, this);
  session_thread_ = std::thread(&PollutionServer::SessionLoop, this);
  return Status::OK();
}

void PollutionServer::RequestStop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
    accepting_ = false;
    for (const ClientPtr& c : clients_) c->queue->Poison();
  }
  cv_.notify_all();
  wake_.Poke();
}

Status PollutionServer::Wait() {
  if (session_thread_.joinable()) session_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    accepting_ = false;
    // Late joiners that never saw a session get a courteous error frame
    // before their connection is flushed and closed.
    auto bye = std::make_shared<const std::string>(
        EncodeErrorFrame("server shutting down"));
    for (const ClientPtr& c : clients_) {
      if (!c->in_session) {
        (void)c->queue->TryPush(
            {bye, std::chrono::steady_clock::now()});
        c->queue->Close();
      }
    }
  }
  cv_.notify_all();
  wake_.Poke();
  if (net_thread_.joinable()) net_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_;
}

size_t PollutionServer::clients_connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clients_.size();
}

bool PollutionServer::EnqueueFrame(
    const ClientPtr& client, const std::shared_ptr<const std::string>& frame) {
  QueuedFrame qf{frame, std::chrono::steady_clock::now()};
  switch (options_.slow_consumer) {
    case SlowConsumerPolicy::kBlock: {
      // Blocking push: backpressure propagates into the pipeline
      // runtime, which is exactly the contract of this policy.
      if (!client->queue->Push(std::move(qf))) return false;
      wake_.Poke();
      return true;
    }
    case SlowConsumerPolicy::kDropOldest: {
      while (true) {
        switch (client->queue->TryPush(qf)) {
          case FrameQueue::PushResult::kOk:
            wake_.Poke();
            return true;
          case FrameQueue::PushResult::kClosed:
            return false;
          case FrameQueue::PushResult::kFull: {
            QueuedFrame discard;
            if (client->queue->TryPop(&discard) &&
                metrics_.slow_drops != nullptr) {
              metrics_.slow_drops->Increment();
            }
            break;  // retry the push
          }
        }
      }
    }
    case SlowConsumerPolicy::kDisconnect: {
      switch (client->queue->TryPush(std::move(qf))) {
        case FrameQueue::PushResult::kOk:
          wake_.Poke();
          return true;
        case FrameQueue::PushResult::kClosed:
          return false;
        case FrameQueue::PushResult::kFull:
          break;
      }
      // Queue full: cut the slow consumer loose.
      {
        std::lock_guard<std::mutex> lock(mu_);
        client->kill = true;
      }
      client->queue->Poison();
      if (metrics_.slow_disconnects != nullptr) {
        metrics_.slow_disconnects->Increment();
      }
      wake_.Poke();
      return false;
    }
  }
  return false;
}

void PollutionServer::SessionLoop() {
  while (true) {
    std::vector<ClientPtr> participants;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        if (stop_requested_ || draining_) return true;
        int waiting = 0;
        for (const ClientPtr& c : clients_) {
          if (!c->in_session && !c->kill) ++waiting;
        }
        return waiting >= options_.min_subscribers;
      });
      if (stop_requested_ || draining_) break;
      for (const ClientPtr& c : clients_) {
        if (!c->in_session && !c->kill) {
          c->in_session = true;
          participants.push_back(c);
        }
      }
    }
    if (metrics_.sessions != nullptr) metrics_.sessions->Increment();

    FanoutSink sink(this, std::move(participants));
    Status status = session_(&sink);

    // Terminate every participating stream: End on success, Error on a
    // session failure, then close the queues so the network thread
    // flushes and hangs up.
    auto tail = std::make_shared<const std::string>(
        status.ok() ? EncodeEndFrame(sink.count())
                    : EncodeErrorFrame(status.ToString()));
    for (size_t i = 0; i < sink.subscribers().size(); ++i) {
      if (sink.open(i)) (void)EnqueueFrame(sink.subscribers()[i], tail);
      sink.subscribers()[i]->queue->Close();
    }
    wake_.Poke();

    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      // A stop-triggered abort is not a session failure.
      if (!stop_requested_ && first_error_.ok()) first_error_ = status;
    }
    const uint64_t served =
        sessions_served_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.max_sessions != 0 && served >= options_.max_sessions) break;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_requested_) break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    session_thread_done_ = true;
  }
  cv_.notify_all();
  wake_.Poke();
}

bool PollutionServer::ServiceClient(const ClientPtr& client) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (client->kill) {
      client->queue->Poison();
      return false;
    }
  }
  // Inbound direction: the protocol is one-way, so reads only detect
  // peer close (n == 0) and keep the receive buffer empty.
  char rbuf[512];
  while (true) {
    const ssize_t n = ::recv(client->fd.get(), rbuf, sizeof(rbuf), 0);
    if (n == 0) {
      client->queue->Poison();
      return false;  // peer hung up
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      client->queue->Poison();
      return false;
    }
  }
  // Refill the write buffer from the frame queue.
  QueuedFrame frame;
  while (client->outbuf.size() - client->outpos < kMaxOutbufBytes &&
         client->queue->TryPop(&frame)) {
    if (client->send_latency != nullptr) {
      client->send_latency->Observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        frame.enqueued)
              .count());
    }
    client->outbuf.append(*frame.bytes);
  }
  if (client->outpos == client->outbuf.size()) {
    client->outbuf.clear();
    client->outpos = 0;
  } else if (client->outpos > kMaxOutbufBytes) {
    client->outbuf.erase(0, client->outpos);
    client->outpos = 0;
  }
  // Drain the write buffer into the socket.
  while (client->outpos < client->outbuf.size()) {
    const ssize_t n =
        ::send(client->fd.get(), client->outbuf.data() + client->outpos,
               client->outbuf.size() - client->outpos, MSG_NOSIGNAL);
    if (n > 0) {
      client->outpos += static_cast<size_t>(n);
      if (metrics_.bytes_sent != nullptr) {
        metrics_.bytes_sent->Increment(static_cast<uint64_t>(n));
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    client->queue->Poison();
    return false;  // broken connection
  }
  // Graceful completion: queue closed and drained, buffer flushed.
  // The network thread is the only consumer of a closed queue, so
  // closed + empty cannot un-empty.
  if (client->queue->closed() && client->queue->size() == 0 &&
      client->outpos == client->outbuf.size()) {
    return false;
  }
  return true;
}

void PollutionServer::RemoveClient(const ClientPtr& client) {
  client->fd.Reset();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = clients_.begin(); it != clients_.end(); ++it) {
    if (it->get() == client.get()) {
      clients_.erase(it);
      break;
    }
  }
  if (metrics_.clients_connected != nullptr) {
    metrics_.clients_connected->Set(static_cast<double>(clients_.size()));
  }
  cv_.notify_all();
}

void PollutionServer::NetLoop() {
  std::vector<pollfd> fds;
  std::vector<ClientPtr> snapshot;
  bool drain_deadline_set = false;
  std::chrono::steady_clock::time_point drain_deadline;
  while (true) {
    bool accepting = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_requested_) break;
      if (draining_ && session_thread_done_) {
        if (clients_.empty()) break;
        if (!drain_deadline_set) {
          drain_deadline_set = true;
          drain_deadline = std::chrono::steady_clock::now() + kDrainGrace;
        } else if (std::chrono::steady_clock::now() > drain_deadline) {
          break;  // unresponsive peers cannot hold shutdown hostage
        }
      }
      accepting = accepting_;
      snapshot = clients_;
    }

    fds.clear();
    fds.push_back({wake_.read_end.get(), POLLIN, 0});
    if (accepting) fds.push_back({listen_fd_.get(), POLLIN, 0});
    for (const ClientPtr& c : snapshot) {
      short events = POLLIN;
      const bool wants_write = c->outpos < c->outbuf.size() ||
                               c->queue->size() > 0 || c->queue->closed();
      if (wants_write) events |= POLLOUT;
      fds.push_back({c->fd.get(), events, 0});
    }

    if (::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100) < 0 &&
        errno != EINTR) {
      break;  // poll itself failed; abort serving
    }
    if ((fds[0].revents & POLLIN) != 0) wake_.Drain();

    if (accepting && (fds[1].revents & POLLIN) != 0) {
      while (true) {
        const int cfd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                                  SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (cfd < 0) break;
        auto client = std::make_shared<Client>();
        client->fd = UniqueFd(cfd);
        const int one = 1;
        (void)::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        client->queue =
            std::make_shared<FrameQueue>(options_.queue_capacity);
        client->outbuf = schema_frame_;  // handshake goes out first
        {
          std::lock_guard<std::mutex> lock(mu_);
          client->id = next_client_id_++;
          clients_.push_back(client);
          if (metrics_.clients_connected != nullptr) {
            metrics_.clients_connected->Set(
                static_cast<double>(clients_.size()));
          }
        }
        client->send_latency =
            obs::BindClientSendLatency(options_.metrics, client->id);
        if (metrics_.clients_accepted != nullptr) {
          metrics_.clients_accepted->Increment();
        }
        cv_.notify_all();  // a session may now have enough subscribers
      }
    }

    for (const ClientPtr& c : snapshot) {
      if (!c->fd.valid()) continue;
      if (!ServiceClient(c)) RemoveClient(c);
    }
  }
  // Abort/exit path: close everything still open.
  std::vector<ClientPtr> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftovers.swap(clients_);
    if (metrics_.clients_connected != nullptr) {
      metrics_.clients_connected->Set(0.0);
    }
  }
  for (const ClientPtr& c : leftovers) {
    c->queue->Poison();
    c->fd.Reset();
  }
  listen_fd_.Reset();
  cv_.notify_all();
}

}  // namespace net
}  // namespace icewafl
