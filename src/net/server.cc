#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/wire.h"

namespace icewafl {
namespace net {

namespace {

/// Upper bound on a connection's write buffer before the reactor stops
/// refilling it from the frame queue (backpressure then builds in the
/// bounded queue, where the slow-consumer policy applies).
constexpr size_t kMaxOutbufBytes = 256 * 1024;

/// Grace period for flushing connected subscribers during Wait(); an
/// unresponsive peer cannot hold shutdown hostage forever.
constexpr std::chrono::seconds kDrainGrace(10);

const std::vector<std::string> kPolicyNames = {"block", "drop_oldest",
                                               "disconnect"};

}  // namespace

const char* SlowConsumerPolicyName(SlowConsumerPolicy policy) {
  switch (policy) {
    case SlowConsumerPolicy::kBlock:
      return "block";
    case SlowConsumerPolicy::kDropOldest:
      return "drop_oldest";
    case SlowConsumerPolicy::kDisconnect:
      return "disconnect";
  }
  return "unknown";
}

Result<SlowConsumerPolicy> SlowConsumerPolicyFromName(
    const std::string& name) {
  if (name == "block") return SlowConsumerPolicy::kBlock;
  if (name == "drop_oldest") return SlowConsumerPolicy::kDropOldest;
  if (name == "disconnect") return SlowConsumerPolicy::kDisconnect;
  return Status::InvalidArgument(
      "unknown slow-consumer policy '" + name +
      "' (expected block, drop_oldest, or disconnect)");
}

const std::vector<std::string>& SlowConsumerPolicyNames() {
  return kPolicyNames;
}

// ---------------------------------------------------------------------
// Fan-out sink: runs on a worker thread inside the pipeline runtime.
// ---------------------------------------------------------------------

class PollutionServer::FanoutSink : public Sink {
 public:
  FanoutSink(PollutionServer* server, Session* session,
             std::vector<ConnPtr> subscribers)
      : server_(server),
        session_(session),
        subscribers_(std::move(subscribers)),
        open_(subscribers_.size(), true),
        wants_batch_(subscribers_.size(), false),
        batch_rows_(std::max<size_t>(1, server->options_.batch_rows)) {
    // The capability split is fixed for the whole run: the hello set
    // batch_frames before the subscriber could join a run's snapshot.
    for (size_t i = 0; i < subscribers_.size(); ++i) {
      MutexLock lock(&subscribers_[i]->mu);
      wants_batch_[i] = subscribers_[i]->batch_frames;
      has_batch_ = has_batch_ || wants_batch_[i];
      has_tuple_ = has_tuple_ || !wants_batch_[i];
    }
  }

  using Sink::Write;

  Status Write(const Tuple& tuple) override {
    // Two short stop-flag probes, taken one after the other (never
    // nested): the server-wide flag under the registry lock, the
    // session flag under its own.
    {
      MutexLock lock(&server_->mu_);
      if (server_->stop_requested_) {
        return Status::IOError("server stopping");
      }
    }
    {
      MutexLock lock(&session_->mu);
      if (session_->stop_requested) {
        return Status::IOError("session '" + session_->id + "' stopped");
      }
    }
    if (has_tuple_) {
      // Encode once; every tuple subscriber queue shares the frame.
      auto frame =
          std::make_shared<const std::string>(EncodeTupleFrame(tuple));
      for (size_t i = 0; i < subscribers_.size(); ++i) {
        if (!open_[i] || wants_batch_[i]) continue;
        if (server_->EnqueueFrame(subscribers_[i], frame,
                                  session_->metrics)) {
          if (session_->metrics.tuples_sent != nullptr) {
            session_->metrics.tuples_sent->Increment();
          }
        } else {
          open_[i] = false;  // disconnected or cut by policy
        }
      }
    }
    if (has_batch_) {
      pending_.push_back(tuple);
      if (pending_.size() >= batch_rows_) {
        ICEWAFL_RETURN_NOT_OK(FlushBatch());
      }
    }
    ++count_;
    return Status::OK();
  }

  /// \brief Fans out the buffered rows to batch subscribers as one
  /// encode-once Batch frame. Falls back to per-tuple frames when the
  /// rows cannot be columnarized (mixed schemas) or the batch payload
  /// would exceed the frame limit — subscribers accept both kinds.
  /// RunSession calls this once more for the trailing partial batch.
  Status FlushBatch() {
    if (pending_.empty()) return Status::OK();
    std::shared_ptr<const std::string> frame;
    Result<Batch> transposed = Batch::FromTuples(pending_);
    if (transposed.ok()) {
      std::string payload = EncodeBatchPayload(transposed.ValueOrDie());
      if (payload.size() <= kMaxFramePayload) {
        std::string bytes;
        bytes.reserve(payload.size() + 11);
        bytes.push_back(static_cast<char>(kFrameBatch));
        AppendVarint(payload.size(), &bytes);
        bytes.append(payload);
        frame = std::make_shared<const std::string>(std::move(bytes));
      }
    }
    for (size_t i = 0; i < subscribers_.size(); ++i) {
      if (!open_[i] || !wants_batch_[i]) continue;
      if (frame != nullptr) {
        if (server_->EnqueueFrame(subscribers_[i], frame,
                                  session_->metrics)) {
          if (session_->metrics.tuples_sent != nullptr) {
            session_->metrics.tuples_sent->Increment(pending_.size());
          }
          if (session_->metrics.batches_sent != nullptr) {
            session_->metrics.batches_sent->Increment();
          }
        } else {
          open_[i] = false;
        }
        continue;
      }
      for (const Tuple& t : pending_) {
        auto tf = std::make_shared<const std::string>(EncodeTupleFrame(t));
        if (!server_->EnqueueFrame(subscribers_[i], tf, session_->metrics)) {
          open_[i] = false;
          break;
        }
        if (session_->metrics.tuples_sent != nullptr) {
          session_->metrics.tuples_sent->Increment();
        }
      }
    }
    pending_.clear();
    return Status::OK();
  }

  /// \brief Tuples the run produced (End-frame payload).
  uint64_t count() const { return count_; }

  const std::vector<ConnPtr>& subscribers() const { return subscribers_; }
  bool open(size_t i) const { return open_[i]; }

 private:
  PollutionServer* server_;
  Session* session_;
  std::vector<ConnPtr> subscribers_;
  std::vector<bool> open_;
  std::vector<bool> wants_batch_;
  bool has_batch_ = false;
  bool has_tuple_ = false;
  const size_t batch_rows_;
  TupleVector pending_;
  uint64_t count_ = 0;
};

// ---------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------

PollutionServer::PollutionServer(ServerOptions options)
    : options_(std::move(options)) {}

PollutionServer::~PollutionServer() {
  RequestStop();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (reactor_thread_.joinable()) reactor_thread_.join();
}

Status PollutionServer::AddSession(const std::string& id, SchemaPtr schema,
                                   SessionFn fn, SessionOptions options) {
  if (id.empty()) {
    return Status::InvalidArgument("session id must not be empty");
  }
  if (id.size() > kMaxSessionIdBytes) {
    return Status::InvalidArgument(
        "session id of " + std::to_string(id.size()) +
        " bytes exceeds the limit of " + std::to_string(kMaxSessionIdBytes));
  }
  if (schema == nullptr && options.plan != nullptr) {
    schema = options.plan->schema;  // plan-driven convenience
  }
  if (schema == nullptr) {
    return Status::InvalidArgument("session '" + id + "' needs a schema");
  }
  if (fn == nullptr) {
    return Status::InvalidArgument("session '" + id + "' needs a session fn");
  }
  if (options.min_subscribers < 1) options.min_subscribers = 1;
  // Built unpublished (no lock needed); pushing into sessions_ under the
  // registry lock is the publication edge.
  auto session = std::make_shared<Session>();
  session->id = id;
  session->schema = std::move(schema);
  session->fn = std::move(fn);
  session->schema_frame = EncodeSchemaFrame(*session->schema);
  session->metrics = obs::SessionMetrics::Bind(options_.metrics, id);
  if (options.plan != nullptr) {
    std::shared_ptr<PlanSnapshot> plan = std::move(options.plan);
    if (plan->schema == nullptr ||
        EncodeSchemaFrame(*plan->schema) != session->schema_frame) {
      return Status::InvalidArgument(
          "session '" + id + "': the initial plan's schema differs from "
          "the session schema");
    }
    plan->version = 1;
    plan->published_at = std::chrono::steady_clock::now();
    if (session->metrics.plan_version != nullptr) {
      session->metrics.plan_version->Set(1.0);
    }
    // The session is unpublished, so its lock is not yet contended;
    // the analysis still wants the capability held.
    MutexLock plan_lock(&session->mu);
    session->plan = std::move(plan);
  }
  session->options = std::move(options);
  {
    MutexLock lock(&mu_);
    if (stop_requested_ || draining_) {
      return Status::IOError("server is shutting down");
    }
    for (const SessionPtr& s : sessions_) {
      if (s->id == id) {
        return Status::AlreadyExists("session '" + id + "' already exists");
      }
    }
    sessions_.push_back(std::move(session));
  }
  return Status::OK();
}

PollutionServer::SessionPtr PollutionServer::FindSessionLocked(
    const std::string& id) const {
  for (const SessionPtr& s : sessions_) {
    if (s->id == id) return s;
  }
  return nullptr;
}

Status PollutionServer::StopSession(const std::string& id) {
  {
    MutexLock lock(&mu_);
    SessionPtr session = FindSessionLocked(id);
    if (session == nullptr) {
      return Status::NotFound("no session named '" + id + "'");
    }
    // Stopping is a state transition, so it holds registry + session.
    MutexLock session_lock(&session->mu);
    if (session->state == Session::State::kRetired) return Status::OK();
    session->stop_requested = true;
    if (session->state == Session::State::kWaiting ||
        session->state == Session::State::kQueued) {
      // A queued entry stays in run_queue_; the worker that pops it
      // skips it because the state is no longer kQueued.
      RetireLocked(session, "session '" + id + "' stopped");
    }
    // kRunning: the worker's sink aborts at its next Write and the run
    // epilogue retires the session.
  }
  cv_.NotifyAll();
  wake_.Poke();
  return Status::OK();
}

// ---------------------------------------------------------------------
// Plan control plane (SwapPlan / UpdateSession / introspection)
// ---------------------------------------------------------------------

Status PollutionServer::PublishPlanLocked(const SessionPtr& session,
                                          std::shared_ptr<PlanSnapshot> next) {
  if (session->state == Session::State::kRetired) {
    return Status::IOError("session '" + session->id + "' has ended");
  }
  if (session->plan == nullptr) {
    return Status::InvalidArgument("session '" + session->id +
                                   "' is not plan-driven");
  }
  if (next == nullptr) {
    return Status::InvalidArgument("no plan snapshot to publish");
  }
  // Subscribers hold the Schema frame from their handshake; a swap must
  // never change the wire schema mid-stream. Comparing the encoded
  // frames compares the schemas structurally.
  if (next->schema == nullptr ||
      EncodeSchemaFrame(*next->schema) != session->schema_frame) {
    return Status::InvalidArgument(
        "session '" + session->id +
        "': the new plan's schema differs from the session schema");
  }
  next->version = session->plan->version + 1;
  next->published_at = std::chrono::steady_clock::now();
  if (session->metrics.plan_version != nullptr) {
    session->metrics.plan_version->Set(static_cast<double>(next->version));
  }
  if (session->metrics.plan_swaps != nullptr) {
    session->metrics.plan_swaps->Increment();
  }
  session->plan = std::move(next);  // freeze: PlanSnapshot -> const
  ++session->plan_swaps;
  return Status::OK();
}

Status PollutionServer::SwapPlan(const std::string& id,
                                 std::shared_ptr<PlanSnapshot> next) {
  MutexLock lock(&mu_);
  SessionPtr session = FindSessionLocked(id);
  if (session == nullptr) {
    return Status::NotFound("no session named '" + id + "'");
  }
  MutexLock session_lock(&session->mu);
  return PublishPlanLocked(session, std::move(next));
}

Status PollutionServer::UpdateSession(
    const std::string& id, const std::function<void(PlanSnapshot*)>& mutate) {
  if (mutate == nullptr) {
    return Status::InvalidArgument("UpdateSession needs a mutate fn");
  }
  MutexLock lock(&mu_);
  SessionPtr session = FindSessionLocked(id);
  if (session == nullptr) {
    return Status::NotFound("no session named '" + id + "'");
  }
  MutexLock session_lock(&session->mu);
  if (session->plan == nullptr) {
    return Status::InvalidArgument("session '" + id + "' is not plan-driven");
  }
  std::shared_ptr<PlanSnapshot> next = ClonePlan(*session->plan);
  mutate(next.get());
  return PublishPlanLocked(session, std::move(next));
}

void PollutionServer::OnSegment(Session* session, const PlanSegment& segment) {
  double latency = -1.0;
  obs::Histogram* histogram = nullptr;
  {
    MutexLock lock(&session->mu);
    session->segments.push_back(segment);
    if (segment.version > session->adopted_version) {
      // First adoption of this version. Initial plans (version 1) are
      // adopted with their first run, not swapped in — only published
      // successors measure a swap latency.
      if (session->adopted_version != 0 && session->plan != nullptr &&
          session->plan->version == segment.version) {
        latency = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() -
                      session->plan->published_at)
                      .count();
        histogram = session->metrics.swap_latency;
      }
      session->adopted_version = segment.version;
    }
  }
  if (histogram != nullptr && latency >= 0) histogram->Observe(latency);
}

Result<SessionInfo> PollutionServer::session_info(const std::string& id) const {
  MutexLock lock(&mu_);
  SessionPtr session = FindSessionLocked(id);
  if (session == nullptr) {
    return Status::NotFound("no session named '" + id + "'");
  }
  SessionInfo info;
  info.id = session->id;
  MutexLock session_lock(&session->mu);
  switch (session->state) {
    case Session::State::kWaiting:
      info.state = "waiting";
      break;
    case Session::State::kQueued:
      info.state = "queued";
      break;
    case Session::State::kRunning:
      info.state = "running";
      break;
    case Session::State::kRetired:
      info.state = "retired";
      break;
  }
  info.runs = session->runs;
  info.waiting_subscribers = static_cast<int>(session->waiting.size());
  if (session->plan != nullptr) {
    info.scenario = session->plan->scenario;
    info.plan_version = session->plan->version;
  }
  info.plan_swaps = session->plan_swaps;
  info.segments = session->segments;
  return info;
}

std::vector<SessionInfo> PollutionServer::ListSessions() const {
  std::vector<std::string> ids = session_ids();
  std::vector<SessionInfo> infos;
  infos.reserve(ids.size());
  for (const std::string& id : ids) {
    Result<SessionInfo> info = session_info(id);
    // A session cannot disappear from the registry, only retire.
    if (info.ok()) infos.push_back(std::move(info.ValueOrDie()));
  }
  return infos;
}

Result<PlanPtr> PollutionServer::session_plan(const std::string& id) const {
  MutexLock lock(&mu_);
  SessionPtr session = FindSessionLocked(id);
  if (session == nullptr) {
    return Status::NotFound("no session named '" + id + "'");
  }
  MutexLock session_lock(&session->mu);
  return session->plan;
}

Status PollutionServer::Start() {
  {
    MutexLock lock(&mu_);
    if (started_) return Status::AlreadyExists("server already started");
  }
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
  if (options_.workers < 1) options_.workers = 1;
  ICEWAFL_ASSIGN_OR_RETURN(wake_, WakePipe::Make());
  ICEWAFL_ASSIGN_OR_RETURN(
      listen_fd_,
      ListenTcp(options_.host, options_.port, options_.backlog, &port_));
  metrics_ = obs::ServerMetrics::Bind(options_.metrics);
  {
    MutexLock lock(&mu_);
    started_ = true;
    accepting_ = true;
  }
  reactor_thread_ = std::thread(&PollutionServer::ReactorLoop, this);
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back(&PollutionServer::WorkerLoop, this);
  }
  return Status::OK();
}

void PollutionServer::RequestStop() {
  {
    MutexLock lock(&mu_);
    stop_requested_ = true;
    accepting_ = false;
    for (const ConnPtr& c : conns_) c->queue->Poison();
  }
  cv_.NotifyAll();
  wake_.Poke();
}

Status PollutionServer::Wait() {
  {
    MutexLock lock(&mu_);
    while (true) {
      if (stop_requested_) break;
      if (!sessions_.empty()) {
        // Sessions are checked one at a time (never two session locks
        // at once); a transition cannot slip past the wait because it
        // holds the registry lock this loop sleeps under.
        bool all_retired = true;
        for (const SessionPtr& s : sessions_) {
          MutexLock session_lock(&s->mu);
          if (s->state != Session::State::kRetired) {
            all_retired = false;
            break;
          }
        }
        if (all_retired) break;
      }
      cv_.Wait(mu_);
    }
    draining_ = true;
    accepting_ = false;
    // Connections that never subscribed (or are racing the shutdown)
    // get a courteous error frame before being flushed and closed.
    auto bye = std::make_shared<const std::string>(
        EncodeErrorFrame("server shutting down"));
    for (const ConnPtr& c : conns_) {
      if (!c->queue->closed()) {
        (void)c->queue->TryPush({bye, std::chrono::steady_clock::now()});
        c->queue->Close();
      }
    }
  }
  cv_.NotifyAll();
  wake_.Poke();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (reactor_thread_.joinable()) reactor_thread_.join();
  MutexLock lock(&mu_);
  return first_error_;
}

size_t PollutionServer::clients_connected() const {
  MutexLock lock(&mu_);
  return conns_.size();
}

ChannelStats PollutionServer::frame_queue_stats() const {
  MutexLock lock(&mu_);
  // Channel locks rank below the registry lock, so sampling live
  // queues here stays inside the hierarchy.
  ChannelStats total = retired_queue_stats_;
  for (const ConnPtr& c : conns_) total.Add(c->queue->stats());
  return total;
}

std::vector<std::string> PollutionServer::session_ids() const {
  MutexLock lock(&mu_);
  std::vector<std::string> ids;
  ids.reserve(sessions_.size());
  for (const SessionPtr& s : sessions_) ids.push_back(s->id);
  return ids;
}

// ---------------------------------------------------------------------
// Session scheduling (worker pool)
// ---------------------------------------------------------------------

void PollutionServer::ScheduleReadyLocked() {
  for (const SessionPtr& s : sessions_) {
    MutexLock session_lock(&s->mu);
    if (s->state != Session::State::kWaiting || s->stop_requested) continue;
    if (static_cast<int>(s->waiting.size()) < s->options.min_subscribers) {
      continue;
    }
    s->state = Session::State::kQueued;
    run_queue_.push_back(s);
  }
}

void PollutionServer::RetireLocked(const SessionPtr& session,
                                   const std::string& reason) {
  session->state = Session::State::kRetired;
  if (session->waiting.empty()) return;
  auto bye = std::make_shared<const std::string>(EncodeErrorFrame(reason));
  for (const ConnPtr& conn : session->waiting) {
    // A waiting subscriber's queue is empty, so the push cannot be
    // rejected for capacity. Channel locks rank below session locks, so
    // enqueueing here respects the hierarchy.
    (void)conn->queue->TryPush({bye, std::chrono::steady_clock::now()});
    conn->queue->Close();
  }
  session->waiting.clear();
}

void PollutionServer::WorkerLoop() {
  while (true) {
    SessionPtr session;
    std::vector<ConnPtr> participants;
    {
      MutexLock lock(&mu_);
      while (!stop_requested_ && !draining_ && run_queue_.empty()) {
        cv_.Wait(mu_);
      }
      if (stop_requested_ || run_queue_.empty()) break;
      session = run_queue_.front();
      run_queue_.pop_front();
      MutexLock session_lock(&session->mu);
      // Retired while queued (StopSession raced the pop).
      if (session->state != Session::State::kQueued) continue;
      session->state = Session::State::kRunning;
      participants.swap(session->waiting);
      for (const ConnPtr& c : participants) {
        MutexLock conn_lock(&c->mu);
        c->in_run = true;
      }
    }
    RunSession(session, std::move(participants));
  }
}

void PollutionServer::RunSession(const SessionPtr& session,
                                 std::vector<ConnPtr> participants) {
  FanoutSink sink(this, session.get(), std::move(participants));
  // The run's plan view: the snapshot current at run start, a probe
  // for the newest one (polled by the serving runner at cutover
  // boundaries), and the segment-bookkeeping callback. The callbacks
  // capture the raw session pointer; `session` outlives the run (the
  // registry never erases sessions) and fn returns before this frame
  // unwinds.
  PlanContext ctx;
  {
    MutexLock session_lock(&session->mu);
    ctx.plan = session->plan;
    session->segments.clear();
  }
  if (ctx.plan != nullptr) {
    Session* raw = session.get();
    ctx.latest = [raw]() -> PlanPtr {
      MutexLock lock(&raw->mu);
      return raw->plan;
    };
    ctx.on_segment = [this, raw](const PlanSegment& segment) {
      OnSegment(raw, segment);
    };
  }
  Status status = session->fn(ctx, &sink);
  // Batch subscribers still hold a trailing partial batch.
  if (status.ok()) status = sink.FlushBatch();

  // Terminate every participating stream: End on success, Error on a
  // run failure, then close the queues so the reactor flushes and
  // hangs up. No server lock is held here.
  auto tail = std::make_shared<const std::string>(
      status.ok() ? EncodeEndFrame(sink.count())
                  : EncodeErrorFrame(status.ToString()));
  for (size_t i = 0; i < sink.subscribers().size(); ++i) {
    if (sink.open(i)) {
      (void)EnqueueFrame(sink.subscribers()[i], tail, session->metrics);
    }
    sink.subscribers()[i]->queue->Close();
  }
  wake_.Poke();

  {
    MutexLock lock(&mu_);
    bool done = false;
    {
      MutexLock session_lock(&session->mu);
      ++session->runs;
      if (session->metrics.runs != nullptr) session->metrics.runs->Increment();
      runs_completed_.fetch_add(1, std::memory_order_relaxed);
      // A stop-triggered abort (global or per-session) is not a failure.
      if (!status.ok() && !stop_requested_ && !session->stop_requested &&
          first_error_.ok()) {
        first_error_ = status;
      }
      done = session->stop_requested ||
             (session->options.max_runs != 0 &&
              session->runs >= session->options.max_runs);
      if (done) {
        RetireLocked(session, "session '" + session->id + "' has ended");
      } else {
        session->state = Session::State::kWaiting;
      }
    }
    // Late joiners may already satisfy min_subscribers. Runs after the
    // session lock is dropped: ScheduleReadyLocked locks candidate
    // sessions itself, and two session locks are never held at once.
    if (!done) ScheduleReadyLocked();
  }
  cv_.NotifyAll();
  wake_.Poke();
}

// ---------------------------------------------------------------------
// Fan-out enqueue (slow-consumer policies)
// ---------------------------------------------------------------------

bool PollutionServer::EnqueueFrame(
    const ConnPtr& conn, const std::shared_ptr<const std::string>& frame,
    const obs::SessionMetrics& metrics) {
  QueuedFrame qf{frame, std::chrono::steady_clock::now()};
  switch (options_.slow_consumer) {
    case SlowConsumerPolicy::kBlock: {
      // Blocking push: backpressure propagates into the pipeline
      // runtime, which is exactly the contract of this policy.
      if (!conn->queue->Push(std::move(qf))) return false;
      wake_.Poke();
      return true;
    }
    case SlowConsumerPolicy::kDropOldest: {
      while (true) {
        switch (conn->queue->TryPush(qf)) {
          case FrameQueue::PushResult::kOk:
            wake_.Poke();
            return true;
          case FrameQueue::PushResult::kClosed:
            return false;
          case FrameQueue::PushResult::kFull: {
            QueuedFrame discard;
            if (conn->queue->TryPop(&discard) &&
                metrics.slow_drops != nullptr) {
              metrics.slow_drops->Increment();
            }
            break;  // retry the push
          }
        }
      }
    }
    case SlowConsumerPolicy::kDisconnect: {
      switch (conn->queue->TryPush(std::move(qf))) {
        case FrameQueue::PushResult::kOk:
          wake_.Poke();
          return true;
        case FrameQueue::PushResult::kClosed:
          return false;
        case FrameQueue::PushResult::kFull:
          break;
      }
      // Queue full: cut the slow consumer loose. The kill flag is
      // connection state; the poison (a channel op, lower in the
      // hierarchy) happens after the lock is dropped.
      {
        MutexLock lock(&conn->mu);
        conn->kill = true;
      }
      conn->queue->Poison();
      if (metrics.slow_disconnects != nullptr) {
        metrics.slow_disconnects->Increment();
      }
      wake_.Poke();
      return false;
    }
  }
  return false;
}

// ---------------------------------------------------------------------
// Reactor (event loop; single thread owns outbuf/decoder per conn)
// ---------------------------------------------------------------------

void PollutionServer::HandleSubscribe(const ConnPtr& conn,
                                      const std::string& payload) {
  // Rejections are answered on the spot: an Error frame into the write
  // buffer (the reactor owns it), then flush-and-close.
  auto reject = [&](const std::string& message) {
    {
      MutexLock lock(&conn->mu);
      conn->state = Connection::State::kClosing;
    }
    conn->outbuf.append(EncodeErrorFrame(message));
  };

  Result<SubscribeRequest> request = DecodeSubscribePayload(payload);
  if (!request.ok()) {
    reject("bad subscribe frame: " + request.status().ToString());
    return;
  }
  const SubscribeRequest& hello = request.ValueOrDie();
  if (hello.version != kWireVersion) {
    reject("unsupported wire version " + std::to_string(hello.version) +
           " (server speaks " + std::to_string(kWireVersion) + ")");
    return;
  }

  // Resolve the session under the registry lock only; park the
  // subscriber under the session (+ connection) locks; then let the
  // scheduler look for a newly ready session under the registry lock
  // again. Each step stays inside the hierarchy.
  SessionPtr session;
  std::string failure;
  {
    MutexLock lock(&mu_);
    std::string available;
    for (const SessionPtr& s : sessions_) {
      if (!available.empty()) available += ", ";
      available += s->id;
    }
    if (hello.session_id.empty()) {
      // Convenience for single-session deployments: an empty id means
      // "the sole session". Ambiguous otherwise.
      if (sessions_.size() == 1) {
        session = sessions_.front();
      } else {
        failure = sessions_.empty()
                      ? "no sessions registered"
                      : "subscribe must name one of the sessions: " + available;
      }
    } else {
      for (const SessionPtr& s : sessions_) {
        if (s->id == hello.session_id) {
          session = s;
          break;
        }
      }
      if (session == nullptr) {
        failure = "unknown session '" + hello.session_id + "'" +
                  (available.empty() ? " (no sessions registered)"
                                     : " (available: " + available + ")");
      }
    }
  }
  if (session == nullptr) {
    reject(failure);
    return;
  }

  bool retired = false;
  {
    MutexLock session_lock(&session->mu);
    if (session->state == Session::State::kRetired) {
      retired = true;
    } else {
      {
        MutexLock conn_lock(&conn->mu);
        conn->state = Connection::State::kStreaming;
        conn->session = session;
        conn->send_latency = session->metrics.send_latency;
        conn->batch_frames = (hello.capabilities & kCapBatchFrames) != 0;
      }
      session->waiting.push_back(conn);
    }
  }
  if (retired) {
    // The session retired between lookup and parking; same answer a
    // straggler would have gotten under the old single lock.
    reject("session '" + session->id + "' has ended");
    return;
  }
  // outbuf is reactor-only state and schema_frame is immutable; frames
  // from a run that starts right now still trail the schema frame,
  // because only this reactor thread moves queue bytes into outbuf.
  conn->outbuf.append(session->schema_frame);
  {
    MutexLock lock(&mu_);
    ScheduleReadyLocked();
  }
  cv_.NotifyAll();  // a run may now have enough subscribers
}

bool PollutionServer::ServiceConn(const ConnPtr& conn) {
  Connection::State state;
  {
    MutexLock lock(&conn->mu);
    if (conn->kill) {
      lock.Unlock();
      conn->queue->Poison();
      return false;
    }
    state = conn->state;
  }
  // Inbound direction: a v2 client speaks once — the Subscribe hello —
  // so reads parse the handshake, then only detect peer close and keep
  // the receive buffer empty.
  char rbuf[512];
  while (true) {
    const ssize_t n = ::recv(conn->fd.get(), rbuf, sizeof(rbuf), 0);
    if (n == 0) {
      conn->queue->Poison();
      return false;  // peer hung up
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      conn->queue->Poison();
      return false;
    }
    if (state == Connection::State::kHandshake) {
      conn->decoder.Feed(rbuf, static_cast<size_t>(n));
      uint8_t type = 0;
      std::string payload;
      Result<bool> next = conn->decoder.Next(&type, &payload);
      if (!next.ok()) {
        {
          MutexLock lock(&conn->mu);
          conn->state = Connection::State::kClosing;
        }
        conn->outbuf.append(EncodeErrorFrame("bad subscribe frame: " +
                                             next.status().ToString()));
        state = Connection::State::kClosing;
      } else if (next.ValueOrDie()) {
        if (type != kFrameSubscribe) {
          {
            MutexLock lock(&conn->mu);
            conn->state = Connection::State::kClosing;
          }
          conn->outbuf.append(EncodeErrorFrame(
              "expected a Subscribe hello frame, got frame type " +
              std::to_string(type)));
          state = Connection::State::kClosing;
        } else {
          HandleSubscribe(conn, payload);
          MutexLock lock(&conn->mu);
          state = conn->state;
        }
      }
      // Bytes past the hello are ignored, like any other inbound data.
    }
  }
  // Re-read the connection state once after the inbound pass (the
  // handshake may have advanced it) along with the latency handle the
  // subscribe installed.
  obs::Histogram* send_latency = nullptr;
  {
    MutexLock lock(&conn->mu);
    state = conn->state;
    send_latency = conn->send_latency;
  }
  // Refill the write buffer from the frame queue.
  QueuedFrame frame;
  while (conn->outbuf.size() - conn->outpos < kMaxOutbufBytes &&
         conn->queue->TryPop(&frame)) {
    if (send_latency != nullptr) {
      send_latency->Observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        frame.enqueued)
              .count());
    }
    conn->outbuf.append(*frame.bytes);
  }
  if (conn->outpos == conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->outpos = 0;
  } else if (conn->outpos > kMaxOutbufBytes) {
    conn->outbuf.erase(0, conn->outpos);
    conn->outpos = 0;
  }
  // Drain the write buffer into the socket.
  while (conn->outpos < conn->outbuf.size()) {
    const ssize_t n =
        ::send(conn->fd.get(), conn->outbuf.data() + conn->outpos,
               conn->outbuf.size() - conn->outpos, MSG_NOSIGNAL);
    if (n > 0) {
      conn->outpos += static_cast<size_t>(n);
      if (metrics_.bytes_sent != nullptr) {
        metrics_.bytes_sent->Increment(static_cast<uint64_t>(n));
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    conn->queue->Poison();
    return false;  // broken connection
  }
  const bool flushed = conn->outpos == conn->outbuf.size();
  // A closing connection hangs up once its Error tail is flushed.
  if (state == Connection::State::kClosing && flushed) return false;
  // Graceful completion: queue closed and drained, buffer flushed.
  // The reactor is the only consumer of a closed queue, so closed +
  // empty cannot un-empty.
  if (conn->queue->closed() && conn->queue->size() == 0 && flushed) {
    return false;
  }
  return true;
}

void PollutionServer::RemoveConn(const ConnPtr& conn) {
  conn->fd.Reset();
  // Three sequential, never-nested acquisitions walking *down* the
  // hierarchy would invert it; instead each step releases before the
  // next: read the connection's session link, fix that session's
  // waiting list, then unlink from the registry.
  SessionPtr session;
  bool in_run = false;
  {
    MutexLock conn_lock(&conn->mu);
    session = std::move(conn->session);
    in_run = conn->in_run;
  }
  if (session != nullptr && !in_run) {
    // A subscriber that vanishes while waiting must not count toward
    // its session's min_subscribers.
    MutexLock session_lock(&session->mu);
    auto& waiting = session->waiting;
    for (auto it = waiting.begin(); it != waiting.end(); ++it) {
      if (it->get() == conn.get()) {
        waiting.erase(it);
        break;
      }
    }
  }
  session.reset();
  {
    MutexLock lock(&mu_);
    for (auto it = conns_.begin(); it != conns_.end(); ++it) {
      if (it->get() == conn.get()) {
        conns_.erase(it);
        break;
      }
    }
    // Fold the departing queue's stats into the server-lifetime totals
    // so frame_queue_stats() keeps reconciling after disconnects.
    retired_queue_stats_.Add(conn->queue->stats());
    if (metrics_.clients_connected != nullptr) {
      metrics_.clients_connected->Set(static_cast<double>(conns_.size()));
    }
  }
  cv_.NotifyAll();
}

void PollutionServer::ReactorLoop() {
  std::vector<pollfd> fds;
  std::vector<ConnPtr> snapshot;
  bool drain_deadline_set = false;
  std::chrono::steady_clock::time_point drain_deadline;
  while (true) {
    bool accepting = false;
    {
      MutexLock lock(&mu_);
      if (stop_requested_) break;
      if (draining_) {
        if (conns_.empty()) break;
        if (!drain_deadline_set) {
          drain_deadline_set = true;
          drain_deadline = std::chrono::steady_clock::now() + kDrainGrace;
        } else if (std::chrono::steady_clock::now() > drain_deadline) {
          break;  // unresponsive peers cannot hold shutdown hostage
        }
      }
      accepting = accepting_;
      snapshot = conns_;
    }

    fds.clear();
    fds.push_back({wake_.read_end.get(), POLLIN, 0});
    const size_t listen_index = fds.size();
    if (accepting) fds.push_back({listen_fd_.get(), POLLIN, 0});
    for (const ConnPtr& c : snapshot) {
      short events = POLLIN;
      const bool wants_write = c->outpos < c->outbuf.size() ||
                               c->queue->size() > 0 || c->queue->closed();
      if (wants_write) events |= POLLOUT;
      fds.push_back({c->fd.get(), events, 0});
    }

    // Event-driven, never ticked: poll blocks until a socket is ready
    // or a cross-thread transition pokes the self-pipe. Only the drain
    // grace period bounds the wait.
    int timeout_ms = -1;
    if (drain_deadline_set) {
      const int64_t left_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              drain_deadline - std::chrono::steady_clock::now())
              .count();
      timeout_ms = static_cast<int>(std::max<int64_t>(left_ms, 0)) + 1;
    }
    if (::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms) < 0 &&
        errno != EINTR) {
      break;  // poll itself failed; abort serving
    }
    if ((fds[0].revents & POLLIN) != 0) wake_.Drain();

    if (accepting && (fds[listen_index].revents & POLLIN) != 0) {
      while (true) {
        const int cfd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                                  SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (cfd < 0) break;
        auto conn = std::make_shared<Connection>();
        conn->fd = UniqueFd(cfd);
        const int one = 1;
        (void)::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        conn->queue =
            std::make_shared<FrameQueue>(options_.queue_capacity);
        {
          MutexLock lock(&mu_);
          conn->id = next_conn_id_++;
          conns_.push_back(conn);
          if (metrics_.clients_connected != nullptr) {
            metrics_.clients_connected->Set(
                static_cast<double>(conns_.size()));
          }
        }
        if (metrics_.clients_accepted != nullptr) {
          metrics_.clients_accepted->Increment();
        }
      }
    }

    for (const ConnPtr& c : snapshot) {
      if (!c->fd.valid()) continue;
      if (!ServiceConn(c)) RemoveConn(c);
    }
  }
  // Abort/exit path: close everything still open.
  std::vector<ConnPtr> leftovers;
  {
    MutexLock lock(&mu_);
    leftovers.swap(conns_);
    for (const ConnPtr& c : leftovers) {
      retired_queue_stats_.Add(c->queue->stats());
    }
    if (metrics_.clients_connected != nullptr) {
      metrics_.clients_connected->Set(0.0);
    }
  }
  for (const ConnPtr& c : leftovers) {
    c->queue->Poison();
    c->fd.Reset();
  }
  listen_fd_.Reset();
  cv_.NotifyAll();
}

}  // namespace net
}  // namespace icewafl
