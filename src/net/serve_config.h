#ifndef ICEWAFL_NET_SERVE_CONFIG_H_
#define ICEWAFL_NET_SERVE_CONFIG_H_

#include <cstdint>
#include <string>

#include "net/server.h"
#include "util/json.h"
#include "util/result.h"

namespace icewafl {
namespace net {

/// \brief Declarative configuration of `icewafl_cli serve` — one JSON
/// document (or the equivalent flag set) naming the scenario to pollute
/// and how to serve it. The same document is what
/// `analysis::AnalyzeServeConfig` lints (IW601..IW606), so a config
/// rejected by `icewafl_cli lint` is exactly one `serve` would refuse.
struct ServeConfig {
  std::string scenario;
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port (printed at startup).
  uint16_t port = 0;
  uint64_t seed = 42;
  int parallelism = 1;
  int min_subscribers = 1;
  /// 0 = serve sessions until stopped.
  uint64_t max_sessions = 0;
  size_t queue_capacity = 256;
  SlowConsumerPolicy slow_consumer = SlowConsumerPolicy::kBlock;

  /// \brief Parses and validates a serve document. The checks mirror the
  /// analyzer's IW6xx error codes — this is the enforcing twin of the
  /// advisory lint.
  static Result<ServeConfig> FromJson(const Json& json);

  /// \brief Canonical JSON form (what the CLI lints when serve is
  /// configured through flags).
  Json ToJson() const;

  /// \brief Server options for this config; `metrics` may be null.
  ServerOptions ToServerOptions(obs::MetricRegistry* metrics) const;
};

}  // namespace net
}  // namespace icewafl

#endif  // ICEWAFL_NET_SERVE_CONFIG_H_
