#ifndef ICEWAFL_NET_SERVE_CONFIG_H_
#define ICEWAFL_NET_SERVE_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/server.h"
#include "util/json.h"
#include "util/result.h"

namespace icewafl {
namespace net {

/// \brief One named session entry of a serve document: which scenario
/// to pollute, how, and when its runs start and stop.
struct SessionConfig {
  /// Session id clients subscribe with; defaults to the scenario name.
  std::string name;
  std::string scenario;
  uint64_t seed = 42;
  int parallelism = 1;
  int min_subscribers = 1;
  /// Pipeline runs before the session retires; 0 = until stopped.
  uint64_t max_runs = 0;
  /// Optional cleaning-rules document applied to this session's served
  /// stream (scenarios::BuildPlanWithCleaner); null serves raw polluted
  /// output. Kept as raw JSON so the net layer stays free of the
  /// cleaning library — the CLI compiles and lint-gates it.
  Json cleaner;

  /// \brief Per-session server options for this entry.
  SessionOptions ToSessionOptions() const;
};

/// \brief Declarative configuration of `icewafl_cli serve` — one JSON
/// document (or the equivalent flag set) naming the sessions to host
/// and how to serve them. The same document is what
/// `analysis::AnalyzeServeConfig` lints (IW601..IW608), so a config
/// rejected by `icewafl_cli lint` is exactly one `serve` would refuse.
///
/// Two document shapes parse:
///  - multi-session: a `sessions` array of named scenario entries
///    (canonical — ToJson() always emits this form);
///  - legacy single-session: a top-level `scenario` plus the per-
///    session knobs (`seed`, `parallelism`, `min_subscribers`,
///    `max_sessions` — the pre-v2 name of `max_runs`).
/// A document using both shapes at once is rejected.
struct ServeConfig {
  std::vector<SessionConfig> sessions;
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port (printed at startup).
  uint16_t port = 0;
  /// Admin channel port: -1 disables the channel (default), 0 binds an
  /// ephemeral port (printed at startup like the serve port).
  int admin_port = -1;
  /// Worker-pool size driving all sessions' pipelines.
  int workers = 2;
  size_t queue_capacity = 256;
  SlowConsumerPolicy slow_consumer = SlowConsumerPolicy::kBlock;

  /// \brief Parses and validates a serve document. The checks mirror the
  /// analyzer's IW6xx error codes — this is the enforcing twin of the
  /// advisory lint.
  static Result<ServeConfig> FromJson(const Json& json);

  /// \brief Canonical JSON form (always the `sessions` array shape).
  Json ToJson() const;

  /// \brief Server-wide options for this config; `metrics` may be null.
  ServerOptions ToServerOptions(obs::MetricRegistry* metrics) const;
};

}  // namespace net
}  // namespace icewafl

#endif  // ICEWAFL_NET_SERVE_CONFIG_H_
