#ifndef ICEWAFL_NET_SOCKET_H_
#define ICEWAFL_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "util/result.h"

namespace icewafl {
namespace net {

/// \file
/// Thin RAII wrappers over the POSIX socket calls the serving subsystem
/// uses. Everything returns Status instead of errno, and every
/// descriptor lives in a UniqueFd so error paths cannot leak fds (the
/// ASan preset runs the whole server test suite; a leaked fd shows up
/// as an exhausted descriptor table long before then).

/// \brief Owning file descriptor; closes on destruction.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// \brief Relinquishes ownership without closing.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// \brief Closes the descriptor (idempotent).
  void Reset();

 private:
  int fd_ = -1;
};

/// \brief Thread-safe errno formatting (strerror_r; plain strerror
/// shares a static buffer across threads, and the serving core calls
/// into here from the reactor and every worker).
std::string ErrnoMessage(int errnum);

/// \brief Creates a listening TCP socket bound to `host:port`
/// (SO_REUSEADDR, non-blocking). Port 0 binds an ephemeral port; the
/// actually bound port is written to `*bound_port`.
Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog, uint16_t* bound_port);

/// \brief Connects (blocking) to `host:port`.
Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port);

/// \brief Switches `fd` to non-blocking mode.
Status SetNonBlocking(int fd);

/// \brief A non-blocking pipe pair used to wake a poll() loop from
/// other threads (the self-pipe trick).
struct WakePipe {
  UniqueFd read_end;
  UniqueFd write_end;

  static Result<WakePipe> Make();

  /// \brief Wakes the poller; coalesces when the pipe is full.
  void Poke() const;
  /// \brief Drains pending wake bytes.
  void Drain() const;
};

}  // namespace net
}  // namespace icewafl

#endif  // ICEWAFL_NET_SOCKET_H_
