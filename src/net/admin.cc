#include "net/admin.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <utility>

#include "analysis/analyzer.h"

namespace icewafl {
namespace net {

namespace {

/// Writes the whole buffer (admin sockets stay blocking).
Status SendAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError("send: " + ErrnoMessage(errno));
  }
  return Status::OK();
}

/// Blocking frame read. Returns false on a clean EOF between frames;
/// IOError on a mid-frame EOF or a transport failure.
Result<bool> ReadFrame(int fd, FrameDecoder* decoder, uint8_t* type,
                       std::string* payload) {
  char buf[16 * 1024];
  while (true) {
    ICEWAFL_ASSIGN_OR_RETURN(const bool have, decoder->Next(type, payload));
    if (have) return true;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) {
      if (decoder->buffered() > 0) {
        return Status::IOError("connection closed mid-frame (" +
                               std::to_string(decoder->buffered()) +
                               " bytes buffered)");
      }
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("recv: " + ErrnoMessage(errno));
    }
    decoder->Feed(buf, static_cast<size_t>(n));
  }
}

/// The response "id" echoes the request's (or null when absent/bad).
Json RequestId(const Json& request) {
  if (request.is_object() && request.Has("id")) {
    const Json id = request.Get("id").ValueOrDie();
    if (id.is_number() || id.is_string()) return id;
  }
  return Json();
}

/// {"error": {"code", "message"[, "diagnostics"]}} response body.
Json ErrorBody(const std::string& code, const std::string& message,
               Json diagnostics = Json()) {
  Json error = Json::MakeObject();
  error.Set("code", Json(code));
  error.Set("message", Json(message));
  if (diagnostics.is_object()) {
    error.Set("diagnostics", std::move(diagnostics));
  }
  Json body = Json::MakeObject();
  body.Set("error", std::move(error));
  return body;
}

Json ErrorBody(const Status& status, Json diagnostics = Json()) {
  return ErrorBody(StatusCodeName(status.code()), status.message(),
                   std::move(diagnostics));
}

Json ResultBody(Json result) {
  Json body = Json::MakeObject();
  body.Set("result", std::move(result));
  return body;
}

Json SessionInfoToJson(const SessionInfo& info) {
  Json json = Json::MakeObject();
  json.Set("id", Json(info.id));
  json.Set("scenario", Json(info.scenario));
  json.Set("state", Json(info.state));
  json.Set("runs", Json(static_cast<int64_t>(info.runs)));
  json.Set("waiting_subscribers",
           Json(static_cast<int64_t>(info.waiting_subscribers)));
  json.Set("plan_version", Json(static_cast<int64_t>(info.plan_version)));
  json.Set("plan_swaps", Json(static_cast<int64_t>(info.plan_swaps)));
  Json segments = Json::MakeArray();
  for (const PlanSegment& segment : info.segments) {
    Json entry = Json::MakeObject();
    entry.Set("version", Json(static_cast<int64_t>(segment.version)));
    entry.Set("start_row", Json(static_cast<int64_t>(segment.start_row)));
    segments.Append(std::move(entry));
  }
  json.Set("segments", std::move(segments));
  return json;
}

}  // namespace

const std::vector<std::string>& AdminMethodNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "list_sessions", "get_config",   "swap_pipeline", "set_rate",
      "stop_session",  "create_session", "get_metrics", "set_cleaner",
  };
  return *names;
}

AdminServer::AdminServer(PollutionServer* server, obs::MetricRegistry* metrics,
                         AdminOptions options, AdminHooks hooks)
    : server_(server),
      metrics_(metrics),
      options_(std::move(options)),
      hooks_(std::move(hooks)) {}

AdminServer::~AdminServer() { Stop(); }

Status AdminServer::Start() {
  {
    MutexLock lock(&mu_);
    if (started_) return Status::InvalidArgument("admin server already started");
    started_ = true;
  }
  ICEWAFL_ASSIGN_OR_RETURN(
      listen_fd_, ListenTcp(options_.host, options_.port, options_.backlog,
                            &port_));
  ICEWAFL_ASSIGN_OR_RETURN(wake_, WakePipe::Make());
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void AdminServer::Stop() {
  {
    MutexLock lock(&mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  wake_.Poke();
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_.Reset();
  // The accept loop has exited, so conns_ is stable: wake every blocked
  // per-connection read, then join.
  std::vector<std::unique_ptr<AdminConn>> conns;
  {
    MutexLock lock(&mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->fd.valid()) ::shutdown(conn->fd.get(), SHUT_RDWR);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void AdminServer::AcceptLoop() {
  while (true) {
    struct pollfd fds[2];
    fds[0].fd = listen_fd_.get();
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = wake_.read_end.get();
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    {
      MutexLock lock(&mu_);
      if (stopping_) return;
    }
    if (fds[1].revents != 0) wake_.Drain();
    if ((fds[0].revents & POLLIN) == 0) continue;
    while (true) {
      const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN on the non-blocking listen socket: drained
      }
      // Accepted sockets do not inherit O_NONBLOCK; the per-connection
      // thread reads blocking.
      auto conn = std::make_unique<AdminConn>();
      conn->fd = UniqueFd(fd);
      AdminConn* raw = conn.get();
      MutexLock lock(&mu_);
      if (stopping_) break;  // fd closes with `conn`
      conns_.push_back(std::move(conn));
      raw->thread = std::thread([this, raw] { ServeConn(raw); });
    }
  }
}

void AdminServer::ServeConn(AdminConn* conn) {
  FrameDecoder decoder;
  while (true) {
    uint8_t type = 0;
    std::string payload;
    Result<bool> read = ReadFrame(conn->fd.get(), &decoder, &type, &payload);
    if (!read.ok() || !read.ValueOrDie()) return;
    Json body;
    if (type != kFrameAdminRequest) {
      body = ErrorBody("ParseError",
                       "expected an AdminRequest frame, got type " +
                           std::to_string(static_cast<int>(type)));
      body.Set("id", Json());
    } else {
      Result<Json> request = Json::Parse(payload);
      if (!request.ok()) {
        body = ErrorBody("ParseError", request.status().message());
        body.Set("id", Json());
      } else {
        body = Handle(request.ValueOrDie());
      }
    }
    std::string out;
    AppendFrame(kFrameAdminResponse, body.Dump(), &out);
    if (!SendAll(conn->fd.get(), out).ok()) return;
  }
}

Json AdminServer::Handle(const Json& request) {
  analysis::AdminAnalyzeOptions lint;
  lint.known_methods = AdminMethodNames();
  lint.known_scenarios = hooks_.known_scenarios;
  const Diagnostics diags = analysis::AnalyzeAdminRequest(request, lint);
  Json response;
  if (diags.HasErrors()) {
    // The gate: a malformed or unknown request never reaches dispatch.
    std::string code = "IW610";
    std::string message = "invalid admin request";
    for (const Diagnostic& diag : diags.items()) {
      if (diag.severity == DiagSeverity::kError) {
        code = diag.code;
        message = diag.message;
        break;
      }
    }
    response = ErrorBody(code, message, diags.ToJson());
  } else {
    Json params = Json::MakeObject();
    if (request.Has("params")) params = request.Get("params").ValueOrDie();
    response = Dispatch(request.GetString("method", ""), params);
    if (!diags.empty() && response.Has("result")) {
      // Surface lint warnings (e.g. IW604 typos) next to the result.
      response.Set("diagnostics", diags.ToJson());
    }
  }
  response.Set("id", RequestId(request));
  return response;
}

Json AdminServer::Dispatch(const std::string& method, const Json& params) {
  if (method == "list_sessions") return DoListSessions();
  if (method == "get_config") return DoGetConfig(params);
  if (method == "swap_pipeline") return DoSwapPipeline(params);
  if (method == "set_rate") return DoSetRate(params);
  if (method == "stop_session") return DoStopSession(params);
  if (method == "create_session") return DoCreateSession(params);
  if (method == "get_metrics") return DoGetMetrics();
  if (method == "set_cleaner") return DoSetCleaner(params);
  return ErrorBody("IW611", "unknown method '" + method + "'");
}

Json AdminServer::DoListSessions() {
  Json sessions = Json::MakeArray();
  for (const SessionInfo& info : server_->ListSessions()) {
    sessions.Append(SessionInfoToJson(info));
  }
  Json result = Json::MakeObject();
  result.Set("sessions", std::move(sessions));
  return ResultBody(std::move(result));
}

Json AdminServer::DoGetConfig(const Json& params) {
  const std::string id = params.GetString("session", "");
  Result<PlanPtr> plan = server_->session_plan(id);
  if (!plan.ok()) return ErrorBody(plan.status());
  if (plan.ValueOrDie() == nullptr) {
    return ErrorBody("NotFound",
                     "session '" + id + "' is not plan-driven");
  }
  const PlanSnapshot& snapshot = *plan.ValueOrDie();
  Json result = Json::MakeObject();
  result.Set("session", Json(id));
  result.Set("scenario", Json(snapshot.scenario));
  result.Set("plan_version", Json(static_cast<int64_t>(snapshot.version)));
  result.Set("seed", Json(static_cast<int64_t>(snapshot.seed)));
  result.Set("parallelism", Json(static_cast<int64_t>(snapshot.parallelism)));
  result.Set("tuples_per_sec", Json(snapshot.tuples_per_sec));
  result.Set("pipeline", snapshot.config);
  result.Set("cleaner", snapshot.cleaner);
  return ResultBody(std::move(result));
}

Json AdminServer::DoSwapPipeline(const Json& params) {
  const std::string id = params.GetString("session", "");
  if (!hooks_.compile_swap) {
    return ErrorBody("NotImplemented",
                     "this admin endpoint has no swap compiler installed");
  }
  Result<PlanPtr> current = server_->session_plan(id);
  if (!current.ok()) return ErrorBody(current.status());
  if (current.ValueOrDie() == nullptr) {
    return ErrorBody("NotFound", "session '" + id + "' is not plan-driven");
  }
  Json diagnostics;
  Result<std::shared_ptr<PlanSnapshot>> next =
      hooks_.compile_swap(*current.ValueOrDie(), params, &diagnostics);
  if (!next.ok()) return ErrorBody(next.status(), std::move(diagnostics));
  Status swapped = server_->SwapPlan(id, next.ValueOrDie());
  if (!swapped.ok()) return ErrorBody(swapped);
  Json result = Json::MakeObject();
  result.Set("session", Json(id));
  result.Set("plan_version",
             Json(static_cast<int64_t>(next.ValueOrDie()->version)));
  return ResultBody(std::move(result));
}

Json AdminServer::DoSetRate(const Json& params) {
  const std::string id = params.GetString("session", "");
  const double rate = params.Get("tuples_per_sec").ValueOrDie().AsDouble();
  Status updated = server_->UpdateSession(
      id, [rate](PlanSnapshot* plan) { plan->tuples_per_sec = rate; });
  if (!updated.ok()) return ErrorBody(updated);
  Result<SessionInfo> info = server_->session_info(id);
  Json result = Json::MakeObject();
  result.Set("session", Json(id));
  result.Set("tuples_per_sec", Json(rate));
  if (info.ok()) {
    result.Set("plan_version",
               Json(static_cast<int64_t>(info.ValueOrDie().plan_version)));
  }
  return ResultBody(std::move(result));
}

Json AdminServer::DoStopSession(const Json& params) {
  const std::string id = params.GetString("session", "");
  Status stopped = server_->StopSession(id);
  if (!stopped.ok()) return ErrorBody(stopped);
  Json result = Json::MakeObject();
  result.Set("session", Json(id));
  result.Set("stopped", Json(true));
  return ResultBody(std::move(result));
}

Json AdminServer::DoCreateSession(const Json& params) {
  if (!hooks_.create_session) {
    return ErrorBody("NotImplemented",
                     "this admin endpoint has no session factory installed");
  }
  Json diagnostics;
  Status created = hooks_.create_session(params, &diagnostics);
  if (!created.ok()) return ErrorBody(created, std::move(diagnostics));
  Json result = Json::MakeObject();
  result.Set("created", Json(true));
  if (params.Has("session") &&
      params.Get("session").ValueOrDie().is_object()) {
    result.Set("session",
               params.Get("session").ValueOrDie().GetString("name", ""));
  }
  return ResultBody(std::move(result));
}

Json AdminServer::DoSetCleaner(const Json& params) {
  const std::string id = params.GetString("session", "");
  if (!hooks_.compile_cleaner) {
    return ErrorBody("NotImplemented",
                     "this admin endpoint has no cleaner compiler installed");
  }
  Result<PlanPtr> current = server_->session_plan(id);
  if (!current.ok()) return ErrorBody(current.status());
  if (current.ValueOrDie() == nullptr) {
    return ErrorBody("NotFound", "session '" + id + "' is not plan-driven");
  }
  Json diagnostics;
  Result<std::shared_ptr<PlanSnapshot>> next =
      hooks_.compile_cleaner(*current.ValueOrDie(), params, &diagnostics);
  if (!next.ok()) return ErrorBody(next.status(), std::move(diagnostics));
  Status swapped = server_->SwapPlan(id, next.ValueOrDie());
  if (!swapped.ok()) return ErrorBody(swapped);
  Json result = Json::MakeObject();
  result.Set("session", Json(id));
  result.Set("plan_version",
             Json(static_cast<int64_t>(next.ValueOrDie()->version)));
  result.Set("cleaning", Json(!next.ValueOrDie()->cleaner.is_null()));
  return ResultBody(std::move(result));
}

Json AdminServer::DoGetMetrics() {
  if (metrics_ == nullptr) {
    return ErrorBody("NotFound", "this server exports no metrics registry");
  }
  Json result = Json::MakeObject();
  result.Set("text", Json(metrics_->ToPrometheusText()));
  return ResultBody(std::move(result));
}

Result<std::unique_ptr<AdminClient>> AdminClient::Connect(
    const std::string& host, uint16_t port) {
  ICEWAFL_ASSIGN_OR_RETURN(UniqueFd fd, ConnectTcp(host, port));
  const std::string peer = host + ":" + std::to_string(port);
  return std::unique_ptr<AdminClient>(new AdminClient(std::move(fd), peer));
}

Result<Json> AdminClient::Call(const std::string& method, const Json& params) {
  const int64_t id = next_id_++;
  Json request = Json::MakeObject();
  request.Set("id", Json(id));
  request.Set("method", Json(method));
  request.Set("params", params.is_object() ? params : Json::MakeObject());
  std::string out;
  AppendFrame(kFrameAdminRequest, request.Dump(), &out);
  ICEWAFL_RETURN_NOT_OK(SendAll(fd_.get(), out));
  uint8_t type = 0;
  std::string payload;
  ICEWAFL_ASSIGN_OR_RETURN(const bool have,
                           ReadFrame(fd_.get(), &decoder_, &type, &payload));
  if (!have) {
    return Status::IOError("admin " + peer_ +
                           ": connection closed before a response");
  }
  if (type != kFrameAdminResponse) {
    return Status::ParseError("admin " + peer_ +
                              ": expected an AdminResponse frame, got type " +
                              std::to_string(static_cast<int>(type)));
  }
  ICEWAFL_ASSIGN_OR_RETURN(Json response, Json::Parse(payload));
  if (response.GetInt("id", -1) != id) {
    return Status::ParseError("admin " + peer_ + ": response id mismatch");
  }
  return response;
}

}  // namespace net
}  // namespace icewafl
