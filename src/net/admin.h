#ifndef ICEWAFL_NET_ADMIN_H_
#define ICEWAFL_NET_ADMIN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/plan.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "util/json.h"
#include "util/result.h"
#include "util/sync.h"

namespace icewafl {
namespace net {

/// \file
/// The live control plane of a PollutionServer (DESIGN.md section 14):
/// a JSON-RPC-style request/response channel on its own TCP port,
/// speaking AdminRequest/AdminResponse frames over the same
/// length-prefixed codec as the data plane. Every mutation is
/// lint-gated: the request envelope through
/// analysis::AnalyzeAdminRequest, swapped pipeline documents through
/// the installed AnalyzeOrDie hook — a statically broken config is
/// rejected with the full Diagnostics JSON before any session state
/// changes.

/// \brief The admin method vocabulary, in documentation order:
/// list_sessions, get_config, swap_pipeline, set_rate, stop_session,
/// create_session, get_metrics, set_cleaner.
const std::vector<std::string>& AdminMethodNames();

/// \brief Compilation hooks the admin server dispatches mutations
/// through. The server core stays scenario-free; the CLI installs hooks
/// that compile via scenarios::BuildScenarioPlan /
/// BuildPlanFromPipelineJson. A null hook rejects the method as
/// unsupported.
struct AdminHooks {
  /// Compiles swap_pipeline params (a "pipeline" document or a
  /// "scenario" name) into an unpublished snapshot derived from
  /// `current`. On a lint rejection the hook fills `*diagnostics` with
  /// the Diagnostics JSON and returns InvalidArgument carrying the
  /// report.
  std::function<Result<std::shared_ptr<PlanSnapshot>>(
      const PlanSnapshot& current, const Json& params, Json* diagnostics)>
      compile_swap;
  /// Creates a new session from create_session params (a serve-config
  /// "session" entry object), same diagnostics contract.
  std::function<Status(const Json& params, Json* diagnostics)> create_session;
  /// Compiles set_cleaner params ({"rules": <cleaning document>} to
  /// install, {"rules": null} to remove) into an unpublished snapshot
  /// derived from `current`, lint-gating the document against the
  /// session's schema — same diagnostics contract as compile_swap. The
  /// cutover is run-atomic like a pipeline swap: in-flight segments
  /// finish under the old cleaner, the next segment uses the new one.
  std::function<Result<std::shared_ptr<PlanSnapshot>>(
      const PlanSnapshot& current, const Json& params, Json* diagnostics)>
      compile_cleaner;
  /// Scenario vocabulary for linting swap_pipeline {"scenario": ...}
  /// requests (scenarios::ScenarioNames()); empty skips the check.
  std::vector<std::string> known_scenarios;
};

struct AdminOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port (see AdminServer::port()).
  uint16_t port = 0;
  int backlog = 8;
};

/// \brief The admin channel endpoint: one accept-loop thread plus one
/// blocking thread per connection (admin traffic is a handful of
/// concurrent CLIs, not a fan-out path — the data plane's reactor stays
/// untouched). Each AdminRequest frame carries one JSON object
/// {"id", "method", "params"} and is answered in order with one
/// AdminResponse frame {"id", "result"} or {"id", "error": {"code",
/// "message", "diagnostics"?}}.
///
/// Locking: `mu_` (kLockRankAdmin) only guards the connection registry
/// and lifecycle flags, and is never held while calling into the
/// PollutionServer — its rank sits *above* the registry lock purely so
/// the rank checker would catch a future inversion.
class AdminServer {
 public:
  /// `server` and `metrics` are borrowed, not owned; `metrics` may be
  /// null (get_metrics then reports an error).
  AdminServer(PollutionServer* server, obs::MetricRegistry* metrics,
              AdminOptions options = {}, AdminHooks hooks = {});
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// \brief Binds, listens, and spawns the accept thread.
  Status Start() EXCLUDES(mu_);

  /// \brief Stops accepting, wakes every blocked connection read, and
  /// joins all threads. Idempotent.
  void Stop() EXCLUDES(mu_);

  /// \brief The actually bound port (differs from options.port when 0).
  uint16_t port() const { return port_; }

  /// \brief Dispatches one request document exactly as a wire request
  /// would be (lint gate included) and returns the full response
  /// object. Public for in-process tests and embedders.
  Json Handle(const Json& request);

 private:
  struct AdminConn {
    UniqueFd fd;
    std::thread thread;
  };

  void AcceptLoop() EXCLUDES(mu_);
  void ServeConn(AdminConn* conn) EXCLUDES(mu_);

  Json Dispatch(const std::string& method, const Json& params);
  Json DoListSessions();
  Json DoGetConfig(const Json& params);
  Json DoSwapPipeline(const Json& params);
  Json DoSetRate(const Json& params);
  Json DoStopSession(const Json& params);
  Json DoCreateSession(const Json& params);
  Json DoGetMetrics();
  Json DoSetCleaner(const Json& params);

  PollutionServer* const server_;
  obs::MetricRegistry* const metrics_;
  const AdminOptions options_;
  const AdminHooks hooks_;

  UniqueFd listen_fd_;
  WakePipe wake_;
  uint16_t port_ = 0;

  /// Rank 5: above every other lock in the process — never held across
  /// PollutionServer or metrics calls.
  mutable Mutex mu_{kLockRankAdmin};
  bool started_ GUARDED_BY(mu_) = false;
  bool stopping_ GUARDED_BY(mu_) = false;
  std::vector<std::unique_ptr<AdminConn>> conns_ GUARDED_BY(mu_);

  std::thread accept_thread_;
};

/// \brief Blocking admin-channel client: one connection, sequential
/// Call()s with auto-assigned numeric ids.
class AdminClient {
 public:
  static Result<std::unique_ptr<AdminClient>> Connect(const std::string& host,
                                                      uint16_t port);

  /// \brief Sends {"id", "method", "params"} and returns the full
  /// response object (the caller inspects "result" vs "error"); IOError
  /// only for transport failures or a response id mismatch.
  Result<Json> Call(const std::string& method, const Json& params);

 private:
  AdminClient(UniqueFd fd, std::string peer)
      : fd_(std::move(fd)), peer_(std::move(peer)) {}

  UniqueFd fd_;
  std::string peer_;
  FrameDecoder decoder_;
  int64_t next_id_ = 1;
};

}  // namespace net
}  // namespace icewafl

#endif  // ICEWAFL_NET_ADMIN_H_
