#include "net/wire.h"

#include <cstring>

namespace icewafl {
namespace net {

namespace {

constexpr int kMaxVarintBytes = 10;

}  // namespace

void AppendVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void AppendFixed64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

Result<uint8_t> ByteReader::U8() {
  if (pos_ >= size_) return Status::ParseError("wire: truncated byte");
  return data_[pos_++];
}

Result<uint64_t> ByteReader::Fixed64() {
  if (size_ - pos_ < 8) return Status::ParseError("wire: truncated fixed64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<uint64_t> ByteReader::Varint() {
  uint64_t v = 0;
  for (int i = 0; i < kMaxVarintBytes; ++i) {
    if (pos_ >= size_) return Status::ParseError("wire: truncated varint");
    const uint8_t byte = data_[pos_++];
    // The 10th byte may only carry the final bit of a 64-bit value.
    if (i == kMaxVarintBytes - 1 && (byte & 0xFE) != 0) {
      return Status::ParseError("wire: varint overflows 64 bits");
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << (7 * i);
    if ((byte & 0x80) == 0) {
      // A terminating byte of 0x00 after at least one continuation byte
      // is an overlong (non-minimal) encoding — e.g. 0x80 0x00 for 0 —
      // and must be rejected, or the same value has many wire spellings.
      if (i > 0 && byte == 0) {
        return Status::ParseError("wire: non-canonical varint");
      }
      return v;
    }
  }
  return Status::ParseError("wire: varint too long");
}

Result<std::string> ByteReader::Bytes(size_t n) {
  if (size_ - pos_ < n) return Status::ParseError("wire: truncated bytes");
  std::string out(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return out;
}

Status ByteReader::ReadRaw(void* dst, size_t n) {
  if (size_ - pos_ < n) return Status::ParseError("wire: truncated bytes");
  if (n == 0) return Status::OK();  // dst may be null for an empty span
  std::memcpy(dst, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

Result<ByteReader> ByteReader::SubReader(size_t n) {
  if (size_ - pos_ < n) {
    return Status::ParseError("wire: sub-blob length exceeds payload");
  }
  ByteReader sub(data_ + pos_, n);
  pos_ += n;
  return sub;
}

Status ByteReader::ExpectEnd() const {
  if (pos_ != size_) {
    return Status::ParseError("wire: " + std::to_string(size_ - pos_) +
                              " trailing payload byte(s)");
  }
  return Status::OK();
}

void AppendFrame(uint8_t type, const std::string& payload, std::string* out) {
  out->push_back(static_cast<char>(type));
  AppendVarint(payload.size(), out);
  out->append(payload);
}

std::string EncodeSchemaPayload(const Schema& schema) {
  std::string out;
  AppendVarint(schema.num_attributes(), &out);
  for (const Attribute& attr : schema.attributes()) {
    AppendVarint(attr.name.size(), &out);
    out.append(attr.name);
    out.push_back(static_cast<char>(attr.type));
  }
  AppendVarint(schema.timestamp_index(), &out);
  return out;
}

namespace {

void AppendValue(const Value& v, std::string* out) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      out->push_back(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt64:
      AppendFixed64(static_cast<uint64_t>(v.AsInt64()), out);
      break;
    case ValueType::kDouble: {
      uint64_t bits = 0;
      const double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      AppendFixed64(bits, out);
      break;
    }
    case ValueType::kString: {
      const std::string& s = v.AsString();
      AppendVarint(s.size(), out);
      out->append(s);
      break;
    }
  }
}

Result<Value> ReadValue(ByteReader* reader) {
  ICEWAFL_ASSIGN_OR_RETURN(uint8_t tag, reader->U8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      ICEWAFL_ASSIGN_OR_RETURN(uint8_t b, reader->U8());
      if (b > 1) return Status::ParseError("wire: bool byte not 0/1");
      return Value(b == 1);
    }
    case ValueType::kInt64: {
      ICEWAFL_ASSIGN_OR_RETURN(uint64_t bits, reader->Fixed64());
      return Value(static_cast<int64_t>(bits));
    }
    case ValueType::kDouble: {
      ICEWAFL_ASSIGN_OR_RETURN(uint64_t bits, reader->Fixed64());
      double d = 0;
      std::memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case ValueType::kString: {
      ICEWAFL_ASSIGN_OR_RETURN(uint64_t len, reader->Varint());
      if (len > reader->remaining()) {
        return Status::ParseError("wire: string length exceeds payload");
      }
      ICEWAFL_ASSIGN_OR_RETURN(std::string s,
                               reader->Bytes(static_cast<size_t>(len)));
      return Value(std::move(s));
    }
  }
  return Status::ParseError("wire: unknown value tag " + std::to_string(tag));
}

/// Appends `n` 64-bit words as little-endian fixed64s — a single blit
/// on little-endian hosts, which is what "serialize straight from the
/// column buffers" buys on the wire bench.
void AppendFixed64Span(const void* data, size_t n, std::string* out) {
  if (n == 0) return;  // data may be null for an empty span
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  out->append(static_cast<const char*>(data), n * 8);
#else
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = 0;
    std::memcpy(&v, p + i * 8, 8);
    AppendFixed64(v, out);
  }
#endif
}

/// Inverse of AppendFixed64Span.
Status ReadFixed64Span(ByteReader* reader, void* dst, size_t n) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  return reader->ReadRaw(dst, n * 8);
#else
  uint8_t* p = static_cast<uint8_t*>(dst);
  for (size_t i = 0; i < n; ++i) {
    ICEWAFL_ASSIGN_OR_RETURN(uint64_t v, reader->Fixed64());
    std::memcpy(p + i * 8, &v, 8);
  }
  return Status::OK();
#endif
}

}  // namespace

std::string EncodeTuplePayload(const Tuple& tuple) {
  std::string out;
  AppendFixed64(tuple.id(), &out);
  AppendFixed64(static_cast<uint64_t>(tuple.event_time()), &out);
  AppendFixed64(static_cast<uint64_t>(tuple.arrival_time()), &out);
  AppendVarint(ZigzagEncode(tuple.substream()), &out);
  AppendVarint(tuple.num_values(), &out);
  for (const Value& v : tuple.values()) AppendValue(v, &out);
  return out;
}

std::string EncodeBatchPayload(const Batch& batch) {
  std::string out;
  const size_t rows = batch.rows();
  AppendVarint(rows, &out);
  AppendFixed64Span(batch.ids(), rows, &out);
  AppendFixed64Span(batch.event_times(), rows, &out);
  AppendFixed64Span(batch.arrival_times(), rows, &out);
  const int32_t* subs = batch.substreams();
  for (size_t r = 0; r < rows; ++r) AppendVarint(ZigzagEncode(subs[r]), &out);
  AppendVarint(batch.num_columns(), &out);
  const size_t vbytes = (rows + 7) / 8;
  std::string blob;
  for (size_t i = 0; i < batch.num_columns(); ++i) {
    const Column& col = batch.column(i);
    blob.clear();
    blob.push_back(static_cast<char>(col.declared_type()));
    const uint64_t* words = col.validity();
    for (size_t b = 0; b < vbytes; ++b) {
      blob.push_back(
          static_cast<char>((words[b >> 3] >> ((b & 7) * 8)) & 0xFF));
    }
    switch (col.declared_type()) {
      case ValueType::kBool:
        if (rows > 0) {
          blob.append(reinterpret_cast<const char*>(col.bools()), rows);
        }
        break;
      case ValueType::kInt64:
        AppendFixed64Span(col.int64s(), rows, &blob);
        break;
      case ValueType::kDouble:
        AppendFixed64Span(col.doubles(), rows, &blob);
        break;
      case ValueType::kString: {
        const std::string* strs = col.strings();
        for (size_t r = 0; r < rows; ++r) {
          if (!col.IsValid(r)) continue;
          AppendVarint(strs[r].size(), &blob);
          blob.append(strs[r]);
        }
        break;
      }
      case ValueType::kNull:
        break;
    }
    AppendVarint(col.divergent().size(), &blob);
    for (const std::pair<uint32_t, Value>& entry : col.divergent()) {
      AppendVarint(entry.first, &blob);
      AppendValue(entry.second, &blob);
    }
    AppendVarint(blob.size(), &out);
    out.append(blob);
  }
  return out;
}

std::string EncodeEndPayload(uint64_t total_tuples) {
  std::string out;
  AppendVarint(total_tuples, &out);
  return out;
}

std::string EncodeSubscribePayload(uint64_t version,
                                   const std::string& session_id,
                                   uint64_t capabilities) {
  std::string out;
  AppendVarint(version, &out);
  AppendVarint(session_id.size(), &out);
  out.append(session_id);
  // Appended only when set, so a capability-less hello is byte-identical
  // to the pre-capability wire form (old servers keep accepting it).
  if (capabilities != 0) AppendVarint(capabilities, &out);
  return out;
}

std::string EncodeSchemaFrame(const Schema& schema) {
  std::string out;
  AppendFrame(kFrameSchema, EncodeSchemaPayload(schema), &out);
  return out;
}

std::string EncodeTupleFrame(const Tuple& tuple) {
  std::string out;
  AppendFrame(kFrameTuple, EncodeTuplePayload(tuple), &out);
  return out;
}

std::string EncodeEndFrame(uint64_t total_tuples) {
  std::string out;
  AppendFrame(kFrameEnd, EncodeEndPayload(total_tuples), &out);
  return out;
}

std::string EncodeErrorFrame(const std::string& message) {
  std::string out;
  AppendFrame(kFrameError, message, &out);
  return out;
}

std::string EncodeSubscribeFrame(uint64_t version,
                                 const std::string& session_id,
                                 uint64_t capabilities) {
  std::string out;
  AppendFrame(kFrameSubscribe,
              EncodeSubscribePayload(version, session_id, capabilities),
              &out);
  return out;
}

std::string EncodeBatchFrame(const Batch& batch) {
  std::string out;
  AppendFrame(kFrameBatch, EncodeBatchPayload(batch), &out);
  return out;
}

Result<SchemaPtr> DecodeSchemaPayload(const std::string& payload) {
  ByteReader reader(payload);
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t count, reader.Varint());
  // Each attribute takes at least 2 bytes, so `count` is bounded by the
  // payload size — reject before reserving a hostile capacity.
  if (count > payload.size()) {
    return Status::ParseError("wire: schema attribute count exceeds payload");
  }
  std::vector<Attribute> attributes;
  attributes.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    ICEWAFL_ASSIGN_OR_RETURN(uint64_t name_len, reader.Varint());
    if (name_len > reader.remaining()) {
      return Status::ParseError("wire: attribute name length exceeds payload");
    }
    ICEWAFL_ASSIGN_OR_RETURN(std::string name,
                             reader.Bytes(static_cast<size_t>(name_len)));
    ICEWAFL_ASSIGN_OR_RETURN(uint8_t type, reader.U8());
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::ParseError("wire: unknown attribute type tag " +
                                std::to_string(type));
    }
    attributes.push_back({std::move(name), static_cast<ValueType>(type)});
  }
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t ts_index, reader.Varint());
  ICEWAFL_RETURN_NOT_OK(reader.ExpectEnd());
  if (ts_index >= attributes.size()) {
    return Status::ParseError("wire: timestamp index out of range");
  }
  // Schema::Make re-validates (int64 timestamp type, name collisions),
  // so a hostile schema frame fails with its error instead of crashing.
  const std::string ts_name = attributes[static_cast<size_t>(ts_index)].name;
  return Schema::Make(std::move(attributes), ts_name);
}

Result<Tuple> DecodeTuplePayload(const std::string& payload,
                                 const SchemaPtr& schema) {
  if (schema == nullptr) {
    return Status::InvalidArgument("wire: tuple decode requires a schema");
  }
  ByteReader reader(payload);
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t id, reader.Fixed64());
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t event_time, reader.Fixed64());
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t arrival_time, reader.Fixed64());
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t substream_zz, reader.Varint());
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t count, reader.Varint());
  if (count != schema->num_attributes()) {
    return Status::ParseError(
        "wire: tuple has " + std::to_string(count) +
        " values, schema expects " +
        std::to_string(schema->num_attributes()));
  }
  std::vector<Value> values;
  values.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    ICEWAFL_ASSIGN_OR_RETURN(Value v, ReadValue(&reader));
    values.push_back(std::move(v));
  }
  ICEWAFL_RETURN_NOT_OK(reader.ExpectEnd());
  Tuple tuple(schema, std::move(values));
  tuple.set_id(id);
  tuple.set_event_time(static_cast<Timestamp>(event_time));
  tuple.set_arrival_time(static_cast<Timestamp>(arrival_time));
  const int64_t substream = ZigzagDecode(substream_zz);
  if (substream < INT32_MIN || substream > INT32_MAX) {
    return Status::ParseError("wire: substream id out of range");
  }
  tuple.set_substream(static_cast<int>(substream));
  return tuple;
}

Result<Batch> DecodeBatchPayload(const std::string& payload,
                                 const SchemaPtr& schema) {
  if (schema == nullptr) {
    return Status::InvalidArgument("wire: batch decode requires a schema");
  }
  ByteReader reader(payload);
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t row_count, reader.Varint());
  // The id array alone costs 8 bytes per row, so `row_count` is bounded
  // by the payload size — reject before allocating a hostile capacity.
  if (row_count > payload.size() / 8) {
    return Status::ParseError("wire: batch row count exceeds payload");
  }
  const size_t rows = static_cast<size_t>(row_count);
  Batch batch = Batch::Empty(schema);
  batch.ResizeDefault(rows);
  ICEWAFL_RETURN_NOT_OK(ReadFixed64Span(&reader, batch.mutable_ids(), rows));
  ICEWAFL_RETURN_NOT_OK(
      ReadFixed64Span(&reader, batch.mutable_event_times(), rows));
  ICEWAFL_RETURN_NOT_OK(
      ReadFixed64Span(&reader, batch.mutable_arrival_times(), rows));
  int32_t* subs = batch.mutable_substreams();
  for (size_t r = 0; r < rows; ++r) {
    ICEWAFL_ASSIGN_OR_RETURN(uint64_t zz, reader.Varint());
    const int64_t substream = ZigzagDecode(zz);
    if (substream < INT32_MIN || substream > INT32_MAX) {
      return Status::ParseError("wire: substream id out of range");
    }
    subs[r] = static_cast<int32_t>(substream);
  }
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t col_count, reader.Varint());
  if (col_count != schema->num_attributes()) {
    return Status::ParseError(
        "wire: batch has " + std::to_string(col_count) +
        " columns, schema expects " +
        std::to_string(schema->num_attributes()));
  }
  const size_t vbytes = (rows + 7) / 8;
  for (size_t i = 0; i < schema->num_attributes(); ++i) {
    ICEWAFL_ASSIGN_OR_RETURN(uint64_t blob_len, reader.Varint());
    if (blob_len > reader.remaining()) {
      return Status::ParseError("wire: column blob length exceeds payload");
    }
    ICEWAFL_ASSIGN_OR_RETURN(ByteReader cr,
                             reader.SubReader(static_cast<size_t>(blob_len)));
    ICEWAFL_ASSIGN_OR_RETURN(uint8_t type_tag, cr.U8());
    const ValueType declared = schema->attribute(i).type;
    if (type_tag != static_cast<uint8_t>(declared)) {
      return Status::ParseError(
          "wire: column " + std::to_string(i) + " type tag " +
          std::to_string(type_tag) + " does not match the schema");
    }
    Column& col = batch.column(i);
    ICEWAFL_ASSIGN_OR_RETURN(std::string vbits, cr.Bytes(vbytes));
    if (rows % 8 != 0 &&
        (static_cast<uint8_t>(vbits[vbytes - 1]) >> (rows % 8)) != 0) {
      return Status::ParseError("wire: non-zero trailing validity bits");
    }
    uint64_t* words = col.mutable_validity();
    for (size_t b = 0; b < vbytes; ++b) {
      words[b >> 3] |= static_cast<uint64_t>(static_cast<uint8_t>(vbits[b]))
                       << ((b & 7) * 8);
    }
    switch (declared) {
      case ValueType::kBool: {
        ICEWAFL_RETURN_NOT_OK(cr.ReadRaw(col.bools(), rows));
        const uint8_t* bools = col.bools();
        for (size_t r = 0; r < rows; ++r) {
          if (bools[r] > 1) {
            return Status::ParseError("wire: bool byte not 0/1");
          }
          if (bools[r] != 0 && !col.IsValid(r)) {
            return Status::ParseError("wire: non-zero slot for invalid row");
          }
        }
        break;
      }
      case ValueType::kInt64: {
        ICEWAFL_RETURN_NOT_OK(ReadFixed64Span(&cr, col.int64s(), rows));
        const int64_t* ints = col.int64s();
        for (size_t r = 0; r < rows; ++r) {
          if (ints[r] != 0 && !col.IsValid(r)) {
            return Status::ParseError("wire: non-zero slot for invalid row");
          }
        }
        break;
      }
      case ValueType::kDouble: {
        ICEWAFL_RETURN_NOT_OK(ReadFixed64Span(&cr, col.doubles(), rows));
        const double* ds = col.doubles();
        for (size_t r = 0; r < rows; ++r) {
          uint64_t bits = 0;
          std::memcpy(&bits, &ds[r], sizeof(bits));
          if (bits != 0 && !col.IsValid(r)) {
            return Status::ParseError("wire: non-zero slot for invalid row");
          }
        }
        break;
      }
      case ValueType::kString: {
        std::string* strs = col.strings();
        for (size_t r = 0; r < rows; ++r) {
          if (!col.IsValid(r)) continue;
          ICEWAFL_ASSIGN_OR_RETURN(uint64_t len, cr.Varint());
          if (len > cr.remaining()) {
            return Status::ParseError("wire: string length exceeds payload");
          }
          ICEWAFL_ASSIGN_OR_RETURN(strs[r],
                                   cr.Bytes(static_cast<size_t>(len)));
        }
        break;
      }
      case ValueType::kNull: {
        // A null-typed column has no typed storage, so no row may claim
        // a valid typed slot.
        for (size_t b = 0; b < vbytes; ++b) {
          if (vbits[b] != 0) {
            return Status::ParseError("wire: valid row in null-typed column");
          }
        }
        break;
      }
    }
    ICEWAFL_ASSIGN_OR_RETURN(uint64_t divergent_count, cr.Varint());
    // Each divergent entry takes at least two bytes (row + value tag).
    if (divergent_count > cr.remaining()) {
      return Status::ParseError("wire: divergent count exceeds column blob");
    }
    std::vector<std::pair<uint32_t, Value>>& divergent =
        col.mutable_divergent();
    divergent.reserve(static_cast<size_t>(divergent_count));
    uint64_t prev = 0;
    for (uint64_t d = 0; d < divergent_count; ++d) {
      ICEWAFL_ASSIGN_OR_RETURN(uint64_t row, cr.Varint());
      if (row >= rows) {
        return Status::ParseError("wire: divergent row out of range");
      }
      if (d > 0 && row <= prev) {
        return Status::ParseError("wire: divergent rows not ascending");
      }
      prev = row;
      if (col.IsValid(static_cast<size_t>(row))) {
        return Status::ParseError("wire: divergent entry for valid row");
      }
      ICEWAFL_ASSIGN_OR_RETURN(Value v, ReadValue(&cr));
      if (v.is_null() || v.type() == declared) {
        return Status::ParseError("wire: divergent value does not diverge");
      }
      divergent.emplace_back(static_cast<uint32_t>(row), std::move(v));
    }
    ICEWAFL_RETURN_NOT_OK(cr.ExpectEnd());
  }
  ICEWAFL_RETURN_NOT_OK(reader.ExpectEnd());
  return batch;
}

Result<uint64_t> DecodeEndPayload(const std::string& payload) {
  ByteReader reader(payload);
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t total, reader.Varint());
  ICEWAFL_RETURN_NOT_OK(reader.ExpectEnd());
  return total;
}

Result<SubscribeRequest> DecodeSubscribePayload(const std::string& payload) {
  ByteReader reader(payload);
  SubscribeRequest request;
  ICEWAFL_ASSIGN_OR_RETURN(request.version, reader.Varint());
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t id_len, reader.Varint());
  if (id_len > kMaxSessionIdBytes) {
    return Status::ParseError("wire: session id of " + std::to_string(id_len) +
                              " bytes exceeds limit");
  }
  if (id_len > reader.remaining()) {
    return Status::ParseError("wire: session id length exceeds payload");
  }
  ICEWAFL_ASSIGN_OR_RETURN(request.session_id,
                           reader.Bytes(static_cast<size_t>(id_len)));
  // Optional capabilities varint (absent in capability-less hellos).
  if (reader.remaining() > 0) {
    ICEWAFL_ASSIGN_OR_RETURN(request.capabilities, reader.Varint());
  }
  ICEWAFL_RETURN_NOT_OK(reader.ExpectEnd());
  return request;
}

void FrameDecoder::Feed(const void* data, size_t n) {
  // Compact lazily: drop consumed prefix once it dominates the buffer.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(static_cast<const char*>(data), n);
}

Result<bool> FrameDecoder::Next(uint8_t* type, std::string* payload) {
  const size_t avail = buffer_.size() - consumed_;
  if (avail < 2) return false;  // type byte + at least one length byte
  const uint8_t frame_type = static_cast<uint8_t>(buffer_[consumed_]);
  // Decode the length varint by hand: a *truncated* varint means "wait
  // for more bytes", while an overlong/overflowing one can never become
  // valid and is reported as corruption immediately.
  uint64_t len = 0;
  size_t header = 1;  // bytes consumed after the type byte
  bool complete = false;
  for (int i = 0; i < kMaxVarintBytes; ++i) {
    if (header + 1 > avail) return false;  // truncated header
    const uint8_t byte =
        static_cast<uint8_t>(buffer_[consumed_ + header]);
    ++header;
    if (i == kMaxVarintBytes - 1 && (byte & 0xFE) != 0) {
      return Status::ParseError("wire: frame length varint overflows");
    }
    len |= static_cast<uint64_t>(byte & 0x7F) << (7 * i);
    if ((byte & 0x80) == 0) {
      // Same canonicality rule as ByteReader::Varint: an overlong
      // length encoding is corruption, not a length.
      if (i > 0 && byte == 0) {
        return Status::ParseError("wire: non-canonical varint");
      }
      complete = true;
      break;
    }
  }
  if (!complete) return Status::ParseError("wire: frame length varint too long");
  if (len > kMaxFramePayload) {
    return Status::ParseError("wire: frame payload of " + std::to_string(len) +
                              " bytes exceeds limit");
  }
  if (avail - header < len) return false;  // partial payload
  payload->assign(buffer_, consumed_ + header, static_cast<size_t>(len));
  *type = frame_type;
  consumed_ += header + static_cast<size_t>(len);
  return true;
}

}  // namespace net
}  // namespace icewafl
