#include "net/wire.h"

#include <cstring>

namespace icewafl {
namespace net {

namespace {

constexpr int kMaxVarintBytes = 10;

}  // namespace

void AppendVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void AppendFixed64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

Result<uint8_t> ByteReader::U8() {
  if (pos_ >= size_) return Status::ParseError("wire: truncated byte");
  return data_[pos_++];
}

Result<uint64_t> ByteReader::Fixed64() {
  if (size_ - pos_ < 8) return Status::ParseError("wire: truncated fixed64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<uint64_t> ByteReader::Varint() {
  uint64_t v = 0;
  for (int i = 0; i < kMaxVarintBytes; ++i) {
    if (pos_ >= size_) return Status::ParseError("wire: truncated varint");
    const uint8_t byte = data_[pos_++];
    // The 10th byte may only carry the final bit of a 64-bit value.
    if (i == kMaxVarintBytes - 1 && (byte & 0xFE) != 0) {
      return Status::ParseError("wire: varint overflows 64 bits");
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << (7 * i);
    if ((byte & 0x80) == 0) return v;
  }
  return Status::ParseError("wire: varint too long");
}

Result<std::string> ByteReader::Bytes(size_t n) {
  if (size_ - pos_ < n) return Status::ParseError("wire: truncated bytes");
  std::string out(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return out;
}

Status ByteReader::ExpectEnd() const {
  if (pos_ != size_) {
    return Status::ParseError("wire: " + std::to_string(size_ - pos_) +
                              " trailing payload byte(s)");
  }
  return Status::OK();
}

void AppendFrame(uint8_t type, const std::string& payload, std::string* out) {
  out->push_back(static_cast<char>(type));
  AppendVarint(payload.size(), out);
  out->append(payload);
}

std::string EncodeSchemaPayload(const Schema& schema) {
  std::string out;
  AppendVarint(schema.num_attributes(), &out);
  for (const Attribute& attr : schema.attributes()) {
    AppendVarint(attr.name.size(), &out);
    out.append(attr.name);
    out.push_back(static_cast<char>(attr.type));
  }
  AppendVarint(schema.timestamp_index(), &out);
  return out;
}

namespace {

void AppendValue(const Value& v, std::string* out) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      out->push_back(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt64:
      AppendFixed64(static_cast<uint64_t>(v.AsInt64()), out);
      break;
    case ValueType::kDouble: {
      uint64_t bits = 0;
      const double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      AppendFixed64(bits, out);
      break;
    }
    case ValueType::kString: {
      const std::string& s = v.AsString();
      AppendVarint(s.size(), out);
      out->append(s);
      break;
    }
  }
}

Result<Value> ReadValue(ByteReader* reader) {
  ICEWAFL_ASSIGN_OR_RETURN(uint8_t tag, reader->U8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      ICEWAFL_ASSIGN_OR_RETURN(uint8_t b, reader->U8());
      if (b > 1) return Status::ParseError("wire: bool byte not 0/1");
      return Value(b == 1);
    }
    case ValueType::kInt64: {
      ICEWAFL_ASSIGN_OR_RETURN(uint64_t bits, reader->Fixed64());
      return Value(static_cast<int64_t>(bits));
    }
    case ValueType::kDouble: {
      ICEWAFL_ASSIGN_OR_RETURN(uint64_t bits, reader->Fixed64());
      double d = 0;
      std::memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case ValueType::kString: {
      ICEWAFL_ASSIGN_OR_RETURN(uint64_t len, reader->Varint());
      if (len > reader->remaining()) {
        return Status::ParseError("wire: string length exceeds payload");
      }
      ICEWAFL_ASSIGN_OR_RETURN(std::string s,
                               reader->Bytes(static_cast<size_t>(len)));
      return Value(std::move(s));
    }
  }
  return Status::ParseError("wire: unknown value tag " + std::to_string(tag));
}

}  // namespace

std::string EncodeTuplePayload(const Tuple& tuple) {
  std::string out;
  AppendFixed64(tuple.id(), &out);
  AppendFixed64(static_cast<uint64_t>(tuple.event_time()), &out);
  AppendFixed64(static_cast<uint64_t>(tuple.arrival_time()), &out);
  AppendVarint(ZigzagEncode(tuple.substream()), &out);
  AppendVarint(tuple.num_values(), &out);
  for (const Value& v : tuple.values()) AppendValue(v, &out);
  return out;
}

std::string EncodeEndPayload(uint64_t total_tuples) {
  std::string out;
  AppendVarint(total_tuples, &out);
  return out;
}

std::string EncodeSubscribePayload(uint64_t version,
                                   const std::string& session_id) {
  std::string out;
  AppendVarint(version, &out);
  AppendVarint(session_id.size(), &out);
  out.append(session_id);
  return out;
}

std::string EncodeSchemaFrame(const Schema& schema) {
  std::string out;
  AppendFrame(kFrameSchema, EncodeSchemaPayload(schema), &out);
  return out;
}

std::string EncodeTupleFrame(const Tuple& tuple) {
  std::string out;
  AppendFrame(kFrameTuple, EncodeTuplePayload(tuple), &out);
  return out;
}

std::string EncodeEndFrame(uint64_t total_tuples) {
  std::string out;
  AppendFrame(kFrameEnd, EncodeEndPayload(total_tuples), &out);
  return out;
}

std::string EncodeErrorFrame(const std::string& message) {
  std::string out;
  AppendFrame(kFrameError, message, &out);
  return out;
}

std::string EncodeSubscribeFrame(uint64_t version,
                                 const std::string& session_id) {
  std::string out;
  AppendFrame(kFrameSubscribe, EncodeSubscribePayload(version, session_id),
              &out);
  return out;
}

Result<SchemaPtr> DecodeSchemaPayload(const std::string& payload) {
  ByteReader reader(payload);
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t count, reader.Varint());
  // Each attribute takes at least 2 bytes, so `count` is bounded by the
  // payload size — reject before reserving a hostile capacity.
  if (count > payload.size()) {
    return Status::ParseError("wire: schema attribute count exceeds payload");
  }
  std::vector<Attribute> attributes;
  attributes.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    ICEWAFL_ASSIGN_OR_RETURN(uint64_t name_len, reader.Varint());
    if (name_len > reader.remaining()) {
      return Status::ParseError("wire: attribute name length exceeds payload");
    }
    ICEWAFL_ASSIGN_OR_RETURN(std::string name,
                             reader.Bytes(static_cast<size_t>(name_len)));
    ICEWAFL_ASSIGN_OR_RETURN(uint8_t type, reader.U8());
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::ParseError("wire: unknown attribute type tag " +
                                std::to_string(type));
    }
    attributes.push_back({std::move(name), static_cast<ValueType>(type)});
  }
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t ts_index, reader.Varint());
  ICEWAFL_RETURN_NOT_OK(reader.ExpectEnd());
  if (ts_index >= attributes.size()) {
    return Status::ParseError("wire: timestamp index out of range");
  }
  // Schema::Make re-validates (int64 timestamp type, name collisions),
  // so a hostile schema frame fails with its error instead of crashing.
  const std::string ts_name = attributes[static_cast<size_t>(ts_index)].name;
  return Schema::Make(std::move(attributes), ts_name);
}

Result<Tuple> DecodeTuplePayload(const std::string& payload,
                                 const SchemaPtr& schema) {
  if (schema == nullptr) {
    return Status::InvalidArgument("wire: tuple decode requires a schema");
  }
  ByteReader reader(payload);
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t id, reader.Fixed64());
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t event_time, reader.Fixed64());
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t arrival_time, reader.Fixed64());
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t substream_zz, reader.Varint());
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t count, reader.Varint());
  if (count != schema->num_attributes()) {
    return Status::ParseError(
        "wire: tuple has " + std::to_string(count) +
        " values, schema expects " +
        std::to_string(schema->num_attributes()));
  }
  std::vector<Value> values;
  values.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    ICEWAFL_ASSIGN_OR_RETURN(Value v, ReadValue(&reader));
    values.push_back(std::move(v));
  }
  ICEWAFL_RETURN_NOT_OK(reader.ExpectEnd());
  Tuple tuple(schema, std::move(values));
  tuple.set_id(id);
  tuple.set_event_time(static_cast<Timestamp>(event_time));
  tuple.set_arrival_time(static_cast<Timestamp>(arrival_time));
  const int64_t substream = ZigzagDecode(substream_zz);
  if (substream < INT32_MIN || substream > INT32_MAX) {
    return Status::ParseError("wire: substream id out of range");
  }
  tuple.set_substream(static_cast<int>(substream));
  return tuple;
}

Result<uint64_t> DecodeEndPayload(const std::string& payload) {
  ByteReader reader(payload);
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t total, reader.Varint());
  ICEWAFL_RETURN_NOT_OK(reader.ExpectEnd());
  return total;
}

Result<SubscribeRequest> DecodeSubscribePayload(const std::string& payload) {
  ByteReader reader(payload);
  SubscribeRequest request;
  ICEWAFL_ASSIGN_OR_RETURN(request.version, reader.Varint());
  ICEWAFL_ASSIGN_OR_RETURN(uint64_t id_len, reader.Varint());
  if (id_len > kMaxSessionIdBytes) {
    return Status::ParseError("wire: session id of " + std::to_string(id_len) +
                              " bytes exceeds limit");
  }
  if (id_len > reader.remaining()) {
    return Status::ParseError("wire: session id length exceeds payload");
  }
  ICEWAFL_ASSIGN_OR_RETURN(request.session_id,
                           reader.Bytes(static_cast<size_t>(id_len)));
  ICEWAFL_RETURN_NOT_OK(reader.ExpectEnd());
  return request;
}

void FrameDecoder::Feed(const void* data, size_t n) {
  // Compact lazily: drop consumed prefix once it dominates the buffer.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(static_cast<const char*>(data), n);
}

Result<bool> FrameDecoder::Next(uint8_t* type, std::string* payload) {
  const size_t avail = buffer_.size() - consumed_;
  if (avail < 2) return false;  // type byte + at least one length byte
  const uint8_t frame_type = static_cast<uint8_t>(buffer_[consumed_]);
  // Decode the length varint by hand: a *truncated* varint means "wait
  // for more bytes", while an overlong/overflowing one can never become
  // valid and is reported as corruption immediately.
  uint64_t len = 0;
  size_t header = 1;  // bytes consumed after the type byte
  bool complete = false;
  for (int i = 0; i < kMaxVarintBytes; ++i) {
    if (header + 1 > avail) return false;  // truncated header
    const uint8_t byte =
        static_cast<uint8_t>(buffer_[consumed_ + header]);
    ++header;
    if (i == kMaxVarintBytes - 1 && (byte & 0xFE) != 0) {
      return Status::ParseError("wire: frame length varint overflows");
    }
    len |= static_cast<uint64_t>(byte & 0x7F) << (7 * i);
    if ((byte & 0x80) == 0) {
      complete = true;
      break;
    }
  }
  if (!complete) return Status::ParseError("wire: frame length varint too long");
  if (len > kMaxFramePayload) {
    return Status::ParseError("wire: frame payload of " + std::to_string(len) +
                              " bytes exceeds limit");
  }
  if (avail - header < len) return false;  // partial payload
  payload->assign(buffer_, consumed_ + header, static_cast<size_t>(len));
  *type = frame_type;
  consumed_ += header + static_cast<size_t>(len);
  return true;
}

}  // namespace net
}  // namespace icewafl
