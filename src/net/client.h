#ifndef ICEWAFL_NET_CLIENT_H_
#define ICEWAFL_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "net/socket.h"
#include "net/wire.h"
#include "stream/source.h"
#include "util/result.h"

namespace icewafl {
namespace net {

/// \brief TCP subscriber to a PollutionServer — a network-backed Source.
///
/// Connect() dials the server, sends the Subscribe hello (wire version
/// + session id), and performs the handshake (the server answers with
/// the session's Schema frame, or an Error frame for an unknown
/// session or version mismatch). After that the client is an ordinary
/// pull-based Source: Next() blocks for the next Tuple frame, returns
/// false at the End frame, and surfaces every abnormal condition — a
/// server-sent Error frame, a mid-stream disconnect, or a malformed
/// frame — as a Status. Every error status identifies the session and
/// the peer address, so a multi-tenant failure is attributable. One
/// client consumes exactly one run; it does not reconnect.
class StreamClient : public Source {
 public:
  /// \brief Dials host:port, subscribes to `session_id`, and completes
  /// the schema handshake. An empty session id subscribes to the
  /// server's sole session (single-session deployments).
  /// `capabilities` are kCap* bits advertised in the hello; pass
  /// kCapBatchFrames to receive columnar Batch frames (transparently
  /// unpacked — Next() still yields one Tuple at a time). The default
  /// advertises nothing, so the hello bytes match older clients.
  static Result<std::unique_ptr<StreamClient>> Connect(
      const std::string& host, uint16_t port,
      const std::string& session_id = "", uint64_t capabilities = 0);

  SchemaPtr schema() const override { return schema_; }

  /// \brief Produces the next streamed tuple; false at graceful end of
  /// stream. A disconnect before the End frame is an error, not an end.
  Result<bool> Next(Tuple* out) override;

  /// \brief Tuples received so far.
  uint64_t tuples_received() const { return tuples_received_; }

  /// \brief Total the server reported in its End frame (valid once
  /// Next() has returned false).
  uint64_t reported_total() const { return reported_total_; }

  /// \brief The session id this client subscribed with (possibly "").
  const std::string& session_id() const { return session_id_; }

  /// \brief The server address as "host:port".
  const std::string& peer() const { return peer_; }

 private:
  StreamClient(UniqueFd fd, SchemaPtr schema, std::string session_id,
               std::string peer)
      : fd_(std::move(fd)),
        schema_(std::move(schema)),
        session_id_(std::move(session_id)),
        peer_(std::move(peer)) {}

  /// Blocks until one complete frame is available (or the peer closes).
  static Status ReadFrame(int fd, FrameDecoder* decoder, uint8_t* type,
                          std::string* payload);

  /// "session '<id>' at <host>:<port>" (or "peer <host>:<port>" when
  /// no session id was given) — the prefix of every error status.
  std::string Context() const;

  UniqueFd fd_;
  SchemaPtr schema_;
  std::string session_id_;
  std::string peer_;
  FrameDecoder decoder_;
  /// kCap* bits sent in the hello; a Batch frame from the server is a
  /// protocol violation unless kCapBatchFrames is set here.
  uint64_t capabilities_ = 0;
  /// Rows of a decoded Batch frame not yet handed out by Next().
  std::deque<Tuple> pending_;
  bool finished_ = false;
  uint64_t tuples_received_ = 0;
  uint64_t reported_total_ = 0;
};

}  // namespace net
}  // namespace icewafl

#endif  // ICEWAFL_NET_CLIENT_H_
