#ifndef ICEWAFL_NET_CLIENT_H_
#define ICEWAFL_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/socket.h"
#include "net/wire.h"
#include "stream/source.h"
#include "util/result.h"

namespace icewafl {
namespace net {

/// \brief TCP subscriber to a PollutionServer — a network-backed Source.
///
/// Connect() dials the server and performs the handshake (the first
/// frame must be the stream's Schema). After that the client is an
/// ordinary pull-based Source: Next() blocks for the next Tuple frame,
/// returns false at the End frame, and surfaces every abnormal
/// condition — a server-sent Error frame, a mid-stream disconnect, or a
/// malformed frame — as a Status. One client consumes exactly one
/// session; it does not reconnect.
class StreamClient : public Source {
 public:
  /// \brief Dials host:port and completes the schema handshake.
  static Result<std::unique_ptr<StreamClient>> Connect(const std::string& host,
                                                       uint16_t port);

  SchemaPtr schema() const override { return schema_; }

  /// \brief Produces the next streamed tuple; false at graceful end of
  /// stream. A disconnect before the End frame is an error, not an end.
  Result<bool> Next(Tuple* out) override;

  /// \brief Tuples received so far.
  uint64_t tuples_received() const { return tuples_received_; }

  /// \brief Total the server reported in its End frame (valid once
  /// Next() has returned false).
  uint64_t reported_total() const { return reported_total_; }

 private:
  StreamClient(UniqueFd fd, SchemaPtr schema)
      : fd_(std::move(fd)), schema_(std::move(schema)) {}

  /// Blocks until one complete frame is available (or the peer closes).
  static Status ReadFrame(int fd, FrameDecoder* decoder, uint8_t* type,
                          std::string* payload);

  UniqueFd fd_;
  SchemaPtr schema_;
  FrameDecoder decoder_;
  bool finished_ = false;
  uint64_t tuples_received_ = 0;
  uint64_t reported_total_ = 0;
};

}  // namespace net
}  // namespace icewafl

#endif  // ICEWAFL_NET_CLIENT_H_
