#include "net/serve_config.h"

#include <cmath>

#include "net/wire.h"
#include "util/strings.h"

namespace icewafl {
namespace net {

namespace {

/// A present key of the wrong JSON type must fail loudly, not fall back
/// to the default — the lint flags it, so the parser must refuse it.
Status RequireType(const Json& json, const std::string& key, bool want_string,
                   const std::string& where) {
  if (!json.Has(key)) return Status::OK();
  ICEWAFL_ASSIGN_OR_RETURN(Json field, json.Get(key));
  const bool ok = want_string ? field.is_string() : field.is_number();
  if (!ok) {
    return Status::InvalidArgument("serve config: " + where + "\"" + key +
                                   "\" must be a " +
                                   (want_string ? "string" : "number"));
  }
  return Status::OK();
}

/// Parses one session entry. `where` is "" (legacy top-level form) or
/// "sessions[i]: " for error attribution; `max_runs_key` differs
/// between the two shapes ("max_sessions" legacy, "max_runs" v2).
Result<SessionConfig> ParseSession(const Json& json, const std::string& where,
                                   const std::string& max_runs_key) {
  for (const char* key : {"name", "scenario"}) {
    ICEWAFL_RETURN_NOT_OK(RequireType(json, key, /*want_string=*/true, where));
  }
  for (const std::string& key :
       {std::string("seed"), std::string("parallelism"),
        std::string("min_subscribers"), max_runs_key}) {
    ICEWAFL_RETURN_NOT_OK(RequireType(json, key, /*want_string=*/false, where));
  }
  SessionConfig session;
  session.scenario = json.GetString("scenario", "");
  if (session.scenario.empty()) {
    return Status::InvalidArgument("serve config: " + where +
                                   "missing \"scenario\"");
  }
  session.name = json.GetString("name", session.scenario);
  if (session.name.empty()) {
    return Status::InvalidArgument("serve config: " + where +
                                   "\"name\" must not be empty");
  }
  if (session.name.size() > kMaxSessionIdBytes) {
    return Status::InvalidArgument(
        "serve config: " + where + "\"name\" of " +
        std::to_string(session.name.size()) + " bytes exceeds the limit of " +
        std::to_string(kMaxSessionIdBytes));
  }
  // Mirrors lint code IW615: names travel in wire frames and metric
  // labels, so control characters are refused outright.
  for (const char ch : session.name) {
    const unsigned char byte = static_cast<unsigned char>(ch);
    if (byte < 0x20 || byte == 0x7f) {
      return Status::InvalidArgument(
          "serve config: " + where +
          "\"name\" must not contain control characters");
    }
  }
  const int64_t seed =
      json.GetInt("seed", static_cast<int64_t>(session.seed));
  if (seed < 0) {
    return Status::InvalidArgument("serve config: " + where +
                                   "seed must be >= 0");
  }
  session.seed = static_cast<uint64_t>(seed);
  session.parallelism =
      static_cast<int>(json.GetInt("parallelism", session.parallelism));
  if (session.parallelism < 1) {
    return Status::InvalidArgument("serve config: " + where +
                                   "parallelism must be >= 1");
  }
  session.min_subscribers = static_cast<int>(
      json.GetInt("min_subscribers", session.min_subscribers));
  if (session.min_subscribers < 1) {
    return Status::InvalidArgument("serve config: " + where +
                                   "min_subscribers must be >= 1");
  }
  const int64_t max_runs =
      json.GetInt(max_runs_key, static_cast<int64_t>(session.max_runs));
  if (max_runs < 0) {
    return Status::InvalidArgument("serve config: " + where + max_runs_key +
                                   " must be >= 0");
  }
  session.max_runs = static_cast<uint64_t>(max_runs);
  if (json.Has("cleaner")) {
    ICEWAFL_ASSIGN_OR_RETURN(Json cleaner, json.Get("cleaner"));
    if (!cleaner.is_object() && !cleaner.is_null()) {
      return Status::InvalidArgument(
          "serve config: " + where +
          "\"cleaner\" must be a cleaning document object");
    }
    session.cleaner = std::move(cleaner);
  }
  return session;
}

}  // namespace

SessionOptions SessionConfig::ToSessionOptions() const {
  SessionOptions options;
  options.min_subscribers = min_subscribers;
  options.max_runs = max_runs;
  return options;
}

Result<ServeConfig> ServeConfig::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::ParseError("serve config must be a JSON object");
  }
  const bool has_scenario = json.Has("scenario");
  const bool has_sessions = json.Has("sessions");
  if (has_scenario && has_sessions) {
    return Status::InvalidArgument(
        "serve config: use either a top-level \"scenario\" or a "
        "\"sessions\" array, not both");
  }
  if (!has_scenario && !has_sessions) {
    return Status::InvalidArgument(
        "serve config: missing \"scenario\" (or a \"sessions\" array)");
  }
  for (const char* key : {"host", "slow_consumer"}) {
    ICEWAFL_RETURN_NOT_OK(RequireType(json, key, /*want_string=*/true, ""));
  }
  for (const char* key : {"port", "admin_port", "workers", "queue_capacity"}) {
    ICEWAFL_RETURN_NOT_OK(RequireType(json, key, /*want_string=*/false, ""));
  }
  ServeConfig config;
  if (has_sessions) {
    ICEWAFL_ASSIGN_OR_RETURN(Json sessions, json.Get("sessions"));
    if (!sessions.is_array() || sessions.items().empty()) {
      return Status::InvalidArgument(
          "serve config: \"sessions\" must be a non-empty array");
    }
    for (size_t i = 0; i < sessions.items().size(); ++i) {
      const Json& entry = sessions.items()[i];
      const std::string where = "sessions[" + std::to_string(i) + "]: ";
      if (!entry.is_object()) {
        return Status::InvalidArgument("serve config: " + where +
                                       "entry must be an object");
      }
      ICEWAFL_ASSIGN_OR_RETURN(SessionConfig session,
                               ParseSession(entry, where, "max_runs"));
      for (const SessionConfig& prior : config.sessions) {
        if (prior.name == session.name) {
          return Status::InvalidArgument("serve config: " + where +
                                         "duplicate session name '" +
                                         session.name + "'");
        }
      }
      config.sessions.push_back(std::move(session));
    }
  } else {
    ICEWAFL_ASSIGN_OR_RETURN(SessionConfig session,
                             ParseSession(json, "", "max_sessions"));
    config.sessions.push_back(std::move(session));
  }
  config.host = json.GetString("host", config.host);
  const int64_t port = json.GetInt("port", 0);
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("serve config: port " +
                                   std::to_string(port) +
                                   " outside [0, 65535]");
  }
  config.port = static_cast<uint16_t>(port);
  if (json.Has("admin_port")) {
    const int64_t admin_port = json.GetInt("admin_port", -1);
    if (admin_port < 0 || admin_port > 65535) {
      return Status::InvalidArgument("serve config: admin_port " +
                                     std::to_string(admin_port) +
                                     " outside [0, 65535]");
    }
    config.admin_port = static_cast<int>(admin_port);
  }
  // Mirrors lint code IW609: a positive integer, rejected (not silently
  // truncated) when fractional, and bounded by the int pool size.
  if (json.Has("workers")) {
    ICEWAFL_ASSIGN_OR_RETURN(Json workers, json.Get("workers"));
    const double value = workers.AsDouble();
    if (value != std::floor(value)) {
      return Status::InvalidArgument(
          "serve config: workers must be a positive integer (got " +
          FormatDouble(value) + ", which would truncate)");
    }
    if (value < 1.0) {
      return Status::InvalidArgument("serve config: workers must be >= 1");
    }
    if (value > 2147483647.0) {
      return Status::InvalidArgument(
          "serve config: workers must fit a 32-bit integer (got " +
          FormatDouble(value) + ")");
    }
    config.workers = static_cast<int>(workers.AsInt64());
  }
  const int64_t capacity = json.GetInt(
      "queue_capacity", static_cast<int64_t>(config.queue_capacity));
  if (capacity < 1) {
    return Status::InvalidArgument(
        "serve config: queue_capacity must be >= 1");
  }
  config.queue_capacity = static_cast<size_t>(capacity);
  const std::string policy = json.GetString(
      "slow_consumer", SlowConsumerPolicyName(config.slow_consumer));
  ICEWAFL_ASSIGN_OR_RETURN(config.slow_consumer,
                           SlowConsumerPolicyFromName(policy));
  return config;
}

Json ServeConfig::ToJson() const {
  Json json = Json::MakeObject();
  Json entries = Json::MakeArray();
  for (const SessionConfig& session : sessions) {
    Json entry = Json::MakeObject();
    entry.Set("name", Json(session.name));
    entry.Set("scenario", Json(session.scenario));
    entry.Set("seed", Json(static_cast<int64_t>(session.seed)));
    entry.Set("parallelism", Json(static_cast<int64_t>(session.parallelism)));
    entry.Set("min_subscribers",
              Json(static_cast<int64_t>(session.min_subscribers)));
    entry.Set("max_runs", Json(static_cast<int64_t>(session.max_runs)));
    if (!session.cleaner.is_null()) entry.Set("cleaner", session.cleaner);
    entries.Append(std::move(entry));
  }
  json.Set("sessions", std::move(entries));
  json.Set("host", Json(host));
  json.Set("port", Json(static_cast<int64_t>(port)));
  if (admin_port >= 0) {
    json.Set("admin_port", Json(static_cast<int64_t>(admin_port)));
  }
  json.Set("workers", Json(static_cast<int64_t>(workers)));
  json.Set("queue_capacity", Json(static_cast<int64_t>(queue_capacity)));
  json.Set("slow_consumer",
           Json(std::string(SlowConsumerPolicyName(slow_consumer))));
  return json;
}

ServerOptions ServeConfig::ToServerOptions(
    obs::MetricRegistry* metrics) const {
  ServerOptions options;
  options.host = host;
  options.port = port;
  options.workers = workers;
  options.queue_capacity = queue_capacity;
  options.slow_consumer = slow_consumer;
  options.metrics = metrics;
  return options;
}

}  // namespace net
}  // namespace icewafl
