#include "net/serve_config.h"

namespace icewafl {
namespace net {

namespace {

/// A present key of the wrong JSON type must fail loudly, not fall back
/// to the default — the lint flags it, so the parser must refuse it.
Status RequireType(const Json& json, const std::string& key, bool want_string) {
  if (!json.Has(key)) return Status::OK();
  ICEWAFL_ASSIGN_OR_RETURN(Json field, json.Get(key));
  const bool ok = want_string ? field.is_string() : field.is_number();
  if (!ok) {
    return Status::InvalidArgument("serve config: \"" + key + "\" must be a " +
                                   (want_string ? "string" : "number"));
  }
  return Status::OK();
}

}  // namespace

Result<ServeConfig> ServeConfig::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::ParseError("serve config must be a JSON object");
  }
  for (const char* key : {"scenario", "host", "slow_consumer"}) {
    ICEWAFL_RETURN_NOT_OK(RequireType(json, key, /*want_string=*/true));
  }
  for (const char* key : {"port", "seed", "parallelism", "min_subscribers",
                          "max_sessions", "queue_capacity"}) {
    ICEWAFL_RETURN_NOT_OK(RequireType(json, key, /*want_string=*/false));
  }
  ServeConfig config;
  config.scenario = json.GetString("scenario", "");
  if (config.scenario.empty()) {
    return Status::InvalidArgument("serve config: missing \"scenario\"");
  }
  config.host = json.GetString("host", config.host);
  const int64_t port = json.GetInt("port", 0);
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("serve config: port " +
                                   std::to_string(port) +
                                   " outside [0, 65535]");
  }
  config.port = static_cast<uint16_t>(port);
  const int64_t seed = json.GetInt("seed", static_cast<int64_t>(config.seed));
  if (seed < 0) {
    return Status::InvalidArgument("serve config: seed must be >= 0");
  }
  config.seed = static_cast<uint64_t>(seed);
  config.parallelism =
      static_cast<int>(json.GetInt("parallelism", config.parallelism));
  if (config.parallelism < 1) {
    return Status::InvalidArgument("serve config: parallelism must be >= 1");
  }
  config.min_subscribers =
      static_cast<int>(json.GetInt("min_subscribers", config.min_subscribers));
  if (config.min_subscribers < 1) {
    return Status::InvalidArgument(
        "serve config: min_subscribers must be >= 1");
  }
  const int64_t max_sessions =
      json.GetInt("max_sessions", static_cast<int64_t>(config.max_sessions));
  if (max_sessions < 0) {
    return Status::InvalidArgument("serve config: max_sessions must be >= 0");
  }
  config.max_sessions = static_cast<uint64_t>(max_sessions);
  const int64_t capacity =
      json.GetInt("queue_capacity", static_cast<int64_t>(config.queue_capacity));
  if (capacity < 1) {
    return Status::InvalidArgument(
        "serve config: queue_capacity must be >= 1");
  }
  config.queue_capacity = static_cast<size_t>(capacity);
  const std::string policy =
      json.GetString("slow_consumer", SlowConsumerPolicyName(config.slow_consumer));
  ICEWAFL_ASSIGN_OR_RETURN(config.slow_consumer,
                           SlowConsumerPolicyFromName(policy));
  return config;
}

Json ServeConfig::ToJson() const {
  Json json = Json::MakeObject();
  json.Set("scenario", Json(scenario));
  json.Set("host", Json(host));
  json.Set("port", Json(static_cast<int64_t>(port)));
  json.Set("seed", Json(static_cast<int64_t>(seed)));
  json.Set("parallelism", Json(static_cast<int64_t>(parallelism)));
  json.Set("min_subscribers", Json(static_cast<int64_t>(min_subscribers)));
  json.Set("max_sessions", Json(static_cast<int64_t>(max_sessions)));
  json.Set("queue_capacity", Json(static_cast<int64_t>(queue_capacity)));
  json.Set("slow_consumer", Json(std::string(SlowConsumerPolicyName(slow_consumer))));
  return json;
}

ServerOptions ServeConfig::ToServerOptions(obs::MetricRegistry* metrics) const {
  ServerOptions options;
  options.host = host;
  options.port = port;
  options.min_subscribers = min_subscribers;
  options.max_sessions = max_sessions;
  options.queue_capacity = queue_capacity;
  options.slow_consumer = slow_consumer;
  options.metrics = metrics;
  return options;
}

}  // namespace net
}  // namespace icewafl
