#include "io/csv.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace icewafl {

Result<std::vector<std::vector<std::string>>> ParseCsvText(
    const std::string& text, const CsvOptions& options) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    if (c == '"' && field.empty() && !field_started) {
      in_quotes = true;
      field_started = true;
    } else if (c == options.delimiter) {
      end_field();
    } else if (c == '\n') {
      end_record();
    } else if (c == '\r') {
      // Swallow \r of \r\n; a bare \r also terminates the record.
      if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
      end_record();
    } else {
      field.push_back(c);
      field_started = true;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  // Final record without trailing newline.
  if (field_started || !field.empty() || !record.empty()) end_record();
  return records;
}

std::string EscapeCsvField(const std::string& field, char delimiter) {
  bool needs_quote = false;
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string ToCsvString(const SchemaPtr& schema, const TupleVector& tuples,
                        const CsvOptions& options) {
  std::string out;
  if (options.header) {
    for (size_t i = 0; i < schema->num_attributes(); ++i) {
      if (i > 0) out.push_back(options.delimiter);
      out += EscapeCsvField(schema->attribute(i).name, options.delimiter);
    }
    out.push_back('\n');
  }
  for (const Tuple& t : tuples) {
    for (size_t i = 0; i < t.num_values(); ++i) {
      if (i > 0) out.push_back(options.delimiter);
      out += EscapeCsvField(t.value(i).ToString(options.null_repr),
                            options.delimiter);
    }
    out.push_back('\n');
  }
  return out;
}

namespace {

Result<Value> ConvertField(const std::string& field, ValueType type,
                           const std::string& null_repr) {
  if (field == null_repr) return Value::Null();
  switch (type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      const std::string lower = ToLower(field);
      if (lower == "true" || lower == "1") return Value(true);
      if (lower == "false" || lower == "0") return Value(false);
      return Status::ParseError("invalid bool field: '" + field + "'");
    }
    case ValueType::kInt64: {
      ICEWAFL_ASSIGN_OR_RETURN(int64_t v, ParseInt64(field));
      return Value(v);
    }
    case ValueType::kDouble: {
      ICEWAFL_ASSIGN_OR_RETURN(double v, ParseDouble(field));
      return Value(v);
    }
    case ValueType::kString:
      return Value(field);
  }
  return Status::Internal("corrupt value type");
}

}  // namespace

Result<TupleVector> FromCsvString(const SchemaPtr& schema,
                                  const std::string& text,
                                  const CsvOptions& options) {
  ICEWAFL_ASSIGN_OR_RETURN(auto records, ParseCsvText(text, options));
  size_t start = 0;
  if (options.header) {
    if (records.empty()) {
      return Status::ParseError("missing CSV header");
    }
    const auto names = schema->Names();
    if (records[0] != std::vector<std::string>(names.begin(), names.end())) {
      return Status::ParseError("CSV header does not match schema: got '" +
                                Join(records[0], ",") + "'");
    }
    start = 1;
  }
  TupleVector tuples;
  tuples.reserve(records.size() - start);
  for (size_t r = start; r < records.size(); ++r) {
    const auto& record = records[r];
    if (record.size() != schema->num_attributes()) {
      return Status::ParseError(
          "CSV record " + std::to_string(r) + " has " +
          std::to_string(record.size()) + " fields, schema expects " +
          std::to_string(schema->num_attributes()));
    }
    std::vector<Value> values;
    values.reserve(record.size());
    for (size_t i = 0; i < record.size(); ++i) {
      ICEWAFL_ASSIGN_OR_RETURN(
          Value v, ConvertField(record[i], schema->attribute(i).type,
                                options.null_repr));
      values.push_back(std::move(v));
    }
    tuples.emplace_back(schema, std::move(values));
  }
  return tuples;
}

Status WriteCsvFile(const SchemaPtr& schema, const TupleVector& tuples,
                    const std::string& path, const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: '" + path + "'");
  out << ToCsvString(schema, tuples, options);
  out.flush();
  if (!out) return Status::IOError("write failed: '" + path + "'");
  return Status::OK();
}

Result<TupleVector> ReadCsvFile(const SchemaPtr& schema,
                                const std::string& path,
                                const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for reading: '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromCsvString(schema, buf.str(), options);
}

CsvSource::CsvSource(SchemaPtr schema, std::string path, CsvOptions options)
    : schema_(std::move(schema)),
      path_(std::move(path)),
      options_(std::move(options)) {}

Result<bool> CsvSource::ReadRecord(std::vector<std::string>* fields) {
  fields->clear();
  std::string field;
  bool in_quotes = false;
  bool any_char = false;
  int c;
  while ((c = input_->get()) != EOF) {
    any_char = true;
    const char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        if (input_->peek() == '"') {
          field.push_back('"');
          input_->get();
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(ch);
      }
      continue;
    }
    if (ch == '"' && field.empty()) {
      in_quotes = true;
    } else if (ch == options_.delimiter) {
      fields->push_back(std::move(field));
      field.clear();
    } else if (ch == '\n') {
      fields->push_back(std::move(field));
      return true;
    } else if (ch == '\r') {
      if (input_->peek() == '\n') input_->get();
      fields->push_back(std::move(field));
      return true;
    } else {
      field.push_back(ch);
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field in '" + path_ +
                              "'");
  }
  if (!any_char) return false;  // clean EOF
  fields->push_back(std::move(field));
  return true;  // final record without trailing newline
}

Result<bool> CsvSource::Next(Tuple* out) {
  if (input_ == nullptr) {
    auto file = std::make_unique<std::ifstream>(path_, std::ios::binary);
    if (!*file) {
      return Status::IOError("cannot open for reading: '" + path_ + "'");
    }
    input_ = std::move(file);
  }
  std::vector<std::string> fields;
  if (options_.header && !header_checked_) {
    ICEWAFL_ASSIGN_OR_RETURN(bool has_header, ReadRecord(&fields));
    if (!has_header) return Status::ParseError("missing CSV header");
    const auto names = schema_->Names();
    if (fields != std::vector<std::string>(names.begin(), names.end())) {
      return Status::ParseError("CSV header does not match schema: got '" +
                                Join(fields, ",") + "'");
    }
    header_checked_ = true;
  }
  ICEWAFL_ASSIGN_OR_RETURN(bool more, ReadRecord(&fields));
  if (!more) return false;
  ++record_index_;
  if (fields.size() != schema_->num_attributes()) {
    return Status::ParseError(
        "CSV record " + std::to_string(record_index_) + " has " +
        std::to_string(fields.size()) + " fields, schema expects " +
        std::to_string(schema_->num_attributes()));
  }
  std::vector<Value> values;
  values.reserve(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    ICEWAFL_ASSIGN_OR_RETURN(
        Value v, ConvertField(fields[i], schema_->attribute(i).type,
                              options_.null_repr));
    values.push_back(std::move(v));
  }
  *out = Tuple(schema_, std::move(values));
  return true;
}

Status CsvSource::Reset() {
  input_.reset();
  header_checked_ = false;
  record_index_ = 0;
  return Status::OK();
}

CsvSink::CsvSink(SchemaPtr schema, std::ostream* out, CsvOptions options)
    : schema_(std::move(schema)), out_(out), options_(std::move(options)) {}

Status CsvSink::Write(const Tuple& tuple) {
  if (options_.header && !header_written_) {
    for (size_t i = 0; i < schema_->num_attributes(); ++i) {
      if (i > 0) out_->put(options_.delimiter);
      *out_ << EscapeCsvField(schema_->attribute(i).name, options_.delimiter);
    }
    out_->put('\n');
    header_written_ = true;
  }
  for (size_t i = 0; i < tuple.num_values(); ++i) {
    if (i > 0) out_->put(options_.delimiter);
    *out_ << EscapeCsvField(tuple.value(i).ToString(options_.null_repr),
                            options_.delimiter);
  }
  out_->put('\n');
  if (!*out_) return Status::IOError("CSV sink write failed");
  return Status::OK();
}

Status CsvSink::Flush() {
  out_->flush();
  if (!*out_) return Status::IOError("CSV sink flush failed");
  return Status::OK();
}

}  // namespace icewafl
