#include "io/schema_json.h"

#include <fstream>
#include <sstream>

namespace icewafl {

Result<SchemaPtr> SchemaFromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::ParseError("schema description must be a JSON object");
  }
  ICEWAFL_ASSIGN_OR_RETURN(Json attrs, json.Get("attributes"));
  if (!attrs.is_array()) {
    return Status::TypeError("'attributes' must be an array");
  }
  std::vector<Attribute> attributes;
  attributes.reserve(attrs.size());
  for (const Json& a : attrs.items()) {
    if (!a.is_object()) {
      return Status::TypeError("each attribute must be an object");
    }
    const std::string name = a.GetString("name", "");
    ICEWAFL_ASSIGN_OR_RETURN(ValueType type,
                             ValueTypeFromName(a.GetString("type", "double")));
    attributes.push_back({name, type});
  }
  const std::string timestamp = json.GetString("timestamp", "");
  if (timestamp.empty()) {
    return Status::InvalidArgument("schema needs a 'timestamp' attribute name");
  }
  return Schema::Make(std::move(attributes), timestamp);
}

Result<SchemaPtr> SchemaFromJsonString(const std::string& text) {
  ICEWAFL_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
  return SchemaFromJson(json);
}

Result<SchemaPtr> SchemaFromJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open schema file: '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return SchemaFromJsonString(buf.str());
}

Json SchemaToJson(const Schema& schema) {
  Json attrs = Json::MakeArray();
  for (const Attribute& a : schema.attributes()) {
    Json attr = Json::MakeObject();
    attr.Set("name", a.name);
    attr.Set("type", ValueTypeName(a.type));
    attrs.Append(std::move(attr));
  }
  Json root = Json::MakeObject();
  root.Set("attributes", std::move(attrs));
  root.Set("timestamp", schema.timestamp_name());
  return root;
}

}  // namespace icewafl
