#ifndef ICEWAFL_IO_CSV_H_
#define ICEWAFL_IO_CSV_H_

#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "stream/sink.h"
#include "stream/source.h"
#include "stream/tuple.h"
#include "util/result.h"

namespace icewafl {

/// \brief Options controlling CSV serialization and parsing.
struct CsvOptions {
  char delimiter = ',';
  /// Rendering of NULL on write; strings equal to it parse back as NULL.
  std::string null_repr = "";
  bool header = true;
};

/// \brief Splits raw CSV text into records of fields (RFC-4180 quoting:
/// fields may be quoted with '"', quotes are escaped by doubling, quoted
/// fields may contain delimiters and newlines).
Result<std::vector<std::vector<std::string>>> ParseCsvText(
    const std::string& text, const CsvOptions& options = {});

/// \brief Quotes a single field if it contains delimiter/quote/newline.
std::string EscapeCsvField(const std::string& field, char delimiter);

/// \brief Serializes tuples as CSV text (types rendered per Value rules).
std::string ToCsvString(const SchemaPtr& schema, const TupleVector& tuples,
                        const CsvOptions& options = {});

/// \brief Parses CSV text into typed tuples according to `schema`.
///
/// With options.header, the first record must list exactly the schema's
/// attribute names (in order). Field values are converted to the attribute
/// type; conversion failures are errors, fields equal to
/// `options.null_repr` become NULL.
Result<TupleVector> FromCsvString(const SchemaPtr& schema,
                                  const std::string& text,
                                  const CsvOptions& options = {});

/// \brief File variants of the above.
Status WriteCsvFile(const SchemaPtr& schema, const TupleVector& tuples,
                    const std::string& path, const CsvOptions& options = {});
Result<TupleVector> ReadCsvFile(const SchemaPtr& schema,
                                const std::string& path,
                                const CsvOptions& options = {});

/// \brief Streaming source reading one CSV record per Next() call —
/// tuple-at-a-time ingestion without materializing the file (how a real
/// deployment feeds micro-batched CSV exports into the polluter).
class CsvSource : public Source {
 public:
  /// \brief Opens `path`; errors surface on the first Next().
  CsvSource(SchemaPtr schema, std::string path, CsvOptions options = {});

  SchemaPtr schema() const override { return schema_; }
  Result<bool> Next(Tuple* out) override;
  Status Reset() override;

 private:
  /// Reads one raw record, honoring quoted newlines. Returns false at
  /// EOF.
  Result<bool> ReadRecord(std::vector<std::string>* fields);

  SchemaPtr schema_;
  std::string path_;
  CsvOptions options_;
  std::unique_ptr<std::istream> input_;
  bool header_checked_ = false;
  size_t record_index_ = 0;
};

/// \brief Streaming sink writing one CSV record per tuple.
class CsvSink : public Sink {
 public:
  /// \param out stream to write to; not owned, must outlive the sink.
  CsvSink(SchemaPtr schema, std::ostream* out, CsvOptions options = {});

  using Sink::Write;

  Status Write(const Tuple& tuple) override;
  Status Flush() override;

 private:
  SchemaPtr schema_;
  std::ostream* out_;
  CsvOptions options_;
  bool header_written_ = false;
};

}  // namespace icewafl

#endif  // ICEWAFL_IO_CSV_H_
