#ifndef ICEWAFL_IO_SCHEMA_JSON_H_
#define ICEWAFL_IO_SCHEMA_JSON_H_

#include <string>

#include "stream/schema.h"
#include "util/json.h"

namespace icewafl {

/// \file
/// JSON (de)serialization of stream schemas — the "Schema" input of the
/// pollution process (Figure 2). The format is
/// \code{.json}
/// {"attributes": [{"name": "ts", "type": "int64"},
///                 {"name": "temp", "type": "double"}],
///  "timestamp": "ts"}
/// \endcode
/// with types "null", "bool", "int64", "double", "string".

/// \brief Builds a schema from its JSON description.
Result<SchemaPtr> SchemaFromJson(const Json& json);

/// \brief Parses JSON text and builds the schema.
Result<SchemaPtr> SchemaFromJsonString(const std::string& text);

/// \brief Reads a JSON file and builds the schema.
Result<SchemaPtr> SchemaFromJsonFile(const std::string& path);

/// \brief Inverse of SchemaFromJson.
Json SchemaToJson(const Schema& schema);

}  // namespace icewafl

#endif  // ICEWAFL_IO_SCHEMA_JSON_H_
