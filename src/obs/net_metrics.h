#ifndef ICEWAFL_OBS_NET_METRICS_H_
#define ICEWAFL_OBS_NET_METRICS_H_

#include <string>

#include "obs/metrics.h"

namespace icewafl {
namespace obs {

/// \file
/// Metric families of the serving subsystem (`src/net/`). Bound once
/// from a MetricRegistry at server start (server-wide families) or at
/// session registration (session-labeled families), handles shared by
/// the reactor and worker threads (all handles are lock-free atomics).
/// With a null registry every handle is nullptr and the server pays one
/// null check per event — the same opt-in contract as the runtime
/// instrumentation (DESIGN.md section 7).
///
/// Thread-safety contract: `Bind` serializes through the registry's own
/// mutex (`kLockRankMetricRegistry`, the last rank in the lock
/// hierarchy — see util/sync.h), so binding is legal while holding any
/// server lock. The returned structs are immutable after Bind; publish
/// them to other threads before use (the server binds before spawning
/// its reactor/workers, or under its registry mutex for late sessions).

/// \brief Server-wide serving metrics (no session dimension).
struct ServerMetrics {
  Counter* clients_accepted = nullptr;  ///< connections accepted
  Gauge* clients_connected = nullptr;   ///< currently connected
  Counter* bytes_sent = nullptr;        ///< payload bytes written

  /// \brief Binds every family in `registry`; no-op when null.
  static ServerMetrics Bind(MetricRegistry* registry);
};

/// \brief Per-session serving metrics, labeled {session="<id>"}. A
/// multi-tenant server binds one of these per named session, so the
/// exposition separates tenants instead of blending them into one
/// counter.
struct SessionMetrics {
  Counter* runs = nullptr;              ///< completed pipeline runs
  Counter* tuples_sent = nullptr;       ///< tuples enqueued (any frame kind)
  Counter* batches_sent = nullptr;      ///< batch frames enqueued (v2 cap)
  Counter* slow_drops = nullptr;        ///< frames dropped (drop_oldest)
  Counter* slow_disconnects = nullptr;  ///< clients cut (disconnect)
  /// Seconds between a frame entering a subscriber's queue and its
  /// bytes being handed to the socket.
  Histogram* send_latency = nullptr;
  /// Version of the session's current published PlanSnapshot (0 while
  /// the session serves no plan).
  Gauge* plan_version = nullptr;
  /// Successful plan publications after the initial one (SwapPlan /
  /// UpdateSession over the admin channel or in-process).
  Counter* plan_swaps = nullptr;
  /// Seconds between a snapshot's publication and the serving runner
  /// adopting it at a cutover boundary.
  Histogram* swap_latency = nullptr;

  /// \brief Binds every family in `registry` under the session label;
  /// no-op when null.
  static SessionMetrics Bind(MetricRegistry* registry,
                             const std::string& session_id);
};

}  // namespace obs
}  // namespace icewafl

#endif  // ICEWAFL_OBS_NET_METRICS_H_
