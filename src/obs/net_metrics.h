#ifndef ICEWAFL_OBS_NET_METRICS_H_
#define ICEWAFL_OBS_NET_METRICS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace icewafl {
namespace obs {

/// \file
/// Metric families of the serving subsystem (`src/net/`). Bound once
/// from a MetricRegistry at server start, handles shared by the network
/// and session threads (all handles are lock-free atomics). With a null
/// registry every handle is nullptr and the server pays one null check
/// per event — the same opt-in contract as the runtime instrumentation
/// (DESIGN.md section 7).

/// \brief Server-wide serving metrics.
struct ServerMetrics {
  Counter* clients_accepted = nullptr;   ///< connections accepted
  Gauge* clients_connected = nullptr;    ///< currently connected
  Counter* sessions = nullptr;           ///< pollution sessions served
  Counter* tuples_sent = nullptr;        ///< tuple frames enqueued
  Counter* bytes_sent = nullptr;         ///< payload bytes written
  Counter* slow_drops = nullptr;         ///< frames dropped (drop_oldest)
  Counter* slow_disconnects = nullptr;   ///< clients cut (disconnect)

  /// \brief Binds every family in `registry`; no-op when null.
  static ServerMetrics Bind(MetricRegistry* registry);
};

/// \brief Per-client send-latency histogram (seconds between a frame
/// entering the client's queue and its bytes being handed to the
/// socket), labeled {client="<id>"}. Returns nullptr when `registry` is
/// null.
Histogram* BindClientSendLatency(MetricRegistry* registry, uint64_t client_id);

}  // namespace obs
}  // namespace icewafl

#endif  // ICEWAFL_OBS_NET_METRICS_H_
