#include "obs/trace.h"

#include "util/json.h"

namespace icewafl {
namespace obs {

void TraceRecorder::RecordComplete(std::string name, std::string category,
                                   int64_t tid, int64_t start_us,
                                   int64_t duration_us) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'X';
  event.tid = tid;
  event.ts_us = start_us;
  event.dur_us = duration_us < 0 ? 0 : duration_us;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void TraceRecorder::RecordInstant(std::string name, std::string category,
                                  int64_t tid) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'i';
  event.tid = tid;
  event.ts_us = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string TraceRecorder::ToChromeTraceJson() const {
  Json root = Json::MakeObject();
  Json events = Json::MakeArray();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const TraceEvent& e : events_) {
      Json j = Json::MakeObject();
      j.Set("name", e.name);
      j.Set("cat", e.category);
      j.Set("ph", std::string(1, e.phase));
      j.Set("pid", int64_t{1});
      j.Set("tid", e.tid);
      j.Set("ts", e.ts_us);
      if (e.phase == 'X') j.Set("dur", e.dur_us);
      // Instant events need an explicit scope to render.
      if (e.phase == 'i') j.Set("s", "t");
      events.Append(std::move(j));
    }
  }
  root.Set("traceEvents", std::move(events));
  root.Set("displayTimeUnit", "ms");
  return root.Dump();
}

}  // namespace obs
}  // namespace icewafl
