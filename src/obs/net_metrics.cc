#include "obs/net_metrics.h"

namespace icewafl {
namespace obs {

// Both Bind overloads only call MetricRegistry::Get*, which lock the
// registry mutex internally (EXCLUDES(mu_) in metrics.h) — no lock is
// ever held across a Bind, so these are callable from any server thread.

ServerMetrics ServerMetrics::Bind(MetricRegistry* registry) {
  ServerMetrics m;
  if (registry == nullptr) return m;
  m.clients_accepted =
      registry->GetCounter("icewafl_server_clients_accepted_total", {},
                           "TCP subscriber connections accepted");
  m.clients_connected =
      registry->GetGauge("icewafl_server_clients_connected", {},
                         "Subscribers currently connected");
  m.bytes_sent = registry->GetCounter("icewafl_server_bytes_sent_total", {},
                                      "Frame bytes written to sockets");
  return m;
}

SessionMetrics SessionMetrics::Bind(MetricRegistry* registry,
                                    const std::string& session_id) {
  SessionMetrics m;
  if (registry == nullptr) return m;
  const Labels labels = {{"session", session_id}};
  m.runs = registry->GetCounter("icewafl_server_sessions_total", labels,
                                "Pollution runs served per session");
  m.tuples_sent =
      registry->GetCounter("icewafl_server_tuples_sent_total", labels,
                           "Tuple frames enqueued to subscribers");
  m.batches_sent = registry->GetCounter(
      "icewafl_server_batches_sent_total", labels,
      "Batch frames enqueued to batch-capable subscribers");
  m.slow_drops = registry->GetCounter(
      "icewafl_server_slow_drops_total", labels,
      "Frames dropped by the drop_oldest slow-consumer policy");
  m.slow_disconnects = registry->GetCounter(
      "icewafl_server_slow_disconnects_total", labels,
      "Subscribers disconnected by the disconnect slow-consumer policy");
  m.send_latency = registry->GetHistogram(
      "icewafl_server_send_latency_seconds", labels,
      ExponentialBounds(1e-6, 10.0, 4.0),
      "Per-session latency from frame enqueue to socket write");
  m.plan_version = registry->GetGauge(
      "icewafl_server_plan_version", labels,
      "Version of the session's current published plan snapshot");
  m.plan_swaps = registry->GetCounter(
      "icewafl_server_plan_swaps_total", labels,
      "Plan snapshots published after the initial one");
  m.swap_latency = registry->GetHistogram(
      "icewafl_server_plan_swap_latency_seconds", labels,
      ExponentialBounds(1e-4, 60.0, 4.0),
      "Latency from plan publication to adoption at a cutover boundary");
  return m;
}

}  // namespace obs
}  // namespace icewafl
