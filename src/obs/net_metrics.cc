#include "obs/net_metrics.h"

namespace icewafl {
namespace obs {

ServerMetrics ServerMetrics::Bind(MetricRegistry* registry) {
  ServerMetrics m;
  if (registry == nullptr) return m;
  m.clients_accepted =
      registry->GetCounter("icewafl_server_clients_accepted_total", {},
                           "TCP subscriber connections accepted");
  m.clients_connected =
      registry->GetGauge("icewafl_server_clients_connected", {},
                         "Subscribers currently connected");
  m.sessions = registry->GetCounter("icewafl_server_sessions_total", {},
                                    "Pollution sessions served");
  m.tuples_sent =
      registry->GetCounter("icewafl_server_tuples_sent_total", {},
                           "Tuple frames enqueued to subscribers");
  m.bytes_sent = registry->GetCounter("icewafl_server_bytes_sent_total", {},
                                      "Frame bytes written to sockets");
  m.slow_drops = registry->GetCounter(
      "icewafl_server_slow_drops_total", {},
      "Frames dropped by the drop_oldest slow-consumer policy");
  m.slow_disconnects = registry->GetCounter(
      "icewafl_server_slow_disconnects_total", {},
      "Subscribers disconnected by the disconnect slow-consumer policy");
  return m;
}

Histogram* BindClientSendLatency(MetricRegistry* registry,
                                 uint64_t client_id) {
  if (registry == nullptr) return nullptr;
  return registry->GetHistogram(
      "icewafl_server_send_latency_seconds",
      {{"client", std::to_string(client_id)}},
      ExponentialBounds(1e-6, 10.0, 4.0),
      "Per-client latency from frame enqueue to socket write");
}

}  // namespace obs
}  // namespace icewafl
