#ifndef ICEWAFL_OBS_METRICS_H_
#define ICEWAFL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.h"

namespace icewafl {
namespace obs {

/// \file
/// Unified metrics layer of the runtime (DESIGN.md section 7).
///
/// Every instrumented component (pipeline stages, channels, polluters,
/// DQ validation) increments handles obtained once from a shared
/// MetricRegistry. Handles are plain relaxed atomics, so the hot-path
/// contract is: one pointer-null check when observability is disabled,
/// one relaxed atomic add when enabled — never a lock, never an
/// allocation. Registries are exported through the Prometheus text
/// exposition format (prometheus.io/docs/instrumenting/exposition_formats)
/// so the counters plug into standard scrape/alerting tooling.

/// \brief Label set attached to one time series, e.g.
/// `{{"stage", "worker0"}}`. Keys are sorted on registration, so label
/// order at the call site does not create duplicate series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonically increasing counter (events since start of run).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-written value (queue depths, peaks, configuration knobs).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }

  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  /// \brief Raises the gauge to `v` if it exceeds the current value.
  void SetMax(double v) {
    double current = value_.load(std::memory_order_relaxed);
    while (v > current &&
           !value_.compare_exchange_weak(current, v,
                                         std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket histogram with quantile estimation.
///
/// Buckets are defined by ascending upper bounds; an implicit +Inf
/// bucket catches the overflow. Observation is lock-free (one relaxed
/// atomic increment per bucket hit); quantiles interpolate linearly
/// inside the winning bucket, the standard Prometheus `histogram_quantile`
/// estimate computed client-side.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }

  /// \brief Per-bucket counts (non-cumulative), +Inf bucket last.
  std::vector<uint64_t> BucketCounts() const;

  /// \brief Estimated q-quantile (q in [0, 1]); 0 when empty. Values in
  /// the overflow bucket clamp to the largest finite bound.
  double Quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// \brief Exponentially spaced bounds from `lo` to at least `hi`
/// (`factor` > 1 per step) — the usual latency-histogram layout.
std::vector<double> ExponentialBounds(double lo, double hi, double factor);

/// \brief Thread-safe home of every metric of one run.
///
/// `Get*` registers the series on first use and returns the existing
/// handle on every later call with the same name + labels, so clones of
/// an operator running on different workers aggregate into one series.
/// Returned pointers stay valid for the registry's lifetime. Names must
/// match Prometheus conventions ([a-zA-Z_:][a-zA-Z0-9_:]*); a name
/// registered as one metric type cannot be re-registered as another
/// (Get* returns nullptr for such conflicts).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* GetCounter(const std::string& name, Labels labels = {},
                      const std::string& help = "") EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, Labels labels = {},
                  const std::string& help = "") EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name, Labels labels,
                          std::vector<double> upper_bounds,
                          const std::string& help = "") EXCLUDES(mu_);

  /// \brief Number of registered series (all types).
  size_t size() const EXCLUDES(mu_);

  /// \brief Prometheus text exposition of every registered series.
  /// Deterministic: families sorted by name, series by label signature.
  std::string ToPrometheusText() const EXCLUDES(mu_);

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Type type = Type::kCounter;
    std::string help;
    std::map<std::string, Series> series;  // keyed by label signature
  };

  /// Registers (or finds) the series and lazily constructs its value
  /// object while `mu_` is held, so concurrent Get* calls with the same
  /// name + labels never race on the unique_ptr. `upper_bounds` is
  /// consumed only when a histogram is first created. Callers (the three
  /// public Get*) take the lock; the registry mutex is the last rank in
  /// the global hierarchy, so registration is legal from any context.
  Series* GetSeries(const std::string& name, Labels* labels, Type type,
                    const std::string& help,
                    std::vector<double>* upper_bounds = nullptr)
      REQUIRES(mu_);

  mutable Mutex mu_{kLockRankMetricRegistry};
  std::map<std::string, Family> families_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace icewafl

#endif  // ICEWAFL_OBS_METRICS_H_
