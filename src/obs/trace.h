#ifndef ICEWAFL_OBS_TRACE_H_
#define ICEWAFL_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace icewafl {
namespace obs {

/// \brief One recorded trace event (Chrome `trace_event` model).
struct TraceEvent {
  std::string name;
  std::string category;
  /// 'X' = complete (has duration), 'i' = instant.
  char phase = 'X';
  /// Logical track the event renders on; the runtime uses stage indices
  /// (0 = source, 1..P = workers, P+1 = sink) so a trace reads like the
  /// pipeline topology.
  int64_t tid = 0;
  int64_t ts_us = 0;   ///< Start, microseconds since recorder creation.
  int64_t dur_us = 0;  ///< Duration; 0 for instants.
};

/// \brief Lightweight span/event recorder exporting Chrome trace JSON.
///
/// Load the exported file in `chrome://tracing` or Perfetto to see the
/// pipeline stages as horizontal tracks. Recording a span is one lock
/// acquisition at span *end* only — nothing on the per-tuple path — and
/// all timestamps come from the steady clock, so tracing never perturbs
/// the data path or the random streams.
class TraceRecorder {
 public:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// \brief Microseconds elapsed since the recorder was created.
  int64_t NowMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  void RecordComplete(std::string name, std::string category, int64_t tid,
                      int64_t start_us, int64_t duration_us);
  void RecordInstant(std::string name, std::string category, int64_t tid);

  size_t size() const;
  std::vector<TraceEvent> Events() const;

  /// \brief Chrome trace JSON (`{"traceEvents": [...]}`); loads directly
  /// in chrome://tracing and Perfetto.
  std::string ToChromeTraceJson() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// \brief RAII span: records a complete event from construction to
/// destruction. Null-safe — a nullptr recorder makes every operation a
/// no-op, which is how tracing stays off the hot path when disabled.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, std::string name, std::string category,
             int64_t tid)
      : recorder_(recorder),
        name_(std::move(name)),
        category_(std::move(category)),
        tid_(tid),
        start_us_(recorder == nullptr ? 0 : recorder->NowMicros()) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (recorder_ == nullptr) return;
    recorder_->RecordComplete(std::move(name_), std::move(category_), tid_,
                              start_us_, recorder_->NowMicros() - start_us_);
  }

 private:
  TraceRecorder* recorder_;
  std::string name_;
  std::string category_;
  int64_t tid_;
  int64_t start_us_;
};

}  // namespace obs
}  // namespace icewafl

#endif  // ICEWAFL_OBS_TRACE_H_
