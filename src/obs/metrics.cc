#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/strings.h"

namespace icewafl {
namespace obs {

namespace {

bool IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    if (!alpha && (i == 0 || c < '0' || c > '9')) return false;
  }
  return true;
}

/// Escapes a label value for the exposition format: backslash, double
/// quote, and newline must be backslash-escaped.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Canonical `{k1="v1",k2="v2"}` signature of a sorted label set; the
/// empty string for no labels.
std::string LabelSignature(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += EscapeLabelValue(labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Signature with one extra label appended (histogram `le` buckets).
std::string LabelSignatureWith(const Labels& labels, const std::string& key,
                               const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return LabelSignature(extended);
}

std::string FormatBound(double bound) {
  if (std::isinf(bound)) return "+Inf";
  return FormatDouble(bound);
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds_.size()) {
      // Overflow bucket: no finite upper edge to interpolate toward.
      return bounds_.empty() ? 0.0 : bounds_.back();
    }
    const double upper = bounds_[i];
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    if (counts[i] == 0) return upper;
    const double before = static_cast<double>(cumulative - counts[i]);
    const double fraction =
        (rank - before) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> ExponentialBounds(double lo, double hi, double factor) {
  std::vector<double> bounds;
  if (lo <= 0.0 || factor <= 1.0) return bounds;
  for (double b = lo; b < hi * factor; b *= factor) bounds.push_back(b);
  return bounds;
}

MetricRegistry::Series* MetricRegistry::GetSeries(
    const std::string& name, Labels* labels, Type type,
    const std::string& help, std::vector<double>* upper_bounds) {
  if (!IsValidMetricName(name)) return nullptr;
  std::sort(labels->begin(), labels->end());
  const std::string signature = LabelSignature(*labels);
  auto [family_it, inserted] = families_.try_emplace(name);
  Family& family = family_it->second;
  if (inserted) {
    family.type = type;
    family.help = help;
  } else if (family.type != type) {
    return nullptr;
  }
  Series& series = family.series[signature];
  series.labels = *labels;
  // Construct the value object while mu_ is still held: two threads
  // registering the same series concurrently must agree on one object,
  // and later lock-free reads of the pointer synchronize through mu_.
  switch (type) {
    case Type::kCounter:
      if (series.counter == nullptr) {
        series.counter = std::make_unique<Counter>();
      }
      break;
    case Type::kGauge:
      if (series.gauge == nullptr) series.gauge = std::make_unique<Gauge>();
      break;
    case Type::kHistogram:
      if (series.histogram == nullptr) {
        series.histogram = std::make_unique<Histogram>(
            upper_bounds != nullptr ? std::move(*upper_bounds)
                                    : std::vector<double>());
      }
      break;
  }
  return &series;
}

Counter* MetricRegistry::GetCounter(const std::string& name, Labels labels,
                                    const std::string& help) {
  MutexLock lock(&mu_);
  Series* series = GetSeries(name, &labels, Type::kCounter, help);
  return series == nullptr ? nullptr : series->counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name, Labels labels,
                                const std::string& help) {
  MutexLock lock(&mu_);
  Series* series = GetSeries(name, &labels, Type::kGauge, help);
  return series == nullptr ? nullptr : series->gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        Labels labels,
                                        std::vector<double> upper_bounds,
                                        const std::string& help) {
  MutexLock lock(&mu_);
  Series* series =
      GetSeries(name, &labels, Type::kHistogram, help, &upper_bounds);
  return series == nullptr ? nullptr : series->histogram.get();
}

size_t MetricRegistry::size() const {
  MutexLock lock(&mu_);
  size_t n = 0;
  for (const auto& [name, family] : families_) n += family.series.size();
  return n;
}

std::string MetricRegistry::ToPrometheusText() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    out += "# TYPE " + name + " ";
    switch (family.type) {
      case Type::kCounter:
        out += "counter\n";
        break;
      case Type::kGauge:
        out += "gauge\n";
        break;
      case Type::kHistogram:
        out += "histogram\n";
        break;
    }
    for (const auto& [signature, series] : family.series) {
      if (series.counter != nullptr) {
        out += name + signature + " " +
               std::to_string(series.counter->value()) + "\n";
      } else if (series.gauge != nullptr) {
        out += name + signature + " " + FormatDouble(series.gauge->value()) +
               "\n";
      } else if (series.histogram != nullptr) {
        const Histogram& h = *series.histogram;
        const std::vector<uint64_t> counts = h.BucketCounts();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < counts.size(); ++i) {
          cumulative += counts[i];
          const double bound = i < h.bounds().size()
                                   ? h.bounds()[i]
                                   : std::numeric_limits<double>::infinity();
          out += name + "_bucket" +
                 LabelSignatureWith(series.labels, "le", FormatBound(bound)) +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += name + "_sum" + signature + " " + FormatDouble(h.sum()) + "\n";
        out += name + "_count" + signature + " " + std::to_string(h.count()) +
               "\n";
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace icewafl
