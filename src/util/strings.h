#ifndef ICEWAFL_UTIL_STRINGS_H_
#define ICEWAFL_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace icewafl {

/// \brief Splits `text` on `sep`; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char sep);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// \brief ASCII lower-case copy.
std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// \brief Strict double parse (whole string must be consumed).
Result<double> ParseDouble(std::string_view text);

/// \brief Strict int64 parse (whole string must be consumed).
Result<int64_t> ParseInt64(std::string_view text);

/// \brief Shortest round-trip formatting of a double ("%.17g" trimmed).
std::string FormatDouble(double v);

/// \brief Same rendering, assigned into `*out` — reuses the string's
/// capacity, so a loop-hoisted buffer makes repeated formatting
/// allocation-free.
void FormatDoubleTo(double v, std::string* out);

/// \brief Fixed-precision formatting ("%.*f").
std::string FormatDouble(double v, int precision);

}  // namespace icewafl

#endif  // ICEWAFL_UTIL_STRINGS_H_
