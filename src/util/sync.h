// Annotated synchronization primitives.
//
// Drop-in wrappers over <mutex>/<condition_variable> that carry Clang's
// thread-safety capability attributes, so the locking contract of every
// concurrent component lives in the type system and is checked at compile
// time under `-Wthread-safety` (tools/check.sh tsafety). On compilers
// without the attributes (GCC) the annotations expand to nothing and the
// wrappers cost exactly what the std primitives cost.
//
// Conventions used throughout the tree (see DESIGN.md §12):
//   - Every shared field names its lock with GUARDED_BY(mu).
//   - Private helpers that expect a lock to be held are annotated
//     REQUIRES(mu) and suffixed `Locked`.
//   - Condition-variable waits are written as explicit while-loops, never
//     predicate lambdas: the analysis checks lambda bodies separately and
//     cannot see that the surrounding lock is held.
//
// Lock hierarchy. Mutexes may optionally carry a rank (LockRank); a thread
// may only acquire a ranked mutex whose rank is strictly greater than every
// ranked mutex it already holds. The documented global order is
//
//   admin server (5) -> server registry (10) -> session (20)
//       -> connection (30) -> channel (40) -> metric registry (50)
//
// and never the reverse. Ordering is enforced at runtime by a lockdep-lite
// per-thread rank stack (sync.cc). The check is compiled in everywhere but
// gated behind a global switch: it defaults ON in debug builds and in any
// translation of sync.cc with ICEWAFL_SYNC_DEBUG defined (the asan/tsan
// presets do this), and tests can flip it with EnableLockRankChecks().

#ifndef ICEWAFL_UTIL_SYNC_H_
#define ICEWAFL_UTIL_SYNC_H_

#include <atomic>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Clang thread-safety annotation macros (no-ops elsewhere). The vocabulary
// follows the Clang documentation's mutex.h reference header.
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define ICEWAFL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ICEWAFL_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) ICEWAFL_THREAD_ANNOTATION(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY ICEWAFL_THREAD_ANNOTATION(scoped_lockable)
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) ICEWAFL_THREAD_ANNOTATION(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) ICEWAFL_THREAD_ANNOTATION(pt_guarded_by(x))
#endif

#ifndef REQUIRES
#define REQUIRES(...) ICEWAFL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) ICEWAFL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) ICEWAFL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) ICEWAFL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) ICEWAFL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#endif

#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) ICEWAFL_THREAD_ANNOTATION(assert_capability(x))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) ICEWAFL_THREAD_ANNOTATION(lock_returned(x))
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS ICEWAFL_THREAD_ANNOTATION(no_thread_safety_analysis)
#endif

namespace icewafl {

// The documented global acquisition order. A mutex constructed with one of
// these ranks participates in the runtime ordering check; default-constructed
// (unranked) mutexes are exempt, for leaf locks with no nesting.
enum LockRank : int {
  kLockRankUnranked = 0,
  kLockRankAdmin = 5,            // net::AdminServer::mu_
  kLockRankServerRegistry = 10,  // PollutionServer::mu_
  kLockRankSession = 20,         // PollutionServer::Session::mu
  kLockRankConnection = 30,      // PollutionServer::Connection::mu
  kLockRankChannel = 40,         // BoundedChannel::mu_
  kLockRankMetricRegistry = 50,  // obs::MetricRegistry::mu_
};

namespace sync_internal {

// Single definition lives in sync.cc; the header only reads it, so the
// fast path is one relaxed load + branch per ranked acquisition and the
// behaviour cannot diverge between translation units.
extern std::atomic<bool> g_rank_checks_enabled;

inline bool RankChecksEnabled() {
  return g_rank_checks_enabled.load(std::memory_order_relaxed);
}

// Out-of-line bookkeeping against the calling thread's rank stack.
void OnLockAcquired(int rank);
void OnLockReleased(int rank);

}  // namespace sync_internal

// Installable reaction to an ordering violation (message describes the held
// rank and the offending acquisition). The default handler prints the
// message to stderr and aborts; tests install a recorder instead. Returns
// the previous handler.
using LockRankViolationHandler = void (*)(const char* message);
LockRankViolationHandler SetLockRankViolationHandler(LockRankViolationHandler handler);

// Turn the lockdep-lite rank check on or off process-wide. Toggle before
// spawning threads that take ranked locks: entries pushed while the check
// is on must be popped while it is still on. Returns the previous setting.
bool EnableLockRankChecks(bool enabled);

// A std::mutex that is (a) a Clang capability and (b) optionally ranked in
// the global lock hierarchy above.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(int rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    if (rank_ != kLockRankUnranked && sync_internal::RankChecksEnabled()) {
      mu_.lock();
      sync_internal::OnLockAcquired(rank_);
      return;
    }
    mu_.lock();
  }

  void Unlock() RELEASE() {
    if (rank_ != kLockRankUnranked && sync_internal::RankChecksEnabled()) {
      sync_internal::OnLockReleased(rank_);
    }
    mu_.unlock();
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    if (rank_ != kLockRankUnranked && sync_internal::RankChecksEnabled()) {
      sync_internal::OnLockAcquired(rank_);
    }
    return true;
  }

  // Tells the analysis this thread holds the mutex on paths it cannot
  // prove (e.g. re-entry from a callback documented to run locked).
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

  int rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const int rank_ = kLockRankUnranked;
};

// RAII scoped acquisition, with early release for the lock/compute/
// unlock-then-notify idiom.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() {
    if (owned_) mu_->Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() RELEASE() {
    mu_->Unlock();
    owned_ = false;
  }

  void Lock() ACQUIRE() {
    mu_->Lock();
    owned_ = true;
  }

 private:
  Mutex* const mu_;
  bool owned_ = true;
};

// Condition variable bound to Mutex. Wait() atomically releases and
// reacquires the caller's lock, so it REQUIRES the capability; write waits
// as explicit loops:
//
//   MutexLock lock(&mu_);
//   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    // Rank bookkeeping: the lock is released for the duration of the wait
    // and reacquired before returning, so the net held-set is unchanged;
    // popping and re-pushing the rank keeps the stack exact.
    const bool ranked =
        mu.rank_ != kLockRankUnranked && sync_internal::RankChecksEnabled();
    if (ranked) sync_internal::OnLockReleased(mu.rank_);
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
    if (ranked) sync_internal::OnLockAcquired(mu.rank_);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace icewafl

#endif  // ICEWAFL_UTIL_SYNC_H_
