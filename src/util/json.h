#ifndef ICEWAFL_UTIL_JSON_H_
#define ICEWAFL_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace icewafl {

/// \brief A JSON document node.
///
/// Used for pollution-pipeline config files and for the reproducibility
/// log (Figure 2: "Log Data"). Objects preserve key order of insertion is
/// not required by JSON, so a std::map (sorted keys) keeps serialization
/// deterministic.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  /// Constructs a null node.
  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}                 // NOLINT
  Json(double num) : type_(Type::kNumber), num_(num) {}          // NOLINT
  Json(int num) : type_(Type::kNumber), num_(num) {}             // NOLINT
  Json(int64_t num)                                              // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(num)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}         // NOLINT
  Json(std::string s)                                            // NOLINT
      : type_(Type::kString), str_(std::move(s)) {}

  static Json MakeArray() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json MakeObject() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return num_; }
  int64_t AsInt64() const { return static_cast<int64_t>(num_); }
  const std::string& AsString() const { return str_; }

  /// \brief Array access. Valid only for arrays.
  const Array& items() const { return array_; }
  Array& items() { return array_; }
  void Append(Json v) { array_.push_back(std::move(v)); }
  size_t size() const {
    return type_ == Type::kArray ? array_.size() : object_.size();
  }

  /// \brief Object access. Valid only for objects.
  const Object& fields() const { return object_; }
  void Set(const std::string& key, Json v) { object_[key] = std::move(v); }
  bool Has(const std::string& key) const { return object_.count(key) > 0; }

  /// \brief Member lookup; returns an error if missing.
  Result<Json> Get(const std::string& key) const;

  /// \brief Typed convenience getters with defaults.
  double GetDouble(const std::string& key, double fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;
  std::string GetString(const std::string& key, std::string fallback) const;

  /// \brief Compact serialization (no insignificant whitespace).
  std::string Dump() const;

  /// \brief Pretty serialization with 2-space indentation.
  std::string DumpPretty() const;

  /// \brief Parses a JSON document (strict: whole input consumed).
  static Result<Json> Parse(const std::string& text);

  bool operator==(const Json& other) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array array_;
  Object object_;
};

}  // namespace icewafl

#endif  // ICEWAFL_UTIL_JSON_H_
