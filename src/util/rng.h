#ifndef ICEWAFL_UTIL_RNG_H_
#define ICEWAFL_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace icewafl {

/// \brief Deterministic 64-bit pseudo-random generator (xoshiro256**),
/// seeded via splitmix64.
///
/// Icewafl's reproducibility guarantee (Algorithm 1 is deterministic under
/// fixed seeds) hinges on every stochastic component drawing from an
/// explicitly seeded Rng. std::mt19937 distributions are not portable
/// across standard-library implementations, so all distributions here are
/// implemented by hand.
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield identical sequences.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// \brief Next raw 64-bit value.
  uint64_t Next();

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// \brief Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// \brief Standard normal deviate (Box-Muller, cached pair).
  double Gaussian();

  /// \brief Normal deviate with the given mean / standard deviation.
  double Gaussian(double mean, double stddev);

  /// \brief True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// \brief Derives an independent child generator; used to give each
  /// polluter in a pipeline its own stream so that adding a polluter does
  /// not perturb the draws of its siblings.
  Rng Fork();

  /// \brief Fisher-Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace icewafl

#endif  // ICEWAFL_UTIL_RNG_H_
