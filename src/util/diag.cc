#include "util/diag.h"

namespace icewafl {

const char* DiagSeverityName(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kNote:
      return "note";
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out = DiagSeverityName(severity);
  out += " ";
  out += code;
  out += " at ";
  out += path.empty() ? "/" : path;
  out += ": ";
  out += message;
  if (!hint.empty()) {
    out += " (hint: ";
    out += hint;
    out += ")";
  }
  return out;
}

Json Diagnostic::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("severity", DiagSeverityName(severity));
  j.Set("code", code);
  j.Set("path", path);
  j.Set("message", message);
  if (!hint.empty()) j.Set("hint", hint);
  return j;
}

void Diagnostics::AddError(std::string code, std::string path,
                           std::string message, std::string hint) {
  Add({DiagSeverity::kError, std::move(code), std::move(path),
       std::move(message), std::move(hint)});
}

void Diagnostics::AddWarning(std::string code, std::string path,
                             std::string message, std::string hint) {
  Add({DiagSeverity::kWarning, std::move(code), std::move(path),
       std::move(message), std::move(hint)});
}

void Diagnostics::AddNote(std::string code, std::string path,
                          std::string message, std::string hint) {
  Add({DiagSeverity::kNote, std::move(code), std::move(path),
       std::move(message), std::move(hint)});
}

void Diagnostics::Merge(const Diagnostics& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

size_t Diagnostics::ErrorCount() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == DiagSeverity::kError) ++n;
  }
  return n;
}

size_t Diagnostics::WarningCount() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == DiagSeverity::kWarning) ++n;
  }
  return n;
}

bool Diagnostics::HasCode(const std::string& code) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.code == code) return true;
  }
  return false;
}

std::string Diagnostics::ToReport() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += d.ToString();
    out += "\n";
  }
  const size_t errors = ErrorCount();
  const size_t warnings = WarningCount();
  out += std::to_string(errors) + (errors == 1 ? " error, " : " errors, ");
  out += std::to_string(warnings) +
         (warnings == 1 ? " warning\n" : " warnings\n");
  return out;
}

Json Diagnostics::ToJson() const {
  Json arr = Json::MakeArray();
  for (const Diagnostic& d : diagnostics_) arr.Append(d.ToJson());
  Json j = Json::MakeObject();
  j.Set("diagnostics", std::move(arr));
  j.Set("errors", static_cast<int64_t>(ErrorCount()));
  j.Set("warnings", static_cast<int64_t>(WarningCount()));
  return j;
}

}  // namespace icewafl
