#ifndef ICEWAFL_UTIL_TIME_UTIL_H_
#define ICEWAFL_UTIL_TIME_UTIL_H_

#include <cstdint>
#include <string>

#include "util/result.h"

namespace icewafl {

/// Timestamps throughout the library are seconds since the Unix epoch
/// (UTC, proleptic Gregorian calendar).
using Timestamp = int64_t;

/// \brief A broken-down calendar time (UTC).
struct CivilTime {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31
  int hour = 0;   ///< 0..23
  int minute = 0; ///< 0..59
  int second = 0; ///< 0..59

  bool operator==(const CivilTime&) const = default;
};

/// \brief Days since 1970-01-01 for a civil date (Hinnant's algorithm).
int64_t DaysFromCivil(int year, int month, int day);

/// \brief Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

/// \brief Converts a broken-down UTC time to epoch seconds.
Timestamp TimestampFromCivil(const CivilTime& ct);

/// \brief Converts epoch seconds to broken-down UTC time.
CivilTime CivilFromTimestamp(Timestamp ts);

/// \brief Hour of day [0, 23] for a timestamp.
int HourOfDay(Timestamp ts);

/// \brief Minute of day [0, 1439] for a timestamp.
int MinuteOfDay(Timestamp ts);

/// \brief Month [1, 12] for a timestamp.
int MonthOfYear(Timestamp ts);

/// \brief Fractional hours elapsed between two timestamps (b - a).
double HoursBetween(Timestamp a, Timestamp b);

/// \brief Formats as "YYYY-MM-DD HH:MM:SS".
std::string FormatTimestamp(Timestamp ts);

/// \brief Formats as "MM-dd" (used for figure x-axis labels).
std::string FormatMonthDay(Timestamp ts);

/// \brief Parses "YYYY-MM-DD HH:MM:SS" or "YYYY-MM-DD".
Result<Timestamp> ParseTimestamp(const std::string& text);

constexpr int64_t kSecondsPerMinute = 60;
constexpr int64_t kSecondsPerHour = 3600;
constexpr int64_t kSecondsPerDay = 86400;

}  // namespace icewafl

#endif  // ICEWAFL_UTIL_TIME_UTIL_H_
