#include "util/time_util.h"

#include <cstdio>

namespace icewafl {

int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;   // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);          // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;             // [0, 399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                       // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                            // [1, 12]
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

Timestamp TimestampFromCivil(const CivilTime& ct) {
  return DaysFromCivil(ct.year, ct.month, ct.day) * kSecondsPerDay +
         ct.hour * kSecondsPerHour + ct.minute * kSecondsPerMinute + ct.second;
}

CivilTime CivilFromTimestamp(Timestamp ts) {
  int64_t days = ts / kSecondsPerDay;
  int64_t rem = ts % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    days -= 1;
  }
  CivilTime ct;
  CivilFromDays(days, &ct.year, &ct.month, &ct.day);
  ct.hour = static_cast<int>(rem / kSecondsPerHour);
  ct.minute = static_cast<int>((rem % kSecondsPerHour) / kSecondsPerMinute);
  ct.second = static_cast<int>(rem % kSecondsPerMinute);
  return ct;
}

int HourOfDay(Timestamp ts) { return CivilFromTimestamp(ts).hour; }

int MinuteOfDay(Timestamp ts) {
  const CivilTime ct = CivilFromTimestamp(ts);
  return ct.hour * 60 + ct.minute;
}

int MonthOfYear(Timestamp ts) { return CivilFromTimestamp(ts).month; }

double HoursBetween(Timestamp a, Timestamp b) {
  return static_cast<double>(b - a) / static_cast<double>(kSecondsPerHour);
}

std::string FormatTimestamp(Timestamp ts) {
  const CivilTime ct = CivilFromTimestamp(ts);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", ct.year,
                ct.month, ct.day, ct.hour, ct.minute, ct.second);
  return buf;
}

std::string FormatMonthDay(Timestamp ts) {
  const CivilTime ct = CivilFromTimestamp(ts);
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%02d-%02d", ct.month, ct.day);
  return buf;
}

Result<Timestamp> ParseTimestamp(const std::string& text) {
  CivilTime ct;
  int n = std::sscanf(text.c_str(), "%d-%d-%d %d:%d:%d", &ct.year, &ct.month,
                      &ct.day, &ct.hour, &ct.minute, &ct.second);
  if (n != 3 && n != 6) {
    return Status::ParseError("cannot parse timestamp: '" + text + "'");
  }
  if (n == 3) ct.hour = ct.minute = ct.second = 0;
  if (ct.month < 1 || ct.month > 12 || ct.day < 1 || ct.day > 31 ||
      ct.hour < 0 || ct.hour > 23 || ct.minute < 0 || ct.minute > 59 ||
      ct.second < 0 || ct.second > 59) {
    return Status::OutOfRange("timestamp fields out of range: '" + text + "'");
  }
  return TimestampFromCivil(ct);
}

}  // namespace icewafl
