#ifndef ICEWAFL_UTIL_RESULT_H_
#define ICEWAFL_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace icewafl {

/// \brief Either a value of type T or a non-OK Status.
///
/// The database-library analogue of arrow::Result. Access the value only
/// after checking `ok()`; `ValueOrDie()` asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the success path).
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status. Constructing from an OK
  /// status is a programming error and is converted to Internal.
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    if (std::get<Status>(state_).ok()) {
      state_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// \brief The error status; Status::OK() if this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(state_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  /// \brief Moves the value out, or returns `fallback` on error.
  T ValueOr(T fallback) && {
    if (ok()) return std::get<T>(std::move(state_));
    return fallback;
  }

 private:
  std::variant<T, Status> state_;
};

}  // namespace icewafl

/// Assigns the value of a Result expression to `lhs`, propagating errors.
#define ICEWAFL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).ValueOrDie();

#define ICEWAFL_ASSIGN_OR_RETURN(lhs, expr)                                  \
  ICEWAFL_ASSIGN_OR_RETURN_IMPL(ICEWAFL_CONCAT_(_res_, __LINE__), lhs, expr)

#define ICEWAFL_CONCAT_INNER_(a, b) a##b
#define ICEWAFL_CONCAT_(a, b) ICEWAFL_CONCAT_INNER_(a, b)

#endif  // ICEWAFL_UTIL_RESULT_H_
