#ifndef ICEWAFL_UTIL_DIAG_H_
#define ICEWAFL_UTIL_DIAG_H_

#include <string>
#include <vector>

#include "util/json.h"

namespace icewafl {

/// \brief Severity of a static-analysis diagnostic.
///
/// `kError` marks configurations that cannot behave as written (the run
/// would fail or a polluter could never fire); `kWarning` marks
/// configurations that run but almost certainly do not mean what the
/// author intended; `kNote` carries supplementary context.
enum class DiagSeverity {
  kNote = 0,
  kWarning,
  kError,
};

/// \brief Name of a severity level ("note", "warning", "error").
const char* DiagSeverityName(DiagSeverity severity);

/// \brief One structured finding of the static analyzer.
///
/// `path` is a JSON pointer (RFC 6901, e.g. "/polluters/0/condition")
/// into the analyzed document, so tools can map a finding back to the
/// offending config fragment. `code` is a stable identifier ("IW101");
/// the full table lives in DESIGN.md section 6.
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kWarning;
  std::string code;
  std::string path;
  std::string message;
  /// Optional suggestion for resolving the finding; empty if none.
  std::string hint;

  bool operator==(const Diagnostic&) const = default;

  /// \brief "error IW101 at /polluters/0: message (hint: ...)".
  std::string ToString() const;

  Json ToJson() const;
};

/// \brief An ordered collection of diagnostics from one analysis run.
class Diagnostics {
 public:
  void Add(Diagnostic diagnostic) {
    diagnostics_.push_back(std::move(diagnostic));
  }
  void AddError(std::string code, std::string path, std::string message,
                std::string hint = "");
  void AddWarning(std::string code, std::string path, std::string message,
                  std::string hint = "");
  void AddNote(std::string code, std::string path, std::string message,
               std::string hint = "");

  /// \brief Appends all diagnostics of `other`.
  void Merge(const Diagnostics& other);

  const std::vector<Diagnostic>& items() const { return diagnostics_; }
  size_t size() const { return diagnostics_.size(); }
  bool empty() const { return diagnostics_.empty(); }

  size_t ErrorCount() const;
  size_t WarningCount() const;
  bool HasErrors() const { return ErrorCount() > 0; }

  /// \brief True if any diagnostic carries this code.
  bool HasCode(const std::string& code) const;

  /// \brief Human-readable multi-line report, one diagnostic per line,
  /// followed by a summary ("2 errors, 1 warning").
  std::string ToReport() const;

  /// \brief Machine-readable form: {"diagnostics": [...], "errors": N,
  /// "warnings": N}.
  Json ToJson() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace icewafl

#endif  // ICEWAFL_UTIL_DIAG_H_
