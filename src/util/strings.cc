#include "util/strings.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace icewafl {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

Result<double> ParseDouble(std::string_view text) {
  const std::string buf(Trim(text));
  if (buf.empty()) return Status::ParseError("empty string is not a double");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in double: '" + buf + "'");
  }
  if (errno == ERANGE && !std::isfinite(v)) {
    return Status::OutOfRange("double out of range: '" + buf + "'");
  }
  return v;
}

Result<int64_t> ParseInt64(std::string_view text) {
  const std::string buf(Trim(text));
  if (buf.empty()) return Status::ParseError("empty string is not an integer");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in integer: '" + buf + "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

void FormatDoubleTo(double v, std::string* out) {
  // Integral values render without an exponent ("20", not "2e+01").
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    *out = buf;
    return;
  }
  // Otherwise: the shortest %g representation that round-trips.
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  *out = buf;
}

std::string FormatDouble(double v) {
  std::string out;
  FormatDoubleTo(v, &out);
  return out;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace icewafl
