#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace icewafl {

std::string RenderAsciiChart(const std::vector<std::vector<double>>& series,
                             const AsciiChartOptions& options) {
  if (series.empty() || series.front().empty()) return "";
  const size_t n = series.front().size();
  for (const auto& s : series) {
    if (s.size() != n) return "";  // inconsistent input
  }
  const int height = std::max(2, options.height);

  double lo = series[0][0];
  double hi = series[0][0];
  for (const auto& s : series) {
    for (double v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (hi - lo < 1e-12) hi = lo + 1.0;

  static const char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@'};
  const size_t num_glyphs = sizeof(kGlyphs);

  // grid[row][col]; row 0 is the top.
  std::vector<std::string> grid(static_cast<size_t>(height),
                                std::string(n, ' '));
  for (size_t si = series.size(); si-- > 0;) {  // earlier series on top
    const char glyph = kGlyphs[si % num_glyphs];
    for (size_t i = 0; i < n; ++i) {
      const double frac = (series[si][i] - lo) / (hi - lo);
      int row = height - 1 -
                static_cast<int>(std::lround(frac * (height - 1)));
      row = std::max(0, std::min(height - 1, row));
      grid[static_cast<size_t>(row)][i] = glyph;
    }
  }

  std::string out;
  if (!options.title.empty()) out += options.title + "\n";
  // Y-axis labels on the first, middle, and last rows.
  const int label_width = 10;
  for (int row = 0; row < height; ++row) {
    std::string label(static_cast<size_t>(label_width), ' ');
    if (row == 0 || row == height - 1 || row == height / 2) {
      const double frac =
          static_cast<double>(height - 1 - row) / (height - 1);
      std::string text = FormatDouble(lo + frac * (hi - lo), 1);
      if (text.size() > static_cast<size_t>(label_width - 2)) {
        text.resize(static_cast<size_t>(label_width - 2));
      }
      label = std::string(static_cast<size_t>(label_width - 2) - text.size(),
                          ' ') +
              text + " |";
    } else {
      label[static_cast<size_t>(label_width - 1)] = '|';
    }
    out += label + grid[static_cast<size_t>(row)] + "\n";
  }
  out += std::string(static_cast<size_t>(label_width - 1), ' ') + "+" +
         std::string(n, '-') + "\n";
  // X labels: first under column 0, last right-aligned.
  if (!options.x_labels.empty()) {
    std::string xrow(static_cast<size_t>(label_width), ' ');
    xrow += options.x_labels.front();
    const std::string& last = options.x_labels.back();
    const size_t end_col = static_cast<size_t>(label_width) + n;
    if (end_col > last.size() && end_col - last.size() >= xrow.size()) {
      xrow += std::string(end_col - last.size() - xrow.size(), ' ');
      xrow += last;
    }
    out += xrow + "\n";
  }
  if (!options.series_names.empty()) {
    out += std::string(static_cast<size_t>(label_width), ' ');
    for (size_t si = 0; si < options.series_names.size(); ++si) {
      if (si > 0) out += "  ";
      out += kGlyphs[si % num_glyphs];
      out += "=";
      out += options.series_names[si];
    }
    out += "\n";
  }
  return out;
}

}  // namespace icewafl
