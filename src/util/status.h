#ifndef ICEWAFL_UTIL_STATUS_H_
#define ICEWAFL_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace icewafl {

/// \brief Error categories used across the library.
///
/// The library is exception-free in the style of RocksDB/Arrow: fallible
/// operations return a Status (or a Result<T>, see result.h) instead of
/// throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kIOError,
  kParseError,
  kTypeError,
  kNotImplemented,
  kInternal,
};

/// \brief Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// \brief Result of a fallible operation: a code plus an optional message.
///
/// Cheap to copy in the OK case (no allocation). Construct error statuses
/// through the named factories, e.g. `Status::InvalidArgument("bad k")`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

}  // namespace icewafl

/// Propagates a non-OK Status to the caller. The status variable gets a
/// line-unique name so nested/adjacent uses do not shadow each other.
#define ICEWAFL_STATUS_CONCAT_IMPL_(a, b) a##b
#define ICEWAFL_STATUS_CONCAT_(a, b) ICEWAFL_STATUS_CONCAT_IMPL_(a, b)
#define ICEWAFL_RETURN_NOT_OK(expr) \
  ICEWAFL_RETURN_NOT_OK_IMPL_(ICEWAFL_STATUS_CONCAT_(_st_, __LINE__), expr)
#define ICEWAFL_RETURN_NOT_OK_IMPL_(st, expr) \
  do {                                        \
    ::icewafl::Status st = (expr);            \
    if (!st.ok()) return st;                  \
  } while (0)

#endif  // ICEWAFL_UTIL_STATUS_H_
