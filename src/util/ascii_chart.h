#ifndef ICEWAFL_UTIL_ASCII_CHART_H_
#define ICEWAFL_UTIL_ASCII_CHART_H_

#include <string>
#include <vector>

namespace icewafl {

/// \brief Options for ASCII line charts.
struct AsciiChartOptions {
  int height = 12;          ///< rows of the plot area
  std::string title;
  std::vector<std::string> series_names;  ///< one per series (legend)
  /// X-axis labels; printed under the first/middle/last columns.
  std::vector<std::string> x_labels;
};

/// \brief Renders one or more equally long series as an ASCII line
/// chart (used by the benchmark harnesses to visualize the figures they
/// regenerate — Figure 4's sinusoid, Figures 6/7's MAE curves —
/// directly in the terminal).
///
/// Each series gets a distinct glyph ('*', 'o', '+', 'x', ...); points
/// from different series landing on the same cell show the glyph of the
/// earlier series. Returns "" for empty input.
std::string RenderAsciiChart(const std::vector<std::vector<double>>& series,
                             const AsciiChartOptions& options = {});

}  // namespace icewafl

#endif  // ICEWAFL_UTIL_ASCII_CHART_H_
