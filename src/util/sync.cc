#include "util/sync.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace icewafl {
namespace sync_internal {
namespace {

// Default posture: on in debug builds; the asan/tsan/sync-test targets opt
// in explicitly with ICEWAFL_SYNC_DEBUG so sanitizer CI exercises the
// hierarchy even though those presets compile with NDEBUG.
#if !defined(NDEBUG) || defined(ICEWAFL_SYNC_DEBUG)
constexpr bool kRankChecksDefault = true;
#else
constexpr bool kRankChecksDefault = false;
#endif

void DefaultViolationHandler(const char* message) {
  std::fprintf(stderr, "icewafl lock-rank violation: %s\n", message);
  std::abort();
}

std::atomic<LockRankViolationHandler> g_violation_handler{&DefaultViolationHandler};

// Ranks currently held by this thread, in acquisition order. A vector (not
// a fixed array) because block-policy fanout can hold registry + session +
// several channel locks transiently; depth stays single digits in practice.
thread_local std::vector<int> t_held_ranks;

}  // namespace

std::atomic<bool> g_rank_checks_enabled{kRankChecksDefault};

void OnLockAcquired(int rank) {
  for (int held : t_held_ranks) {
    if (held >= rank) {
      char message[160];
      std::snprintf(message, sizeof(message),
                    "acquiring rank %d while already holding rank %d "
                    "(order must be strictly increasing: registry 10 -> "
                    "session 20 -> connection 30 -> channel 40 -> metrics 50)",
                    rank, held);
      g_violation_handler.load(std::memory_order_acquire)(message);
      break;
    }
  }
  t_held_ranks.push_back(rank);
}

void OnLockReleased(int rank) {
  // Remove the most recent matching entry; tolerate a miss so that turning
  // the check on between a Lock and its Unlock cannot crash.
  for (auto it = t_held_ranks.rbegin(); it != t_held_ranks.rend(); ++it) {
    if (*it == rank) {
      t_held_ranks.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace sync_internal

LockRankViolationHandler SetLockRankViolationHandler(LockRankViolationHandler handler) {
  if (handler == nullptr) handler = &sync_internal::DefaultViolationHandler;
  return sync_internal::g_violation_handler.exchange(handler,
                                                     std::memory_order_acq_rel);
}

bool EnableLockRankChecks(bool enabled) {
  return sync_internal::g_rank_checks_enabled.exchange(enabled,
                                                       std::memory_order_relaxed);
}

}  // namespace icewafl
