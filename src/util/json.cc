#include "util/json.h"

#include <cmath>

#include "util/strings.h"

namespace icewafl {

Result<Json> Json::Get(const std::string& key) const {
  if (type_ != Type::kObject) {
    return Status::TypeError("Get('" + key + "') on non-object JSON node");
  }
  auto it = object_.find(key);
  if (it == object_.end()) {
    return Status::NotFound("missing JSON key: '" + key + "'");
  }
  return it->second;
}

double Json::GetDouble(const std::string& key, double fallback) const {
  auto it = object_.find(key);
  return (it != object_.end() && it->second.is_number()) ? it->second.AsDouble()
                                                         : fallback;
}

int64_t Json::GetInt(const std::string& key, int64_t fallback) const {
  auto it = object_.find(key);
  return (it != object_.end() && it->second.is_number()) ? it->second.AsInt64()
                                                         : fallback;
}

bool Json::GetBool(const std::string& key, bool fallback) const {
  auto it = object_.find(key);
  return (it != object_.end() && it->second.is_bool()) ? it->second.AsBool()
                                                       : fallback;
}

std::string Json::GetString(const std::string& key, std::string fallback) const {
  auto it = object_.find(key);
  return (it != object_.end() && it->second.is_string()) ? it->second.AsString()
                                                         : fallback;
}

namespace {

void EscapeStringTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const std::string pad = indent > 0 ? std::string(indent * (depth + 1), ' ') : "";
  const std::string padEnd = indent > 0 ? std::string(indent * depth, ' ') : "";
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      if (std::isfinite(num_)) {
        out->append(FormatDouble(num_));
      } else {
        out->append("null");  // JSON has no Inf/NaN
      }
      break;
    case Type::kString:
      EscapeStringTo(str_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        out->append(nl);
        out->append(pad);
        v.DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) {
        out->append(nl);
        out->append(padEnd);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, v] : object_) {
        if (!first) out->push_back(',');
        first = false;
        out->append(nl);
        out->append(pad);
        EscapeStringTo(key, out);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        v.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) {
        out->append(nl);
        out->append(padEnd);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, 0, 0);
  return out;
}

std::string Json::DumpPretty() const {
  std::string out;
  DumpTo(&out, 2, 0);
  return out;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return num_ == other.num_;
    case Type::kString:
      return str_ == other.str_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

namespace {

/// Recursive-descent JSON parser over a raw character range.
class Parser {
 public:
  Parser(const char* begin, const char* end) : p_(begin), end_(end) {}

  Result<Json> ParseDocument() {
    Json root;
    Status st = ParseValue(&root);
    if (!st.ok()) return st;
    SkipWs();
    if (p_ != end_) return Err("trailing characters after JSON document");
    return root;
  }

 private:
  Status Err(const std::string& msg) {
    return Status::ParseError(msg + " (at offset " +
                              std::to_string(consumed_) + ")");
  }

  void SkipWs() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      Advance();
    }
  }

  void Advance() {
    ++p_;
    ++consumed_;
  }

  bool Consume(char c) {
    if (p_ != end_ && *p_ == c) {
      Advance();
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    const char* q = p_;
    size_t n = 0;
    while (*lit) {
      if (q == end_ || *q != *lit) return false;
      ++q;
      ++lit;
      ++n;
    }
    p_ = q;
    consumed_ += n;
    return true;
  }

  Status ParseValue(Json* out) {
    SkipWs();
    if (p_ == end_) return Err("unexpected end of input");
    switch (*p_) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        ICEWAFL_RETURN_NOT_OK(ParseString(&s));
        *out = Json(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeLiteral("true")) {
          *out = Json(true);
          return Status::OK();
        }
        return Err("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          *out = Json(false);
          return Status::OK();
        }
        return Err("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          *out = Json();
          return Status::OK();
        }
        return Err("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(Json* out) {
    Advance();  // '{'
    *out = Json::MakeObject();
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      if (p_ == end_ || *p_ != '"') return Err("expected object key");
      std::string key;
      ICEWAFL_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Err("expected ':' after object key");
      Json value;
      ICEWAFL_RETURN_NOT_OK(ParseValue(&value));
      out->Set(key, std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Err("expected ',' or '}' in object");
    }
  }

  Status ParseArray(Json* out) {
    Advance();  // '['
    *out = Json::MakeArray();
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      Json value;
      ICEWAFL_RETURN_NOT_OK(ParseValue(&value));
      out->Append(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Err("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    Advance();  // '"'
    out->clear();
    while (true) {
      if (p_ == end_) return Err("unterminated string");
      char c = *p_;
      Advance();
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p_ == end_) return Err("unterminated escape");
      char esc = *p_;
      Advance();
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (p_ == end_) return Err("truncated \\u escape");
            char h = *p_;
            Advance();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += h - '0';
            } else if (h >= 'a' && h <= 'f') {
              code += h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              code += h - 'A' + 10;
            } else {
              return Err("invalid hex digit in \\u escape");
            }
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Err("invalid escape character");
      }
    }
  }

  static void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseNumber(Json* out) {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) Advance();
    bool digits = false;
    auto eat_digits = [&] {
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') {
        Advance();
        digits = true;
      }
    };
    eat_digits();
    if (p_ != end_ && *p_ == '.') {
      Advance();
      eat_digits();
    }
    if (!digits) return Err("invalid number");
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      Advance();
      if (p_ != end_ && (*p_ == '-' || *p_ == '+')) Advance();
      bool exp_digits = false;
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') {
        Advance();
        exp_digits = true;
      }
      if (!exp_digits) return Err("invalid exponent");
    }
    auto value = ParseDouble(std::string(start, p_));
    if (!value.ok()) return value.status();
    *out = Json(value.ValueOrDie());
    return Status::OK();
  }

  const char* p_;
  const char* end_;
  size_t consumed_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  Parser parser(text.data(), text.data() + text.size());
  return parser.ParseDocument();
}

}  // namespace icewafl
