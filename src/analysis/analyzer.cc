#include "analysis/analyzer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/error_function.h"
#include "core/time_profile.h"
#include "dq/config.h"
#include "util/strings.h"

namespace icewafl {
namespace analysis {

namespace {

// Delay / timestamp-shift magnitudes beyond this are almost certainly a
// unit mistake (seconds vs milliseconds); one week, in seconds.
constexpr int64_t kShiftMagnitudeLimit = 7 * 24 * 3600;

std::string PathOf(const std::string& prefix, const std::string& key) {
  return prefix + "/" + key;
}
std::string PathOf(const std::string& prefix, size_t index) {
  return prefix + "/" + std::to_string(index);
}

/// Three-valued constant folding over a condition tree.
enum class Truth { kNever, kVaries, kAlways };

struct CondInfo {
  Truth truth = Truth::kVaries;
  /// The kNever derives from a literal {"type": "never"} — the
  /// documented off-switch — so the polluter-level IW201 is suppressed.
  bool intentional_never = false;
  /// An IW201 was already emitted inside the subtree (contradictory
  /// window intersection); don't repeat it at the polluter level.
  bool reported = false;
  /// Half-open firing window [start, end) when the subtree constrains
  /// event time (a time_window, or an AND containing ones).
  std::optional<std::pair<Timestamp, Timestamp>> window;
};

/// What a standard polluter injects — kept for the suite cross-check.
struct Injection {
  std::string path;
  std::string label;
  std::vector<std::string> attributes;  ///< empty = all attributes
  ErrorTraits traits;
};

/// Per-node-type allowlists of config keys, used by the IW402
/// unknown-key check. Matches exactly what the ToJson() serializers
/// emit (plus loader-accepted aliases like "<key>_type").
const std::map<std::string, std::set<std::string>>& ErrorKeys() {
  static const auto* keys = new std::map<std::string, std::set<std::string>>{
      {"gaussian_noise", {"type", "stddev", "multiplicative"}},
      {"uniform_noise", {"type", "lo", "hi"}},
      {"scale", {"type", "factor"}},
      {"offset", {"type", "delta"}},
      {"round", {"type", "precision"}},
      {"unit_conversion", {"type", "factor", "from_unit", "to_unit"}},
      {"outlier", {"type", "min_factor", "max_factor"}},
      {"missing_value", {"type"}},
      {"set_constant", {"type", "value", "value_type"}},
      {"incorrect_category", {"type", "categories"}},
      {"typo", {"type"}},
      {"digit_swap", {"type"}},
      {"sign_flip", {"type"}},
      {"case", {"type", "flip_probability"}},
      {"truncate", {"type", "max_length"}},
      {"swap_attributes", {"type"}},
      {"delay", {"type", "delay_seconds"}},
      {"frozen_value", {"type", "hold_seconds"}},
      {"timestamp_shift", {"type", "shift_seconds"}},
      {"timestamp_jitter", {"type", "max_jitter_seconds"}},
      {"derived", {"type", "base", "profile"}},
  };
  return *keys;
}

const std::map<std::string, std::set<std::string>>& ConditionKeys() {
  static const auto* keys = new std::map<std::string, std::set<std::string>>{
      {"always", {"type"}},
      {"never", {"type"}},
      {"random", {"type", "p"}},
      {"value", {"type", "attribute", "op", "operand", "operand_type"}},
      {"time_window", {"type", "start", "end"}},
      {"daily_window", {"type", "start_minute", "end_minute"}},
      {"profile_probability", {"type", "profile"}},
      {"and", {"type", "children"}},
      {"or", {"type", "children"}},
      {"not", {"type", "child"}},
      {"window_aggregate",
       {"type", "attribute", "window_seconds", "agg", "op", "threshold"}},
      {"hold", {"type", "inner", "hold_seconds"}},
  };
  return *keys;
}

const std::map<std::string, std::set<std::string>>& PolluterKeys() {
  static const auto* keys = new std::map<std::string, std::set<std::string>>{
      {"standard", {"type", "label", "error", "condition", "attributes"}},
      {"sequential", {"type", "label", "condition", "children"}},
      {"exclusive", {"type", "label", "condition", "children", "weights"}},
  };
  return *keys;
}

const std::map<std::string, std::set<std::string>>& ExpectationKeys() {
  static const auto* keys = new std::map<std::string, std::set<std::string>>{
      {"expect_column_values_to_not_be_null", {"type", "column"}},
      {"expect_column_values_to_be_null", {"type", "column"}},
      {"expect_column_values_to_be_between", {"type", "column", "min", "max"}},
      {"expect_column_values_to_match_regex", {"type", "column", "regex"}},
      {"expect_column_values_to_be_increasing",
       {"type", "column", "strictly"}},
      {"expect_column_pair_values_a_to_be_greater_than_b",
       {"type", "column_a", "column_b", "or_equal"}},
      {"expect_multicolumn_sum_to_equal",
       {"type", "columns", "total", "tolerance", "where_column",
        "where_value"}},
      {"expect_column_values_to_be_in_set", {"type", "column", "values"}},
      {"expect_column_values_to_be_unique", {"type", "column"}},
      {"expect_column_mean_to_be_between", {"type", "column", "min", "max"}},
      {"expect_column_stdev_to_be_between", {"type", "column", "min", "max"}},
      {"expect_column_value_lengths_to_be_between",
       {"type", "column", "min_length", "max_length"}},
      {"expect_column_values_to_be_of_type", {"type", "column", "value_type"}},
  };
  return *keys;
}

bool IsNumericType(ValueType type) {
  return type == ValueType::kInt64 || type == ValueType::kDouble;
}

class Analyzer {
 public:
  Analyzer(const AnalyzeOptions& options, Diagnostics* diags)
      : options_(options), diags_(diags) {}

  void AnalyzePipelineDoc(const Json& json) {
    if (!json.is_object()) {
      diags_->AddError("IW100", "/", "pipeline description is not a JSON object");
      return;
    }
    CheckKeys(json, "", {"name", "polluters"});
    if (!json.Has("polluters")) {
      diags_->AddError("IW100", "/", "missing field 'polluters'",
                       "a pipeline is {\"name\": ..., \"polluters\": [...]}");
      return;
    }
    const Json& polluters = json.fields().at("polluters");
    if (!polluters.is_array()) {
      diags_->AddError("IW100", "/polluters", "'polluters' must be an array");
      return;
    }
    for (size_t i = 0; i < polluters.items().size(); ++i) {
      AnalyzePolluter(polluters.items()[i], PathOf("/polluters", i));
    }
    ReportDuplicateLabels();
  }

  void AnalyzeSuiteDoc(const Json& json, const std::string& prefix) {
    if (!json.is_object()) {
      diags_->AddError("IW100", prefix + "/",
                       "suite description is not a JSON object");
      return;
    }
    CheckKeys(json, prefix, {"name", "expectations"});
    if (!json.Has("expectations")) {
      diags_->AddError("IW100", prefix + "/", "missing field 'expectations'");
      return;
    }
    const Json& expectations = json.fields().at("expectations");
    if (!expectations.is_array()) {
      diags_->AddError("IW100", prefix + "/expectations",
                       "'expectations' must be an array");
      return;
    }
    for (size_t i = 0; i < expectations.items().size(); ++i) {
      AnalyzeExpectation(expectations.items()[i],
                         PathOf(prefix + "/expectations", i));
    }
  }

  /// IW502: a standard polluter whose injected error no expectation can
  /// observe. Requires both documents; runs after both walks.
  void CrossCheckCoverage() {
    if (!saw_suite_) return;
    for (const Injection& inj : injections_) {
      if (Covered(inj)) continue;
      std::string targets;
      for (const std::string& a : inj.attributes) {
        if (!targets.empty()) targets += ", ";
        targets += "'" + a + "'";
      }
      if (targets.empty()) targets = "any attribute";
      diags_->AddWarning(
          "IW502", inj.path,
          "coverage gap: no expectation can detect errors injected by "
          "polluter '" + inj.label + "' (targets " + targets + ")",
          "add an expectation over the polluted column(s), or an "
          "increasing-timestamp expectation for temporal errors");
    }
  }

 private:
  // -- shared helpers -------------------------------------------------

  void CheckKeys(const Json& json, const std::string& path,
                 const std::set<std::string>& allowed) {
    for (const auto& [key, value] : json.fields()) {
      if (allowed.count(key) == 0) {
        diags_->AddWarning("IW402", PathOf(path, key),
                           "unknown config key '" + key + "' is ignored",
                           "remove it or fix the spelling");
      }
    }
  }

  /// Timestamp field shaped like the loader accepts: epoch number or
  /// "YYYY-MM-DD[ HH:MM:SS]" string. nullopt when absent or malformed
  /// (the loader reports malformed ones as IW100 elsewhere).
  std::optional<Timestamp> ReadTimestamp(const Json& json,
                                         const std::string& key) {
    if (!json.Has(key)) return std::nullopt;
    const Json& field = json.fields().at(key);
    if (field.is_number()) return field.AsInt64();
    if (field.is_string()) {
      auto parsed = ParseTimestamp(field.AsString());
      if (parsed.ok()) return parsed.ValueOrDie();
    }
    return std::nullopt;
  }

  std::optional<ValueType> SchemaTypeOf(const std::string& attribute) const {
    if (options_.schema == nullptr) return std::nullopt;
    auto index = options_.schema->IndexOf(attribute);
    if (!index.ok()) return std::nullopt;
    return options_.schema->attribute(index.ValueOrDie()).type;
  }

  // -- polluters ------------------------------------------------------

  void AnalyzePolluter(const Json& json, const std::string& path) {
    // Delegate shape validation to the real loader so lint and load
    // never disagree about what parses.
    auto built = PolluterFromJson(json, path);
    if (!built.ok()) {
      diags_->AddError("IW100", path,
                       "config does not load: " + built.status().message());
      return;
    }
    const std::string type = json.GetString("type", "");
    auto keys = PolluterKeys().find(type);
    if (keys != PolluterKeys().end()) CheckKeys(json, path, keys->second);
    const std::string label = json.GetString("label", type);
    labels_[label].push_back(path);

    CondInfo cond;
    if (json.Has("condition")) {
      cond = AnalyzeCondition(json.fields().at("condition"),
                              PathOf(path, "condition"));
    } else {
      cond.truth = Truth::kAlways;
    }
    if (cond.truth == Truth::kNever && !cond.intentional_never &&
        !cond.reported) {
      diags_->AddError("IW201", PathOf(path, "condition"),
                       "condition can never fire; polluter '" + label +
                           "' is dead",
                       "use {\"type\": \"never\"} if disabling it is "
                       "intentional");
    }

    if (type == "standard") {
      AnalyzeStandardPolluter(json, path, label);
    } else if (type == "sequential" || type == "exclusive") {
      const Json& children = json.fields().at("children");
      std::vector<CondInfo> child_conds;
      for (size_t i = 0; i < children.items().size(); ++i) {
        child_conds.push_back(AnalyzeChildPolluter(
            children.items()[i], PathOf(PathOf(path, "children"), i)));
      }
      if (type == "exclusive") {
        CheckExclusive(json, path, child_conds);
      }
    }
  }

  /// Like AnalyzePolluter but additionally reports the child's firing
  /// window so exclusive branches can be overlap-checked.
  CondInfo AnalyzeChildPolluter(const Json& json, const std::string& path) {
    AnalyzePolluter(json, path);
    if (json.is_object() && json.Has("condition")) {
      // Re-fold just the window; the full walk above already reported.
      return FoldWindowOnly(json.fields().at("condition"));
    }
    return {};
  }

  /// Window extraction without re-emitting diagnostics.
  CondInfo FoldWindowOnly(const Json& json) {
    Diagnostics scratch;
    Diagnostics* saved = diags_;
    diags_ = &scratch;
    CondInfo info = AnalyzeCondition(json, "");
    diags_ = saved;
    return info;
  }

  void AnalyzeStandardPolluter(const Json& json, const std::string& path,
                               const std::string& label) {
    std::vector<std::string> attributes;
    if (json.Has("attributes")) {
      const Json& attrs = json.fields().at("attributes");
      if (attrs.is_array()) {
        for (size_t i = 0; i < attrs.items().size(); ++i) {
          const Json& a = attrs.items()[i];
          if (!a.is_string()) continue;
          attributes.push_back(a.AsString());
          if (options_.schema != nullptr &&
              !options_.schema->Contains(a.AsString())) {
            diags_->AddError(
                "IW101", PathOf(PathOf(path, "attributes"), i),
                "unknown attribute '" + a.AsString() + "'",
                "schema columns: " + JoinNames());
          }
        }
      }
    }

    const Json& error_json = json.fields().at("error");
    const std::string error_path = PathOf(path, "error");
    ErrorTraits traits = AnalyzeError(error_json, error_path);

    // Value-domain vs column-type compatibility (IW102) and
    // timestamp-target hygiene (IW105).
    for (const std::string& attr : attributes) {
      auto type = SchemaTypeOf(attr);
      if (type.has_value()) {
        const bool numeric = IsNumericType(*type);
        if (traits.domain == ErrorDomain::kNumeric && !numeric) {
          diags_->AddError(
              "IW102", error_path,
              "numeric error '" + error_json.GetString("type", "?") +
                  "' targets non-numeric column '" + attr + "' (" +
                  ValueTypeName(*type) + ")",
              "pick a string-domain error or retarget the polluter");
        }
        if (traits.domain == ErrorDomain::kString &&
            *type != ValueType::kString) {
          diags_->AddError(
              "IW102", error_path,
              "string error '" + error_json.GetString("type", "?") +
                  "' targets non-string column '" + attr + "' (" +
                  ValueTypeName(*type) + ")");
        }
      }
      if (options_.schema != nullptr &&
          attr == options_.schema->timestamp_name() &&
          traits.domain != ErrorDomain::kMetadata) {
        diags_->AddWarning(
            "IW105", PathOf(path, "attributes"),
            "value error targets the timestamp column '" + attr + "'",
            "temporal errors (delay, timestamp_shift, ...) mutate "
            "timestamps safely; value errors corrupt stream order");
      }
    }

    // Arity constraints that would raise a runtime TypeError.
    const std::string error_type = error_json.GetString("type", "");
    if (error_type == "swap_attributes" && attributes.size() != 2) {
      diags_->AddError(
          "IW106", PathOf(path, "attributes"),
          "swap_attributes needs exactly 2 attributes, got " +
              std::to_string(attributes.size()));
    }

    injections_.push_back({path, label, attributes, traits});
  }

  void CheckExclusive(const Json& json, const std::string& path,
                      const std::vector<CondInfo>& child_conds) {
    const size_t n_children = json.fields().at("children").items().size();
    if (json.Has("weights")) {
      const Json& weights = json.fields().at("weights");
      const std::string wpath = PathOf(path, "weights");
      if (weights.is_array()) {
        if (weights.items().size() != n_children) {
          diags_->AddError(
              "IW403", wpath,
              "weights count (" + std::to_string(weights.items().size()) +
                  ") does not match children count (" +
                  std::to_string(n_children) + ")");
        }
        double sum = 0.0;
        for (const Json& w : weights.items()) {
          if (!w.is_number()) continue;
          if (w.AsDouble() < 0.0) {
            diags_->AddError("IW403", wpath, "negative branch weight");
          }
          sum += w.AsDouble();
        }
        if (!weights.items().empty() && sum <= 0.0) {
          diags_->AddError("IW403", wpath,
                           "branch weights sum to zero; no branch can be "
                           "selected");
        }
      }
    }
    // IW302: two exclusive branches whose firing windows overlap — both
    // are live at the same event times, so attribution of a given error
    // to a branch becomes ambiguous.
    for (size_t i = 0; i < child_conds.size(); ++i) {
      if (!child_conds[i].window.has_value()) continue;
      for (size_t j = i + 1; j < child_conds.size(); ++j) {
        if (!child_conds[j].window.has_value()) continue;
        const auto& [s1, e1] = *child_conds[i].window;
        const auto& [s2, e2] = *child_conds[j].window;
        if (std::max(s1, s2) < std::min(e1, e2)) {
          diags_->AddWarning(
              "IW302", PathOf(PathOf(path, "children"), j),
              "exclusive branches " + std::to_string(i) + " and " +
                  std::to_string(j) + " have overlapping time windows",
              "make the branch windows disjoint, or use a sequential "
              "polluter if simultaneous firing is intended");
        }
      }
    }
  }

  // -- error functions ------------------------------------------------

  ErrorTraits AnalyzeError(const Json& json, const std::string& path) {
    auto built = ErrorFunctionFromJson(json, path);
    if (!built.ok()) {
      diags_->AddError("IW100", path,
                       "config does not load: " + built.status().message());
      return {};
    }
    const std::string type = json.GetString("type", "");
    auto keys = ErrorKeys().find(type);
    if (keys != ErrorKeys().end()) CheckKeys(json, path, keys->second);

    if (type == "incorrect_category") {
      const Json& cats = json.fields().at("categories");
      if (cats.is_array() && cats.items().size() < 2) {
        diags_->AddError(
            "IW107", PathOf(path, "categories"),
            "incorrect_category needs at least 2 categories, got " +
                std::to_string(cats.items().size()),
            "with fewer than 2 there is no wrong category to pick");
      }
    }
    if (type == "delay" || type == "frozen_value" ||
        type == "timestamp_jitter") {
      const char* key = type == "delay" ? "delay_seconds"
                        : type == "frozen_value" ? "hold_seconds"
                                                 : "max_jitter_seconds";
      const int64_t seconds = json.GetInt(key, 0);
      if (seconds < 0) {
        diags_->AddError("IW303", PathOf(path, key),
                         "negative duration (" + std::to_string(seconds) +
                             "s)");
      } else if (seconds > kShiftMagnitudeLimit) {
        diags_->AddWarning(
            "IW304", PathOf(path, key),
            "duration of " + std::to_string(seconds) +
                "s exceeds one week; check the unit (seconds expected)");
      }
    }
    if (type == "timestamp_shift") {
      const int64_t shift = json.GetInt("shift_seconds", 0);
      if (std::abs(shift) > kShiftMagnitudeLimit) {
        diags_->AddWarning(
            "IW304", PathOf(path, "shift_seconds"),
            "shift of " + std::to_string(shift) +
                "s exceeds one week; check the unit (seconds expected)");
      }
    }
    if (type == "derived") {
      // Recurse for the base's own magnitude/arity checks; the traits of
      // the whole node already come from DerivedTemporalError.
      AnalyzeError(json.fields().at("base"), PathOf(path, "base"));
      AnalyzeProfile(json.fields().at("profile"), PathOf(path, "profile"));
    }
    return built.ValueOrDie()->Describe();
  }

  std::optional<ProfileBounds> AnalyzeProfile(const Json& json,
                                              const std::string& path) {
    auto built = TimeProfileFromJson(json, path);
    if (!built.ok()) {
      diags_->AddError("IW100", path,
                       "config does not load: " + built.status().message());
      return std::nullopt;
    }
    return built.ValueOrDie()->Bounds();
  }

  // -- conditions -----------------------------------------------------

  CondInfo AnalyzeCondition(const Json& json, const std::string& path) {
    auto built = ConditionFromJson(json, path);
    if (!built.ok()) {
      diags_->AddError("IW100", path,
                       "config does not load: " + built.status().message());
      return {};
    }
    const std::string type = json.GetString("type", "");
    auto keys = ConditionKeys().find(type);
    if (keys != ConditionKeys().end()) CheckKeys(json, path, keys->second);

    CondInfo info;
    if (type == "always") {
      info.truth = Truth::kAlways;
    } else if (type == "never") {
      info.truth = Truth::kNever;
      info.intentional_never = true;
    } else if (type == "random") {
      const double p = json.GetDouble("p", 0.0);
      if (p < 0.0 || p > 1.0) {
        diags_->AddError("IW203", PathOf(path, "p"),
                         "probability " + std::to_string(p) +
                             " outside [0, 1]");
      }
      if (p <= 0.0) {
        info.truth = Truth::kNever;
      } else if (p >= 1.0) {
        info.truth = Truth::kAlways;
        if (p == 1.0) {
          diags_->AddWarning("IW202", PathOf(path, "p"),
                             "random condition with p = 1 always fires",
                             "use {\"type\": \"always\"} to make the "
                             "intent explicit");
        }
      }
    } else if (type == "value") {
      AnalyzeValueCondition(json, path);
    } else if (type == "time_window") {
      info = AnalyzeTimeWindow(json, path);
    } else if (type == "daily_window") {
      info = AnalyzeDailyWindow(json, path);
    } else if (type == "profile_probability") {
      auto bounds = AnalyzeProfile(json.fields().at("profile"),
                                   PathOf(path, "profile"));
      if (bounds.has_value()) {
        if (bounds->hi <= 0.0) {
          info.truth = Truth::kNever;
        } else if (bounds->lo >= 1.0) {
          info.truth = Truth::kAlways;
          diags_->AddWarning(
              "IW202", PathOf(path, "profile"),
              "profile probability is constantly 1; the condition always "
              "fires",
              "use {\"type\": \"always\"}, or lower the profile");
        }
      }
    } else if (type == "and" || type == "or") {
      info = AnalyzeComposite(json, path, type == "and");
    } else if (type == "not") {
      CondInfo child = AnalyzeCondition(json.fields().at("child"),
                                        PathOf(path, "child"));
      info.reported = child.reported;
      if (child.truth == Truth::kAlways) info.truth = Truth::kNever;
      if (child.truth == Truth::kNever) info.truth = Truth::kAlways;
    } else if (type == "window_aggregate") {
      AnalyzeWindowAggregate(json, path);
    } else if (type == "hold") {
      const int64_t hold = json.GetInt("hold_seconds", 0);
      if (hold < 0) {
        diags_->AddError("IW303", PathOf(path, "hold_seconds"),
                         "negative duration (" + std::to_string(hold) + "s)");
      }
      CondInfo inner = AnalyzeCondition(json.fields().at("inner"),
                                        PathOf(path, "inner"));
      info.truth = inner.truth;
      info.intentional_never = inner.intentional_never;
      info.reported = inner.reported;
      // A hold extends the firing window; keep the inner window as a
      // lower estimate (good enough for overlap warnings).
      info.window = inner.window;
    }
    return info;
  }

  void AnalyzeValueCondition(const Json& json, const std::string& path) {
    const std::string attr = json.GetString("attribute", "");
    auto type = SchemaTypeOf(attr);
    if (options_.schema != nullptr && !options_.schema->Contains(attr)) {
      diags_->AddError("IW103", PathOf(path, "attribute"),
                       "condition references unknown attribute '" + attr +
                           "'",
                       "schema columns: " + JoinNames());
      return;
    }
    if (!type.has_value() || !json.Has("operand")) return;
    const Json& operand = json.fields().at("operand");
    if (operand.is_number() && *type == ValueType::kString) {
      diags_->AddError("IW104", PathOf(path, "operand"),
                       "numeric operand compared against string column '" +
                           attr + "'");
    } else if (operand.is_string() && IsNumericType(*type)) {
      diags_->AddError("IW104", PathOf(path, "operand"),
                       "string operand compared against numeric column '" +
                           attr + "'");
    }
  }

  CondInfo AnalyzeTimeWindow(const Json& json, const std::string& path) {
    CondInfo info;
    auto start = ReadTimestamp(json, "start");
    auto end = ReadTimestamp(json, "end");
    const Timestamp s = start.value_or(INT64_MIN);
    const Timestamp e = end.value_or(INT64_MAX);
    if (s >= e) {
      diags_->AddError("IW204", path,
                       "empty time window: start >= end (the window is "
                       "half-open [start, end))");
      info.truth = Truth::kNever;
      info.reported = true;  // IW204 already explains the dead window
      info.window = {{s, s}};
      return info;
    }
    info.window = {{s, e}};
    if (!start.has_value() && !end.has_value()) {
      info.truth = Truth::kAlways;
    }
    // Against the declared stream bounds (ProcessOptions).
    if ((options_.stream_end.has_value() && s >= *options_.stream_end) ||
        (options_.stream_start.has_value() && e <= *options_.stream_start)) {
      diags_->AddWarning("IW301", path,
                         "time window lies entirely outside the stream "
                         "bounds; the condition never fires on this stream");
    }
    return info;
  }

  CondInfo AnalyzeDailyWindow(const Json& json, const std::string& path) {
    CondInfo info;
    const int64_t start = json.GetInt("start_minute", 0);
    const int64_t end = json.GetInt("end_minute", 1439);
    if (start < 0 || start > 1439 || end < 0 || end > 1439) {
      diags_->AddError("IW205", path,
                       "daily window minutes must lie in [0, 1439], got [" +
                           std::to_string(start) + ", " +
                           std::to_string(end) + "]",
                       "minutes since midnight; 1439 = 23:59");
    }
    if (start == 0 && end >= 1439) info.truth = Truth::kAlways;
    return info;
  }

  CondInfo AnalyzeComposite(const Json& json, const std::string& path,
                            bool conjunction) {
    const Json& children = json.fields().at("children");
    std::vector<CondInfo> infos;
    for (size_t i = 0; i < children.items().size(); ++i) {
      infos.push_back(AnalyzeCondition(children.items()[i],
                                       PathOf(PathOf(path, "children"), i)));
    }
    CondInfo info;
    if (infos.empty()) {
      // Loader semantics: an empty AND is vacuously true, an empty OR
      // vacuously false.
      info.truth = conjunction ? Truth::kAlways : Truth::kNever;
      return info;
    }
    size_t never = 0, always = 0;
    bool intentional = false, reported = false;
    for (const CondInfo& c : infos) {
      never += c.truth == Truth::kNever;
      always += c.truth == Truth::kAlways;
      intentional |= c.intentional_never;
      reported |= c.reported;
    }
    info.reported = reported;
    if (conjunction) {
      if (never > 0) {
        info.truth = Truth::kNever;
        info.intentional_never = intentional;
      } else if (always == infos.size()) {
        info.truth = Truth::kAlways;
      }
      // Intersect the children's firing windows; an empty intersection
      // is a contradiction no single child reveals.
      Timestamp lo = INT64_MIN, hi = INT64_MAX;
      size_t windows = 0;
      for (const CondInfo& c : infos) {
        if (!c.window.has_value()) continue;
        ++windows;
        lo = std::max(lo, c.window->first);
        hi = std::min(hi, c.window->second);
      }
      if (windows > 0) info.window = {{lo, hi}};
      if (windows >= 2 && lo >= hi && info.truth != Truth::kNever) {
        diags_->AddError("IW201", path,
                         "time windows of the 'and' children do not "
                         "intersect; the condition can never fire");
        info.truth = Truth::kNever;
        info.reported = true;
      }
    } else {
      if (always > 0) {
        info.truth = Truth::kAlways;
      } else if (never == infos.size()) {
        info.truth = Truth::kNever;
        info.intentional_never = intentional;
      }
      // Union hull of the children's windows (only if all constrain time).
      Timestamp lo = INT64_MAX, hi = INT64_MIN;
      bool all_windowed = true;
      for (const CondInfo& c : infos) {
        if (!c.window.has_value()) {
          all_windowed = false;
          break;
        }
        lo = std::min(lo, c.window->first);
        hi = std::max(hi, c.window->second);
      }
      if (all_windowed && lo < hi) info.window = {{lo, hi}};
    }
    return info;
  }

  void AnalyzeWindowAggregate(const Json& json, const std::string& path) {
    const std::string attr = json.GetString("attribute", "");
    if (options_.schema != nullptr && !options_.schema->Contains(attr)) {
      diags_->AddError("IW103", PathOf(path, "attribute"),
                       "condition references unknown attribute '" + attr +
                           "'",
                       "schema columns: " + JoinNames());
    } else {
      auto type = SchemaTypeOf(attr);
      if (type.has_value() && !IsNumericType(*type)) {
        diags_->AddError("IW104", PathOf(path, "attribute"),
                         "window aggregate over non-numeric column '" +
                             attr + "' (" + ValueTypeName(*type) + ")");
      }
    }
    const int64_t window = json.GetInt("window_seconds", 0);
    if (window <= 0) {
      diags_->AddError("IW303", PathOf(path, "window_seconds"),
                       "aggregation window must be positive, got " +
                           std::to_string(window) + "s");
    }
  }

  // -- expectations ---------------------------------------------------

  void AnalyzeExpectation(const Json& json, const std::string& path) {
    auto built = dq::ExpectationFromJson(json, path);
    if (!built.ok()) {
      diags_->AddError("IW100", path,
                       "config does not load: " + built.status().message());
      return;
    }
    saw_suite_ = true;
    const std::string type = json.GetString("type", "");
    auto keys = ExpectationKeys().find(type);
    if (keys != ExpectationKeys().end()) CheckKeys(json, path, keys->second);

    for (const char* key : {"column", "column_a", "column_b", "where_column"}) {
      if (!json.Has(key)) continue;
      const Json& col = json.fields().at(key);
      if (!col.is_string()) continue;
      RecordSuiteColumn(col.AsString(), PathOf(path, key));
    }
    if (json.Has("columns") && json.fields().at("columns").is_array()) {
      const Json& cols = json.fields().at("columns");
      for (size_t i = 0; i < cols.items().size(); ++i) {
        if (cols.items()[i].is_string()) {
          RecordSuiteColumn(cols.items()[i].AsString(),
                            PathOf(PathOf(path, "columns"), i));
        }
      }
    }
    if (type == "expect_column_values_to_be_increasing") {
      suite_has_increasing_ = true;
    }

    // IW503: ranges that no value (or length) can ever satisfy.
    const auto check_range = [&](const char* lo_key, const char* hi_key) {
      if (!json.Has(lo_key) || !json.Has(hi_key)) return;
      const Json& lo = json.fields().at(lo_key);
      const Json& hi = json.fields().at(hi_key);
      if (lo.is_number() && hi.is_number() && lo.AsDouble() > hi.AsDouble()) {
        diags_->AddError(
            "IW503", path,
            std::string("empty range: ") + lo_key + " (" +
                std::to_string(lo.AsDouble()) + ") > " + hi_key + " (" +
                std::to_string(hi.AsDouble()) + "); the expectation can "
                "never pass on non-empty data");
      }
    };
    check_range("min", "max");
    check_range("min_length", "max_length");
  }

  void RecordSuiteColumn(const std::string& column, const std::string& path) {
    suite_columns_.insert(column);
    if (options_.schema != nullptr && !options_.schema->Contains(column)) {
      diags_->AddError("IW501", path,
                       "expectation references unknown column '" + column +
                           "'",
                       "schema columns: " + JoinNames());
    }
  }

  bool Covered(const Injection& inj) const {
    // Temporal/metadata errors surface as out-of-order or shifted
    // timestamps — an increasing-timestamp expectation observes them.
    if (inj.traits.mutates_timestamp || inj.traits.delays_arrival) {
      return suite_has_increasing_;
    }
    if (inj.attributes.empty()) {
      // A value error with no target attributes mutates nothing
      // (attribute resolution yields an empty index set); there is
      // nothing for a suite to detect.
      return true;
    }
    return std::any_of(inj.attributes.begin(), inj.attributes.end(),
                       [&](const std::string& a) {
                         return suite_columns_.count(a) > 0;
                       });
  }

  // -- bookkeeping ----------------------------------------------------

  void ReportDuplicateLabels() {
    for (const auto& [label, paths] : labels_) {
      if (paths.size() < 2) continue;
      for (size_t i = 1; i < paths.size(); ++i) {
        diags_->AddWarning(
            "IW401", paths[i],
            "duplicate polluter label '" + label + "' (also used at " +
                paths[0] + "); PollutionLog entries will be "
                "indistinguishable",
            "give every polluter a unique 'label'");
      }
    }
  }

  std::string JoinNames() const {
    if (options_.schema == nullptr) return "";
    std::string out;
    for (const std::string& n : options_.schema->Names()) {
      if (!out.empty()) out += ", ";
      out += n;
    }
    return out;
  }

  const AnalyzeOptions& options_;
  Diagnostics* diags_;
  std::map<std::string, std::vector<std::string>> labels_;
  std::vector<Injection> injections_;
  std::set<std::string> suite_columns_;
  bool suite_has_increasing_ = false;
  bool saw_suite_ = false;
};

AnalyzeOptions g_hook_options;

}  // namespace

Diagnostics AnalyzePipeline(const Json& pipeline_json,
                            const AnalyzeOptions& options) {
  Diagnostics diags;
  Analyzer(options, &diags).AnalyzePipelineDoc(pipeline_json);
  return diags;
}

Diagnostics AnalyzeSuite(const Json& suite_json,
                         const AnalyzeOptions& options) {
  Diagnostics diags;
  Analyzer(options, &diags).AnalyzeSuiteDoc(suite_json, "");
  return diags;
}

Diagnostics AnalyzeArtifacts(const Json& pipeline_json, const Json* suite_json,
                             const AnalyzeOptions& options) {
  Diagnostics diags;
  Analyzer analyzer(options, &diags);
  analyzer.AnalyzePipelineDoc(pipeline_json);
  if (suite_json != nullptr) {
    analyzer.AnalyzeSuiteDoc(*suite_json, "suite:");
    analyzer.CrossCheckCoverage();
  }
  return diags;
}

namespace {

/// "prefix a, b, c" — or "" when the vocabulary was not provided, so
/// no hint is attached.
std::string JoinHint(const std::string& prefix,
                     const std::vector<std::string>& words) {
  if (words.empty()) return "";
  std::string hint = prefix;
  for (size_t i = 0; i < words.size(); ++i) {
    if (i > 0) hint += ", ";
    hint += words[i];
  }
  return hint;
}

}  // namespace

bool LooksLikeServeConfig(const Json& json) {
  return json.is_object() &&
         (json.Has("scenario") || json.Has("sessions")) &&
         !json.Has("polluters") && !json.Has("expectations");
}

namespace {

/// Per-session checks shared by both document shapes. `prefix` is ""
/// for the legacy top-level form or "/sessions/<i>" for an array
/// entry; `max_runs_key` is "max_sessions" (legacy) or "max_runs".
void AnalyzeSessionEntry(const Json& entry, const std::string& prefix,
                         const char* max_runs_key,
                         const ServeAnalyzeOptions& options,
                         std::set<std::string>* seen_names,
                         Diagnostics* diags) {
  // IW605: the scenario is the one mandatory per-session field.
  std::string scenario;
  if (!entry.Has("scenario") ||
      !entry.Get("scenario").ValueOrDie().is_string() ||
      entry.GetString("scenario", "").empty()) {
    diags->AddError("IW605", prefix + "/scenario", "missing scenario name",
                    JoinHint("one of: ", options.known_scenarios));
  } else {
    scenario = entry.GetString("scenario", "");
    if (!options.known_scenarios.empty()) {
      bool known = false;
      for (const std::string& candidate : options.known_scenarios) {
        if (candidate == scenario) known = true;
      }
      if (!known) {
        diags->AddError("IW605", prefix + "/scenario",
                        "unknown scenario '" + scenario + "'",
                        JoinHint("one of: ", options.known_scenarios));
      }
    }
  }

  // IW607: the session name clients subscribe with (defaults to the
  // scenario). Must be a usable wire id and unique across entries.
  std::string name = scenario;
  if (entry.Has("name")) {
    const Json value = entry.Get("name").ValueOrDie();
    if (!value.is_string()) {
      diags->AddError("IW607", prefix + "/name",
                      "session name must be a string");
      name.clear();
    } else if (value.AsString().empty()) {
      diags->AddError("IW607", prefix + "/name",
                      "session name must not be empty");
      name.clear();
    } else if (value.AsString().size() > 256) {
      diags->AddError("IW607", prefix + "/name",
                      "session name of " +
                          std::to_string(value.AsString().size()) +
                          " bytes exceeds the 256-byte wire limit");
      name.clear();
    } else {
      name = value.AsString();
      // IW615: control characters would corrupt metric labels, log
      // lines, and the admin channel's JSON frames.
      for (char c : name) {
        const auto byte = static_cast<unsigned char>(c);
        if (byte < 0x20 || byte == 0x7f) {
          diags->AddError("IW615", prefix + "/name",
                          "session name contains control characters",
                          "names appear in wire frames and metric labels; "
                          "use printable characters");
          name.clear();
          break;
        }
      }
    }
  }
  if (!name.empty() && !seen_names->insert(name).second) {
    diags->AddError("IW607", prefix + "/name",
                    "duplicate session name '" + name + "'",
                    "session names must be unique across entries");
  }

  // IW606: sign/minimum constraints on the per-session numerics.
  struct Bound {
    const char* key;
    int64_t minimum;
  };
  for (const Bound& bound : {Bound{"seed", 0}, Bound{"parallelism", 1},
                             Bound{"min_subscribers", 1},
                             Bound{max_runs_key, 0}}) {
    if (!entry.Has(bound.key)) continue;
    const Json value = entry.Get(bound.key).ValueOrDie();
    const std::string path = prefix + "/" + bound.key;
    if (!value.is_number()) {
      diags->AddError("IW606", path,
                      std::string(bound.key) + " must be a number");
    } else if (value.AsInt64() < bound.minimum) {
      diags->AddError("IW606", path,
                      std::string(bound.key) + " must be >= " +
                          std::to_string(bound.minimum) + " (got " +
                          std::to_string(value.AsInt64()) + ")");
    }
  }

  // An embedded cleaning document gets the full IW70x analysis, rooted
  // at this entry (no schema here — the serve path binds it later).
  // A null cleaner means "no cleaner" — ServeConfig::FromJson parity.
  if (entry.Has("cleaner") &&
      !entry.Get("cleaner").ValueOrDie().is_null()) {
    CleanerAnalyzeOptions cleaner_options;
    cleaner_options.path_root = prefix + "/cleaner";
    diags->Merge(AnalyzeCleanerRules(entry.Get("cleaner").ValueOrDie(),
                                     cleaner_options));
  }
}

}  // namespace

Diagnostics AnalyzeServeConfig(const Json& serve_json,
                               const ServeAnalyzeOptions& options) {
  Diagnostics diags;
  if (!serve_json.is_object()) {
    diags.AddError("IW605", "", "serve config must be a JSON object");
    return diags;
  }

  const bool has_scenario = serve_json.Has("scenario");
  const bool has_sessions = serve_json.Has("sessions");
  // IW608: the two document shapes are mutually exclusive.
  if (has_scenario && has_sessions) {
    diags.AddError("IW608", "/sessions",
                   "use either a top-level \"scenario\" or a \"sessions\" "
                   "array, not both");
  }

  std::set<std::string> seen_names;
  if (has_sessions) {
    const Json sessions = serve_json.Get("sessions").ValueOrDie();
    if (!sessions.is_array() || sessions.items().empty()) {
      diags.AddError("IW608", "/sessions",
                     "\"sessions\" must be a non-empty array");
    } else {
      static const char* kSessionKeys[] = {"name",        "scenario",
                                           "seed",        "parallelism",
                                           "min_subscribers", "max_runs",
                                           "cleaner"};
      for (size_t i = 0; i < sessions.items().size(); ++i) {
        const Json& entry = sessions.items()[i];
        const std::string prefix = "/sessions/" + std::to_string(i);
        if (!entry.is_object()) {
          diags.AddError("IW608", prefix, "session entry must be an object");
          continue;
        }
        AnalyzeSessionEntry(entry, prefix, "max_runs", options, &seen_names,
                            &diags);
        for (const auto& field : entry.fields()) {
          bool known = false;
          for (const char* key : kSessionKeys) {
            if (field.first == key) known = true;
          }
          if (!known) {
            diags.AddWarning("IW604", prefix + "/" + field.first,
                             "unknown session key '" + field.first + "'");
          }
        }
      }
    }
  } else {
    AnalyzeSessionEntry(serve_json, "", "max_sessions", options, &seen_names,
                        &diags);
  }

  // IW601: TCP port range — for the streaming port and (when the
  // control plane is enabled) the admin port alike.
  for (const char* key : {"port", "admin_port"}) {
    if (!serve_json.Has(key)) continue;
    const Json port = serve_json.Get(key).ValueOrDie();
    const std::string path = std::string("/") + key;
    if (!port.is_number()) {
      diags.AddError("IW601", path, std::string(key) + " must be a number");
    } else if (port.AsInt64() < 0 || port.AsInt64() > 65535) {
      diags.AddError("IW601", path,
                     std::string(key) + " " + std::to_string(port.AsInt64()) +
                         " outside [0, 65535]",
                     "0 binds an ephemeral port");
    }
  }

  // IW602: slow-consumer policy vocabulary.
  if (serve_json.Has("slow_consumer")) {
    const Json policy = serve_json.Get("slow_consumer").ValueOrDie();
    if (!policy.is_string()) {
      diags.AddError("IW602", "/slow_consumer",
                     "slow_consumer must be a string",
                     JoinHint("one of: ", options.known_policies));
    } else if (!options.known_policies.empty()) {
      bool known = false;
      for (const std::string& candidate : options.known_policies) {
        if (candidate == policy.AsString()) known = true;
      }
      if (!known) {
        diags.AddError("IW602", "/slow_consumer",
                       "unknown slow-consumer policy '" + policy.AsString() +
                           "'",
                       JoinHint("one of: ", options.known_policies));
      }
    }
  }

  // IW603: a zero-capacity queue can never deliver a frame.
  if (serve_json.Has("queue_capacity")) {
    const Json capacity = serve_json.Get("queue_capacity").ValueOrDie();
    if (!capacity.is_number()) {
      diags.AddError("IW603", "/queue_capacity",
                     "queue_capacity must be a number");
    } else if (capacity.AsInt64() < 1) {
      diags.AddError("IW603", "/queue_capacity",
                     "queue_capacity must be >= 1 (got " +
                         std::to_string(capacity.AsInt64()) + ")");
    }
  }

  // IW609: the server-wide worker pool must be a positive integer. A
  // fractional count would truncate silently, zero can never drive a
  // session, and a value past the int range would overflow the pool
  // size on load.
  if (serve_json.Has("workers")) {
    const Json workers = serve_json.Get("workers").ValueOrDie();
    if (!workers.is_number()) {
      diags.AddError("IW609", "/workers",
                     "workers must be a positive integer");
    } else {
      const double value = workers.AsDouble();
      if (value != std::floor(value)) {
        diags.AddError("IW609", "/workers",
                       "workers must be a positive integer (got " +
                           FormatDouble(value) + ", which would truncate)");
      } else if (value < 1.0) {
        diags.AddError("IW609", "/workers",
                       "workers must be >= 1 (got " +
                           FormatDouble(value) + ")");
      } else if (value > 2147483647.0) {
        diags.AddError("IW609", "/workers",
                       "workers must fit a 32-bit integer (got " +
                           FormatDouble(value) + ")");
      }
    }
  }

  // IW604: unknown keys are warnings — likely typos of the above. The
  // per-session knobs are top-level keys only in the legacy shape.
  static const char* kServerKeys[] = {"sessions",       "host",
                                      "port",           "admin_port",
                                      "workers",        "queue_capacity",
                                      "slow_consumer"};
  static const char* kLegacyKeys[] = {"scenario", "name", "seed",
                                      "parallelism", "min_subscribers",
                                      "max_sessions", "cleaner"};
  for (const auto& entry : serve_json.fields()) {
    bool known = false;
    for (const char* key : kServerKeys) {
      if (entry.first == key) known = true;
    }
    if (!has_sessions) {
      for (const char* key : kLegacyKeys) {
        if (entry.first == key) known = true;
      }
    }
    if (!known) {
      diags.AddWarning("IW604", "/" + entry.first,
                       "unknown serve config key '" + entry.first + "'");
    }
  }
  if (serve_json.Has("host") &&
      !serve_json.Get("host").ValueOrDie().is_string()) {
    diags.AddError("IW606", "/host", "host must be a string");
  }
  return diags;
}

Diagnostics AnalyzeAdminRequest(const Json& request_json,
                                const AdminAnalyzeOptions& options) {
  Diagnostics diags;
  // IW610: the envelope itself.
  if (!request_json.is_object()) {
    diags.AddError("IW610", "", "admin request must be a JSON object",
                   "expected {\"id\": ..., \"method\": ..., \"params\": {...}}");
    return diags;
  }
  if (request_json.Has("id")) {
    const Json id = request_json.Get("id").ValueOrDie();
    if (!id.is_number() && !id.is_string()) {
      diags.AddError("IW610", "/id",
                     "request id must be a number or a string");
    }
  }
  if (!request_json.Has("method") ||
      !request_json.Get("method").ValueOrDie().is_string() ||
      request_json.GetString("method", "").empty()) {
    diags.AddError("IW610", "/method", "missing method name",
                   JoinHint("one of: ", options.known_methods));
    return diags;
  }
  const std::string method = request_json.GetString("method", "");
  Json params = Json::MakeObject();
  if (request_json.Has("params")) {
    const Json value = request_json.Get("params").ValueOrDie();
    if (!value.is_object()) {
      diags.AddError("IW610", "/params", "params must be an object");
      return diags;
    }
    params = value;
  }
  for (const auto& field : request_json.fields()) {
    if (field.first != "id" && field.first != "method" &&
        field.first != "params") {
      diags.AddWarning("IW604", "/" + field.first,
                       "unknown admin request key '" + field.first + "'");
    }
  }

  // IW611: method vocabulary. The per-method checks below would be
  // meaningless for an unknown method.
  if (!options.known_methods.empty()) {
    bool known = false;
    for (const std::string& candidate : options.known_methods) {
      if (candidate == method) known = true;
    }
    if (!known) {
      diags.AddError("IW611", "/method", "unknown method '" + method + "'",
                     JoinHint("one of: ", options.known_methods));
      return diags;
    }
  }

  // IW612: the session target of every per-session method.
  const bool needs_session_id =
      method == "get_config" || method == "swap_pipeline" ||
      method == "set_rate" || method == "stop_session" ||
      method == "set_cleaner";
  if (needs_session_id) {
    if (!params.Has("session") ||
        !params.Get("session").ValueOrDie().is_string() ||
        params.GetString("session", "").empty()) {
      diags.AddError("IW612", "/params/session",
                     method + " needs a \"session\" name (non-empty string)");
    }
  }
  if (method == "create_session") {
    if (!params.Has("session") ||
        !params.Get("session").ValueOrDie().is_object()) {
      diags.AddError(
          "IW612", "/params/session",
          "create_session needs a \"session\" entry object",
          "the same shape as one serve-config sessions[] entry");
    }
  }

  // IW613: swap_pipeline's two mutually exclusive payload forms.
  if (method == "swap_pipeline") {
    const bool has_pipeline = params.Has("pipeline");
    const bool has_scenario = params.Has("scenario");
    if (has_pipeline == has_scenario) {
      diags.AddError("IW613", "/params",
                     "swap_pipeline needs exactly one of \"pipeline\" (a "
                     "pipeline document) or \"scenario\" (a built-in name)");
    } else if (has_pipeline &&
               !params.Get("pipeline").ValueOrDie().is_object()) {
      diags.AddError("IW613", "/params/pipeline",
                     "\"pipeline\" must be a pipeline document object");
    } else if (has_scenario) {
      const Json scenario = params.Get("scenario").ValueOrDie();
      if (!scenario.is_string() || scenario.AsString().empty()) {
        diags.AddError("IW613", "/params/scenario",
                       "\"scenario\" must be a non-empty string",
                       JoinHint("one of: ", options.known_scenarios));
      } else if (!options.known_scenarios.empty()) {
        bool known = false;
        for (const std::string& candidate : options.known_scenarios) {
          if (candidate == scenario.AsString()) known = true;
        }
        if (!known) {
          diags.AddError("IW613", "/params/scenario",
                         "unknown scenario '" + scenario.AsString() + "'",
                         JoinHint("one of: ", options.known_scenarios));
        }
      }
    }
  }

  // IW616: set_cleaner's payload — a cleaning document installs, null
  // removes. A document object gets the full IW70x analysis (no schema
  // here; the server binds against the session's schema on apply).
  if (method == "set_cleaner") {
    if (!params.Has("rules")) {
      diags.AddError("IW616", "/params/rules",
                     "set_cleaner needs \"rules\"",
                     "a cleaning document object, or null to remove the "
                     "session's cleaner");
    } else {
      const Json rules = params.Get("rules").ValueOrDie();
      if (rules.is_object()) {
        CleanerAnalyzeOptions cleaner_options;
        cleaner_options.path_root = "/params/rules";
        diags.Merge(AnalyzeCleanerRules(rules, cleaner_options));
      } else if (!rules.is_null()) {
        diags.AddError("IW616", "/params/rules",
                       "\"rules\" must be a cleaning document object or "
                       "null");
      }
    }
  }

  // IW614: the pacing rate must be a usable number.
  if (method == "set_rate") {
    if (!params.Has("tuples_per_sec")) {
      diags.AddError("IW614", "/params/tuples_per_sec",
                     "set_rate needs \"tuples_per_sec\"",
                     "rows per second; 0 serves unpaced");
    } else {
      const Json rate = params.Get("tuples_per_sec").ValueOrDie();
      if (!rate.is_number()) {
        diags.AddError("IW614", "/params/tuples_per_sec",
                       "tuples_per_sec must be a number");
      } else if (!std::isfinite(rate.AsDouble()) || rate.AsDouble() < 0) {
        diags.AddError("IW614", "/params/tuples_per_sec",
                       "tuples_per_sec must be finite and >= 0 (got " +
                           FormatDouble(rate.AsDouble()) + ")");
      }
    }
  }

  // IW604: unknown params keys for a known method are likely typos.
  struct MethodKeys {
    const char* method;
    std::vector<const char*> keys;
  };
  static const MethodKeys kMethodKeys[] = {
      {"list_sessions", {}},
      {"get_metrics", {}},
      {"get_config", {"session"}},
      {"stop_session", {"session"}},
      {"swap_pipeline", {"session", "pipeline", "scenario"}},
      {"set_rate", {"session", "tuples_per_sec"}},
      {"create_session", {"session"}},
      {"set_cleaner", {"session", "rules"}},
  };
  for (const MethodKeys& entry : kMethodKeys) {
    if (entry.method != method) continue;
    for (const auto& field : params.fields()) {
      bool known = false;
      for (const char* key : entry.keys) {
        if (field.first == key) known = true;
      }
      if (!known) {
        diags.AddWarning("IW604", "/params/" + field.first,
                         "unknown " + method + " params key '" + field.first +
                             "'");
      }
    }
  }
  return diags;
}

Status AnalyzeOrDie(const Json& pipeline_json, const AnalyzeOptions& options) {
  Diagnostics diags = AnalyzePipeline(pipeline_json, options);
  if (!diags.HasErrors()) return Status::OK();
  return Status::InvalidArgument("pipeline rejected by static analysis:\n" +
                                 diags.ToReport());
}

void InstallAnalyzeOrDieHook(AnalyzeOptions options) {
  g_hook_options = std::move(options);
  SetPipelineLoadHook([](const Json& pipeline_json) {
    return AnalyzeOrDie(pipeline_json, g_hook_options);
  });
}

void UninstallAnalyzeOrDieHook() { SetPipelineLoadHook(nullptr); }

}  // namespace analysis
}  // namespace icewafl
