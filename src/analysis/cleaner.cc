#include <cstdint>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "stream/value.h"

namespace icewafl {
namespace analysis {

// Static analysis of cleaning documents (clean::RulesFromJson's input),
// IW701..IW707. The analyzer works on the raw JSON — never on bound
// rules — so a finding always carries an RFC 6901 pointer and the lint
// runs without a stream. The vocabulary below deliberately mirrors
// clean/config.cc and clean/rules.cc; the lint-soundness property test
// holds the two in sync (a lint-clean document must bind and run).

namespace {

const char* const kDetectTypes[] = {
    "range", "not_null", "regex", "type", "cross_field",
    "rate_of_change", "stuck_at",
};

const char* const kRepairNames[] = {
    "drop", "set_null", "clamp", "last_good", "window_mean", "window_median",
};

const char* const kCompareOps[] = {"lt", "le", "gt", "ge", "eq", "ne"};

const char* const kValueTypes[] = {"null", "bool", "int64", "double",
                                   "string"};

template <size_t N>
bool Contains(const char* const (&names)[N], const std::string& name) {
  for (const char* candidate : names) {
    if (name == candidate) return true;
  }
  return false;
}

template <size_t N>
std::string Vocabulary(const char* const (&names)[N]) {
  std::string out = "one of: ";
  for (size_t i = 0; i < N; ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

/// Shared column resolution: IW703 for an unknown column and (when
/// `numeric` is asked for, mirroring BindContext::ResolveNumeric) for a
/// string-typed column a numeric accessor could never read.
void CheckColumn(const SchemaPtr& schema, const std::string& column,
                 const std::string& path, bool numeric, Diagnostics* diags) {
  if (schema == nullptr) return;
  auto idx = schema->IndexOf(column);
  if (!idx.ok()) {
    std::string hint = "schema columns: ";
    for (size_t i = 0; i < schema->num_attributes(); ++i) {
      if (i > 0) hint += ", ";
      hint += schema->attribute(i).name;
    }
    diags->AddError("IW703", path, "unknown column '" + column + "'", hint);
    return;
  }
  if (numeric) {
    const ValueType type = schema->attribute(idx.ValueOrDie()).type;
    if (type != ValueType::kInt64 && type != ValueType::kDouble &&
        type != ValueType::kBool) {
      diags->AddError("IW703", path,
                      "column '" + column + "' has type " +
                          ValueTypeName(type) +
                          ", but this position needs a numeric column");
    }
  }
}

/// Field fetch used by every per-rule check: reports IW702 (malformed
/// entry) when the key is absent or of the wrong JSON kind and returns
/// false; the caller skips the dependent checks.
bool RequireKey(const Json& json, const std::string& key,
                const std::string& path, bool want_string, const char* code,
                Diagnostics* diags) {
  if (!json.Has(key)) {
    diags->AddError(code, path + "/" + key, "missing \"" + key + "\"");
    return false;
  }
  const Json value = json.Get(key).ValueOrDie();
  const bool ok = want_string ? value.is_string() : value.is_number();
  if (!ok) {
    diags->AddError(code, path + "/" + key,
                    "\"" + key + "\" must be a " +
                        (want_string ? "string" : "number"));
    return false;
  }
  if (want_string && value.AsString().empty()) {
    diags->AddError(code, path + "/" + key,
                    "\"" + key + "\" must not be empty");
    return false;
  }
  return true;
}

/// One "when" guard object: {"column", "op", "value"}.
void AnalyzeGuard(const Json& guard, const std::string& path,
                  const CleanerAnalyzeOptions& options, Diagnostics* diags) {
  if (!guard.is_object()) {
    diags->AddError("IW702", path, "guard must be an object",
                    "expected {\"column\": ..., \"op\": ..., \"value\": ...}");
    return;
  }
  if (RequireKey(guard, "column", path, /*want_string=*/true, "IW702",
                 diags)) {
    CheckColumn(options.schema, guard.GetString("column", ""),
                path + "/column", /*numeric=*/true, diags);
  }
  if (RequireKey(guard, "op", path, /*want_string=*/true, "IW702", diags)) {
    const std::string op = guard.GetString("op", "");
    if (!Contains(kCompareOps, op)) {
      diags->AddError("IW704", path + "/op", "unknown compare op '" + op + "'",
                      Vocabulary(kCompareOps));
    }
  }
  RequireKey(guard, "value", path, /*want_string=*/false, "IW702", diags);
}

/// One entry of the "rules" array.
void AnalyzeRule(const Json& rule, const std::string& path, size_t history,
                 const CleanerAnalyzeOptions& options,
                 std::set<std::string>* seen_labels, Diagnostics* diags) {
  if (!rule.is_object()) {
    diags->AddError("IW702", path, "rule must be an object",
                    "expected {\"label\": ..., \"column\": ..., "
                    "\"detect\": {...}, \"repair\": ...}");
    return;
  }
  if (RequireKey(rule, "label", path, /*want_string=*/true, "IW702", diags)) {
    const std::string label = rule.GetString("label", "");
    if (!seen_labels->insert(label).second) {
      diags->AddWarning("IW706", path + "/label",
                        "duplicate rule label '" + label + "'",
                        "labels key the per-rule metrics and the repair "
                        "log; duplicates merge their series");
    }
  }

  std::string detect_type;
  bool detect_ok = false;
  Json detect;
  if (!rule.Has("detect")) {
    diags->AddError("IW702", path + "/detect", "missing \"detect\"");
  } else if (detect = rule.Get("detect").ValueOrDie(); !detect.is_object()) {
    diags->AddError("IW702", path + "/detect", "\"detect\" must be an object");
  } else if (RequireKey(detect, "type", path + "/detect",
                        /*want_string=*/true, "IW702", diags)) {
    detect_type = detect.GetString("type", "");
    if (!Contains(kDetectTypes, detect_type)) {
      diags->AddError("IW704", path + "/detect/type",
                      "unknown detect type '" + detect_type + "'",
                      Vocabulary(kDetectTypes));
      detect_type.clear();
    } else {
      detect_ok = true;
    }
  }

  // The rule's own column: not_null / regex / type read any column,
  // every other detect needs a numeric one (clean/rules.cc Bind).
  if (RequireKey(rule, "column", path, /*want_string=*/true, "IW702", diags)) {
    const bool numeric = detect_ok && detect_type != "not_null" &&
                         detect_type != "regex" && detect_type != "type";
    CheckColumn(options.schema, rule.GetString("column", ""),
                path + "/column", numeric, diags);
  }

  std::string repair;
  if (RequireKey(rule, "repair", path, /*want_string=*/true, "IW702",
                 diags)) {
    repair = rule.GetString("repair", "");
    if (!Contains(kRepairNames, repair)) {
      diags->AddError("IW704", path + "/repair",
                      "unknown repair '" + repair + "'",
                      Vocabulary(kRepairNames));
      repair.clear();
    }
  }
  if (repair == "clamp" && detect_ok && detect_type != "range") {
    // IW705: clamp takes its bounds from the range detect.
    diags->AddError("IW705", path + "/repair",
                    "repair 'clamp' requires a range detect rule",
                    "clamp snaps to the range's [min, max]; use a "
                    "different repair or a range detect");
  }

  // Per-detect-type parameters (IW704).
  if (detect_type == "range") {
    const bool has_min = RequireKey(detect, "min", path + "/detect",
                                    /*want_string=*/false, "IW704", diags);
    const bool has_max = RequireKey(detect, "max", path + "/detect",
                                    /*want_string=*/false, "IW704", diags);
    if (has_min && has_max) {
      const double min = detect.Get("min").ValueOrDie().AsDouble();
      const double max = detect.Get("max").ValueOrDie().AsDouble();
      if (min > max) {
        diags->AddError("IW704", path + "/detect/min",
                        "range min " + std::to_string(min) +
                            " exceeds max " + std::to_string(max));
      }
    }
  } else if (detect_type == "regex") {
    if (RequireKey(detect, "pattern", path + "/detect", /*want_string=*/true,
                   "IW704", diags)) {
      const std::string pattern = detect.GetString("pattern", "");
      try {
        std::regex compiled(pattern, std::regex::ECMAScript);
      } catch (const std::regex_error& e) {
        diags->AddError("IW704", path + "/detect/pattern",
                        "invalid regex pattern '" + pattern +
                            "': " + e.what());
      }
    }
  } else if (detect_type == "type") {
    if (RequireKey(detect, "value_type", path + "/detect",
                   /*want_string=*/true, "IW704", diags)) {
      const std::string name = detect.GetString("value_type", "");
      if (!Contains(kValueTypes, name)) {
        diags->AddError("IW704", path + "/detect/value_type",
                        "unknown value type '" + name + "'",
                        Vocabulary(kValueTypes));
      }
    }
  } else if (detect_type == "cross_field") {
    if (RequireKey(detect, "op", path + "/detect", /*want_string=*/true,
                   "IW704", diags)) {
      const std::string op = detect.GetString("op", "");
      if (!Contains(kCompareOps, op)) {
        diags->AddError("IW704", path + "/detect/op",
                        "unknown compare op '" + op + "'",
                        Vocabulary(kCompareOps));
      }
    }
    if (RequireKey(detect, "other", path + "/detect", /*want_string=*/true,
                   "IW704", diags)) {
      CheckColumn(options.schema, detect.GetString("other", ""),
                  path + "/detect/other", /*numeric=*/true, diags);
    }
  } else if (detect_type == "rate_of_change") {
    if (RequireKey(detect, "max_change", path + "/detect",
                   /*want_string=*/false, "IW704", diags)) {
      const double max_change = detect.Get("max_change").ValueOrDie()
                                    .AsDouble();
      if (!(max_change > 0)) {
        diags->AddError("IW704", path + "/detect/max_change",
                        "max_change must be positive (got " +
                            std::to_string(max_change) + ")");
      }
    }
  } else if (detect_type == "stuck_at") {
    if (RequireKey(detect, "min_repeats", path + "/detect",
                   /*want_string=*/false, "IW704", diags)) {
      const int64_t repeats = detect.Get("min_repeats").ValueOrDie().AsInt64();
      if (repeats < 2) {
        diags->AddError("IW704", path + "/detect/min_repeats",
                        "min_repeats must be at least 2 (got " +
                            std::to_string(repeats) + ")");
      } else if (static_cast<size_t>(repeats) > history + 1) {
        // IW707: the ring buffer holds `history` accepted values, so a
        // stuck-at run longer than history+1 can never be observed.
        diags->AddWarning(
            "IW707", path + "/detect/min_repeats",
            "stuck_at needs " + std::to_string(repeats - 1) +
                " previous values but the document's history window "
                "holds only " + std::to_string(history) +
                "; this rule can never fire",
            "raise /history or lower min_repeats");
      }
    }
  }

  if (rule.Has("when")) {
    const Json when = rule.Get("when").ValueOrDie();
    if (when.is_object()) {
      AnalyzeGuard(when, path + "/when", options, diags);
    } else if (when.is_array()) {
      for (size_t i = 0; i < when.items().size(); ++i) {
        AnalyzeGuard(when.items()[i], path + "/when/" + std::to_string(i),
                     options, diags);
      }
    } else {
      diags->AddError("IW702", path + "/when",
                      "\"when\" must be a guard object or an array of them");
    }
  }

  // IW604: unknown rule keys are likely typos.
  for (const auto& field : rule.fields()) {
    if (field.first != "label" && field.first != "column" &&
        field.first != "detect" && field.first != "repair" &&
        field.first != "when") {
      diags->AddWarning("IW604", path + "/" + field.first,
                        "unknown rule key '" + field.first + "'");
    }
  }
}

}  // namespace

Diagnostics AnalyzeCleanerRules(const Json& rules_json,
                                const CleanerAnalyzeOptions& options) {
  Diagnostics diags;
  const std::string& root = options.path_root;
  // IW701: the document shape.
  if (!rules_json.is_object()) {
    diags.AddError("IW701", root, "cleaning document must be a JSON object",
                   "expected {\"name\": ..., \"rules\": [...]}");
    return diags;
  }
  if (rules_json.Has("name") &&
      !rules_json.Get("name").ValueOrDie().is_string()) {
    diags.AddError("IW701", root + "/name", "\"name\" must be a string");
  }
  if (rules_json.Has("key")) {
    const Json key = rules_json.Get("key").ValueOrDie();
    if (!key.is_string()) {
      diags.AddError("IW701", root + "/key", "\"key\" must be a string");
    } else {
      CheckColumn(options.schema, key.AsString(), root + "/key",
                  /*numeric=*/false, &diags);
    }
  }
  size_t history = 16;  // clean::CleaningRules default
  if (rules_json.Has("history")) {
    const Json value = rules_json.Get("history").ValueOrDie();
    if (!value.is_number() || value.AsInt64() < 1) {
      diags.AddError("IW701", root + "/history",
                     "\"history\" must be a positive number");
    } else {
      history = static_cast<size_t>(value.AsInt64());
    }
  }
  if (!rules_json.Has("rules")) {
    diags.AddError("IW701", root + "/rules", "missing \"rules\" array");
    return diags;
  }
  const Json rules = rules_json.Get("rules").ValueOrDie();
  if (!rules.is_array()) {
    diags.AddError("IW701", root + "/rules", "\"rules\" must be an array");
    return diags;
  }
  if (rules.items().empty()) {
    diags.AddWarning("IW701", root + "/rules",
                     "empty rules array: this cleaner never repairs "
                     "anything");
  }
  for (const auto& field : rules_json.fields()) {
    if (field.first != "name" && field.first != "key" &&
        field.first != "history" && field.first != "rules") {
      diags.AddWarning("IW604", root + "/" + field.first,
                       "unknown cleaning document key '" + field.first + "'");
    }
  }
  std::set<std::string> seen_labels;
  for (size_t i = 0; i < rules.items().size(); ++i) {
    AnalyzeRule(rules.items()[i], root + "/rules/" + std::to_string(i),
                history, options, &seen_labels, &diags);
  }
  return diags;
}

bool LooksLikeCleanerRules(const Json& json) {
  if (!json.is_object() || !json.Has("rules")) return false;
  if (json.Has("polluters") || json.Has("expectations") ||
      json.Has("sessions") || json.Has("scenario")) {
    return false;
  }
  const Json rules = json.Get("rules").ValueOrDie();
  if (!rules.is_array()) return false;
  // Pipeline/suite rule arrays do not exist; a cleaner rule names a
  // repair. An empty array still routes here (the lint then reports the
  // IW701 warning rather than a pipeline parse error).
  for (const Json& entry : rules.items()) {
    if (entry.is_object() && (entry.Has("repair") || entry.Has("detect"))) {
      return true;
    }
  }
  return rules.items().empty();
}

}  // namespace analysis
}  // namespace icewafl
