#ifndef ICEWAFL_ANALYSIS_ANALYZER_H_
#define ICEWAFL_ANALYSIS_ANALYZER_H_

#include <optional>
#include <string>
#include <vector>

#include "stream/schema.h"
#include "util/diag.h"
#include "util/json.h"
#include "util/status.h"
#include "util/time_util.h"

namespace icewafl {
namespace analysis {

/// \file
/// icewafl-lint: static analysis of pollution pipelines and expectation
/// suites *before* any tuple flows. The analyzer works on the raw JSON
/// documents (so every finding carries an RFC 6901 pointer into the
/// config) and borrows the library's own introspection surfaces —
/// ErrorFunction::Describe() for value-domain compatibility and
/// TimeProfile::Bounds() for activation-probability enclosures — instead
/// of duplicating per-type knowledge.
///
/// Checks (full code table in DESIGN.md section 6):
///  - schema consistency: polluted/conditioned attributes exist and the
///    error's value domain matches the column type (IW101..IW107);
///  - condition satisfiability: constant folding and interval analysis
///    over the condition tree — dead polluters, always-true
///    "probabilistic" gates, contradictory window intersections
///    (IW201..IW205);
///  - temporal sanity: windows vs the stream bounds, overlapping
///    exclusive branches, delay/shift magnitudes (IW301..IW304);
///  - determinism and log hygiene: duplicate labels, unknown config keys,
///    malformed weights (IW401..IW403);
///  - suite cross-checks: unknown columns, empty ranges, injected error
///    classes no expectation can detect (IW501..IW503).
///
/// A literal {"type": "never"} condition is the documented way to switch
/// a polluter off in place, so it is deliberately *not* reported as
/// unsatisfiable; only derived contradictions are.

/// \brief Optional context sharpening the analysis. All members may be
/// left empty: without a schema the attribute checks are skipped,
/// without stream bounds the out-of-stream window checks are skipped.
struct AnalyzeOptions {
  /// Stream schema the pipeline will run against.
  SchemaPtr schema;
  /// Stream bounds (ProcessOptions::stream_start / stream_end).
  std::optional<Timestamp> stream_start;
  std::optional<Timestamp> stream_end;
};

/// \brief Analyzes a pipeline document {"name": ..., "polluters": [...]}.
Diagnostics AnalyzePipeline(const Json& pipeline_json,
                            const AnalyzeOptions& options = {});

/// \brief Analyzes an expectation-suite document
/// {"name": ..., "expectations": [...]}.
Diagnostics AnalyzeSuite(const Json& suite_json,
                         const AnalyzeOptions& options = {});

/// \brief Analyzes a pipeline together with an optional suite; with both
/// present, additionally cross-checks detection coverage (IW502: an
/// injected error class that no expectation can observe). Suite
/// diagnostic paths are prefixed with "suite:".
Diagnostics AnalyzeArtifacts(const Json& pipeline_json,
                             const Json* suite_json,
                             const AnalyzeOptions& options = {});

/// \brief Context for serve-config analysis. Both vocabularies are
/// passed in (rather than linked in) so the analyzer stays free of
/// scenario and network dependencies; an empty vector skips the
/// corresponding membership check.
struct ServeAnalyzeOptions {
  std::vector<std::string> known_scenarios;
  std::vector<std::string> known_policies;
};

/// \brief Analyzes a serve document — the config surface of
/// `icewafl_cli serve` (net::ServeConfig), in either shape: a
/// multi-session {"sessions": [{"name": ..., "scenario": ...}, ...]}
/// array or the legacy single-session {"scenario": ..., "port": ...}.
/// Codes:
///  - IW601 (error): port outside [0, 65535] or not a number;
///  - IW602 (error): unknown slow_consumer policy (hint lists the
///    valid names when provided);
///  - IW603 (error): queue_capacity < 1 or not a number;
///  - IW604 (warning): unknown key (likely a typo);
///  - IW605 (error): missing or unknown scenario (per session entry);
///  - IW606 (error): negative seed / max_runs (max_sessions in the
///    legacy shape), parallelism / min_subscribers < 1, or a
///    non-string host;
///  - IW607 (error): session name empty, oversized, non-string, or
///    duplicated across entries;
///  - IW608 (error): malformed sessions shape — "sessions" not a
///    non-empty array, an entry not an object, or a document mixing a
///    top-level "scenario" with a "sessions" array;
///  - IW609 (error): workers not a positive integer (non-numeric,
///    fractional, < 1, or past the 32-bit int range);
///  - IW615 (error): session name containing ASCII control characters
///    (names travel in wire frames and metric labels).
/// The optional "admin_port" key is range-checked like "port" (IW601).
/// A session entry's optional "cleaner" key (a cleaning-rules document
/// applied to that session's served stream) is analyzed in place with
/// the IW70x cleaner checks, findings rooted at the entry's path.
Diagnostics AnalyzeServeConfig(const Json& serve_json,
                               const ServeAnalyzeOptions& options = {});

/// \brief Context for cleaner-document analysis. Without a schema the
/// column checks (IW703) are skipped; `path_root` prefixes every
/// finding's JSON pointer (used when a cleaner document is embedded in
/// a larger document, e.g. a serve-config session entry).
struct CleanerAnalyzeOptions {
  SchemaPtr schema;
  std::string path_root;
};

/// \brief Analyzes a cleaning-rules document (clean::RulesFromJson's
/// input shape: {"name": ..., "key": ..., "history": N,
/// "rules": [...]}) without binding or running it. Codes:
///  - IW701 (error): malformed document shape — not an object, missing
///    or non-array "rules", bad "name"/"key"/"history" types (an empty
///    rules array is a warning: the cleaner never repairs anything);
///  - IW702 (error): malformed rule entry — missing or mistyped
///    label / column / detect / repair / when / guard fields;
///  - IW703 (error): a column the schema lacks, or a string-typed
///    column in a position that binds numerically (range / cross_field
///    / rate_of_change / stuck_at columns, cross_field "other", every
///    guard column);
///  - IW704 (error): bad detect parameters — unknown detect type,
///    repair, compare op, or value type; range min > max; an invalid
///    regex pattern; max_change <= 0; min_repeats < 2;
///  - IW705 (error): a repair incompatible with its detect (clamp
///    without a range detect to take bounds from);
///  - IW706 (warning): duplicate rule label (metrics and repair-log
///    series merge);
///  - IW707 (warning): a windowed detect that can never fire as
///    written (stuck_at min_repeats exceeding the history window);
///  - IW604 (warning): unknown document or rule key.
Diagnostics AnalyzeCleanerRules(const Json& rules_json,
                                const CleanerAnalyzeOptions& options = {});

/// \brief Heuristic: a JSON object with a "rules" array whose entries
/// carry "detect"/"repair" (and no pipeline/suite/serve markers) is a
/// cleaning document (used by the lint CLI to route documents).
bool LooksLikeCleanerRules(const Json& json);

/// \brief Context for admin-request analysis. Vocabularies are passed
/// in (net::AdminMethodNames(), scenarios::ScenarioNames()) so the
/// analyzer stays free of network and scenario dependencies; an empty
/// vector skips the corresponding membership check.
struct AdminAnalyzeOptions {
  std::vector<std::string> known_methods;
  std::vector<std::string> known_scenarios;
};

/// \brief Analyzes one admin-channel request document
/// {"id": ..., "method": ..., "params": {...}} before it is applied —
/// the lint gate of every `icewafl_cli admin` mutation (the server
/// re-runs it, so a hand-rolled client cannot skip the gate). Codes:
///  - IW610 (error): malformed envelope — not an object, missing or
///    non-string method, an id that is neither number nor string, or
///    params that are not an object;
///  - IW611 (error): unknown method (hint lists the known methods);
///  - IW612 (error): missing or malformed per-method params — the
///    "session" target of get_config / swap_pipeline / set_rate /
///    stop_session (a non-empty string) or the "session" entry object
///    of create_session;
///  - IW613 (error): swap_pipeline params carrying both or neither of
///    "pipeline" (an object document) and "scenario" (a known name);
///  - IW614 (error): set_rate "tuples_per_sec" missing, non-numeric,
///    negative, or not finite (0 serves unpaced);
///  - IW616 (error): set_cleaner params missing "rules", or "rules"
///    neither a cleaning document object (checked with the IW70x
///    analysis, rooted at /params/rules) nor null (which removes the
///    session's cleaner);
///  - IW604 (warning): unknown params key for the method.
Diagnostics AnalyzeAdminRequest(const Json& request_json,
                                const AdminAnalyzeOptions& options = {});

/// \brief Heuristic: a JSON object that names a scenario (or a sessions
/// array) but declares no polluters is a serve config, not a pipeline
/// (used by the lint CLI to route documents).
bool LooksLikeServeConfig(const Json& json);

/// \brief Gate form: OK when the pipeline has no error-severity
/// findings, otherwise InvalidArgument carrying the full report.
/// Warnings never fail the gate.
Status AnalyzeOrDie(const Json& pipeline_json,
                    const AnalyzeOptions& options = {});

/// \brief Installs AnalyzeOrDie as the core config loader's
/// pipeline-load hook (SetPipelineLoadHook): every subsequent
/// PipelineFromJson/PipelineFromConfigFile call is linted first and
/// fails with the report if the config is statically broken. Opt-in;
/// call Uninstall to restore unhooked loading.
void InstallAnalyzeOrDieHook(AnalyzeOptions options = {});
void UninstallAnalyzeOrDieHook();

}  // namespace analysis
}  // namespace icewafl

#endif  // ICEWAFL_ANALYSIS_ANALYZER_H_
