#include "clean/config.h"

#include <fstream>
#include <sstream>
#include <utility>

namespace icewafl {
namespace clean {

namespace {

// Thread-local pointer prefix for the helpers below; set once per rule
// so every field error carries its JSON pointer.
thread_local std::string t_path;

std::string At(const std::string& key) {
  return " at " + (t_path.empty() ? std::string("/") : t_path) + "/" + key;
}

Result<Json> GetField(const Json& json, const std::string& key) {
  if (!json.Has(key)) {
    return Status::NotFound("missing field '" + key + "'" + At(key));
  }
  return json.Get(key);
}

Result<std::string> RequireString(const Json& json, const std::string& key) {
  ICEWAFL_ASSIGN_OR_RETURN(Json field, GetField(json, key));
  if (!field.is_string()) {
    return Status::TypeError("field" + At(key) + " must be a string");
  }
  return field.AsString();
}

Result<double> RequireDouble(const Json& json, const std::string& key) {
  ICEWAFL_ASSIGN_OR_RETURN(Json field, GetField(json, key));
  if (!field.is_number()) {
    return Status::TypeError("field" + At(key) + " must be a number");
  }
  return field.AsDouble();
}

Result<RuleGuard> GuardFromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::ParseError("guard" + At("when") + " must be an object");
  }
  RuleGuard guard;
  ICEWAFL_ASSIGN_OR_RETURN(guard.column, RequireString(json, "column"));
  ICEWAFL_ASSIGN_OR_RETURN(std::string op_name, RequireString(json, "op"));
  auto op = CompareOpFromName(op_name);
  if (!op.ok()) {
    return Status::ParseError(op.status().message() + At("op"));
  }
  guard.op = op.ValueOrDie();
  ICEWAFL_ASSIGN_OR_RETURN(guard.value, RequireDouble(json, "value"));
  return guard;
}

Result<std::unique_ptr<CleanRule>> RuleFromJson(const Json& json,
                                                const std::string& path) {
  t_path = path;
  if (!json.is_object()) {
    return Status::ParseError(
        "rule description at " + (path.empty() ? std::string("/") : path) +
        " must be an object");
  }
  ICEWAFL_ASSIGN_OR_RETURN(std::string label, RequireString(json, "label"));
  ICEWAFL_ASSIGN_OR_RETURN(std::string column, RequireString(json, "column"));
  ICEWAFL_ASSIGN_OR_RETURN(std::string repair_name,
                           RequireString(json, "repair"));
  auto repair = RepairActionFromName(repair_name);
  if (!repair.ok()) {
    return Status::ParseError(repair.status().message() + At("repair"));
  }
  ICEWAFL_ASSIGN_OR_RETURN(Json detect, GetField(json, "detect"));
  if (!detect.is_object()) {
    return Status::TypeError("field" + At("detect") + " must be an object");
  }
  // Field errors inside "detect" point below the detect object.
  t_path = path + "/detect";
  ICEWAFL_ASSIGN_OR_RETURN(std::string type, RequireString(detect, "type"));

  std::unique_ptr<CleanRule> rule;
  if (type == "range") {
    ICEWAFL_ASSIGN_OR_RETURN(double min, RequireDouble(detect, "min"));
    ICEWAFL_ASSIGN_OR_RETURN(double max, RequireDouble(detect, "max"));
    if (min > max) {
      return Status::InvalidArgument("range min " + std::to_string(min) +
                                     " exceeds max " + std::to_string(max) +
                                     At("min"));
    }
    rule = std::make_unique<RangeRule>(std::move(label), std::move(column),
                                       min, max, repair.ValueOrDie());
  } else if (type == "not_null") {
    rule = std::make_unique<NotNullRule>(std::move(label), std::move(column),
                                         repair.ValueOrDie());
  } else if (type == "regex") {
    ICEWAFL_ASSIGN_OR_RETURN(std::string pattern,
                             RequireString(detect, "pattern"));
    rule = std::make_unique<RegexRule>(std::move(label), std::move(column),
                                       std::move(pattern), repair.ValueOrDie());
  } else if (type == "type") {
    ICEWAFL_ASSIGN_OR_RETURN(std::string type_name,
                             RequireString(detect, "value_type"));
    auto value_type = ValueTypeFromName(type_name);
    if (!value_type.ok()) {
      return Status::ParseError(value_type.status().message() +
                                At("value_type"));
    }
    rule = std::make_unique<TypeRule>(std::move(label), std::move(column),
                                      value_type.ValueOrDie(), repair.ValueOrDie());
  } else if (type == "cross_field") {
    ICEWAFL_ASSIGN_OR_RETURN(std::string op_name, RequireString(detect, "op"));
    auto op = CompareOpFromName(op_name);
    if (!op.ok()) {
      return Status::ParseError(op.status().message() + At("op"));
    }
    ICEWAFL_ASSIGN_OR_RETURN(std::string other, RequireString(detect, "other"));
    rule = std::make_unique<CrossFieldRule>(std::move(label), std::move(column),
                                            op.ValueOrDie(), std::move(other), repair.ValueOrDie());
  } else if (type == "rate_of_change") {
    ICEWAFL_ASSIGN_OR_RETURN(double max_change,
                             RequireDouble(detect, "max_change"));
    if (max_change <= 0) {
      return Status::InvalidArgument("max_change must be positive" +
                                     At("max_change"));
    }
    rule = std::make_unique<RateOfChangeRule>(std::move(label),
                                              std::move(column), max_change,
                                              repair.ValueOrDie());
  } else if (type == "stuck_at") {
    ICEWAFL_ASSIGN_OR_RETURN(double repeats,
                             RequireDouble(detect, "min_repeats"));
    if (repeats < 2) {
      return Status::InvalidArgument("min_repeats must be at least 2" +
                                     At("min_repeats"));
    }
    rule = std::make_unique<StuckAtRule>(std::move(label), std::move(column),
                                         static_cast<size_t>(repeats),
                                         repair.ValueOrDie());
  } else {
    return Status::ParseError("unknown detect type '" + type + "'" +
                              At("type"));
  }

  if (repair.ValueOrDie() == RepairAction::kClamp) {
    double lo, hi;
    if (!rule->ClampBounds(&lo, &hi)) {
      t_path = path;
      return Status::InvalidArgument(
          "repair 'clamp' requires a range detect rule" + At("repair"));
    }
  }

  if (json.Has("when")) {
    t_path = path;
    ICEWAFL_ASSIGN_OR_RETURN(Json when, json.Get("when"));
    std::vector<Json> guard_docs;
    if (when.is_object()) {
      guard_docs.push_back(when);
    } else if (when.is_array()) {
      guard_docs = when.items();
    } else {
      return Status::TypeError("field" + At("when") +
                               " must be an object or an array");
    }
    for (size_t i = 0; i < guard_docs.size(); ++i) {
      t_path = path + "/when/" + std::to_string(i);
      ICEWAFL_ASSIGN_OR_RETURN(RuleGuard guard,
                               GuardFromJson(guard_docs[i]));
      rule->mutable_guards()->push_back(std::move(guard));
    }
  }
  return rule;
}

}  // namespace

Result<CleaningRules> RulesFromJson(const Json& json, SchemaPtr bind_schema) {
  if (!json.is_object()) {
    return Status::ParseError("cleaning document must be a JSON object");
  }
  CleaningRules rules;
  rules.name = json.GetString("name", "clean");
  if (json.Has("key")) {
    ICEWAFL_ASSIGN_OR_RETURN(Json key, json.Get("key"));
    if (!key.is_string()) {
      return Status::TypeError("field at /key must be a string");
    }
    rules.key = key.AsString();
  }
  if (json.Has("history")) {
    ICEWAFL_ASSIGN_OR_RETURN(Json history, json.Get("history"));
    if (!history.is_number() || history.AsInt64() < 1) {
      return Status::InvalidArgument(
          "field at /history must be a positive number");
    }
    rules.history = static_cast<size_t>(history.AsInt64());
  }
  if (!json.Has("rules")) {
    return Status::NotFound("missing field 'rules' at /");
  }
  ICEWAFL_ASSIGN_OR_RETURN(Json rule_docs, json.Get("rules"));
  if (!rule_docs.is_array()) {
    return Status::TypeError("field at /rules must be an array");
  }
  for (size_t i = 0; i < rule_docs.items().size(); ++i) {
    ICEWAFL_ASSIGN_OR_RETURN(
        std::unique_ptr<CleanRule> rule,
        RuleFromJson(rule_docs.items()[i], "/rules/" + std::to_string(i)));
    rules.rules.push_back(std::move(rule));
  }
  if (bind_schema != nullptr) {
    ICEWAFL_RETURN_NOT_OK(BindRules(&rules, *bind_schema));
  }
  return rules;
}

Result<CleaningRules> RulesFromJsonString(const std::string& text,
                                          SchemaPtr bind_schema) {
  ICEWAFL_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
  return RulesFromJson(json, std::move(bind_schema));
}

Result<CleaningRules> RulesFromJsonFile(const std::string& path,
                                        SchemaPtr bind_schema) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open file: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return RulesFromJsonString(buf.str(), std::move(bind_schema));
}

Status BindRules(CleaningRules* rules, const Schema& schema) {
  BindContext ctx(schema);
  if (!rules->key.empty()) {
    BindContext::Scope scope(ctx, "key");
    ICEWAFL_RETURN_NOT_OK(ctx.Resolve(rules->key).status());
  }
  for (size_t i = 0; i < rules->rules.size(); ++i) {
    BindContext::Scope rules_scope(ctx, "rules");
    BindContext::Scope index_scope(ctx, i);
    ICEWAFL_RETURN_NOT_OK(rules->rules[i]->Bind(ctx));
  }
  return Status::OK();
}

}  // namespace clean
}  // namespace icewafl
