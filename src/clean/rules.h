#ifndef ICEWAFL_CLEAN_RULES_H_
#define ICEWAFL_CLEAN_RULES_H_

#include <cstdint>
#include <memory>
#include <regex>
#include <string>
#include <vector>

#include "stream/bind.h"
#include "stream/schema.h"
#include "stream/tuple.h"
#include "util/json.h"
#include "util/result.h"

namespace icewafl {
namespace clean {

/// \file
/// The rule model of the stream cleaning engine (DESIGN.md section 15).
///
/// A cleaning document pairs *detect rules* (when is a value wrong?)
/// with *repair actions* (what to do about it). Rules follow the same
/// two-phase bind/run lifecycle as polluters and expectations: names
/// resolve to BoundAccessors exactly once, with JSON-pointer paths on
/// every rejection, and the per-tuple path is branch-lean index
/// arithmetic. Stateless rules (range/regex/not_null/type/cross_field)
/// look at one tuple; windowed rules (rate_of_change/stuck_at) and
/// windowed repairs (last_good/window_mean/window_median) consult a
/// bounded per-key history of previously *accepted* values — the
/// Bleach-style windowed context.

/// \brief What the cleaner does to a tuple once a rule fires, in
/// documentation order.
enum class RepairAction {
  kDrop,
  kSetNull,
  kClamp,
  kLastGood,
  kWindowMean,
  kWindowMedian,
};

/// \brief Stable config name of an action ("drop", "set_null", ...).
const char* RepairActionName(RepairAction action);

/// \brief Inverse of RepairActionName; InvalidArgument for unknown names.
Result<RepairAction> RepairActionFromName(const std::string& name);

/// \brief True if the action consults the value history (and therefore
/// forces its rule into the sequential stateful phase).
bool RepairNeedsHistory(RepairAction action);

/// \brief Comparison vocabulary shared by guards and cross-field rules.
enum class CompareOp { kLt, kLe, kGt, kGe, kEq, kNe };

const char* CompareOpName(CompareOp op);
Result<CompareOp> CompareOpFromName(const std::string& name);
bool EvalCompareOp(CompareOp op, double lhs, double rhs);

/// \brief Bounded ring of the most recent accepted values of one
/// numeric column within one key partition. Push evicts the oldest
/// entry once `capacity` is reached.
class ValueHistory {
 public:
  explicit ValueHistory(size_t capacity) : capacity_(capacity) {
    ring_.reserve(capacity_);
  }

  void Push(double v);
  void Clear();

  size_t size() const { return ring_.size(); }
  bool empty() const { return ring_.empty(); }

  /// \brief The i-th most recent value; i = 0 is the newest. Requires
  /// i < size().
  double Recent(size_t i) const;

  double Mean() const;
  /// \brief Median of the held values (midpoint average for even
  /// counts); 0 when empty.
  double Median() const;

 private:
  size_t capacity_;
  size_t head_ = 0;  // slot the next Push writes once the ring is full
  std::vector<double> ring_;
};

/// \brief Optional precondition on a rule: the rule is evaluated only
/// when `column op value` holds numerically (NULL and non-numeric
/// values fail the guard, skipping the rule).
struct RuleGuard {
  std::string column;
  CompareOp op = CompareOp::kGt;
  double value = 0.0;
  BoundAccessor accessor;

  Json ToJson() const;
};

/// \brief One detect rule + its repair action. Concrete subclasses
/// implement the detect predicate; repair application is shared logic
/// in the CleanerOperator.
class CleanRule {
 public:
  CleanRule(std::string label, std::string column, RepairAction repair)
      : label_(std::move(label)),
        column_(std::move(column)),
        repair_(repair) {}
  virtual ~CleanRule() = default;

  /// \brief Stable config name of the detect type ("range", ...).
  virtual const char* type() const = 0;

  /// \brief True if detection itself consults the value history.
  virtual bool windowed() const { return false; }

  /// \brief True if the rule must run in the sequential stateful phase
  /// (windowed detection or history-consuming repair).
  bool stateful() const { return windowed() || RepairNeedsHistory(repair_); }

  /// \brief Resolves the rule's column references against the schema.
  /// The default resolves `column()` numerically; subclasses override
  /// for other requirements. Also binds the guards.
  virtual Status Bind(BindContext& ctx);

  /// \brief Detect predicate: does this tuple's value violate the rule?
  /// `history` is the per-key history of the rule's column (non-null
  /// only for windowed rules). NULL and type-mismatched values never
  /// violate stateless numeric rules — that is not_null's / type's job.
  virtual bool Violates(const Tuple& tuple,
                        const ValueHistory* history) const = 0;

  /// \brief Clamp bounds, when the detect type defines them (range
  /// only). False means the clamp repair is unavailable for this rule.
  virtual bool ClampBounds(double* lo, double* hi) const {
    (void)lo;
    (void)hi;
    return false;
  }

  virtual std::unique_ptr<CleanRule> Clone() const = 0;

  /// \brief Full config form: {"label", "column", "detect": {...},
  /// "repair", "when"?}.
  Json ToJson() const;

  const std::string& label() const { return label_; }
  const std::string& column() const { return column_; }
  RepairAction repair() const { return repair_; }
  const BoundAccessor& accessor() const { return accessor_; }
  const std::vector<RuleGuard>& guards() const { return guards_; }
  std::vector<RuleGuard>* mutable_guards() { return &guards_; }

  /// \brief True once every guard admits the tuple.
  bool GuardsPass(const Tuple& tuple) const;

  /// \brief Copies bind-produced state (accessors, guards, compiled
  /// patterns) from `from` onto this rule — Clone() support, so a clone
  /// of a bound rule is itself bound. `from` must be the same concrete
  /// type. Subclasses with extra bind state override and chain up.
  virtual void CopyBindState(const CleanRule& from) {
    accessor_ = from.accessor_;
    guards_ = from.guards_;
  }

 protected:
  /// \brief The "detect" object of ToJson().
  virtual Json DetectJson() const = 0;

  std::string label_;
  std::string column_;
  RepairAction repair_;
  BoundAccessor accessor_;
  std::vector<RuleGuard> guards_;
};

/// \brief Numeric value must lie in [min, max].
class RangeRule : public CleanRule {
 public:
  RangeRule(std::string label, std::string column, double min, double max,
            RepairAction repair)
      : CleanRule(std::move(label), std::move(column), repair),
        min_(min),
        max_(max) {}

  const char* type() const override { return "range"; }
  bool Violates(const Tuple& tuple, const ValueHistory*) const override;
  bool ClampBounds(double* lo, double* hi) const override {
    *lo = min_;
    *hi = max_;
    return true;
  }
  std::unique_ptr<CleanRule> Clone() const override;

  double min() const { return min_; }
  double max() const { return max_; }

 protected:
  Json DetectJson() const override;

 private:
  double min_;
  double max_;
};

/// \brief Value must be non-NULL.
class NotNullRule : public CleanRule {
 public:
  NotNullRule(std::string label, std::string column, RepairAction repair)
      : CleanRule(std::move(label), std::move(column), repair) {}

  const char* type() const override { return "not_null"; }
  Status Bind(BindContext& ctx) override;
  bool Violates(const Tuple& tuple, const ValueHistory*) const override;
  std::unique_ptr<CleanRule> Clone() const override;

 protected:
  Json DetectJson() const override;
};

/// \brief Rendered value must match the anchored pattern (same
/// rendering as CSV/suite output, so the pattern vocabulary carries
/// over from ExpectColumnValuesToMatchRegex). NULLs are skipped.
class RegexRule : public CleanRule {
 public:
  RegexRule(std::string label, std::string column, std::string pattern,
            RepairAction repair)
      : CleanRule(std::move(label), std::move(column), repair),
        pattern_(std::move(pattern)) {}

  const char* type() const override { return "regex"; }
  Status Bind(BindContext& ctx) override;
  bool Violates(const Tuple& tuple, const ValueHistory*) const override;
  std::unique_ptr<CleanRule> Clone() const override;

  const std::string& pattern() const { return pattern_; }

  void CopyBindState(const CleanRule& from) override {
    CleanRule::CopyBindState(from);
    regex_ = static_cast<const RegexRule&>(from).regex_;
  }

 protected:
  Json DetectJson() const override;

 private:
  std::string pattern_;
  std::regex regex_;
  /// Reused render buffer — no per-tuple allocation for short values.
  mutable std::string storage_;
};

/// \brief Non-NULL value must carry the declared type.
class TypeRule : public CleanRule {
 public:
  TypeRule(std::string label, std::string column, ValueType expected,
           RepairAction repair)
      : CleanRule(std::move(label), std::move(column), repair),
        expected_(expected) {}

  const char* type() const override { return "type"; }
  Status Bind(BindContext& ctx) override;
  bool Violates(const Tuple& tuple, const ValueHistory*) const override;
  std::unique_ptr<CleanRule> Clone() const override;

  ValueType expected() const { return expected_; }

 protected:
  Json DetectJson() const override;

 private:
  ValueType expected_;
};

/// \brief Cross-field invariant: `column op other` must hold whenever
/// both read numerically; the repair applies to `column`.
class CrossFieldRule : public CleanRule {
 public:
  CrossFieldRule(std::string label, std::string column, CompareOp op,
                 std::string other, RepairAction repair)
      : CleanRule(std::move(label), std::move(column), repair),
        op_(op),
        other_(std::move(other)) {}

  const char* type() const override { return "cross_field"; }
  Status Bind(BindContext& ctx) override;
  bool Violates(const Tuple& tuple, const ValueHistory*) const override;
  std::unique_ptr<CleanRule> Clone() const override;

  const std::string& other() const { return other_; }
  CompareOp op() const { return op_; }

  void CopyBindState(const CleanRule& from) override {
    CleanRule::CopyBindState(from);
    other_accessor_ = static_cast<const CrossFieldRule&>(from).other_accessor_;
  }

 protected:
  Json DetectJson() const override;

 private:
  CompareOp op_;
  std::string other_;
  BoundAccessor other_accessor_;
};

/// \brief Windowed: |value - last accepted value| must not exceed
/// `max_change`. Never fires while the history is empty.
class RateOfChangeRule : public CleanRule {
 public:
  RateOfChangeRule(std::string label, std::string column, double max_change,
                   RepairAction repair)
      : CleanRule(std::move(label), std::move(column), repair),
        max_change_(max_change) {}

  const char* type() const override { return "rate_of_change"; }
  bool windowed() const override { return true; }
  bool Violates(const Tuple& tuple,
                const ValueHistory* history) const override;
  std::unique_ptr<CleanRule> Clone() const override;

  double max_change() const { return max_change_; }

 protected:
  Json DetectJson() const override;

 private:
  double max_change_;
};

/// \brief Windowed stuck-at detection: fires when the value equals the
/// previous `min_repeats - 1` accepted values (the sensor has reported
/// the same reading `min_repeats` times in a row).
class StuckAtRule : public CleanRule {
 public:
  StuckAtRule(std::string label, std::string column, size_t min_repeats,
              RepairAction repair)
      : CleanRule(std::move(label), std::move(column), repair),
        min_repeats_(min_repeats) {}

  const char* type() const override { return "stuck_at"; }
  bool windowed() const override { return true; }
  bool Violates(const Tuple& tuple,
                const ValueHistory* history) const override;
  std::unique_ptr<CleanRule> Clone() const override;

  size_t min_repeats() const { return min_repeats_; }

 protected:
  Json DetectJson() const override;

 private:
  size_t min_repeats_;
};

/// \brief One parsed cleaning document: named, optionally key-
/// partitioned, with a bounded history capacity shared by every
/// windowed rule and repair.
struct CleaningRules {
  std::string name = "clean";
  /// Optional column partitioning the value history (per-device state);
  /// empty keeps one global partition.
  std::string key;
  /// Ring capacity of each per-key, per-column history.
  size_t history = 16;
  std::vector<std::unique_ptr<CleanRule>> rules;

  CleaningRules() = default;
  CleaningRules(CleaningRules&&) = default;
  CleaningRules& operator=(CleaningRules&&) = default;

  /// \brief Deep copy (each worker clone of the CleanerOperator owns
  /// its own rule instances).
  CleaningRules Clone() const;

  /// \brief Canonical JSON form; round-trips through RulesFromJson.
  Json ToJson() const;

  bool HasStateless() const;
  bool HasStateful() const;
};

}  // namespace clean
}  // namespace icewafl

#endif  // ICEWAFL_CLEAN_RULES_H_
