#include "clean/rules.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace icewafl {
namespace clean {

const char* RepairActionName(RepairAction action) {
  switch (action) {
    case RepairAction::kDrop:
      return "drop";
    case RepairAction::kSetNull:
      return "set_null";
    case RepairAction::kClamp:
      return "clamp";
    case RepairAction::kLastGood:
      return "last_good";
    case RepairAction::kWindowMean:
      return "window_mean";
    case RepairAction::kWindowMedian:
      return "window_median";
  }
  return "unknown";
}

Result<RepairAction> RepairActionFromName(const std::string& name) {
  if (name == "drop") return RepairAction::kDrop;
  if (name == "set_null") return RepairAction::kSetNull;
  if (name == "clamp") return RepairAction::kClamp;
  if (name == "last_good") return RepairAction::kLastGood;
  if (name == "window_mean") return RepairAction::kWindowMean;
  if (name == "window_median") return RepairAction::kWindowMedian;
  return Status::InvalidArgument("unknown repair action '" + name + "'");
}

bool RepairNeedsHistory(RepairAction action) {
  switch (action) {
    case RepairAction::kLastGood:
    case RepairAction::kWindowMean:
    case RepairAction::kWindowMedian:
      return true;
    default:
      return false;
  }
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "lt";
    case CompareOp::kLe:
      return "le";
    case CompareOp::kGt:
      return "gt";
    case CompareOp::kGe:
      return "ge";
    case CompareOp::kEq:
      return "eq";
    case CompareOp::kNe:
      return "ne";
  }
  return "unknown";
}

Result<CompareOp> CompareOpFromName(const std::string& name) {
  if (name == "lt") return CompareOp::kLt;
  if (name == "le") return CompareOp::kLe;
  if (name == "gt") return CompareOp::kGt;
  if (name == "ge") return CompareOp::kGe;
  if (name == "eq") return CompareOp::kEq;
  if (name == "ne") return CompareOp::kNe;
  return Status::InvalidArgument("unknown comparison op '" + name + "'");
}

bool EvalCompareOp(CompareOp op, double lhs, double rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
  }
  return false;
}

void ValueHistory::Push(double v) {
  if (capacity_ == 0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(v);
    return;
  }
  ring_[head_] = v;
  head_ = (head_ + 1) % capacity_;
}

void ValueHistory::Clear() {
  ring_.clear();
  head_ = 0;
}

double ValueHistory::Recent(size_t i) const {
  // Newest element: one before head_ once full, last pushed otherwise.
  size_t newest =
      ring_.size() < capacity_ ? ring_.size() - 1 : (head_ + capacity_ - 1) % capacity_;
  size_t idx = (newest + ring_.size() - i % ring_.size()) % ring_.size();
  return ring_[idx];
}

double ValueHistory::Mean() const {
  if (ring_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : ring_) sum += v;
  return sum / static_cast<double>(ring_.size());
}

double ValueHistory::Median() const {
  if (ring_.empty()) return 0.0;
  std::vector<double> sorted(ring_);
  std::sort(sorted.begin(), sorted.end());
  size_t mid = sorted.size() / 2;
  if (sorted.size() % 2 == 1) return sorted[mid];
  return (sorted[mid - 1] + sorted[mid]) / 2.0;
}

Json RuleGuard::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("column", column);
  j.Set("op", CompareOpName(op));
  j.Set("value", value);
  return j;
}

Status CleanRule::Bind(BindContext& ctx) {
  {
    BindContext::Scope scope(ctx, "column");
    ICEWAFL_ASSIGN_OR_RETURN(accessor_, ctx.ResolveNumeric(column_));
  }
  for (size_t i = 0; i < guards_.size(); ++i) {
    BindContext::Scope scope(ctx, "when/" + std::to_string(i) + "/column");
    ICEWAFL_ASSIGN_OR_RETURN(guards_[i].accessor,
                             ctx.ResolveNumeric(guards_[i].column));
  }
  return Status::OK();
}

bool CleanRule::GuardsPass(const Tuple& tuple) const {
  for (const RuleGuard& g : guards_) {
    double v;
    if (!g.accessor.DoubleAt(tuple, &v)) return false;
    if (!EvalCompareOp(g.op, v, g.value)) return false;
  }
  return true;
}

Json CleanRule::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("label", label_);
  j.Set("column", column_);
  j.Set("detect", DetectJson());
  j.Set("repair", RepairActionName(repair_));
  if (!guards_.empty()) {
    Json when = Json::MakeArray();
    for (const RuleGuard& g : guards_) when.Append(g.ToJson());
    j.Set("when", std::move(when));
  }
  return j;
}

namespace {

/// Copies accessors, guards, and other bind-produced state onto a
/// clone, so cloning a bound rule yields a bound rule (the worker-clone
/// path of the parallel runner).
template <typename T>
std::unique_ptr<CleanRule> FinishClone(std::unique_ptr<T> clone,
                                       const CleanRule& original) {
  clone->CopyBindState(original);
  return clone;
}

}  // namespace

bool RangeRule::Violates(const Tuple& tuple, const ValueHistory*) const {
  double v;
  if (!accessor_.DoubleAt(tuple, &v)) return false;
  return v < min_ || v > max_;
}

Json RangeRule::DetectJson() const {
  Json j = Json::MakeObject();
  j.Set("type", type());
  j.Set("min", min_);
  j.Set("max", max_);
  return j;
}

std::unique_ptr<CleanRule> RangeRule::Clone() const {
  return FinishClone(
      std::make_unique<RangeRule>(label_, column_, min_, max_, repair_), *this);
}

Status NotNullRule::Bind(BindContext& ctx) {
  {
    BindContext::Scope scope(ctx, "column");
    ICEWAFL_ASSIGN_OR_RETURN(accessor_, ctx.Resolve(column_));
  }
  for (size_t i = 0; i < guards_.size(); ++i) {
    BindContext::Scope scope(ctx, "when/" + std::to_string(i) + "/column");
    ICEWAFL_ASSIGN_OR_RETURN(guards_[i].accessor,
                             ctx.ResolveNumeric(guards_[i].column));
  }
  return Status::OK();
}

bool NotNullRule::Violates(const Tuple& tuple, const ValueHistory*) const {
  return accessor_.at(tuple).is_null();
}

Json NotNullRule::DetectJson() const {
  Json j = Json::MakeObject();
  j.Set("type", type());
  return j;
}

std::unique_ptr<CleanRule> NotNullRule::Clone() const {
  return FinishClone(std::make_unique<NotNullRule>(label_, column_, repair_),
                     *this);
}

Status RegexRule::Bind(BindContext& ctx) {
  {
    BindContext::Scope scope(ctx, "column");
    ICEWAFL_ASSIGN_OR_RETURN(accessor_, ctx.Resolve(column_));
  }
  {
    BindContext::Scope scope(ctx, "detect/pattern");
    try {
      regex_ = std::regex(pattern_, std::regex::ECMAScript);
    } catch (const std::regex_error& e) {
      return ctx.Error(StatusCode::kInvalidArgument,
                       "invalid regex pattern '" + pattern_ +
                           "': " + e.what());
    }
  }
  for (size_t i = 0; i < guards_.size(); ++i) {
    BindContext::Scope scope(ctx, "when/" + std::to_string(i) + "/column");
    ICEWAFL_ASSIGN_OR_RETURN(guards_[i].accessor,
                             ctx.ResolveNumeric(guards_[i].column));
  }
  return Status::OK();
}

bool RegexRule::Violates(const Tuple& tuple, const ValueHistory*) const {
  const Value& v = accessor_.at(tuple);
  if (v.is_null()) return false;
  if (v.is_string()) return !std::regex_match(v.AsString(), regex_);
  v.RenderTo(&storage_);
  return !std::regex_match(storage_, regex_);
}

Json RegexRule::DetectJson() const {
  Json j = Json::MakeObject();
  j.Set("type", type());
  j.Set("pattern", pattern_);
  return j;
}

std::unique_ptr<CleanRule> RegexRule::Clone() const {
  return FinishClone(
      std::make_unique<RegexRule>(label_, column_, pattern_, repair_), *this);
}

Status TypeRule::Bind(BindContext& ctx) {
  {
    BindContext::Scope scope(ctx, "column");
    ICEWAFL_ASSIGN_OR_RETURN(accessor_, ctx.Resolve(column_));
  }
  for (size_t i = 0; i < guards_.size(); ++i) {
    BindContext::Scope scope(ctx, "when/" + std::to_string(i) + "/column");
    ICEWAFL_ASSIGN_OR_RETURN(guards_[i].accessor,
                             ctx.ResolveNumeric(guards_[i].column));
  }
  return Status::OK();
}

bool TypeRule::Violates(const Tuple& tuple, const ValueHistory*) const {
  const Value& v = accessor_.at(tuple);
  return !v.is_null() && v.type() != expected_;
}

Json TypeRule::DetectJson() const {
  Json j = Json::MakeObject();
  j.Set("type", type());
  j.Set("value_type", ValueTypeName(expected_));
  return j;
}

std::unique_ptr<CleanRule> TypeRule::Clone() const {
  return FinishClone(
      std::make_unique<TypeRule>(label_, column_, expected_, repair_), *this);
}

Status CrossFieldRule::Bind(BindContext& ctx) {
  ICEWAFL_RETURN_NOT_OK(CleanRule::Bind(ctx));
  BindContext::Scope scope(ctx, "detect/other");
  ICEWAFL_ASSIGN_OR_RETURN(other_accessor_, ctx.ResolveNumeric(other_));
  return Status::OK();
}

bool CrossFieldRule::Violates(const Tuple& tuple, const ValueHistory*) const {
  double lhs, rhs;
  if (!accessor_.DoubleAt(tuple, &lhs)) return false;
  if (!other_accessor_.DoubleAt(tuple, &rhs)) return false;
  return !EvalCompareOp(op_, lhs, rhs);
}

Json CrossFieldRule::DetectJson() const {
  Json j = Json::MakeObject();
  j.Set("type", type());
  j.Set("op", CompareOpName(op_));
  j.Set("other", other_);
  return j;
}

std::unique_ptr<CleanRule> CrossFieldRule::Clone() const {
  return FinishClone(
      std::make_unique<CrossFieldRule>(label_, column_, op_, other_, repair_),
      *this);
}

bool RateOfChangeRule::Violates(const Tuple& tuple,
                                const ValueHistory* history) const {
  if (history == nullptr || history->empty()) return false;
  double v;
  if (!accessor_.DoubleAt(tuple, &v)) return false;
  return std::abs(v - history->Recent(0)) > max_change_;
}

Json RateOfChangeRule::DetectJson() const {
  Json j = Json::MakeObject();
  j.Set("type", type());
  j.Set("max_change", max_change_);
  return j;
}

std::unique_ptr<CleanRule> RateOfChangeRule::Clone() const {
  return FinishClone(
      std::make_unique<RateOfChangeRule>(label_, column_, max_change_, repair_),
      *this);
}

bool StuckAtRule::Violates(const Tuple& tuple,
                           const ValueHistory* history) const {
  if (history == nullptr || min_repeats_ < 2) return false;
  if (history->size() < min_repeats_ - 1) return false;
  double v;
  if (!accessor_.DoubleAt(tuple, &v)) return false;
  for (size_t i = 0; i < min_repeats_ - 1; ++i) {
    if (history->Recent(i) != v) return false;
  }
  return true;
}

Json StuckAtRule::DetectJson() const {
  Json j = Json::MakeObject();
  j.Set("type", type());
  j.Set("min_repeats", static_cast<int64_t>(min_repeats_));
  return j;
}

std::unique_ptr<CleanRule> StuckAtRule::Clone() const {
  return FinishClone(
      std::make_unique<StuckAtRule>(label_, column_, min_repeats_, repair_),
      *this);
}

CleaningRules CleaningRules::Clone() const {
  CleaningRules copy;
  copy.name = name;
  copy.key = key;
  copy.history = history;
  copy.rules.reserve(rules.size());
  for (const auto& r : rules) copy.rules.push_back(r->Clone());
  return copy;
}

Json CleaningRules::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("name", name);
  if (!key.empty()) j.Set("key", key);
  j.Set("history", static_cast<int64_t>(history));
  Json arr = Json::MakeArray();
  for (const auto& r : rules) arr.Append(r->ToJson());
  j.Set("rules", std::move(arr));
  return j;
}

bool CleaningRules::HasStateless() const {
  for (const auto& r : rules) {
    if (!r->stateful()) return true;
  }
  return false;
}

bool CleaningRules::HasStateful() const {
  for (const auto& r : rules) {
    if (r->stateful()) return true;
  }
  return false;
}

}  // namespace clean
}  // namespace icewafl
