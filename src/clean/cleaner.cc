#include "clean/cleaner.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "stream/runtime.h"
#include "stream/source.h"

namespace icewafl {
namespace clean {

namespace {

/// Widens a stored numeric value; false for NULL/strings.
bool WidenNumeric(const Value& v, double* out) {
  switch (v.type()) {
    case ValueType::kDouble:
      *out = v.AsDouble();
      return true;
    case ValueType::kInt64:
      *out = static_cast<double>(v.AsInt64());
      return true;
    case ValueType::kBool:
      *out = v.AsBool() ? 1.0 : 0.0;
      return true;
    default:
      return false;
  }
}

/// Casts a repaired numeric back to the column's declared type.
Value NumericValueFor(ValueType declared, double v) {
  switch (declared) {
    case ValueType::kInt64:
      return Value(static_cast<int64_t>(std::llround(v)));
    case ValueType::kBool:
      return Value(v != 0.0);
    default:
      return Value(v);
  }
}

class SinkEmitter : public Emitter {
 public:
  explicit SinkEmitter(Sink* sink) : sink_(sink) {}
  Status Emit(Tuple tuple) override { return sink_->Write(std::move(tuple)); }

 private:
  Sink* sink_;
};

}  // namespace

Json RepairLogEntry::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("tuple_id", static_cast<int64_t>(tuple_id));
  j.Set("rule", rule);
  j.Set("column", column);
  j.Set("action", action);
  return j;
}

size_t RepairLog::DistinctTupleCount() const {
  std::vector<TupleId> ids;
  ids.reserve(entries_.size());
  for (const RepairLogEntry& e : entries_) ids.push_back(e.tuple_id);
  std::sort(ids.begin(), ids.end());
  return std::unique(ids.begin(), ids.end()) - ids.begin();
}

void RepairLog::Merge(const RepairLog& other) {
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
}

void RepairLog::SortByTuple() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const RepairLogEntry& a, const RepairLogEntry& b) {
                     return a.tuple_id < b.tuple_id;
                   });
}

Json RepairLog::ToJson() const {
  Json arr = Json::MakeArray();
  for (const RepairLogEntry& e : entries_) arr.Append(e.ToJson());
  Json j = Json::MakeObject();
  j.Set("entries", std::move(arr));
  j.Set("count", static_cast<int64_t>(entries_.size()));
  return j;
}

void CleanStats::Merge(const CleanStats& other) {
  tuples_in += other.tuples_in;
  tuples_out += other.tuples_out;
  tuples_dropped += other.tuples_dropped;
  fired += other.fired;
  repaired += other.repaired;
  if (rules.empty()) {
    rules = other.rules;
    return;
  }
  for (const RuleStats& r : other.rules) {
    auto it = std::find_if(rules.begin(), rules.end(),
                           [&](const RuleStats& m) { return m.label == r.label; });
    if (it == rules.end()) {
      rules.push_back(r);
    } else {
      it->fired += r.fired;
      it->repaired += r.repaired;
      it->dropped += r.dropped;
    }
  }
}

Json CleanStats::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("tuples_in", static_cast<int64_t>(tuples_in));
  j.Set("tuples_out", static_cast<int64_t>(tuples_out));
  j.Set("tuples_dropped", static_cast<int64_t>(tuples_dropped));
  j.Set("fired", static_cast<int64_t>(fired));
  j.Set("repaired", static_cast<int64_t>(repaired));
  Json arr = Json::MakeArray();
  for (const RuleStats& r : rules) {
    Json entry = Json::MakeObject();
    entry.Set("rule", r.label);
    entry.Set("fired", static_cast<int64_t>(r.fired));
    entry.Set("repaired", static_cast<int64_t>(r.repaired));
    entry.Set("dropped", static_cast<int64_t>(r.dropped));
    arr.Append(std::move(entry));
  }
  j.Set("rules", std::move(arr));
  return j;
}

CleanerOperator::CleanerOperator(const CleaningRules& rules, RulePhase phase,
                                 RepairLog* log, CleanStats* finish_stats)
    : rules_(rules.Clone()),
      phase_(phase),
      log_(log),
      finish_stats_(finish_stats) {
  // History slots: one per distinct column any stateful rule touches.
  // Only phases that run stateful rules maintain history — the pure
  // stateless phase must not, so the split runner's windowed pass sees
  // exactly the history a single-operator run would.
  auto slot_for = [&](size_t column_index) {
    for (size_t s = 0; s < history_columns_.size(); ++s) {
      if (history_columns_[s] == column_index) return static_cast<int>(s);
    }
    history_columns_.push_back(column_index);
    return static_cast<int>(history_columns_.size() - 1);
  };
  // Canonical order: pure rules (doc order), then stateful (doc order).
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& rule : rules_.rules) {
      bool stateful = rule->stateful();
      if (pass == 0 && stateful) continue;
      if (pass == 1 && !stateful) continue;
      if (phase_ == RulePhase::kStatelessOnly && stateful) continue;
      if (phase_ == RulePhase::kStatefulOnly && !stateful) continue;
      BoundRule bound;
      bound.rule = rule.get();
      bound.history_slot =
          stateful ? slot_for(rule->accessor().index()) : -1;
      active_.push_back(bound);
      stats_.rules.push_back(RuleStats{rule->label(), 0, 0, 0});
    }
  }
  global_partition_ =
      Partition(history_columns_.size(), ValueHistory(rules_.history));
  keyed_ = !rules_.key.empty() && !history_columns_.empty();
}

void CleanerOperator::BindMetrics(obs::MetricRegistry* registry) {
  if (registry == nullptr || tuples_seen_ != nullptr) return;
  obs::Labels doc_labels{{"rules", rules_.name}};
  tuples_seen_ =
      registry->GetCounter("icewafl_cleaner_tuples_total", doc_labels,
                           "Tuples examined by the cleaning engine");
  bool ok = tuples_seen_ != nullptr;
  for (BoundRule& bound : active_) {
    obs::Labels labels{{"rule", bound.rule->label()},
                       {"rules", rules_.name}};
    bound.fired = registry->GetCounter(
        "icewafl_cleaner_fired_total", labels,
        "Detect-rule firings, by rule label");
    bound.repaired = registry->GetCounter(
        "icewafl_cleaner_repaired_total", labels,
        "In-place repairs applied, by rule label");
    bound.dropped = registry->GetCounter(
        "icewafl_cleaner_dropped_total", labels,
        "Tuples dropped, by rule label");
    ok = ok && bound.fired != nullptr && bound.repaired != nullptr &&
         bound.dropped != nullptr;
  }
  if (!ok) {
    // All-or-nothing: a name/type conflict disables the whole family
    // rather than reporting a partial view.
    tuples_seen_ = nullptr;
    for (BoundRule& bound : active_) {
      bound.fired = bound.repaired = bound.dropped = nullptr;
    }
  }
}

Status CleanerOperator::Prepare(Tuple* tuple) {
  if (tuple->id() != kInvalidTupleId) return Status::OK();
  tuple->set_id(next_id_++);
  ICEWAFL_ASSIGN_OR_RETURN(Timestamp ts, tuple->GetTimestamp());
  tuple->set_event_time(ts);
  tuple->set_arrival_time(ts);
  return Status::OK();
}

CleanerOperator::Partition* CleanerOperator::PartitionFor(const Tuple& tuple) {
  if (!keyed_) return &global_partition_;
  if (key_index_ < 0) {
    auto key_index = tuple.schema()->IndexOf(rules_.key);
    if (!key_index.ok()) {
      keyed_ = false;  // validated at bind; unreachable in practice
      return &global_partition_;
    }
    key_index_ = static_cast<int>(key_index.ValueOrDie());
  }
  const Value& key = tuple.value(key_index_);
  if (key.is_string()) {
    key_storage_ = key.AsString();
  } else {
    key_storage_ = key.ToString("null");
  }
  auto it = partitions_.find(key_storage_);
  if (it == partitions_.end()) {
    it = partitions_
             .emplace(key_storage_,
                      Partition(history_columns_.size(),
                                ValueHistory(rules_.history)))
             .first;
  }
  return &it->second;
}

void CleanerOperator::ApplyRepair(const BoundRule& bound, Tuple* tuple,
                                  const ValueHistory* history) {
  const CleanRule& rule = *bound.rule;
  const BoundAccessor& accessor = rule.accessor();
  switch (rule.repair()) {
    case RepairAction::kDrop:
      // Handled by the caller.
      break;
    case RepairAction::kSetNull:
      accessor.set(tuple, Value());
      break;
    case RepairAction::kClamp: {
      double lo = 0.0, hi = 0.0;
      rule.ClampBounds(&lo, &hi);
      double v = 0.0;
      if (!accessor.DoubleAt(*tuple, &v)) {
        accessor.set(tuple, Value());
        break;
      }
      accessor.set(tuple, NumericValueFor(accessor.declared_type(),
                                          std::clamp(v, lo, hi)));
      break;
    }
    case RepairAction::kLastGood:
      if (history != nullptr && !history->empty()) {
        accessor.set(tuple, NumericValueFor(accessor.declared_type(),
                                            history->Recent(0)));
      } else {
        accessor.set(tuple, Value());
      }
      break;
    case RepairAction::kWindowMean:
      if (history != nullptr && !history->empty()) {
        accessor.set(tuple, NumericValueFor(accessor.declared_type(),
                                            history->Mean()));
      } else {
        accessor.set(tuple, Value());
      }
      break;
    case RepairAction::kWindowMedian:
      if (history != nullptr && !history->empty()) {
        accessor.set(tuple, NumericValueFor(accessor.declared_type(),
                                            history->Median()));
      } else {
        accessor.set(tuple, Value());
      }
      break;
  }
}

bool CleanerOperator::Clean(Tuple* tuple, Partition* partition) {
  for (size_t i = 0; i < active_.size(); ++i) {
    const BoundRule& bound = active_[i];
    const CleanRule& rule = *bound.rule;
    if (!rule.GuardsPass(*tuple)) continue;
    const ValueHistory* history =
        bound.history_slot >= 0 ? &(*partition)[bound.history_slot] : nullptr;
    if (!rule.Violates(*tuple, history)) continue;
    ++stats_.fired;
    ++stats_.rules[i].fired;
    if (bound.fired != nullptr) bound.fired->Increment();
    bool drop = rule.repair() == RepairAction::kDrop;
    if (log_ != nullptr) {
      log_->Record(RepairLogEntry{tuple->id(), rule.label(), rule.column(),
                                  RepairActionName(rule.repair())});
    }
    if (drop) {
      ++stats_.tuples_dropped;
      ++stats_.rules[i].dropped;
      if (bound.dropped != nullptr) bound.dropped->Increment();
      return false;
    }
    ApplyRepair(bound, tuple, history);
    ++stats_.repaired;
    ++stats_.rules[i].repaired;
    if (bound.repaired != nullptr) bound.repaired->Increment();
  }
  // The accepted tuple's final values extend the per-key history (only
  // phases owning stateful rules track any).
  for (size_t s = 0; s < history_columns_.size(); ++s) {
    double v = 0.0;
    if (WidenNumeric(tuple->value(history_columns_[s]), &v)) {
      (*partition)[s].Push(v);
    }
  }
  return true;
}

Status CleanerOperator::Process(Tuple tuple, Emitter* out) {
  ICEWAFL_RETURN_NOT_OK(Prepare(&tuple));
  ++stats_.tuples_in;
  if (tuples_seen_ != nullptr) tuples_seen_->Increment();
  Partition* partition = PartitionFor(tuple);
  if (!Clean(&tuple, partition)) return Status::OK();
  ++stats_.tuples_out;
  return out->Emit(std::move(tuple));
}

Status CleanerOperator::Finish(Emitter* out) {
  (void)out;
  if (finish_stats_ != nullptr) finish_stats_->Merge(stats_);
  return Status::OK();
}

Status CleanerOperator::ProcessBatch(TupleVector* batch, Emitter* out) {
  if (tuples_seen_ != nullptr) tuples_seen_->Increment(batch->size());
  for (Tuple& tuple : *batch) {
    ICEWAFL_RETURN_NOT_OK(Prepare(&tuple));
    ++stats_.tuples_in;
    Partition* partition = PartitionFor(tuple);
    if (!Clean(&tuple, partition)) continue;
    ++stats_.tuples_out;
    ICEWAFL_RETURN_NOT_OK(out->Emit(std::move(tuple)));
  }
  batch->clear();
  return Status::OK();
}

Status CleanTuples(const CleaningRules& rules, TupleVector input,
                   int parallelism, Sink* sink,
                   obs::MetricRegistry* metrics, RepairLog* log,
                   CleanStats* stats) {
  if (input.empty()) return sink->Flush();
  // Deterministic ids: assigned in source order before any partitioning
  // so the parallel stages can be merged back to input order.
  TupleId next_id = 0;
  for (Tuple& t : input) {
    if (t.id() == kInvalidTupleId) {
      t.set_id(next_id);
      ICEWAFL_ASSIGN_OR_RETURN(Timestamp ts, t.GetTimestamp());
      t.set_event_time(ts);
      t.set_arrival_time(ts);
    }
    next_id = std::max<TupleId>(next_id, t.id() + 1);
  }

  const bool split =
      parallelism > 1 && rules.HasStateless();
  if (!split) {
    CleanerOperator op(rules, RulePhase::kAll, log);
    op.BindMetrics(metrics);
    SinkEmitter emitter(sink);
    for (Tuple& t : input) {
      ICEWAFL_RETURN_NOT_OK(op.Process(std::move(t), &emitter));
    }
    if (log != nullptr) log->SortByTuple();
    if (stats != nullptr) *stats = op.stats();
    return sink->Flush();
  }

  // Phase 1: pure stateless rules on the pipelined runtime. Workers own
  // private operator clones; metric handles aggregate through the
  // shared registry; logs stay per-worker and merge afterwards.
  SchemaPtr schema = input.front().schema();
  std::vector<RepairLog> worker_logs(parallelism);
  std::vector<CleanStats> worker_stats(parallelism);
  VectorSource source(schema, std::move(input));
  VectorSink collected;
  RuntimeOptions options;
  options.parallelism = parallelism;
  options.metrics = metrics;
  PipelineRuntime runtime(options);
  auto factory = [&](int worker_index) {
    auto op = std::make_unique<CleanerOperator>(
        rules, RulePhase::kStatelessOnly,
        log != nullptr ? &worker_logs[worker_index] : nullptr,
        &worker_stats[worker_index]);
    op->BindMetrics(metrics);
    OperatorChain chain;
    chain.push_back(std::move(op));
    return chain;
  };
  ICEWAFL_RETURN_NOT_OK(runtime.Run(&source, factory, &collected));

  TupleVector staged = collected.TakeTuples();
  std::stable_sort(staged.begin(), staged.end(),
                   [](const Tuple& a, const Tuple& b) {
                     return a.id() < b.id();
                   });

  RepairLog merged_log;
  if (log != nullptr) {
    for (RepairLog& wl : worker_logs) merged_log.Merge(wl);
  }

  // Phase 2: the stateful tail runs sequentially over the re-ordered
  // stream, exactly as the single-operator reference would see it.
  CleanerOperator tail(rules, RulePhase::kStatefulOnly,
                       log != nullptr ? &merged_log : nullptr);
  tail.BindMetrics(metrics);
  SinkEmitter emitter(sink);
  for (Tuple& t : staged) {
    ICEWAFL_RETURN_NOT_OK(tail.Process(std::move(t), &emitter));
  }

  if (log != nullptr) {
    merged_log.SortByTuple();
    log->Merge(merged_log);
  }
  if (stats != nullptr) {
    CleanStats merged;
    for (const CleanStats& ws : worker_stats) merged.Merge(ws);
    // The tail re-counts the staged survivors; the run's totals are the
    // stateless phase's intake and the tail's output.
    uint64_t phase1_in = merged.tuples_in;
    merged.Merge(tail.stats());
    merged.tuples_in = phase1_in;
    merged.tuples_out = tail.stats().tuples_out;
    *stats = merged;
  }
  return sink->Flush();
}

}  // namespace clean
}  // namespace icewafl
