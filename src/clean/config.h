#ifndef ICEWAFL_CLEAN_CONFIG_H_
#define ICEWAFL_CLEAN_CONFIG_H_

#include <string>

#include "clean/rules.h"
#include "stream/schema.h"
#include "util/json.h"
#include "util/result.h"

namespace icewafl {
namespace clean {

/// \file
/// JSON loading of cleaning documents. Errors carry JSON-pointer paths
/// ("missing field 'column' at /rules/2"), exactly like the pipeline
/// and suite loaders. The document shape is
/// \code{.json}
/// {"name": "wearable_clean", "key": "device", "history": 16,
///  "rules": [
///    {"label": "bpm_range", "column": "BPM",
///     "detect": {"type": "range", "min": 20, "max": 250},
///     "repair": "set_null",
///     "when": [{"column": "Steps", "op": "gt", "value": 0}]}]}
/// \endcode
/// with detect types range / not_null / regex / type / cross_field /
/// rate_of_change / stuck_at and repairs drop / set_null / clamp /
/// last_good / window_mean / window_median. "when" accepts one guard
/// object or an array of them.

/// \brief Builds cleaning rules from a parsed document. When
/// `bind_schema` is non-null every rule is also bound against it, so a
/// returned document is ready to run.
Result<CleaningRules> RulesFromJson(const Json& json,
                                    SchemaPtr bind_schema = nullptr);

/// \brief Parses JSON text and builds the rules.
Result<CleaningRules> RulesFromJsonString(const std::string& text,
                                          SchemaPtr bind_schema = nullptr);

/// \brief Reads a JSON file and builds the rules.
Result<CleaningRules> RulesFromJsonFile(const std::string& path,
                                        SchemaPtr bind_schema = nullptr);

/// \brief Binds every rule of `rules` against `schema`, rooting error
/// paths at "/rules/<i>".
Status BindRules(CleaningRules* rules, const Schema& schema);

}  // namespace clean
}  // namespace icewafl

#endif  // ICEWAFL_CLEAN_CONFIG_H_
