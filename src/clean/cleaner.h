#ifndef ICEWAFL_CLEAN_CLEANER_H_
#define ICEWAFL_CLEAN_CLEANER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "clean/rules.h"
#include "obs/metrics.h"
#include "stream/operator.h"
#include "stream/sink.h"
#include "stream/tuple.h"
#include "util/json.h"
#include "util/result.h"

namespace icewafl {
namespace clean {

/// \file
/// The cleaning operator and its deterministic runner (DESIGN.md
/// section 15). A CleanerOperator evaluates the document's rules in
/// canonical order — pure stateless rules in document order, then
/// stateful (windowed-detect or windowed-repair) rules in document
/// order — applying each repair before the next rule sees the tuple.
/// CleanTuples exploits that split: pure rules run on the pipelined
/// runtime at any parallelism, the stateful tail runs sequentially, and
/// the output is byte-identical at every parallelism level.

/// \brief One detection/repair event, the cleaner's mirror of
/// PollutionLogEntry: which rule fired on which tuple and what was done.
struct RepairLogEntry {
  TupleId tuple_id = kInvalidTupleId;
  /// Rule label that fired.
  std::string rule;
  /// Column the repair applies to.
  std::string column;
  /// Repair action name ("drop", "set_null", ...).
  std::string action;

  bool operator==(const RepairLogEntry&) const = default;

  Json ToJson() const;
};

/// \brief Ordered record of every rule firing of one cleaning run —
/// the detection side of the closed pollute → clean loop, consumed by
/// the scenario scorer. Not thread-safe; parallel runners keep one log
/// per worker and merge by tuple id.
class RepairLog {
 public:
  void Record(RepairLogEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<RepairLogEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// \brief Number of distinct tuples with at least one firing.
  size_t DistinctTupleCount() const;

  /// \brief Appends all entries of `other`.
  void Merge(const RepairLog& other);

  /// \brief Stable-sorts entries by tuple id (rule order within one
  /// tuple is preserved), restoring canonical order after a parallel
  /// run's per-worker logs are merged.
  void SortByTuple();

  Json ToJson() const;

 private:
  std::vector<RepairLogEntry> entries_;
};

/// \brief Per-rule firing counters of one CleanerOperator (or one
/// merged run).
struct RuleStats {
  std::string label;
  uint64_t fired = 0;
  uint64_t repaired = 0;
  uint64_t dropped = 0;
};

/// \brief Aggregate counters of one cleaning run.
struct CleanStats {
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  uint64_t tuples_dropped = 0;
  uint64_t fired = 0;
  uint64_t repaired = 0;
  std::vector<RuleStats> rules;

  void Merge(const CleanStats& other);
  Json ToJson() const;
};

/// \brief Which rule subset an operator instance evaluates. The split
/// runner gives workers the pure subset and the sequential tail the
/// stateful subset; both together equal kAll on one thread.
enum class RulePhase { kAll, kStatelessOnly, kStatefulOnly };

/// \brief The stream repair operator. Owns a deep copy of the rules
/// (bind-once accessors) plus the bounded per-key value histories; the
/// runtime clones one instance per worker via the chain factory.
class CleanerOperator : public Operator {
 public:
  /// \param rules bound cleaning document (deep-copied).
  /// \param phase rule subset this instance evaluates.
  /// \param log optional repair log (borrowed, not thread-safe).
  /// \param finish_stats optional slot the operator merges its counters
  ///   into at Finish() — how the split runner collects per-worker
  ///   stats after the chains are torn down (each worker gets its own
  ///   slot; the runtime's join is the synchronization point).
  explicit CleanerOperator(const CleaningRules& rules,
                           RulePhase phase = RulePhase::kAll,
                           RepairLog* log = nullptr,
                           CleanStats* finish_stats = nullptr);

  /// \brief Registers the icewafl_cleaner_* series, labeled by the
  /// document name; follows the PolluterOperator contract (idempotent,
  /// all-or-nothing on name/type conflicts).
  void BindMetrics(obs::MetricRegistry* registry);

  Status Process(Tuple tuple, Emitter* out) override;
  Status ProcessBatch(TupleVector* batch, Emitter* out) override;
  Status Finish(Emitter* out) override;

  const CleanStats& stats() const { return stats_; }
  const CleaningRules& rules() const { return rules_; }

 private:
  struct BoundRule {
    CleanRule* rule;
    /// Slot into each key partition's history vector; -1 when the rule
    /// touches no history.
    int history_slot;
    obs::Counter* fired = nullptr;
    obs::Counter* repaired = nullptr;
    obs::Counter* dropped = nullptr;
  };

  /// One key partition: one ValueHistory per tracked column.
  using Partition = std::vector<ValueHistory>;

  Status Prepare(Tuple* tuple);
  Partition* PartitionFor(const Tuple& tuple);
  /// \brief Runs the phase's rules over the tuple; false = dropped.
  bool Clean(Tuple* tuple, Partition* partition);
  void ApplyRepair(const BoundRule& bound, Tuple* tuple,
                   const ValueHistory* history);

  CleaningRules rules_;
  RulePhase phase_;
  RepairLog* log_;
  CleanStats* finish_stats_;

  /// Rules of this phase, canonical order (pure first, then stateful).
  std::vector<BoundRule> active_;
  /// Column index per history slot, in slot order.
  std::vector<size_t> history_columns_;
  bool keyed_ = false;
  /// Key column index, resolved lazily from the first tuple's schema.
  int key_index_ = -1;
  std::unordered_map<std::string, Partition> partitions_;
  Partition global_partition_;
  std::string key_storage_;

  CleanStats stats_;
  TupleId next_id_ = 0;
  obs::Counter* tuples_seen_ = nullptr;
};

/// \brief Deterministic cleaning runner: applies `rules` to `input`
/// and writes surviving tuples to `sink` in input order.
///
/// Pure stateless rules run on the pipelined runtime at `parallelism`
/// (round-robin partitioning, per-worker operator clones); the workers'
/// interleaved output is stable-sorted back to input order by tuple id
/// before the stateful rules run sequentially. Output is therefore
/// byte-identical across parallelism levels and to the single-operator
/// kAll reference. Tuples without ids are assigned sequential ids
/// (source order) before partitioning.
///
/// `metrics` and `log` may be null; per-worker logs are merged and
/// sorted by tuple id.
Status CleanTuples(const CleaningRules& rules, TupleVector input,
                   int parallelism, Sink* sink,
                   obs::MetricRegistry* metrics = nullptr,
                   RepairLog* log = nullptr, CleanStats* stats = nullptr);

}  // namespace clean
}  // namespace icewafl

#endif  // ICEWAFL_CLEAN_CLEANER_H_
