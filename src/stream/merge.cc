#include "stream/merge.h"

namespace icewafl {

MergeSortedSources::MergeSortedSources(std::vector<Source*> sources)
    : sources_(std::move(sources)), heads_(sources_.size()) {}

SchemaPtr MergeSortedSources::schema() const {
  return sources_.empty() ? nullptr : sources_.front()->schema();
}

Status MergeSortedSources::FillHead(size_t i) {
  Tuple tuple;
  ICEWAFL_ASSIGN_OR_RETURN(bool more, sources_[i]->Next(&tuple));
  if (more) {
    heads_[i] = std::move(tuple);
  } else {
    heads_[i].reset();
  }
  return Status::OK();
}

Result<bool> MergeSortedSources::Next(Tuple* out) {
  if (!primed_) {
    for (size_t i = 0; i < sources_.size(); ++i) {
      ICEWAFL_RETURN_NOT_OK(FillHead(i));
    }
    primed_ = true;
  }
  size_t best = heads_.size();
  for (size_t i = 0; i < heads_.size(); ++i) {
    if (!heads_[i].has_value()) continue;
    if (best == heads_.size() ||
        heads_[i]->arrival_time() < heads_[best]->arrival_time()) {
      best = i;
    }
  }
  if (best == heads_.size()) return false;  // all exhausted
  *out = std::move(*heads_[best]);
  ICEWAFL_RETURN_NOT_OK(FillHead(best));
  return true;
}

Status MergeSortedSources::Reset() {
  for (Source* source : sources_) {
    ICEWAFL_RETURN_NOT_OK(source->Reset());
  }
  heads_.assign(sources_.size(), std::nullopt);
  primed_ = false;
  return Status::OK();
}

}  // namespace icewafl
