#include "stream/micro_batch.h"

namespace icewafl {

Result<std::vector<TupleVector>> ToMicroBatches(Source* source,
                                                size_t batch_size) {
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be > 0");
  }
  std::vector<TupleVector> batches;
  TupleVector current;
  Tuple tuple;
  while (true) {
    auto more = source->Next(&tuple);
    if (!more.ok()) return more.status();
    if (!more.ValueOrDie()) break;
    current.push_back(std::move(tuple));
    if (current.size() == batch_size) {
      batches.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) batches.push_back(std::move(current));
  return batches;
}

}  // namespace icewafl
