#include "stream/executor.h"

#include <thread>

#include "stream/runtime.h"

namespace icewafl {

namespace {

/// Pushes emitted tuples into the next operator of the chain, or into the
/// terminal sink after the last operator (legacy tuple-at-a-time driver,
/// kept for the materializing baseline).
class ChainEmitter : public Emitter {
 public:
  ChainEmitter(const std::vector<Operator*>* ops, size_t next, Sink* sink)
      : ops_(ops), next_(next), sink_(sink) {}

  Status Emit(Tuple tuple) override {
    if (next_ >= ops_->size()) return sink_->Write(std::move(tuple));
    ChainEmitter downstream(ops_, next_ + 1, sink_);
    return (*ops_)[next_]->Process(std::move(tuple), &downstream);
  }

 private:
  const std::vector<Operator*>* ops_;
  size_t next_;
  Sink* sink_;
};

Status RunChainInline(Source* source, const std::vector<Operator*>& ops,
                      Sink* sink) {
  ChainEmitter head(&ops, 0, sink);
  Tuple tuple;
  while (true) {
    auto more = source->Next(&tuple);
    if (!more.ok()) return more.status();
    if (!more.ValueOrDie()) break;
    ICEWAFL_RETURN_NOT_OK(head.Emit(std::move(tuple)));
  }
  // Flush buffered operator state front-to-back so that re-emitted tuples
  // traverse the remaining chain.
  for (size_t i = 0; i < ops.size(); ++i) {
    ChainEmitter downstream(&ops, i + 1, sink);
    ICEWAFL_RETURN_NOT_OK(ops[i]->Finish(&downstream));
  }
  return sink->Flush();
}

}  // namespace

Status StreamExecutor::Run(Source* source, const std::vector<Operator*>& ops,
                           Sink* sink) {
  PipelineRuntime runtime;
  return runtime.Run(source, ops, sink);
}

Status StreamExecutor::Run(Source* source, const OperatorChain& chain,
                           Sink* sink) {
  std::vector<Operator*> ops;
  ops.reserve(chain.size());
  for (const auto& op : chain) ops.push_back(op.get());
  return Run(source, ops, sink);
}

Status ParallelExecutor::Run(Source* source,
                             const ChainFactory& chain_factory, Sink* sink) {
  RuntimeOptions options;
  options.parallelism = parallelism_;
  PipelineRuntime runtime(options);
  return runtime.Run(source, chain_factory, sink);
}

Status ParallelExecutor::RunMaterializing(Source* source,
                                          const ChainFactory& chain_factory,
                                          Sink* sink) {
  if (parallelism_ < 1) {
    return Status::InvalidArgument("parallelism must be >= 1");
  }
  // Partition the input round-robin. Tuples are materialized per worker;
  // this mirrors Flink's rebalance() shuffle into parallel subtasks.
  std::vector<TupleVector> partitions(static_cast<size_t>(parallelism_));
  {
    Tuple tuple;
    size_t i = 0;
    while (true) {
      auto more = source->Next(&tuple);
      if (!more.ok()) return more.status();
      if (!more.ValueOrDie()) break;
      partitions[i % partitions.size()].push_back(std::move(tuple));
      ++i;
    }
  }

  SchemaPtr schema = source->schema();
  std::vector<VectorSink> outputs(partitions.size());
  std::vector<Status> statuses(partitions.size());
  std::vector<std::thread> workers;
  workers.reserve(partitions.size());
  for (size_t w = 0; w < partitions.size(); ++w) {
    workers.emplace_back([&, w] {
      OperatorChain chain = chain_factory(static_cast<int>(w));
      VectorSource part(schema, std::move(partitions[w]));
      // The per-worker run stays inline on the worker's own thread.
      std::vector<Operator*> ops;
      ops.reserve(chain.size());
      for (const auto& op : chain) ops.push_back(op.get());
      statuses[w] = RunChainInline(&part, ops, &outputs[w]);
    });
  }
  for (std::thread& t : workers) t.join();
  for (const Status& st : statuses) ICEWAFL_RETURN_NOT_OK(st);

  for (VectorSink& out : outputs) {
    TupleVector tuples = out.TakeTuples();
    for (Tuple& t : tuples) {
      ICEWAFL_RETURN_NOT_OK(sink->Write(std::move(t)));
    }
  }
  return sink->Flush();
}

}  // namespace icewafl
