#include "stream/source.h"

namespace icewafl {

Result<TupleVector> CollectAll(Source* source) {
  TupleVector out;
  Tuple tuple;
  while (true) {
    auto more = source->Next(&tuple);
    if (!more.ok()) return more.status();
    if (!more.ValueOrDie()) break;
    out.push_back(std::move(tuple));
  }
  return out;
}

}  // namespace icewafl
