#ifndef ICEWAFL_STREAM_EXECUTOR_H_
#define ICEWAFL_STREAM_EXECUTOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "stream/operator.h"
#include "stream/sink.h"
#include "stream/source.h"
#include "util/result.h"

namespace icewafl {

/// \brief Drives tuples from a source through an operator chain into a
/// sink (single-threaded, tuple-at-a-time).
///
/// This is the execution substrate standing in for Apache Flink's task
/// chain: each tuple is pulled from the source and pushed through the
/// operators; operators may buffer and re-emit; Finish() flushes state at
/// end of stream.
class StreamExecutor {
 public:
  /// \brief Runs the topology to completion (bounded source).
  static Status Run(Source* source, const std::vector<Operator*>& ops,
                    Sink* sink);

  /// \brief Convenience overload for an owned chain.
  static Status Run(Source* source, const OperatorChain& chain, Sink* sink);
};

/// \brief Partitioned multi-threaded executor (Flink parallelism model).
///
/// Tuples are partitioned round-robin over `parallelism` workers; each
/// worker runs its own operator-chain instance produced by `chain_factory`
/// (operator instances are stateful and must not be shared), and the
/// partial outputs are merged in partition order. Because pollution in
/// Icewafl is tuple-local, round-robin partitioning preserves semantics
/// while distributing work.
class ParallelExecutor {
 public:
  using ChainFactory = std::function<OperatorChain(int worker_index)>;

  /// \param parallelism number of worker threads (>= 1).
  explicit ParallelExecutor(int parallelism) : parallelism_(parallelism) {}

  /// \brief Runs the topology; the merged output (concatenation of worker
  /// outputs in worker order) is pushed into `sink`.
  Status Run(Source* source, const ChainFactory& chain_factory, Sink* sink);

 private:
  int parallelism_;
};

}  // namespace icewafl

#endif  // ICEWAFL_STREAM_EXECUTOR_H_
