#ifndef ICEWAFL_STREAM_EXECUTOR_H_
#define ICEWAFL_STREAM_EXECUTOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "stream/operator.h"
#include "stream/sink.h"
#include "stream/source.h"
#include "util/result.h"

namespace icewafl {

/// \brief Drives tuples from a source through an operator chain into a
/// sink, preserving exact input order.
///
/// This is the execution substrate standing in for Apache Flink's task
/// chain. Since the pipelined-runtime refactor it is a thin façade over
/// `PipelineRuntime` at parallelism 1: tuples flow through the batched
/// operator path with bounded buffering instead of being materialized.
/// Semantics are unchanged — operators may buffer and re-emit, and
/// Finish() flushes state at end of stream in chain order.
class StreamExecutor {
 public:
  /// \brief Runs the topology to completion (bounded source).
  static Status Run(Source* source, const std::vector<Operator*>& ops,
                    Sink* sink);

  /// \brief Convenience overload for an owned chain.
  static Status Run(Source* source, const OperatorChain& chain, Sink* sink);
};

/// \brief Partitioned multi-threaded executor (Flink parallelism model).
///
/// Tuples are partitioned round-robin over `parallelism` workers; each
/// worker runs its own operator-chain instance produced by
/// `chain_factory` (operator instances are stateful and must not be
/// shared). Because pollution in Icewafl is tuple-local, round-robin
/// partitioning preserves semantics while distributing work.
///
/// `Run` executes on the pipelined `PipelineRuntime`: workers consume
/// and emit bounded channel batches concurrently with the source, so
/// peak buffering is O(channel capacity × parallelism) instead of the
/// whole stream, and the merged output interleaves worker batches in a
/// deterministic rotation. `RunMaterializing` retains the legacy
/// materialize-then-run model (full partition buffering, worker-order
/// concatenation) as a baseline for benchmarks and for callers that
/// need the historical output order.
class ParallelExecutor {
 public:
  using ChainFactory = std::function<OperatorChain(int worker_index)>;

  /// \param parallelism number of worker threads (>= 1).
  explicit ParallelExecutor(int parallelism) : parallelism_(parallelism) {}

  /// \brief Runs the topology on the pipelined runtime; worker outputs
  /// are merged into `sink` in a deterministic batch rotation.
  Status Run(Source* source, const ChainFactory& chain_factory, Sink* sink);

  /// \brief Legacy materializing execution: buffers the full stream into
  /// per-worker partitions, runs the workers, then moves the per-worker
  /// outputs into `sink` in worker order.
  Status RunMaterializing(Source* source, const ChainFactory& chain_factory,
                          Sink* sink);

 private:
  int parallelism_;
};

}  // namespace icewafl

#endif  // ICEWAFL_STREAM_EXECUTOR_H_
