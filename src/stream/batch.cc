#include "stream/batch.h"

#include <algorithm>

namespace icewafl {

namespace {

/// lower_bound over the sorted exception list.
std::vector<std::pair<uint32_t, Value>>::iterator FindDivergent(
    std::vector<std::pair<uint32_t, Value>>& list, uint32_t row) {
  return std::lower_bound(
      list.begin(), list.end(), row,
      [](const std::pair<uint32_t, Value>& e, uint32_t r) {
        return e.first < r;
      });
}

}  // namespace

void Column::Reserve(size_t rows) {
  switch (declared_) {
    case ValueType::kDouble: doubles_.reserve(rows); break;
    case ValueType::kInt64: int64s_.reserve(rows); break;
    case ValueType::kBool: bools_.reserve(rows); break;
    case ValueType::kString: strings_.reserve(rows); break;
    case ValueType::kNull: break;
  }
  valid_.reserve((rows + 63) / 64);
}

void Column::ZeroSlot(size_t row) {
  switch (declared_) {
    case ValueType::kDouble: doubles_[row] = 0.0; break;
    case ValueType::kInt64: int64s_[row] = 0; break;
    case ValueType::kBool: bools_[row] = 0; break;
    case ValueType::kString: strings_[row].clear(); break;
    case ValueType::kNull: break;
  }
}

void Column::Append(const Value& v) {
  const size_t row = rows_++;
  switch (declared_) {
    case ValueType::kDouble: doubles_.emplace_back(0.0); break;
    case ValueType::kInt64: int64s_.emplace_back(0); break;
    case ValueType::kBool: bools_.emplace_back(0); break;
    case ValueType::kString: strings_.emplace_back(); break;
    case ValueType::kNull: break;
  }
  if (valid_.size() * 64 < rows_) valid_.push_back(0);
  if (v.is_null()) return;
  if (v.type() == declared_) {
    switch (declared_) {
      case ValueType::kDouble: doubles_[row] = v.AsDouble(); break;
      case ValueType::kInt64: int64s_[row] = v.AsInt64(); break;
      case ValueType::kBool: bools_[row] = v.AsBool() ? 1 : 0; break;
      case ValueType::kString: strings_[row] = v.AsString(); break;
      case ValueType::kNull: return;  // unreachable: null handled above
    }
    valid_[row >> 6] |= uint64_t{1} << (row & 63);
    return;
  }
  divergent_.emplace_back(static_cast<uint32_t>(row), v);
}

void Column::ResizeDefault(size_t rows) {
  rows_ = rows;
  switch (declared_) {
    case ValueType::kDouble: doubles_.assign(rows, 0.0); break;
    case ValueType::kInt64: int64s_.assign(rows, 0); break;
    case ValueType::kBool: bools_.assign(rows, 0); break;
    case ValueType::kString: strings_.assign(rows, std::string()); break;
    case ValueType::kNull: break;
  }
  valid_.assign((rows + 63) / 64, 0);
  divergent_.clear();
}

Value Column::At(size_t row) const {
  if (IsValid(row)) {
    switch (declared_) {
      case ValueType::kDouble: return Value(doubles_[row]);
      case ValueType::kInt64: return Value(int64s_[row]);
      case ValueType::kBool: return Value(bools_[row] != 0);
      case ValueType::kString: return Value(strings_[row]);
      case ValueType::kNull: break;  // unreachable: kNull rows are never valid
    }
  }
  const Value* dv = DivergentAt(row);
  return dv != nullptr ? *dv : Value::Null();
}

void Column::Set(size_t row, Value v) {
  if (v.is_null()) {
    SetNull(row);
    return;
  }
  if (v.type() == declared_) {
    switch (declared_) {
      case ValueType::kDouble: doubles_[row] = v.AsDouble(); break;
      case ValueType::kInt64: int64s_[row] = v.AsInt64(); break;
      case ValueType::kBool: bools_[row] = v.AsBool() ? 1 : 0; break;
      case ValueType::kString: strings_[row] = std::move(v).AsString(); break;
      case ValueType::kNull: break;  // unreachable: null handled above
    }
    valid_[row >> 6] |= uint64_t{1} << (row & 63);
    auto it = FindDivergent(divergent_, static_cast<uint32_t>(row));
    if (it != divergent_.end() && it->first == row) divergent_.erase(it);
    return;
  }
  valid_[row >> 6] &= ~(uint64_t{1} << (row & 63));
  ZeroSlot(row);
  auto it = FindDivergent(divergent_, static_cast<uint32_t>(row));
  if (it != divergent_.end() && it->first == row) {
    it->second = std::move(v);
  } else {
    divergent_.emplace(it, static_cast<uint32_t>(row), std::move(v));
  }
}

void Column::SetNull(size_t row) {
  valid_[row >> 6] &= ~(uint64_t{1} << (row & 63));
  ZeroSlot(row);
  auto it = FindDivergent(divergent_, static_cast<uint32_t>(row));
  if (it != divergent_.end() && it->first == row) divergent_.erase(it);
}

Value* Column::DivergentAt(size_t row) {
  auto it = FindDivergent(divergent_, static_cast<uint32_t>(row));
  if (it != divergent_.end() && it->first == row) return &it->second;
  return nullptr;
}

const Value* Column::DivergentAt(size_t row) const {
  return const_cast<Column*>(this)->DivergentAt(row);
}

Result<Batch> Batch::FromTuples(const TupleVector& tuples) {
  if (tuples.empty()) {
    return Status::InvalidArgument("batch: cannot columnarize an empty batch");
  }
  const SchemaPtr& schema = tuples.front().schema();
  if (schema == nullptr) {
    return Status::InvalidArgument("batch: tuple without schema");
  }
  if (tuples.size() > UINT32_MAX) {
    return Status::InvalidArgument("batch: too many rows to columnarize");
  }
  const size_t k = schema->num_attributes();
  Batch batch = Batch::Empty(schema);
  batch.rows_ = tuples.size();
  for (Column& col : batch.columns_) col.Reserve(tuples.size());
  batch.ids_.reserve(tuples.size());
  batch.event_times_.reserve(tuples.size());
  batch.arrival_times_.reserve(tuples.size());
  batch.substreams_.reserve(tuples.size());
  for (const Tuple& t : tuples) {
    if (t.schema().get() != schema.get()) {
      return Status::InvalidArgument("batch: mixed schemas in one batch");
    }
    if (t.num_values() != k) {
      return Status::InvalidArgument(
          "batch: tuple arity " + std::to_string(t.num_values()) +
          " does not match schema arity " + std::to_string(k));
    }
    for (size_t i = 0; i < k; ++i) batch.columns_[i].Append(t.value(i));
    batch.ids_.push_back(t.id());
    batch.event_times_.push_back(t.event_time());
    batch.arrival_times_.push_back(t.arrival_time());
    batch.substreams_.push_back(t.substream());
  }
  return batch;
}

Batch Batch::Empty(SchemaPtr schema) {
  Batch batch;
  batch.columns_.reserve(schema->num_attributes());
  for (const Attribute& attr : schema->attributes()) {
    batch.columns_.emplace_back(attr.type);
  }
  batch.schema_ = std::move(schema);
  return batch;
}

TupleVector Batch::ToTuples() const {
  TupleVector out;
  out.reserve(rows_);
  const size_t k = columns_.size();
  for (size_t r = 0; r < rows_; ++r) {
    std::vector<Value> values;
    values.reserve(k);
    for (size_t i = 0; i < k; ++i) values.push_back(columns_[i].At(r));
    Tuple t(schema_, std::move(values));
    t.set_id(ids_[r]);
    t.set_event_time(event_times_[r]);
    t.set_arrival_time(arrival_times_[r]);
    t.set_substream(substreams_[r]);
    out.push_back(std::move(t));
  }
  return out;
}

void Batch::ResizeDefault(size_t rows) {
  rows_ = rows;
  for (Column& col : columns_) col.ResizeDefault(rows);
  ids_.assign(rows, kInvalidTupleId);
  event_times_.assign(rows, 0);
  arrival_times_.assign(rows, 0);
  substreams_.assign(rows, kNoSubstream);
}

}  // namespace icewafl
