#include "stream/tuple.h"

namespace icewafl {

Result<Value> Tuple::Get(const std::string& name) const {
  if (!schema_) return Status::Internal("tuple has no schema");
  ICEWAFL_ASSIGN_OR_RETURN(size_t idx, schema_->IndexOf(name));
  if (idx >= values_.size()) {
    return Status::Internal("tuple narrower than schema");
  }
  return values_[idx];
}

Status Tuple::Set(const std::string& name, Value v) {
  if (!schema_) return Status::Internal("tuple has no schema");
  ICEWAFL_ASSIGN_OR_RETURN(size_t idx, schema_->IndexOf(name));
  if (idx >= values_.size()) {
    return Status::Internal("tuple narrower than schema");
  }
  values_[idx] = std::move(v);
  return Status::OK();
}

Result<Timestamp> Tuple::GetTimestamp() const {
  if (!schema_) return Status::Internal("tuple has no schema");
  const Value& v = values_[schema_->timestamp_index()];
  if (v.is_null()) return Status::TypeError("timestamp attribute is NULL");
  return v.ToInt64();
}

Status Tuple::SetTimestamp(Timestamp ts) {
  if (!schema_) return Status::Internal("tuple has no schema");
  values_[schema_->timestamp_index()] = Value(ts);
  return Status::OK();
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    if (schema_ && i < schema_->num_attributes()) {
      out += schema_->attribute(i).name;
      out += "=";
    }
    out += values_[i].ToString("NULL");
  }
  out += ")";
  return out;
}

}  // namespace icewafl
