#ifndef ICEWAFL_STREAM_MICRO_BATCH_H_
#define ICEWAFL_STREAM_MICRO_BATCH_H_

#include <utility>
#include <vector>

#include "stream/source.h"
#include "util/result.h"

namespace icewafl {

/// \brief Groups a bounded stream into micro-batches of at most
/// `batch_size` tuples (the last batch may be shorter).
Result<std::vector<TupleVector>> ToMicroBatches(Source* source,
                                                size_t batch_size);

/// \brief Source adapter that replays micro-batches tuple-wise.
///
/// Section 2.1: batch input is treated "tuple-wise as a data stream";
/// this adapter is the bridge from a micro-batched producer back into the
/// tuple-at-a-time pollution pipeline.
class MicroBatchSource : public Source {
 public:
  MicroBatchSource(SchemaPtr schema, std::vector<TupleVector> batches)
      : schema_(std::move(schema)), batches_(std::move(batches)) {}

  SchemaPtr schema() const override { return schema_; }

  Result<bool> Next(Tuple* out) override {
    while (batch_ < batches_.size()) {
      if (pos_ < batches_[batch_].size()) {
        *out = batches_[batch_][pos_++];
        return true;
      }
      ++batch_;
      pos_ = 0;
    }
    return false;
  }

  Status Reset() override {
    batch_ = 0;
    pos_ = 0;
    return Status::OK();
  }

  size_t num_batches() const { return batches_.size(); }

 private:
  SchemaPtr schema_;
  std::vector<TupleVector> batches_;
  size_t batch_ = 0;
  size_t pos_ = 0;
};

}  // namespace icewafl

#endif  // ICEWAFL_STREAM_MICRO_BATCH_H_
