#ifndef ICEWAFL_STREAM_SINK_H_
#define ICEWAFL_STREAM_SINK_H_

#include <cstdint>
#include <utility>

#include "stream/tuple.h"
#include "util/result.h"

namespace icewafl {

/// \brief A push-based consumer of tuples.
class Sink {
 public:
  virtual ~Sink() = default;

  /// \brief Consumes one tuple.
  virtual Status Write(const Tuple& tuple) = 0;

  /// \brief Move-aware overload used by the executors' merge paths; the
  /// default degrades to the copying Write. Materializing sinks override
  /// it to take ownership without a per-tuple deep copy.
  virtual Status Write(Tuple&& tuple) {
    return Write(static_cast<const Tuple&>(tuple));
  }

  /// \brief Called once after the last tuple.
  virtual Status Flush() { return Status::OK(); }
};

/// \brief Materializes the stream into an in-memory vector.
class VectorSink : public Sink {
 public:
  using Sink::Write;

  Status Write(const Tuple& tuple) override {
    tuples_.push_back(tuple);
    return Status::OK();
  }

  Status Write(Tuple&& tuple) override {
    tuples_.push_back(std::move(tuple));
    return Status::OK();
  }

  const TupleVector& tuples() const { return tuples_; }
  TupleVector TakeTuples() { return std::move(tuples_); }

 private:
  TupleVector tuples_;
};

/// \brief Discards tuples but counts them (baseline for overhead
/// measurements, Figure 8).
class CountingSink : public Sink {
 public:
  using Sink::Write;

  Status Write(const Tuple& tuple) override {
    ++count_;
    checksum_ ^= tuple.id() + 0x9E3779B97F4A7C15ULL + (checksum_ << 6);
    return Status::OK();
  }

  uint64_t count() const { return count_; }

  /// \brief Order-sensitive digest; prevents dead-code elimination in
  /// benchmarks and detects accidental reordering.
  uint64_t checksum() const { return checksum_; }

 private:
  uint64_t count_ = 0;
  uint64_t checksum_ = 0;
};

}  // namespace icewafl

#endif  // ICEWAFL_STREAM_SINK_H_
