#ifndef ICEWAFL_STREAM_BIND_H_
#define ICEWAFL_STREAM_BIND_H_

#include <string>
#include <utility>
#include <vector>

#include "stream/batch.h"
#include "stream/schema.h"
#include "stream/tuple.h"
#include "util/result.h"

namespace icewafl {

/// \file
/// Two-phase bind/run support (DESIGN.md section 8).
///
/// Schema-consuming components follow the lifecycle
///
///     configure -> Bind(const Schema&) -> run
///
/// where Bind resolves every attribute name to a column index exactly
/// once, validates declared types, and stores BoundAccessors. The
/// per-tuple run phase is then branch-lean index arithmetic: no string
/// hashing (Schema::IndexOf), no Result<Value> copies (Tuple::Get), and
/// no error plumbing — misconfiguration has already been rejected at
/// bind time with a JSON-pointer path.

/// \brief A compiled reference to one column of a bound schema: the
/// resolved index plus the declared type. All per-tuple accessors are
/// noexcept; they assume the tuple matches the schema the accessor was
/// bound against (the bind contract).
class BoundAccessor {
 public:
  BoundAccessor() = default;
  BoundAccessor(size_t index, ValueType declared_type)
      : index_(index), declared_type_(declared_type) {}

  size_t index() const noexcept { return index_; }
  ValueType declared_type() const noexcept { return declared_type_; }

  /// \brief The column value, by reference — no copy, no lookup.
  const Value& at(const Tuple& tuple) const noexcept {
    return tuple.value(index_);
  }

  /// \brief Mutable access for error functions.
  void set(Tuple* tuple, Value v) const {
    tuple->set_value(index_, std::move(v));
  }

  /// \brief Numeric read widening int64/double/bool; false for NULL,
  /// strings, or anything else that cannot widen.
  bool DoubleAt(const Tuple& tuple, double* out) const noexcept {
    const Value& v = tuple.value(index_);
    switch (v.type()) {
      case ValueType::kDouble:
        *out = v.AsDouble();
        return true;
      case ValueType::kInt64:
        *out = static_cast<double>(v.AsInt64());
        return true;
      case ValueType::kBool:
        *out = v.AsBool() ? 1.0 : 0.0;
        return true;
      default:
        return false;
    }
  }

  /// \brief Integer read; false unless the stored value is int64/bool.
  bool Int64At(const Tuple& tuple, int64_t* out) const noexcept {
    const Value& v = tuple.value(index_);
    switch (v.type()) {
      case ValueType::kInt64:
        *out = v.AsInt64();
        return true;
      case ValueType::kBool:
        *out = v.AsBool() ? 1 : 0;
        return true;
      default:
        return false;
    }
  }

  /// \brief Borrowed string read; nullptr unless the stored value is a
  /// string. The pointer is valid while the tuple is.
  const std::string* StringAt(const Tuple& tuple) const noexcept {
    const Value& v = tuple.value(index_);
    return v.is_string() ? &v.AsString() : nullptr;
  }

  /// \brief Column view: the bound column inside a columnar Batch — the
  /// SoA twin of at()/set(). Same bind contract: the batch must share
  /// the schema the accessor was bound against.
  const Column& column(const Batch& batch) const noexcept {
    return batch.column(index_);
  }
  Column* column(Batch* batch) const noexcept {
    return &batch->column(index_);
  }

 private:
  size_t index_ = 0;
  ValueType declared_type_ = ValueType::kDouble;
};

/// \brief Resolution context threaded through a component tree's Bind
/// pass. Carries the schema plus a JSON-pointer path stack so every
/// rejection names the offending config fragment the same way the
/// loaders do ("at /polluters/0/condition: ...").
class BindContext {
 public:
  explicit BindContext(const Schema& schema, std::string root_path = "")
      : schema_(&schema), path_(std::move(root_path)) {}

  const Schema& schema() const { return *schema_; }

  /// \brief Descends into a named config field for nested Bind calls.
  /// Balanced with Pop(); prefer the Scope RAII helper.
  void Push(const std::string& key) { path_ += "/" + key; }
  void PushIndex(size_t i) { path_ += "/" + std::to_string(i); }
  void Pop() { path_.resize(path_.rfind('/')); }

  /// \brief RAII path segment: `BindContext::Scope s(ctx, "condition");`.
  /// Restores the previous path on destruction, so keys spanning several
  /// segments ("columns/0") are also safe.
  class Scope {
   public:
    Scope(BindContext& ctx, const std::string& key)
        : ctx_(ctx), saved_length_(ctx.path_.size()) {
      ctx_.Push(key);
    }
    Scope(BindContext& ctx, size_t index)
        : ctx_(ctx), saved_length_(ctx.path_.size()) {
      ctx_.PushIndex(index);
    }
    ~Scope() { ctx_.path_.resize(saved_length_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    BindContext& ctx_;
    size_t saved_length_;
  };

  /// \brief An error Status carrying the current JSON-pointer path.
  Status Error(StatusCode code, const std::string& message) const {
    return Status(code,
                  "at " + (path_.empty() ? std::string("/") : path_) + ": " +
                      message);
  }

  /// \brief Resolves an attribute name to a BoundAccessor; NotFound
  /// (with the JSON-pointer path) when the schema lacks it.
  Result<BoundAccessor> Resolve(const std::string& attribute) const {
    ICEWAFL_ASSIGN_OR_RETURN(size_t idx, IndexOf(attribute));
    return BoundAccessor(idx, schema_->attribute(idx).type);
  }

  /// \brief Resolve + require a numeric (int64/double/bool) column.
  Result<BoundAccessor> ResolveNumeric(const std::string& attribute) const {
    ICEWAFL_ASSIGN_OR_RETURN(BoundAccessor accessor, Resolve(attribute));
    switch (accessor.declared_type()) {
      case ValueType::kInt64:
      case ValueType::kDouble:
      case ValueType::kBool:
        return accessor;
      default:
        return Error(StatusCode::kTypeError,
                     "attribute '" + attribute + "' has type " +
                         ValueTypeName(accessor.declared_type()) +
                         ", expected a numeric column");
    }
  }

  /// \brief Resolve + require a string column.
  Result<BoundAccessor> ResolveString(const std::string& attribute) const {
    ICEWAFL_ASSIGN_OR_RETURN(BoundAccessor accessor, Resolve(attribute));
    if (accessor.declared_type() != ValueType::kString) {
      return Error(StatusCode::kTypeError,
                   "attribute '" + attribute + "' has type " +
                       ValueTypeName(accessor.declared_type()) +
                       ", expected a string column");
    }
    return accessor;
  }

 private:
  Result<size_t> IndexOf(const std::string& attribute) const {
    auto idx = schema_->IndexOf(attribute);
    if (!idx.ok()) {
      return Error(StatusCode::kNotFound,
                   "unknown attribute '" + attribute + "'");
    }
    return idx;
  }

  const Schema* schema_;
  std::string path_;
};

}  // namespace icewafl

#endif  // ICEWAFL_STREAM_BIND_H_
