#ifndef ICEWAFL_STREAM_MERGE_H_
#define ICEWAFL_STREAM_MERGE_H_

#include <optional>
#include <vector>

#include "stream/source.h"

namespace icewafl {

/// \brief K-way merge of sources ordered by arrival time.
///
/// The stream-integration counterpart of the pollution process's step 3:
/// several (independently polluted) sources are combined into one stream
/// ordered by arrival time. Each input source must itself be
/// arrival-time ordered; ties preserve source index order. Sources are
/// not owned and must outlive the merge.
class MergeSortedSources : public Source {
 public:
  /// \param sources arrival-ordered inputs sharing one schema.
  explicit MergeSortedSources(std::vector<Source*> sources);

  SchemaPtr schema() const override;
  Result<bool> Next(Tuple* out) override;
  Status Reset() override;

 private:
  Status FillHead(size_t i);

  std::vector<Source*> sources_;
  // One lookahead tuple per source; empty slot = source exhausted.
  std::vector<std::optional<Tuple>> heads_;
  bool primed_ = false;
};

}  // namespace icewafl

#endif  // ICEWAFL_STREAM_MERGE_H_
