#ifndef ICEWAFL_STREAM_SCHEMA_H_
#define ICEWAFL_STREAM_SCHEMA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "stream/value.h"
#include "util/result.h"
#include "util/time_util.h"

namespace icewafl {

/// \brief A named, typed attribute of a stream schema.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kDouble;

  bool operator==(const Attribute&) const = default;
};

/// \brief Schema of a multivariate data stream: k attributes A1..Ak, one
/// of which is designated as the timestamp attribute (Section 2.1 of the
/// paper requires every stream schema to contain a timestamp).
class Schema {
 public:
  /// \brief Builds a schema. `timestamp_attribute` must name an existing
  /// int64 attribute.
  static Result<std::shared_ptr<const Schema>> Make(
      std::vector<Attribute> attributes, const std::string& timestamp_attribute);

  size_t num_attributes() const { return attributes_.size(); }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }

  /// \brief Index of the designated timestamp attribute.
  size_t timestamp_index() const { return timestamp_index_; }
  const std::string& timestamp_name() const {
    return attributes_[timestamp_index_].name;
  }

  /// \brief Index lookup by attribute name.
  Result<size_t> IndexOf(const std::string& name) const;

  /// \brief True if the schema contains an attribute of this name.
  bool Contains(const std::string& name) const {
    return index_.count(name) > 0;
  }

  /// \brief All attribute names, in schema order.
  std::vector<std::string> Names() const;

  bool Equals(const Schema& other) const {
    return attributes_ == other.attributes_ &&
           timestamp_index_ == other.timestamp_index_;
  }

 private:
  Schema(std::vector<Attribute> attributes, size_t timestamp_index);

  std::vector<Attribute> attributes_;
  size_t timestamp_index_;
  std::unordered_map<std::string, size_t> index_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

}  // namespace icewafl

#endif  // ICEWAFL_STREAM_SCHEMA_H_
