#ifndef ICEWAFL_STREAM_BATCH_H_
#define ICEWAFL_STREAM_BATCH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "stream/schema.h"
#include "stream/tuple.h"
#include "stream/value.h"
#include "util/result.h"
#include "util/time_util.h"

namespace icewafl {

/// \brief One SoA column of a Batch (DESIGN.md section 13).
///
/// Values whose runtime type matches the declared attribute type live in a
/// contiguous typed buffer (`double*` / `int64_t*` / bool bytes / strings)
/// with a validity bitmap: bit set means "the typed slot at this row holds
/// the value". Because the tuple model is dynamically typed — a polluter
/// may write a string into a double column — a sorted, sparse exception
/// list carries every non-null value whose runtime type diverges from the
/// declared one. A row is NULL iff its validity bit is clear and it has no
/// exception entry. Invalid typed slots are always zeroed so a column can
/// be serialized verbatim (encode is deterministic byte-for-byte).
class Column {
 public:
  explicit Column(ValueType declared) : declared_(declared) {}

  ValueType declared_type() const { return declared_; }
  size_t rows() const { return rows_; }

  void Reserve(size_t rows);

  /// \brief Appends one value as the new last row.
  void Append(const Value& v);

  /// \brief Resets to `rows` all-NULL rows with zeroed typed slots (wire
  /// decode fills the buffers in place afterwards).
  void ResizeDefault(size_t rows);

  /// \brief True when the typed slot at `row` holds the value.
  bool IsValid(size_t row) const {
    return (valid_[row >> 6] >> (row & 63)) & 1u;
  }

  /// \brief Materializes the value at `row` (generic slow path).
  Value At(size_t row) const;

  /// \brief Stores `v`, routing to the typed buffer or the exception list.
  void Set(size_t row, Value v);

  /// \brief Clears `row` to NULL: validity bit cleared, typed slot zeroed,
  /// exception entry (if any) dropped.
  void SetNull(size_t row);

  // Typed spans — hot path; meaningful only for the matching declared
  // type. Writing through them never changes validity: kernels may only
  // rewrite rows that IsValid() already reports.
  double* doubles() { return doubles_.data(); }
  const double* doubles() const { return doubles_.data(); }
  int64_t* int64s() { return int64s_.data(); }
  const int64_t* int64s() const { return int64s_.data(); }
  uint8_t* bools() { return bools_.data(); }
  const uint8_t* bools() const { return bools_.data(); }
  std::string* strings() { return strings_.data(); }
  const std::string* strings() const { return strings_.data(); }

  /// \brief Validity bitmap words, LSB-first within each word.
  const uint64_t* validity() const { return valid_.data(); }
  uint64_t* mutable_validity() { return valid_.data(); }
  size_t validity_words() const { return valid_.size(); }

  /// \brief Mutable pointer to the divergent (runtime type != declared,
  /// non-null) value at `row`, or nullptr when the row has none.
  Value* DivergentAt(size_t row);
  const Value* DivergentAt(size_t row) const;

  /// \brief Exception list, sorted by row ascending. The mutable overload
  /// may rewrite values in place but must preserve the sort order and the
  /// "runtime type differs from declared, never null" invariant.
  const std::vector<std::pair<uint32_t, Value>>& divergent() const {
    return divergent_;
  }
  std::vector<std::pair<uint32_t, Value>>& mutable_divergent() {
    return divergent_;
  }

 private:
  void ZeroSlot(size_t row);

  ValueType declared_;
  size_t rows_ = 0;
  // Exactly one of these is populated, per declared_ (kNull declares a
  // column with no typed storage at all).
  std::vector<double> doubles_;
  std::vector<int64_t> int64s_;
  std::vector<uint8_t> bools_;
  std::vector<std::string> strings_;
  std::vector<uint64_t> valid_;
  std::vector<std::pair<uint32_t, Value>> divergent_;
};

/// \brief A columnar micro-batch: the SoA twin of TupleVector.
///
/// One Column per schema attribute plus contiguous per-row metadata
/// arrays (id, event-time replica tau, arrival time, sub-stream). The
/// TupleVector ↔ Batch conversion is lossless — including NaN payloads,
/// denormals, NULLs and type-divergent values — which is what lets the
/// columnar execution path and the v2 Batch wire frame stay byte-identical
/// with the tuple path (golden digests).
class Batch {
 public:
  Batch() = default;

  /// \brief Columnarizes `tuples`. Errors (caller falls back to the tuple
  /// path) when the vector is empty, a tuple's schema pointer differs from
  /// the first tuple's, or a tuple's arity does not match the schema.
  static Result<Batch> FromTuples(const TupleVector& tuples);

  /// \brief An empty batch shaped after `schema` (wire decode target).
  static Batch Empty(SchemaPtr schema);

  /// \brief Materializes back into row form.
  TupleVector ToTuples() const;

  const SchemaPtr& schema() const { return schema_; }
  size_t rows() const { return rows_; }
  size_t num_columns() const { return columns_.size(); }
  Column& column(size_t i) { return columns_[i]; }
  const Column& column(size_t i) const { return columns_[i]; }

  const TupleId* ids() const { return ids_.data(); }
  const Timestamp* event_times() const { return event_times_.data(); }
  const Timestamp* arrival_times() const { return arrival_times_.data(); }
  const int32_t* substreams() const { return substreams_.data(); }

  TupleId* mutable_ids() { return ids_.data(); }
  Timestamp* mutable_event_times() { return event_times_.data(); }
  Timestamp* mutable_arrival_times() { return arrival_times_.data(); }
  int32_t* mutable_substreams() { return substreams_.data(); }

  /// \brief Resets to `rows` all-NULL rows with zeroed metadata (wire
  /// decode fills the buffers in place afterwards).
  void ResizeDefault(size_t rows);

 private:
  SchemaPtr schema_;
  size_t rows_ = 0;
  std::vector<Column> columns_;
  std::vector<TupleId> ids_;
  std::vector<Timestamp> event_times_;
  std::vector<Timestamp> arrival_times_;
  std::vector<int32_t> substreams_;
};

}  // namespace icewafl

#endif  // ICEWAFL_STREAM_BATCH_H_
