#include "stream/schema.h"

namespace icewafl {

Schema::Schema(std::vector<Attribute> attributes, size_t timestamp_index)
    : attributes_(std::move(attributes)), timestamp_index_(timestamp_index) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    index_.emplace(attributes_[i].name, i);
  }
}

Result<SchemaPtr> Schema::Make(std::vector<Attribute> attributes,
                               const std::string& timestamp_attribute) {
  if (attributes.empty()) {
    return Status::InvalidArgument("schema must have at least one attribute");
  }
  std::unordered_map<std::string, size_t> seen;
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i].name.empty()) {
      return Status::InvalidArgument("attribute names must be non-empty");
    }
    if (!seen.emplace(attributes[i].name, i).second) {
      return Status::AlreadyExists("duplicate attribute name: '" +
                                   attributes[i].name + "'");
    }
  }
  auto it = seen.find(timestamp_attribute);
  if (it == seen.end()) {
    return Status::NotFound("timestamp attribute '" + timestamp_attribute +
                            "' not in schema");
  }
  if (attributes[it->second].type != ValueType::kInt64) {
    return Status::TypeError("timestamp attribute '" + timestamp_attribute +
                             "' must be int64 (epoch seconds)");
  }
  return SchemaPtr(new Schema(std::move(attributes), it->second));
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no attribute named '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> Schema::Names() const {
  std::vector<std::string> out;
  out.reserve(attributes_.size());
  for (const Attribute& a : attributes_) out.push_back(a.name);
  return out;
}

}  // namespace icewafl
