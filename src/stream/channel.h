#ifndef ICEWAFL_STREAM_CHANNEL_H_
#define ICEWAFL_STREAM_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <utility>

#include "stream/tuple.h"
#include "util/sync.h"

namespace icewafl {

/// \brief Counters describing one channel's traffic.
///
/// `blocked_pushes` / `blocked_pops` count the calls that had to wait on
/// the condition variable — the direct measure of backpressure (full
/// channel) and starvation (empty channel) between pipeline stages.
struct ChannelStats {
  uint64_t pushes = 0;
  uint64_t pops = 0;
  uint64_t blocked_pushes = 0;
  uint64_t blocked_pops = 0;
  /// Rejected TryPush calls, by reason. These are what reconcile the
  /// server's slow-consumer metrics (drops, disconnects) against the
  /// channel layer: every dropped frame starts as a kFull TryPush.
  uint64_t try_push_full = 0;
  uint64_t try_push_closed = 0;
  /// Largest number of items queued at once (peak buffering).
  uint64_t peak_queued = 0;

  /// \brief Accumulates `other` (peak takes the max; everything else sums).
  void Add(const ChannelStats& other) {
    pushes += other.pushes;
    pops += other.pops;
    blocked_pushes += other.blocked_pushes;
    blocked_pops += other.blocked_pops;
    try_push_full += other.try_push_full;
    try_push_closed += other.try_push_closed;
    if (other.peak_queued > peak_queued) peak_queued = other.peak_queued;
  }
};

/// \brief Bounded blocking MPSC/MPMC queue connecting pipeline stages.
///
/// The backbone of the pipelined runtime: producers `Push` until the
/// channel holds `capacity` items, then block — backpressure propagates
/// upstream to the source, which is what bounds the memory footprint of
/// an unbounded stream. Consumers `Pop` until the channel is both closed
/// and drained.
///
/// End-of-stream and abort are modelled explicitly:
///  - `Close()`   — graceful: no further pushes succeed, queued items
///                  remain poppable (normal end of a bounded stream);
///  - `Poison()`  — abort: closes *and* discards queued items so blocked
///                  producers and consumers wake immediately (error
///                  propagation across stages).
///
/// All operations are safe to call concurrently from any thread. The
/// channel lock ranks as `kLockRankChannel` in the global hierarchy
/// (util/sync.h): server code may enqueue while holding registry /
/// session / connection locks, but channel callbacks never re-enter the
/// server.
template <typename T>
class BoundedChannel {
 public:
  /// \param capacity maximum queued items (>= 1).
  explicit BoundedChannel(size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedChannel(const BoundedChannel&) = delete;
  BoundedChannel& operator=(const BoundedChannel&) = delete;

  /// \brief Enqueues `item`, blocking while the channel is full.
  /// \return false iff the channel was closed (the item is dropped).
  bool Push(T item) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    bool waited = false;
    while (queue_.size() >= capacity_ && !closed_) {
      waited = true;
      not_full_.Wait(mu_);
    }
    if (closed_) return false;
    queue_.push_back(std::move(item));
    ++stats_.pushes;
    // A wait only counts as backpressure when the push actually lands;
    // waits cut short by Close()/Poison() are aborts, not backpressure.
    if (waited) ++stats_.blocked_pushes;
    if (queue_.size() > stats_.peak_queued) stats_.peak_queued = queue_.size();
    lock.Unlock();
    not_empty_.NotifyOne();
    return true;
  }

  /// \brief Outcome of a non-blocking TryPush.
  enum class PushResult { kOk, kFull, kClosed };

  /// \brief Non-blocking enqueue; never waits. Used by the serving
  /// fan-out to implement the drop_oldest / disconnect slow-consumer
  /// policies, where a full queue is a decision point, not a wait.
  PushResult TryPush(T item) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (closed_) {
      ++stats_.try_push_closed;
      return PushResult::kClosed;
    }
    if (queue_.size() >= capacity_) {
      ++stats_.try_push_full;
      return PushResult::kFull;
    }
    queue_.push_back(std::move(item));
    ++stats_.pushes;
    if (queue_.size() > stats_.peak_queued) stats_.peak_queued = queue_.size();
    lock.Unlock();
    not_empty_.NotifyOne();
    return PushResult::kOk;
  }

  /// \brief Non-blocking dequeue; never waits.
  /// \return false when the channel is currently empty (whether open or
  /// closed — combine with closed() to distinguish end of stream, which
  /// is race-free for a channel's single consumer).
  bool TryPop(T* out) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (queue_.empty()) return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.pops;
    lock.Unlock();
    not_full_.NotifyOne();
    return true;
  }

  /// \brief Dequeues into `*out`, blocking while the channel is empty and
  /// still open.
  /// \return false iff the channel is closed and drained (end of stream).
  bool Pop(T* out) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (queue_.empty() && !closed_) {
      ++stats_.blocked_pops;
      while (queue_.empty() && !closed_) not_empty_.Wait(mu_);
    }
    if (queue_.empty()) return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.pops;
    lock.Unlock();
    not_full_.NotifyOne();
    return true;
  }

  /// \brief Closes the channel for writing; queued items stay poppable.
  void Close() EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  /// \brief Closes the channel and discards queued items (abort path).
  void Poison() EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      closed_ = true;
      queue_.clear();
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  bool closed() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return closed_;
  }

  size_t size() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return queue_.size();
  }

  size_t capacity() const { return capacity_; }

  ChannelStats stats() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_{kLockRankChannel};
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> queue_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
  ChannelStats stats_ GUARDED_BY(mu_);
};

/// \brief Channel of tuple batches — the unit of transfer between
/// pipeline stages (batching amortizes locking and virtual dispatch).
using BatchChannel = BoundedChannel<TupleVector>;

}  // namespace icewafl

#endif  // ICEWAFL_STREAM_CHANNEL_H_
