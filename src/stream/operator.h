#ifndef ICEWAFL_STREAM_OPERATOR_H_
#define ICEWAFL_STREAM_OPERATOR_H_

#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "stream/tuple.h"
#include "util/result.h"

namespace icewafl {

/// \brief Downstream collector an operator emits into (Flink-style).
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual Status Emit(Tuple tuple) = 0;
};

/// \brief A tuple-at-a-time dataflow operator.
///
/// Operators may emit zero, one, or many tuples per input (filter / map /
/// flat-map semantics) and may buffer state that is released in Finish()
/// (e.g. the watermark reorder buffer).
class Operator {
 public:
  virtual ~Operator() = default;

  /// \brief Processes one input tuple, emitting results downstream.
  virtual Status Process(Tuple tuple, Emitter* out) = 0;

  /// \brief Batched fast path used by the pipelined runtime: consumes
  /// `*batch` (left empty on return), emitting results into `out` in the
  /// same order the per-tuple path would.
  ///
  /// The default forwards tuple-by-tuple to Process(); stateful hot-path
  /// operators (the polluter adapters) override it to hoist per-batch
  /// setup out of the tuple loop and amortize virtual dispatch.
  virtual Status ProcessBatch(TupleVector* batch, Emitter* out) {
    for (Tuple& t : *batch) {
      ICEWAFL_RETURN_NOT_OK(Process(std::move(t), out));
    }
    batch->clear();
    return Status::OK();
  }

  /// \brief Flushes buffered state at end of (bounded) stream.
  virtual Status Finish(Emitter* out) {
    (void)out;
    return Status::OK();
  }
};

/// \brief 1:1 transformation operator.
class MapOperator : public Operator {
 public:
  using MapFn = std::function<Result<Tuple>(Tuple)>;

  explicit MapOperator(MapFn fn) : fn_(std::move(fn)) {}

  Status Process(Tuple tuple, Emitter* out) override {
    ICEWAFL_ASSIGN_OR_RETURN(Tuple mapped, fn_(std::move(tuple)));
    return out->Emit(std::move(mapped));
  }

 private:
  MapFn fn_;
};

/// \brief Keeps only tuples satisfying the predicate.
class FilterOperator : public Operator {
 public:
  using PredicateFn = std::function<bool(const Tuple&)>;

  explicit FilterOperator(PredicateFn fn) : fn_(std::move(fn)) {}

  Status Process(Tuple tuple, Emitter* out) override {
    if (fn_(tuple)) return out->Emit(std::move(tuple));
    return Status::OK();
  }

 private:
  PredicateFn fn_;
};

/// \brief 1:N transformation operator.
class FlatMapOperator : public Operator {
 public:
  using FlatMapFn = std::function<Result<TupleVector>(Tuple)>;

  explicit FlatMapOperator(FlatMapFn fn) : fn_(std::move(fn)) {}

  Status Process(Tuple tuple, Emitter* out) override {
    ICEWAFL_ASSIGN_OR_RETURN(TupleVector tuples, fn_(std::move(tuple)));
    for (Tuple& t : tuples) {
      ICEWAFL_RETURN_NOT_OK(out->Emit(std::move(t)));
    }
    return Status::OK();
  }

 private:
  FlatMapFn fn_;
};

/// \brief Releases tuples in arrival-time order using a bounded-lateness
/// watermark.
///
/// After the DelayedTuple error shifts a tuple's arrival time, the output
/// stream must present tuples in arrival order (that is what makes the
/// delay observable to a DQ tool as a timestamp-order violation). The
/// buffer holds tuples until the watermark — max event time seen minus
/// `max_lateness` — passes their arrival time, then emits them in arrival
/// order; ties preserve input order.
class ReorderOperator : public Operator {
 public:
  /// \param max_lateness upper bound (seconds) on how far a tuple's
  ///   arrival time may lie behind the newest tuple seen.
  explicit ReorderOperator(int64_t max_lateness)
      : max_lateness_(max_lateness) {}

  Status Process(Tuple tuple, Emitter* out) override;
  Status Finish(Emitter* out) override;

 private:
  int64_t max_lateness_;
  Timestamp max_event_time_seen_ = INT64_MIN;
  uint64_t seq_ = 0;
  // (arrival_time, insertion sequence) -> tuple; multimap semantics via
  // the composite key keep emission stable.
  std::map<std::pair<Timestamp, uint64_t>, Tuple> buffer_;
};

/// \brief An owned chain of operators.
using OperatorChain = std::vector<std::unique_ptr<Operator>>;

}  // namespace icewafl

#endif  // ICEWAFL_STREAM_OPERATOR_H_
