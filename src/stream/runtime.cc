#include "stream/runtime.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "util/strings.h"

namespace icewafl {

namespace {

/// Collects emitted tuples into a vector (the batched analogue of the
/// per-tuple ChainEmitter).
class VectorEmitter : public Emitter {
 public:
  explicit VectorEmitter(TupleVector* out) : out_(out) {}

  Status Emit(Tuple tuple) override {
    out_->push_back(std::move(tuple));
    return Status::OK();
  }

 private:
  TupleVector* out_;
};

/// Drives `*batch` through ops[first..], leaving the chain output in
/// `*result` (appended). The batch is consumed.
Status RunBatchThroughOps(const std::vector<Operator*>& ops, size_t first,
                          TupleVector* batch, TupleVector* result) {
  if (first >= ops.size()) {
    for (Tuple& t : *batch) result->push_back(std::move(t));
    batch->clear();
    return Status::OK();
  }
  TupleVector current = std::move(*batch);
  batch->clear();
  TupleVector next;
  for (size_t i = first; i < ops.size(); ++i) {
    next.clear();
    VectorEmitter emitter(&next);
    ICEWAFL_RETURN_NOT_OK(ops[i]->ProcessBatch(&current, &emitter));
    std::swap(current, next);
  }
  for (Tuple& t : current) result->push_back(std::move(t));
  return Status::OK();
}

/// Flushes buffered operator state front-to-back; each operator's
/// re-emissions traverse the remaining chain (same ordering contract as
/// the legacy tuple-at-a-time executor).
Status FinishOps(const std::vector<Operator*>& ops, TupleVector* result) {
  for (size_t i = 0; i < ops.size(); ++i) {
    TupleVector flushed;
    VectorEmitter emitter(&flushed);
    ICEWAFL_RETURN_NOT_OK(ops[i]->Finish(&emitter));
    ICEWAFL_RETURN_NOT_OK(RunBatchThroughOps(ops, i + 1, &flushed, result));
  }
  return Status::OK();
}

/// Tracks how many tuples sit in channels right now and the high-water
/// mark — the runtime's steady-state memory claim is exactly this value
/// staying flat while the stream length grows.
class BufferGauge {
 public:
  void Add(size_t n) {
    const int64_t now =
        buffered_.fetch_add(static_cast<int64_t>(n),
                            std::memory_order_relaxed) +
        static_cast<int64_t>(n);
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
  }
  void Remove(size_t n) {
    buffered_.fetch_sub(static_cast<int64_t>(n), std::memory_order_relaxed);
  }
  uint64_t peak() const {
    const int64_t p = peak_.load(std::memory_order_relaxed);
    return p > 0 ? static_cast<uint64_t>(p) : 0;
  }

 private:
  std::atomic<int64_t> buffered_{0};
  std::atomic<int64_t> peak_{0};
};

}  // namespace

std::string RuntimeStats::ToString() const {
  std::string s = "tuples=" + std::to_string(source_tuples) + "->" +
                  std::to_string(sink_tuples) +
                  " batches=" + std::to_string(batches) +
                  " blocked_pushes=" + std::to_string(blocked_pushes) +
                  " blocked_pops=" + std::to_string(blocked_pops) +
                  " try_push_full=" + std::to_string(try_push_full) +
                  " try_push_closed=" + std::to_string(try_push_closed) +
                  " peak_buffered_tuples=" +
                  std::to_string(peak_buffered_tuples) +
                  " wall_s=" + FormatDouble(wall_seconds, 4);
  return s;
}

Status PipelineRuntime::Run(Source* source, const ChainFactory& chain_factory,
                            Sink* sink) {
  if (options_.parallelism < 1) {
    return Status::InvalidArgument("parallelism must be >= 1");
  }
  const size_t workers = static_cast<size_t>(options_.parallelism);
  const size_t batch_size = options_.batch_size < 1 ? 1 : options_.batch_size;
  const size_t capacity =
      options_.channel_capacity < 1 ? 1 : options_.channel_capacity;
  const auto wall_start = std::chrono::steady_clock::now();

  stats_ = RuntimeStats{};
  stats_.stages.assign(workers + 2, StageStats{});
  StageStats& source_stage = stats_.stages.front();
  StageStats& sink_stage = stats_.stages.back();
  source_stage.stage = "source";
  sink_stage.stage = "sink";
  for (size_t w = 0; w < workers; ++w) {
    stats_.stages[w + 1].stage = "worker" + std::to_string(w);
  }

  std::vector<std::unique_ptr<BatchChannel>> inputs;
  std::vector<std::unique_ptr<BatchChannel>> outputs;
  inputs.reserve(workers);
  outputs.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    inputs.push_back(std::make_unique<BatchChannel>(capacity));
    outputs.push_back(std::make_unique<BatchChannel>(capacity));
  }

  // Registry handles per stage, resolved once up front so the stage
  // loops pay only a pointer-null check (metrics off) or a relaxed
  // atomic add per batch (metrics on).
  struct StageHandles {
    obs::Counter* tuples_in = nullptr;
    obs::Counter* tuples_out = nullptr;
    obs::Counter* batches = nullptr;
  };
  std::vector<StageHandles> handles(workers + 2);
  obs::Histogram* batch_histogram = nullptr;
  obs::MetricRegistry* const metrics = options_.metrics;
  if (metrics != nullptr) {
    for (size_t s = 0; s < workers + 2; ++s) {
      const obs::Labels labels = {{"stage", stats_.stages[s].stage}};
      handles[s].tuples_in =
          metrics->GetCounter("icewafl_stage_tuples_in_total", labels,
                              "Tuples entering a pipeline stage");
      handles[s].tuples_out =
          metrics->GetCounter("icewafl_stage_tuples_out_total", labels,
                              "Tuples leaving a pipeline stage");
      handles[s].batches =
          metrics->GetCounter("icewafl_stage_batches_total", labels,
                              "Batches handled by a pipeline stage");
      // Stage loops gate all three on one null check; if any counter hit
      // a metric-type conflict, disable the whole stage's handles.
      if (handles[s].tuples_in == nullptr || handles[s].tuples_out == nullptr ||
          handles[s].batches == nullptr) {
        handles[s] = StageHandles{};
      }
    }
    batch_histogram = metrics->GetHistogram(
        "icewafl_runtime_batch_tuples", {},
        obs::ExponentialBounds(1.0, 65536.0, 2.0),
        "Tuples per inter-stage batch");
  }
  obs::TraceRecorder* const trace = options_.trace;
  obs::ScopedSpan run_span(trace, "pipeline_run", "runtime", 0);

  // Single-writer slots, one per stage thread: `source_status` belongs to
  // the source thread, `worker_status[w]` to worker w, `sink_status` to
  // the caller. None of them needs a lock — the thread joins below are
  // the release/acquire edge before the caller aggregates them, which is
  // why they carry no GUARDED_BY annotation (there is no lock to name).
  // Cross-thread signalling happens exclusively through the channels:
  // Close() is end-of-stream, Poison() is the stop flag, and both wake
  // every blocked stage.
  BufferGauge gauge;
  Status source_status;
  std::vector<Status> worker_status(workers);

  auto poison_all = [&] {
    for (auto& ch : inputs) ch->Poison();
    for (auto& ch : outputs) ch->Poison();
  };

  // --- Worker stages ----------------------------------------------------
  std::vector<std::thread> worker_threads;
  worker_threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    worker_threads.emplace_back([&, w] {
      StageStats& stage = stats_.stages[w + 1];
      const StageHandles& obs_handles = handles[w + 1];
      obs::ScopedSpan stage_span(trace, stage.stage, "stage",
                                 static_cast<int64_t>(w) + 1);
      OperatorChain chain = chain_factory(static_cast<int>(w));
      std::vector<Operator*> ops;
      ops.reserve(chain.size());
      for (const auto& op : chain) ops.push_back(op.get());

      TupleVector batch;
      bool downstream_open = true;
      while (inputs[w]->Pop(&batch)) {
        gauge.Remove(batch.size());
        stage.tuples_in += batch.size();
        ++stage.batches;
        if (obs_handles.tuples_in != nullptr) {
          obs_handles.tuples_in->Increment(batch.size());
          obs_handles.batches->Increment();
        }
        TupleVector out_batch;
        Status st = RunBatchThroughOps(ops, 0, &batch, &out_batch);
        if (!st.ok()) {
          worker_status[w] = st;
          inputs[w]->Poison();  // unblock and stop the source
          break;
        }
        stage.tuples_out += out_batch.size();
        if (obs_handles.tuples_out != nullptr) {
          obs_handles.tuples_out->Increment(out_batch.size());
        }
        gauge.Add(out_batch.size());
        const size_t out_size = out_batch.size();
        if (!outputs[w]->Push(std::move(out_batch))) {
          gauge.Remove(out_size);  // consumer aborted; stop quietly
          downstream_open = false;
          break;
        }
      }
      if (worker_status[w].ok() && downstream_open) {
        TupleVector flushed;
        Status st = FinishOps(ops, &flushed);
        if (!st.ok()) {
          worker_status[w] = st;
        } else if (!flushed.empty()) {
          stage.tuples_out += flushed.size();
          if (obs_handles.tuples_out != nullptr) {
            obs_handles.tuples_out->Increment(flushed.size());
          }
          gauge.Add(flushed.size());
          const size_t out_size = flushed.size();
          if (!outputs[w]->Push(std::move(flushed))) gauge.Remove(out_size);
        }
      }
      outputs[w]->Close();
    });
  }

  // --- Source stage -----------------------------------------------------
  std::thread source_thread([&] {
    const StageHandles& obs_handles = handles.front();
    obs::ScopedSpan stage_span(trace, "source", "stage", 0);
    // Per-worker accumulators implementing tuple round-robin: tuple i
    // goes to worker i % parallelism, batches flush once full.
    std::vector<TupleVector> pending(workers);
    for (TupleVector& p : pending) p.reserve(batch_size);
    bool aborted = false;
    Tuple tuple;
    uint64_t index = 0;
    while (true) {
      auto more = source->Next(&tuple);
      if (!more.ok()) {
        source_status = more.status();
        poison_all();
        return;
      }
      if (!more.ValueOrDie()) break;
      const size_t w = static_cast<size_t>(index % workers);
      ++index;
      pending[w].push_back(std::move(tuple));
      if (pending[w].size() >= batch_size) {
        source_stage.tuples_out += pending[w].size();
        ++source_stage.batches;
        if (obs_handles.tuples_out != nullptr) {
          obs_handles.tuples_out->Increment(pending[w].size());
          obs_handles.batches->Increment();
        }
        if (batch_histogram != nullptr) {
          batch_histogram->Observe(static_cast<double>(pending[w].size()));
        }
        gauge.Add(pending[w].size());
        const size_t n = pending[w].size();
        if (!inputs[w]->Push(std::move(pending[w]))) {
          // A worker aborted; the remaining stream cannot be processed.
          gauge.Remove(n);
          aborted = true;
          break;
        }
        pending[w] = TupleVector();
        pending[w].reserve(batch_size);
      }
    }
    source_stage.tuples_in = index;
    if (obs_handles.tuples_in != nullptr) obs_handles.tuples_in->Increment(index);
    if (aborted) {
      for (auto& ch : inputs) ch->Poison();
      return;
    }
    for (size_t w = 0; w < workers; ++w) {
      if (pending[w].empty()) continue;
      source_stage.tuples_out += pending[w].size();
      ++source_stage.batches;
      if (obs_handles.tuples_out != nullptr) {
        obs_handles.tuples_out->Increment(pending[w].size());
        obs_handles.batches->Increment();
      }
      if (batch_histogram != nullptr) {
        batch_histogram->Observe(static_cast<double>(pending[w].size()));
      }
      gauge.Add(pending[w].size());
      const size_t n = pending[w].size();
      if (!inputs[w]->Push(std::move(pending[w]))) gauge.Remove(n);
    }
    for (auto& ch : inputs) ch->Close();
  });

  // --- Sink stage (caller thread) ---------------------------------------
  // Deterministic rotation over worker output channels; a channel leaves
  // the rotation once closed and drained.
  Status sink_status;
  {
    const StageHandles& obs_handles = handles.back();
    obs::ScopedSpan stage_span(trace, "sink", "stage",
                               static_cast<int64_t>(workers) + 1);
    std::vector<bool> done(workers, false);
    size_t remaining = workers;
    size_t w = 0;
    TupleVector batch;
    while (remaining > 0 && sink_status.ok()) {
      if (!done[w]) {
        if (!outputs[w]->Pop(&batch)) {
          done[w] = true;
          --remaining;
        } else {
          gauge.Remove(batch.size());
          sink_stage.tuples_in += batch.size();
          ++sink_stage.batches;
          if (obs_handles.tuples_in != nullptr) {
            obs_handles.tuples_in->Increment(batch.size());
            obs_handles.batches->Increment();
          }
          const uint64_t written_before = sink_stage.tuples_out;
          for (Tuple& t : batch) {
            Status st = sink->Write(std::move(t));
            if (!st.ok()) {
              sink_status = st;
              poison_all();
              break;
            }
            ++sink_stage.tuples_out;
          }
          if (obs_handles.tuples_out != nullptr) {
            obs_handles.tuples_out->Increment(sink_stage.tuples_out -
                                              written_before);
          }
          batch.clear();
        }
      }
      w = (w + 1) % workers;
    }
  }

  source_thread.join();
  for (std::thread& t : worker_threads) t.join();

  // Channel-level counters feed the stage stats: a source/worker push
  // that blocked is backpressure, a worker/sink pop that blocked is
  // starvation.
  for (size_t w = 0; w < workers; ++w) {
    const ChannelStats in = inputs[w]->stats();
    const ChannelStats out = outputs[w]->stats();
    source_stage.blocked_pushes += in.blocked_pushes;
    stats_.stages[w + 1].blocked_pops += in.blocked_pops;
    stats_.stages[w + 1].blocked_pushes += out.blocked_pushes;
    sink_stage.blocked_pops += out.blocked_pops;
    stats_.try_push_full += in.try_push_full + out.try_push_full;
    stats_.try_push_closed += in.try_push_closed + out.try_push_closed;
  }
  stats_.source_tuples = source_stage.tuples_in;
  stats_.sink_tuples = sink_stage.tuples_out;
  stats_.batches = source_stage.batches;
  for (const StageStats& s : stats_.stages) {
    stats_.blocked_pushes += s.blocked_pushes;
    stats_.blocked_pops += s.blocked_pops;
  }
  stats_.peak_buffered_tuples = gauge.peak();
  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Post-run publication of the wait/buffering counters: these only
  // become known once the channels are quiescent, so they are pushed to
  // the registry in one shot rather than on the hot path.
  if (metrics != nullptr) {
    for (const StageStats& s : stats_.stages) {
      const obs::Labels labels = {{"stage", s.stage}};
      obs::Counter* blocked_pushes = metrics->GetCounter(
          "icewafl_stage_blocked_pushes_total", labels,
          "Pushes that waited on a full channel (backpressure)");
      if (blocked_pushes != nullptr) {
        blocked_pushes->Increment(s.blocked_pushes);
      }
      obs::Counter* blocked_pops = metrics->GetCounter(
          "icewafl_stage_blocked_pops_total", labels,
          "Pops that waited on an empty channel (starvation)");
      if (blocked_pops != nullptr) blocked_pops->Increment(s.blocked_pops);
    }
    obs::Gauge* peak_buffered = metrics->GetGauge(
        "icewafl_runtime_peak_buffered_tuples", {},
        "High-water mark of tuples buffered in channels");
    if (peak_buffered != nullptr) {
      peak_buffered->SetMax(static_cast<double>(stats_.peak_buffered_tuples));
    }
    obs::Histogram* wall_histogram = metrics->GetHistogram(
        "icewafl_runtime_wall_seconds", {},
        obs::ExponentialBounds(1e-4, 64.0, 2.0),
        "End-to-end wall time of one runtime execution");
    if (wall_histogram != nullptr) wall_histogram->Observe(stats_.wall_seconds);
  }

  ICEWAFL_RETURN_NOT_OK(source_status);
  for (const Status& st : worker_status) ICEWAFL_RETURN_NOT_OK(st);
  ICEWAFL_RETURN_NOT_OK(sink_status);
  return sink->Flush();
}

Status PipelineRuntime::Run(Source* source,
                            const std::vector<Operator*>& ops, Sink* sink) {
  RuntimeOptions single = options_;
  single.parallelism = 1;
  PipelineRuntime runtime(single);
  // The raw operators are not owned; hand every worker (there is exactly
  // one) an empty owned chain and reference them via a wrapper.
  class Passthrough : public Operator {
   public:
    explicit Passthrough(const std::vector<Operator*>* ops) : ops_(ops) {}
    Status Process(Tuple tuple, Emitter* out) override {
      TupleVector batch;
      batch.push_back(std::move(tuple));
      return ProcessBatch(&batch, out);
    }
    Status ProcessBatch(TupleVector* batch, Emitter* out) override {
      TupleVector result;
      ICEWAFL_RETURN_NOT_OK(RunBatchThroughOps(*ops_, 0, batch, &result));
      for (Tuple& t : result) ICEWAFL_RETURN_NOT_OK(out->Emit(std::move(t)));
      return Status::OK();
    }
    Status Finish(Emitter* out) override {
      TupleVector result;
      ICEWAFL_RETURN_NOT_OK(FinishOps(*ops_, &result));
      for (Tuple& t : result) ICEWAFL_RETURN_NOT_OK(out->Emit(std::move(t)));
      return Status::OK();
    }

   private:
    const std::vector<Operator*>* ops_;
  };
  Status st = runtime.Run(
      source,
      [&ops](int) {
        OperatorChain chain;
        chain.push_back(std::make_unique<Passthrough>(&ops));
        return chain;
      },
      sink);
  stats_ = runtime.stats();
  return st;
}

}  // namespace icewafl
