#ifndef ICEWAFL_STREAM_RUNTIME_H_
#define ICEWAFL_STREAM_RUNTIME_H_

#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/channel.h"
#include "stream/operator.h"
#include "stream/sink.h"
#include "stream/source.h"
#include "util/result.h"

namespace icewafl {

/// \brief Tuning knobs of the pipelined runtime.
struct RuntimeOptions {
  /// Number of concurrent operator-chain workers (>= 1). Tuples are
  /// partitioned round-robin (tuple i -> worker i % parallelism), the
  /// same partitioning the legacy materializing executor used.
  int parallelism = 1;

  /// Tuples per batch handed between stages. Batching amortizes channel
  /// locking and per-operator virtual dispatch.
  size_t batch_size = 256;

  /// Batches each inter-stage channel may buffer before `Push` blocks.
  /// Peak tuple buffering of a run is O(channel_capacity * batch_size *
  /// parallelism) regardless of stream length.
  size_t channel_capacity = 4;

  /// Optional observability sinks (not owned; may be nullptr). When set,
  /// the runtime publishes per-stage counters / histograms into the
  /// registry and one span per stage into the recorder. When unset the
  /// cost is a pointer-null check per batch; instrumentation never
  /// touches the data path or the random streams, so output stays
  /// byte-identical either way.
  obs::MetricRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

/// \brief Per-stage traffic counters of one runtime execution.
struct StageStats {
  std::string stage;          ///< "source", "worker<i>", or "sink".
  uint64_t tuples_in = 0;     ///< Tuples entering the stage.
  uint64_t tuples_out = 0;    ///< Tuples leaving the stage.
  uint64_t batches = 0;       ///< Batches handled.
  uint64_t blocked_pushes = 0;  ///< Pushes that hit backpressure.
  uint64_t blocked_pops = 0;    ///< Pops that found the channel empty.
};

/// \brief Aggregate statistics of one `PipelineRuntime::Run`.
struct RuntimeStats {
  std::vector<StageStats> stages;
  uint64_t source_tuples = 0;  ///< Tuples read from the source.
  uint64_t sink_tuples = 0;    ///< Tuples written to the sink.
  uint64_t batches = 0;        ///< Batches emitted by the source stage.
  uint64_t blocked_pushes = 0;  ///< Total backpressure events.
  /// Total starvation events — pops that found their channel empty. High
  /// values on worker stages mean the source is the bottleneck; on the
  /// sink they mean the workers are.
  uint64_t blocked_pops = 0;
  /// Rejected non-blocking pushes across all channels (TryPush hitting a
  /// full or closed channel). The runtime's own stages always block, so
  /// these stay zero here; embedders that drive runtime channels with
  /// TryPush (the serving fan-out) see their rejections accounted.
  uint64_t try_push_full = 0;
  uint64_t try_push_closed = 0;
  /// Largest number of tuples queued in channels at any point — the
  /// steady-state memory footprint of the pipeline (compare against the
  /// stream length for the materializing executors).
  uint64_t peak_buffered_tuples = 0;
  double wall_seconds = 0.0;

  /// \brief One-line summary for logs and bench harnesses.
  std::string ToString() const;
};

/// \brief Pipelined streaming runtime: Source -> operator chains -> Sink
/// as concurrently running stages connected by bounded channels.
///
/// Execution model (Flink-style task pipeline):
///  - a *source stage* thread pulls tuples, partitions them round-robin
///    over `parallelism` workers, and pushes fixed-size batches into
///    per-worker bounded input channels (blocking push = backpressure;
///    the source never runs ahead of the slowest worker by more than the
///    channel capacity);
///  - each *worker* thread owns a private operator-chain instance
///    (operators are stateful and must not be shared) and drives batches
///    through it via the batched operator path
///    (`Operator::ProcessBatch`), pushing one output batch per input
///    batch into its bounded output channel; after its input closes it
///    flushes `Finish()` state front-to-back through the remaining chain;
///  - the *sink stage* (caller thread) pops output batches in a
///    deterministic worker rotation and moves the tuples into the sink.
///
/// Unlike the legacy materializing executors, no stage ever holds the
/// whole stream: peak buffering is bounded by the channel capacities, so
/// an unbounded source streams at steady-state memory. Output order is
/// deterministic (a pure function of the input order and parallelism)
/// but interleaves worker outputs; order-sensitive callers either run
/// with parallelism 1 (exact input order) or re-sort downstream, as the
/// pollution process does with its arrival-time merge.
///
/// Errors from any stage cancel the run: channels are poisoned so every
/// blocked stage wakes, and the first non-OK status (source before
/// workers before sink) is returned.
///
/// Concurrency contract (checked under `-Wthread-safety`, see
/// util/sync.h and DESIGN.md §12): the runtime owns no mutex of its
/// own. The bounded channels are the only cross-thread mechanism — both
/// data transfer and the stop signal (Close/Poison) flow through their
/// internal lock (`kLockRankChannel`). Everything else is partitioned by
/// construction: each StageStats slot and each Status slot is written by
/// exactly one stage thread while that thread is alive, and the joins at
/// the end of Run() are the synchronization point after which the caller
/// thread reads them. `stats()` is therefore only meaningful between
/// runs, never while Run() is executing on another thread.
class PipelineRuntime {
 public:
  using ChainFactory = std::function<OperatorChain(int worker_index)>;

  explicit PipelineRuntime(RuntimeOptions options = {})
      : options_(options) {}

  /// \brief Runs the topology to completion (bounded source).
  /// `chain_factory` is invoked once per worker on the worker thread.
  Status Run(Source* source, const ChainFactory& chain_factory, Sink* sink);

  /// \brief Convenience single-worker overload over non-owned operators;
  /// preserves exact input order (parallelism is forced to 1).
  Status Run(Source* source, const std::vector<Operator*>& ops, Sink* sink);

  /// \brief Statistics of the most recent Run.
  const RuntimeStats& stats() const { return stats_; }

 private:
  RuntimeOptions options_;
  RuntimeStats stats_;
};

}  // namespace icewafl

#endif  // ICEWAFL_STREAM_RUNTIME_H_
