#ifndef ICEWAFL_STREAM_TUPLE_H_
#define ICEWAFL_STREAM_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stream/schema.h"
#include "stream/value.h"
#include "util/time_util.h"

namespace icewafl {

/// Identifier assigned to a tuple in the preparation step (Algorithm 1,
/// line 2); ground-truth link between clean and polluted streams.
using TupleId = uint64_t;

constexpr TupleId kInvalidTupleId = UINT64_MAX;
constexpr int kNoSubstream = -1;

/// \brief One element of a data stream.
///
/// Carries the attribute values plus the pollution-process metadata of
/// Section 2.1: the unique id, the event-time replica tau (immutable copy
/// of the original timestamp, used as event time during pollution and
/// dropped from the output), the arrival time (initialized to tau; the
/// DelayedTuple error shifts it, and the integration step orders the
/// output stream by it), and the sub-stream id assigned in step 3.
class Tuple {
 public:
  Tuple() = default;
  Tuple(SchemaPtr schema, std::vector<Value> values)
      : schema_(std::move(schema)), values_(std::move(values)) {}

  const SchemaPtr& schema() const { return schema_; }
  size_t num_values() const { return values_.size(); }

  const Value& value(size_t i) const { return values_[i]; }
  void set_value(size_t i, Value v) { values_[i] = std::move(v); }
  const std::vector<Value>& values() const { return values_; }
  std::vector<Value>& mutable_values() { return values_; }

  /// \brief Value lookup by attribute name (error if absent).
  Result<Value> Get(const std::string& name) const;

  /// \brief Sets an attribute by name (error if absent).
  Status Set(const std::string& name, Value v);

  /// \brief The (possibly polluted) value of the timestamp attribute.
  Result<Timestamp> GetTimestamp() const;

  /// \brief Overwrites the timestamp attribute.
  Status SetTimestamp(Timestamp ts);

  TupleId id() const { return id_; }
  void set_id(TupleId id) { id_ = id; }

  /// \brief Event-time replica tau (Algorithm 1, line 3).
  Timestamp event_time() const { return event_time_; }
  void set_event_time(Timestamp tau) { event_time_ = tau; }

  /// \brief Position key of the tuple in the output stream.
  Timestamp arrival_time() const { return arrival_time_; }
  void set_arrival_time(Timestamp at) { arrival_time_ = at; }

  int substream() const { return substream_; }
  void set_substream(int s) { substream_ = s; }

  /// \brief Renders as "name=value, ..." for debugging.
  std::string ToString() const;

  /// Attribute-value equality (metadata is not compared).
  bool ValuesEqual(const Tuple& other) const { return values_ == other.values_; }

 private:
  SchemaPtr schema_;
  std::vector<Value> values_;
  TupleId id_ = kInvalidTupleId;
  Timestamp event_time_ = 0;
  Timestamp arrival_time_ = 0;
  int substream_ = kNoSubstream;
};

/// \brief A bounded stream segment or micro-batch, materialized in memory.
using TupleVector = std::vector<Tuple>;

}  // namespace icewafl

#endif  // ICEWAFL_STREAM_TUPLE_H_
