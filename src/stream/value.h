#ifndef ICEWAFL_STREAM_VALUE_H_
#define ICEWAFL_STREAM_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "util/result.h"

namespace icewafl {

/// \brief Runtime type of an attribute value.
enum class ValueType {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
};

/// \brief Name of a value type ("null", "bool", ...).
const char* ValueTypeName(ValueType type);

/// \brief Inverse of ValueTypeName.
Result<ValueType> ValueTypeFromName(const std::string& name);

/// \brief A dynamically typed attribute value.
///
/// Data streams are schema-ful but heterogeneous across attributes, and
/// polluters must be able to turn any value into NULL (missing value
/// errors) or change its representation (e.g. unit conversion). Value is
/// therefore a small tagged union with explicit coercion helpers.
class Value {
 public:
  /// Constructs NULL.
  Value() : data_(std::monostate{}) {}
  Value(bool b) : data_(b) {}                          // NOLINT
  Value(int64_t i) : data_(i) {}                       // NOLINT
  Value(int i) : data_(static_cast<int64_t>(i)) {}     // NOLINT
  Value(double d) : data_(d) {}                        // NOLINT
  Value(const char* s) : data_(std::string(s)) {}      // NOLINT
  Value(std::string s) : data_(std::move(s)) {}        // NOLINT

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int64() const { return type() == ValueType::kInt64; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int64() || is_double(); }

  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// \brief Numeric coercion: int64/double/bool widen to double; NULL and
  /// strings are errors.
  Result<double> ToDouble() const;

  /// \brief Integer coercion: double is truncated toward zero.
  Result<int64_t> ToInt64() const;

  /// \brief String rendering of any value; NULL renders as "" by default.
  std::string ToString(const std::string& null_repr = "") const;

  /// \brief Same rendering, assigned into `*out`: a loop-hoisted buffer
  /// makes per-tuple rendering allocation-free (hot validation loops).
  void RenderTo(std::string* out, const std::string& null_repr = "") const;

  /// Strict equality: types must match (int64(1) != double(1.0)).
  bool operator==(const Value& other) const { return data_ == other.data_; }

  /// \brief Ordering within the same type; NULL sorts first. Cross-type
  /// numeric comparison compares as double.
  bool operator<(const Value& other) const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

}  // namespace icewafl

#endif  // ICEWAFL_STREAM_VALUE_H_
