#ifndef ICEWAFL_STREAM_SOURCE_H_
#define ICEWAFL_STREAM_SOURCE_H_

#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "stream/tuple.h"
#include "util/result.h"

namespace icewafl {

/// \brief A pull-based producer of tuples.
///
/// Sources model both real (unbounded) streams and micro-batched input
/// (Section 2.1: "either a real data stream or a data stream split into
/// small batches"); within the framework every input is consumed
/// tuple-wise.
class Source {
 public:
  virtual ~Source() = default;

  /// \brief Schema shared by all produced tuples.
  virtual SchemaPtr schema() const = 0;

  /// \brief Produces the next tuple into `*out`. Returns false at end of
  /// stream (bounded sources only), true otherwise.
  virtual Result<bool> Next(Tuple* out) = 0;

  /// \brief Rewinds to the beginning, if the source supports replay.
  virtual Status Reset() {
    return Status::NotImplemented("source does not support Reset");
  }
};

/// \brief Bounded source over an in-memory tuple vector (replayable).
class VectorSource : public Source {
 public:
  VectorSource(SchemaPtr schema, TupleVector tuples)
      : schema_(std::move(schema)), tuples_(std::move(tuples)) {}

  SchemaPtr schema() const override { return schema_; }

  Result<bool> Next(Tuple* out) override {
    if (pos_ >= tuples_.size()) return false;
    *out = tuples_[pos_++];
    return true;
  }

  Status Reset() override {
    pos_ = 0;
    return Status::OK();
  }

  size_t size() const { return tuples_.size(); }

 private:
  SchemaPtr schema_;
  TupleVector tuples_;
  size_t pos_ = 0;
};

/// \brief Source driven by a generator function; `fn(i)` returns the i-th
/// tuple or nullopt to end the stream. Useful for synthetic workloads
/// without materializing them.
class GeneratorSource : public Source {
 public:
  using GenerateFn = std::function<std::optional<Tuple>(uint64_t index)>;

  GeneratorSource(SchemaPtr schema, GenerateFn fn)
      : schema_(std::move(schema)), fn_(std::move(fn)) {}

  SchemaPtr schema() const override { return schema_; }

  Result<bool> Next(Tuple* out) override {
    std::optional<Tuple> t = fn_(index_);
    if (!t.has_value()) return false;
    ++index_;
    *out = std::move(*t);
    return true;
  }

  Status Reset() override {
    index_ = 0;
    return Status::OK();
  }

 private:
  SchemaPtr schema_;
  GenerateFn fn_;
  uint64_t index_ = 0;
};

/// \brief Drains a bounded source into a vector.
Result<TupleVector> CollectAll(Source* source);

}  // namespace icewafl

#endif  // ICEWAFL_STREAM_SOURCE_H_
