#include "stream/operator.h"

namespace icewafl {

Status ReorderOperator::Process(Tuple tuple, Emitter* out) {
  if (tuple.event_time() > max_event_time_seen_) {
    max_event_time_seen_ = tuple.event_time();
  }
  buffer_.emplace(std::make_pair(tuple.arrival_time(), seq_++),
                  std::move(tuple));
  const Timestamp watermark = max_event_time_seen_ - max_lateness_;
  while (!buffer_.empty() && buffer_.begin()->first.first <= watermark) {
    ICEWAFL_RETURN_NOT_OK(out->Emit(std::move(buffer_.begin()->second)));
    buffer_.erase(buffer_.begin());
  }
  return Status::OK();
}

Status ReorderOperator::Finish(Emitter* out) {
  for (auto& [key, tuple] : buffer_) {
    ICEWAFL_RETURN_NOT_OK(out->Emit(std::move(tuple)));
  }
  buffer_.clear();
  return Status::OK();
}

}  // namespace icewafl
