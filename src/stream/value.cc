#include "stream/value.h"

#include <cstdio>

#include "util/strings.h"

namespace icewafl {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

Result<ValueType> ValueTypeFromName(const std::string& name) {
  if (name == "null") return ValueType::kNull;
  if (name == "bool") return ValueType::kBool;
  if (name == "int64") return ValueType::kInt64;
  if (name == "double") return ValueType::kDouble;
  if (name == "string") return ValueType::kString;
  return Status::ParseError("unknown value type: '" + name + "'");
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case ValueType::kBool:
      return AsBool() ? 1.0 : 0.0;
    case ValueType::kInt64:
      return static_cast<double>(AsInt64());
    case ValueType::kDouble:
      return AsDouble();
    case ValueType::kNull:
      return Status::TypeError("cannot convert NULL to double");
    case ValueType::kString:
      return Status::TypeError("cannot convert string to double: '" +
                               AsString() + "'");
  }
  return Status::Internal("corrupt value type");
}

Result<int64_t> Value::ToInt64() const {
  switch (type()) {
    case ValueType::kBool:
      return static_cast<int64_t>(AsBool());
    case ValueType::kInt64:
      return AsInt64();
    case ValueType::kDouble:
      return static_cast<int64_t>(AsDouble());
    case ValueType::kNull:
      return Status::TypeError("cannot convert NULL to int64");
    case ValueType::kString:
      return Status::TypeError("cannot convert string to int64: '" +
                               AsString() + "'");
  }
  return Status::Internal("corrupt value type");
}

void Value::RenderTo(std::string* out, const std::string& null_repr) const {
  switch (type()) {
    case ValueType::kNull:
      *out = null_repr;
      return;
    case ValueType::kBool:
      *out = AsBool() ? "true" : "false";
      return;
    case ValueType::kInt64: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(AsInt64()));
      *out = buf;
      return;
    }
    case ValueType::kDouble:
      FormatDoubleTo(AsDouble(), out);
      return;
    case ValueType::kString:
      *out = AsString();
      return;
  }
  out->clear();
}

std::string Value::ToString(const std::string& null_repr) const {
  std::string out;
  RenderTo(&out, null_repr);
  return out;
}

bool Value::operator<(const Value& other) const {
  // NULL sorts before everything else.
  if (is_null()) return !other.is_null();
  if (other.is_null()) return false;
  if (is_numeric() && other.is_numeric()) {
    return ToDouble().ValueOrDie() < other.ToDouble().ValueOrDie();
  }
  if (type() != other.type()) return type() < other.type();
  switch (type()) {
    case ValueType::kBool:
      return AsBool() < other.AsBool();
    case ValueType::kString:
      return AsString() < other.AsString();
    default:
      return false;
  }
}

}  // namespace icewafl
