#include "forecast/cv.h"

#include <algorithm>
#include <limits>

#include "forecast/metrics.h"

namespace icewafl {
namespace forecast {

Result<std::vector<Fold>> TimeSeriesSplit(size_t n, int n_splits) {
  if (n_splits < 1) {
    return Status::InvalidArgument("n_splits must be >= 1");
  }
  const size_t blocks = static_cast<size_t>(n_splits) + 1;
  if (n < blocks) {
    return Status::InvalidArgument(
        "series of length " + std::to_string(n) + " too short for " +
        std::to_string(n_splits) + " splits");
  }
  const size_t test_size = n / blocks;
  std::vector<Fold> folds;
  folds.reserve(static_cast<size_t>(n_splits));
  // Mirror scikit-learn: the first block absorbs the remainder.
  const size_t first_train = n - test_size * static_cast<size_t>(n_splits);
  for (int i = 0; i < n_splits; ++i) {
    Fold fold;
    fold.train_end = first_train + test_size * static_cast<size_t>(i);
    fold.test_begin = fold.train_end;
    fold.test_end = fold.test_begin + test_size;
    folds.push_back(fold);
  }
  return folds;
}

namespace {

/// Mean MAE of forecast/learn chunks over one fold.
Result<double> ScoreFold(Forecaster* model, const std::vector<double>& y,
                         const std::vector<std::vector<double>>& x,
                         const Fold& fold, size_t horizon) {
  static const std::vector<double> kNoFeatures;
  auto features = [&](size_t i) -> const std::vector<double>& {
    return i < x.size() ? x[i] : kNoFeatures;
  };
  for (size_t i = 0; i < fold.train_end; ++i) {
    model->LearnOne(y[i], features(i));
  }
  double mae_sum = 0.0;
  size_t chunks = 0;
  size_t pos = fold.test_begin;
  while (pos + horizon <= fold.test_end) {
    std::vector<std::vector<double>> future_x;
    if (!x.empty()) {
      future_x.assign(x.begin() + static_cast<ptrdiff_t>(pos),
                      x.begin() + static_cast<ptrdiff_t>(pos + horizon));
    }
    ICEWAFL_ASSIGN_OR_RETURN(std::vector<double> predicted,
                             model->Forecast(horizon, future_x));
    const std::vector<double> actual(
        y.begin() + static_cast<ptrdiff_t>(pos),
        y.begin() + static_cast<ptrdiff_t>(pos + horizon));
    ICEWAFL_ASSIGN_OR_RETURN(double mae,
                             MeanAbsoluteError(actual, predicted));
    mae_sum += mae;
    ++chunks;
    for (size_t i = pos; i < pos + horizon; ++i) {
      model->LearnOne(y[i], features(i));
    }
    pos += horizon;
  }
  if (chunks == 0) {
    return Status::InvalidArgument("test block shorter than forecast horizon");
  }
  return mae_sum / static_cast<double>(chunks);
}

/// Expands the grid into all parameter assignments (cartesian product).
std::vector<ParamMap> ExpandGrid(
    const std::map<std::string, std::vector<double>>& grid) {
  std::vector<ParamMap> assignments = {ParamMap{}};
  for (const auto& [param, values] : grid) {
    std::vector<ParamMap> next;
    next.reserve(assignments.size() * values.size());
    for (const ParamMap& base : assignments) {
      for (double v : values) {
        ParamMap extended = base;
        extended[param] = v;
        next.push_back(std::move(extended));
      }
    }
    assignments = std::move(next);
  }
  return assignments;
}

}  // namespace

Result<GridSearchResult> GridSearch(
    const std::map<std::string, std::vector<double>>& grid,
    const ModelFactory& factory, const std::vector<double>& y,
    const std::vector<std::vector<double>>& x,
    const GridSearchOptions& options) {
  if (!x.empty() && x.size() != y.size()) {
    return Status::InvalidArgument("feature series must match target length");
  }
  ICEWAFL_ASSIGN_OR_RETURN(std::vector<Fold> folds,
                           TimeSeriesSplit(y.size(), options.n_splits));
  GridSearchResult result;
  result.best_score = std::numeric_limits<double>::infinity();
  for (const ParamMap& params : ExpandGrid(grid)) {
    double score_sum = 0.0;
    for (const Fold& fold : folds) {
      ForecasterPtr model = factory(params);
      if (model == nullptr) {
        return Status::InvalidArgument("model factory returned nullptr");
      }
      ICEWAFL_ASSIGN_OR_RETURN(
          double score,
          ScoreFold(model.get(), y, x, fold, options.horizon));
      score_sum += score;
    }
    const double mean_score = score_sum / static_cast<double>(folds.size());
    result.evaluated.emplace_back(params, mean_score);
    if (mean_score < result.best_score) {
      result.best_score = mean_score;
      result.best_params = params;
    }
  }
  return result;
}

}  // namespace forecast
}  // namespace icewafl
