#ifndef ICEWAFL_FORECAST_RUNNING_MOMENTS_H_
#define ICEWAFL_FORECAST_RUNNING_MOMENTS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace icewafl {
namespace forecast {

/// \brief Streaming estimate of mean and standard deviation.
///
/// With decay == 1 this is the cumulative Welford recurrence (all
/// history weighted equally). With decay < 1 the moments are
/// exponentially weighted: each observation multiplies the weight of the
/// past by `decay`, so the estimate tracks the *current* scale of a
/// non-stationary stream — which is what an online standardizer needs
/// when error magnitudes drift over time (Experiment 3.2's temporally
/// increasing noise).
class RunningMoments {
 public:
  explicit RunningMoments(double decay = 1.0) : decay_(decay) {}

  void Update(double x) {
    ++count_;
    if (count_ == 1) {
      mean_ = x;
      accum_ = 0.0;
      return;
    }
    if (decay_ >= 1.0) {
      // Welford: accum_ carries the sum of squared deviations.
      const double delta = x - mean_;
      mean_ += delta / static_cast<double>(count_);
      accum_ += delta * (x - mean_);
    } else {
      // Exponentially weighted: accum_ carries the variance directly.
      const double diff = x - mean_;
      const double incr = (1.0 - decay_) * diff;
      mean_ += incr;
      accum_ = decay_ * (accum_ + diff * incr);
    }
  }

  uint64_t count() const { return count_; }
  double mean() const { return mean_; }

  double Variance() const {
    if (count_ < 2) return 0.0;
    if (decay_ >= 1.0) return accum_ / static_cast<double>(count_);
    return accum_;
  }

  /// \brief Standard deviation, floored away from zero so standardizing
  /// a constant stream stays well-defined.
  double Stddev(double floor = 1e-9) const {
    if (count_ < 2) return 1.0;
    return std::max(floor, std::sqrt(Variance()));
  }

  void Reset() {
    count_ = 0;
    mean_ = 0.0;
    accum_ = 0.0;
  }

 private:
  double decay_;
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double accum_ = 0.0;
};

}  // namespace forecast
}  // namespace icewafl

#endif  // ICEWAFL_FORECAST_RUNNING_MOMENTS_H_
