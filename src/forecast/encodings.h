#ifndef ICEWAFL_FORECAST_ENCODINGS_H_
#define ICEWAFL_FORECAST_ENCODINGS_H_

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "stream/bind.h"
#include "stream/tuple.h"
#include "util/result.h"
#include "util/time_util.h"

namespace icewafl {
namespace forecast {

/// \brief Cyclic (sin, cos) encoding of a value with the given period.
inline std::pair<double, double> CyclicEncode(double value, double period) {
  const double angle = 2.0 * M_PI * value / period;
  return {std::sin(angle), std::cos(angle)};
}

/// \brief The paper's temporal features for ARIMAX: sine and cosine
/// encodings of the hour-of-day and the month of the event timestamp
/// (Section 3.2.2). Returns {sin_h, cos_h, sin_m, cos_m}.
inline std::vector<double> TimeEncodings(Timestamp ts) {
  const auto [sin_h, cos_h] = CyclicEncode(HourOfDay(ts), 24.0);
  const auto [sin_m, cos_m] = CyclicEncode(MonthOfYear(ts) - 1, 12.0);
  return {sin_h, cos_h, sin_m, cos_m};
}

/// \brief Bound exogenous-feature encoder (DESIGN.md section 8): the
/// TimeEncodings of each tuple's timestamp followed by a configurable
/// list of affine-rescaled numeric columns, emitted in one pass over the
/// stream with column indices resolved once at Bind instead of per
/// column extraction.
class FeatureEncoder {
 public:
  /// \brief Appends a numeric column contributing `(value + offset) *
  /// scale` to every feature vector.
  void AddColumn(std::string name, double scale = 1.0, double offset = 0.0) {
    columns_.push_back({std::move(name), scale, offset, BoundAccessor()});
  }

  /// \brief Feature-vector width: the four time encodings plus one slot
  /// per added column.
  size_t num_features() const { return 4 + columns_.size(); }

  /// \brief Resolves every column (at "columns/<i>") and requires each
  /// to be numeric.
  Status Bind(BindContext& ctx) {
    bound_schema_ = nullptr;
    BindContext::Scope columns_scope(ctx, "columns");
    for (size_t i = 0; i < columns_.size(); ++i) {
      BindContext::Scope index_scope(ctx, i);
      ICEWAFL_ASSIGN_OR_RETURN(columns_[i].accessor,
                               ctx.ResolveNumeric(columns_[i].name));
    }
    bound_schema_ = &ctx.schema();
    return Status::OK();
  }

  /// \brief Encodes the whole stream; lazy-binds against the tuples'
  /// schema when Bind was not called up front. NULLs are rejected the
  /// same way data::ColumnAsDoubles rejects them: impute first.
  Result<std::vector<std::vector<double>>> EncodeAll(
      const TupleVector& tuples) {
    std::vector<std::vector<double>> out;
    out.reserve(tuples.size());
    if (tuples.empty()) return out;
    ICEWAFL_RETURN_NOT_OK(EnsureBound(tuples.front()));
    for (const Tuple& t : tuples) {
      ICEWAFL_ASSIGN_OR_RETURN(Timestamp ts, t.GetTimestamp());
      std::vector<double> features = TimeEncodings(ts);
      features.reserve(num_features());
      for (const Column& c : columns_) {
        if (c.accessor.at(t).is_null()) {
          return Status::InvalidArgument("NULL in column '" + c.name +
                                         "' — impute before extraction");
        }
        double x;
        if (!c.accessor.DoubleAt(t, &x)) {
          return Status::TypeError("column '" + c.name +
                                   "' holds a non-numeric value");
        }
        features.push_back((x + c.offset) * c.scale);
      }
      out.push_back(std::move(features));
    }
    return out;
  }

 private:
  struct Column {
    std::string name;
    double scale;
    double offset;
    BoundAccessor accessor;
  };

  Status EnsureBound(const Tuple& tuple) {
    if (bound_schema_ == tuple.schema().get()) return Status::OK();
    if (tuple.schema() == nullptr) {
      return Status::Internal("feature encoder: tuples have no schema");
    }
    BindContext ctx(*tuple.schema());
    return Bind(ctx);
  }

  std::vector<Column> columns_;
  const Schema* bound_schema_ = nullptr;
};

}  // namespace forecast
}  // namespace icewafl

#endif  // ICEWAFL_FORECAST_ENCODINGS_H_
