#ifndef ICEWAFL_FORECAST_ENCODINGS_H_
#define ICEWAFL_FORECAST_ENCODINGS_H_

#include <cmath>
#include <utility>
#include <vector>

#include "util/time_util.h"

namespace icewafl {
namespace forecast {

/// \brief Cyclic (sin, cos) encoding of a value with the given period.
inline std::pair<double, double> CyclicEncode(double value, double period) {
  const double angle = 2.0 * M_PI * value / period;
  return {std::sin(angle), std::cos(angle)};
}

/// \brief The paper's temporal features for ARIMAX: sine and cosine
/// encodings of the hour-of-day and the month of the event timestamp
/// (Section 3.2.2). Returns {sin_h, cos_h, sin_m, cos_m}.
inline std::vector<double> TimeEncodings(Timestamp ts) {
  const auto [sin_h, cos_h] = CyclicEncode(HourOfDay(ts), 24.0);
  const auto [sin_m, cos_m] = CyclicEncode(MonthOfYear(ts) - 1, 12.0);
  return {sin_h, cos_h, sin_m, cos_m};
}

}  // namespace forecast
}  // namespace icewafl

#endif  // ICEWAFL_FORECAST_ENCODINGS_H_
