#ifndef ICEWAFL_FORECAST_SEASONAL_NAIVE_H_
#define ICEWAFL_FORECAST_SEASONAL_NAIVE_H_

#include <deque>

#include "forecast/forecaster.h"

namespace icewafl {
namespace forecast {

/// \brief Seasonal-naive baseline: the forecast for step t+h is the
/// observation one season back, y_{t+h-m} (Hyndman & Athanasopoulos,
/// ch. 3). The standard sanity baseline every seasonal forecaster must
/// beat; before a full season has been observed it repeats the last
/// value (plain naive).
class SeasonalNaive : public Forecaster {
 public:
  explicit SeasonalNaive(int season_length = 24);

  void LearnOne(double y, const std::vector<double>& x = {}) override;
  Result<std::vector<double>> Forecast(
      size_t horizon,
      const std::vector<std::vector<double>>& future_x = {}) const override;
  void Reset() override;
  uint64_t observed_count() const override { return observed_; }
  std::string name() const override { return "seasonal_naive"; }
  ForecasterPtr CloneFresh() const override;

 private:
  int season_length_;
  std::deque<double> history_;  // most recent season_length_ values
  uint64_t observed_ = 0;
};

}  // namespace forecast
}  // namespace icewafl

#endif  // ICEWAFL_FORECAST_SEASONAL_NAIVE_H_
