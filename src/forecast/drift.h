#ifndef ICEWAFL_FORECAST_DRIFT_H_
#define ICEWAFL_FORECAST_DRIFT_H_

#include <cstdint>

namespace icewafl {
namespace forecast {

/// \brief Page-Hinkley change detector (Gama et al., "A Survey on
/// Concept Drift Adaptation").
///
/// Monitors a stream of non-negative deviations (e.g. absolute forecast
/// errors) and signals drift when their cumulative excess over the
/// running mean (minus a tolerance delta) exceeds `lambda`. In this
/// repository it closes the loop on the pollution model: a detector fed
/// with forecast residuals localizes the *onset* of temporally
/// increasing errors injected by Icewafl.
class PageHinkley {
 public:
  /// \param delta  magnitude tolerance: deviations within delta of the
  ///   running mean are treated as noise.
  /// \param lambda detection threshold on the cumulative statistic.
  /// \param min_observations warm-up before any detection fires.
  PageHinkley(double delta, double lambda, uint64_t min_observations = 30);

  /// \brief Consumes one value; returns true if drift is detected at
  /// this observation. After a detection the statistic resets, so
  /// subsequent drifts can be detected again.
  bool Update(double value);

  /// \brief Number of observations since construction or the last
  /// detection.
  uint64_t observed() const { return count_; }

  /// \brief Current value of the cumulative test statistic.
  double statistic() const { return cumulative_ - minimum_; }

  void Reset();

 private:
  double delta_;
  double lambda_;
  uint64_t min_observations_;
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double cumulative_ = 0.0;
  double minimum_ = 0.0;
};

}  // namespace forecast
}  // namespace icewafl

#endif  // ICEWAFL_FORECAST_DRIFT_H_
