#include "forecast/metrics.h"

#include <cmath>

namespace icewafl {
namespace forecast {

namespace {

Status CheckSizes(const std::vector<double>& actual,
                  const std::vector<double>& predicted) {
  if (actual.size() != predicted.size()) {
    return Status::InvalidArgument(
        "series length mismatch: " + std::to_string(actual.size()) + " vs " +
        std::to_string(predicted.size()));
  }
  if (actual.empty()) {
    return Status::InvalidArgument("cannot score empty series");
  }
  return Status::OK();
}

}  // namespace

Result<double> MeanAbsoluteError(const std::vector<double>& actual,
                                 const std::vector<double>& predicted) {
  ICEWAFL_RETURN_NOT_OK(CheckSizes(actual, predicted));
  double sum = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    sum += std::abs(actual[i] - predicted[i]);
  }
  return sum / static_cast<double>(actual.size());
}

Result<double> RootMeanSquaredError(const std::vector<double>& actual,
                                    const std::vector<double>& predicted) {
  ICEWAFL_RETURN_NOT_OK(CheckSizes(actual, predicted));
  double sum = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    const double d = actual[i] - predicted[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(actual.size()));
}

Result<double> SymmetricMape(const std::vector<double>& actual,
                             const std::vector<double>& predicted) {
  ICEWAFL_RETURN_NOT_OK(CheckSizes(actual, predicted));
  double sum = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    const double denom = (std::abs(actual[i]) + std::abs(predicted[i])) / 2.0;
    if (denom > 0.0) sum += std::abs(actual[i] - predicted[i]) / denom;
  }
  return 100.0 * sum / static_cast<double>(actual.size());
}

}  // namespace forecast
}  // namespace icewafl
