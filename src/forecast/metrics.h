#ifndef ICEWAFL_FORECAST_METRICS_H_
#define ICEWAFL_FORECAST_METRICS_H_

#include <vector>

#include "util/result.h"

namespace icewafl {
namespace forecast {

/// \brief Mean absolute error between actual and predicted series.
Result<double> MeanAbsoluteError(const std::vector<double>& actual,
                                 const std::vector<double>& predicted);

/// \brief Root mean squared error.
Result<double> RootMeanSquaredError(const std::vector<double>& actual,
                                    const std::vector<double>& predicted);

/// \brief Symmetric mean absolute percentage error in [0, 200] (%).
/// Pairs where both values are 0 contribute 0.
Result<double> SymmetricMape(const std::vector<double>& actual,
                             const std::vector<double>& predicted);

}  // namespace forecast
}  // namespace icewafl

#endif  // ICEWAFL_FORECAST_METRICS_H_
