#include "forecast/arima.h"

#include <cmath>

namespace icewafl {
namespace forecast {

namespace {
constexpr double kMinStddev = 1e-9;
}  // namespace

Arima::Arima(ArimaOptions options)
    : options_(options), y_stats_(options.stats_decay) {
  phi_.assign(static_cast<size_t>(options_.p), 0.0);
  theta_.assign(static_cast<size_t>(options_.q), 0.0);
  diff_state_.assign(static_cast<size_t>(options_.d), 0.0);
}

void Arima::Reset() {
  intercept_ = 0.0;
  phi_.assign(phi_.size(), 0.0);
  theta_.assign(theta_.size(), 0.0);
  beta_.assign(beta_.size(), 0.0);
  lags_.clear();
  errors_.clear();
  diff_state_.assign(diff_state_.size(), 0.0);
  diff_warmup_ = 0;
  observed_ = 0;
  y_stats_.Reset();
  for (RunningMoments& stats : x_stats_) stats.Reset();
}

double Arima::TargetStddev() const { return y_stats_.Stddev(kMinStddev); }

std::vector<double> Arima::StandardizeFeatures(
    const std::vector<double>& x) const {
  std::vector<double> z(beta_.size(), 0.0);
  for (size_t k = 0; k < beta_.size(); ++k) {
    const double raw = k < x.size() ? x[k] : 0.0;
    if (k >= x_stats_.size() || x_stats_[k].count() < 2) {
      z[k] = raw;
      continue;
    }
    z[k] = (raw - x_stats_[k].mean()) / x_stats_[k].Stddev(kMinStddev);
  }
  return z;
}

double Arima::PredictDifferenced(const std::deque<double>& lags,
                                 const std::deque<double>& errors,
                                 const std::vector<double>& x) const {
  double pred = intercept_;
  for (size_t i = 0; i < phi_.size(); ++i) {
    pred += phi_[i] * (i < lags.size() ? lags[i] : 0.0);
  }
  for (size_t j = 0; j < theta_.size(); ++j) {
    pred += theta_[j] * (j < errors.size() ? errors[j] : 0.0);
  }
  for (size_t k = 0; k < beta_.size(); ++k) {
    pred += beta_[k] * (k < x.size() ? x[k] : 0.0);
  }
  return pred;
}

void Arima::UpdateWeights(const std::deque<double>& lags,
                          const std::deque<double>& errors,
                          const std::vector<double>& x, double error) {
  // Normalized LMS over standardized features: all inputs are O(1), so
  // the norm stays bounded and the step well-conditioned.
  double norm = 1.0;  // the intercept feature
  for (size_t i = 0; i < phi_.size(); ++i) {
    const double f = i < lags.size() ? lags[i] : 0.0;
    norm += f * f;
  }
  for (size_t j = 0; j < theta_.size(); ++j) {
    const double f = j < errors.size() ? errors[j] : 0.0;
    norm += f * f;
  }
  for (size_t k = 0; k < beta_.size(); ++k) {
    const double f = k < x.size() ? x[k] : 0.0;
    norm += f * f;
  }
  const double step = options_.learning_rate * error / norm;
  intercept_ += step;
  for (size_t i = 0; i < phi_.size(); ++i) {
    phi_[i] += step * (i < lags.size() ? lags[i] : 0.0);
  }
  for (size_t j = 0; j < theta_.size(); ++j) {
    theta_[j] += step * (j < errors.size() ? errors[j] : 0.0);
  }
  for (size_t k = 0; k < beta_.size(); ++k) {
    beta_[k] += step * (k < x.size() ? x[k] : 0.0);
  }
}

bool Arima::Difference(double y, double* out) {
  double v = y;
  for (int k = 0; k < options_.d; ++k) {
    const size_t level = static_cast<size_t>(k);
    if (diff_warmup_ <= level) {
      diff_state_[level] = v;
      diff_warmup_ = level + 1;
      return false;
    }
    const double next = v - diff_state_[level];
    diff_state_[level] = v;
    v = next;
  }
  *out = v;
  return true;
}

std::vector<double> Arima::Integrate(const std::vector<double>& diffed) const {
  std::vector<double> out = diffed;
  for (int k = options_.d - 1; k >= 0; --k) {
    double prev = diff_state_[static_cast<size_t>(k)];
    for (double& v : out) {
      v += prev;
      prev = v;
    }
  }
  return out;
}

void Arima::LearnOne(double y, const std::vector<double>& x) {
  ++observed_;
  double yd;
  if (!Difference(y, &yd)) return;  // differencing chain still warming up

  // Standardize the exogenous vector with the stats known so far, then
  // fold the new observation into the running statistics.
  std::vector<double> zx = StandardizeFeatures(x);
  for (size_t k = 0; k < x_stats_.size(); ++k) {
    x_stats_[k].Update(k < x.size() ? x[k] : 0.0);
  }

  const double zy = (yd - y_stats_.mean()) / TargetStddev();
  y_stats_.Update(yd);

  const double pred = PredictDifferenced(lags_, errors_, zx);
  const double error = zy - pred;
  UpdateWeights(lags_, errors_, zx, error);
  lags_.push_front(zy);
  while (lags_.size() > phi_.size()) lags_.pop_back();
  errors_.push_front(error);
  while (errors_.size() > theta_.size()) errors_.pop_back();
}

Result<std::vector<double>> Arima::Forecast(
    size_t horizon, const std::vector<std::vector<double>>& future_x) const {
  if (horizon == 0) {
    return Status::InvalidArgument("forecast horizon must be > 0");
  }
  if (!beta_.empty() && future_x.size() < horizon) {
    return Status::InvalidArgument(
        name() + " needs one future feature vector per forecast step (" +
        std::to_string(future_x.size()) + " given, " +
        std::to_string(horizon) + " needed)");
  }
  std::deque<double> lags = lags_;
  std::deque<double> errors = errors_;
  const double stddev = TargetStddev();
  std::vector<double> diffed;
  diffed.reserve(horizon);
  static const std::vector<double> kNoFeatures;
  for (size_t h = 0; h < horizon; ++h) {
    const std::vector<double> zx =
        h < future_x.size() ? StandardizeFeatures(future_x[h]) : kNoFeatures;
    double pred_z = PredictDifferenced(lags, errors, zx);
    // Sanity clamp: the recursion feeds its own predictions back in, so
    // a transient shock (e.g. a scale error in the last observations)
    // could otherwise snowball across the horizon. Eight standard
    // deviations is far outside any plausible one-step move.
    pred_z = std::max(-8.0, std::min(8.0, pred_z));
    diffed.push_back(pred_z * stddev + y_stats_.mean());  // raw scale
    lags.push_front(pred_z);
    while (lags.size() > phi_.size()) lags.pop_back();
    errors.push_front(0.0);  // future one-step errors are unknown
    while (errors.size() > theta_.size()) errors.pop_back();
  }
  return Integrate(diffed);
}

ForecasterPtr Arima::CloneFresh() const {
  return std::make_unique<Arima>(options_);
}

Arimax::Arimax(ArimaOptions options, size_t num_features) : Arima(options) {
  num_exogenous_ = num_features;
  beta_.assign(num_features, 0.0);
  x_stats_.assign(num_features, RunningMoments(options.stats_decay));
}

ForecasterPtr Arimax::CloneFresh() const {
  return std::make_unique<Arimax>(options_, num_exogenous_);
}

}  // namespace forecast
}  // namespace icewafl
