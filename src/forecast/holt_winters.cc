#include "forecast/holt_winters.h"

namespace icewafl {
namespace forecast {

HoltWinters::HoltWinters(HoltWintersOptions options) : options_(options) {
  if (options_.season_length < 1) options_.season_length = 1;
}

void HoltWinters::Reset() {
  warmup_.clear();
  season_.clear();
  level_ = 0.0;
  trend_ = 0.0;
  initialized_ = false;
  observed_ = 0;
  season_pos_ = 0;
}

void HoltWinters::LearnOne(double y, const std::vector<double>&) {
  ++observed_;
  const size_t m = static_cast<size_t>(options_.season_length);
  if (!initialized_) {
    warmup_.push_back(y);
    if (warmup_.size() < m) return;
    // Initialize: level = mean of the first season, trend = 0, seasonal
    // components = deviations from the mean.
    double mean = 0.0;
    for (double v : warmup_) mean += v;
    mean /= static_cast<double>(m);
    level_ = mean;
    trend_ = 0.0;
    season_.resize(m);
    for (size_t i = 0; i < m; ++i) season_[i] = warmup_[i] - mean;
    warmup_.clear();
    season_pos_ = 0;  // the next observation aligns with season slot 0
    initialized_ = true;
    return;
  }
  const size_t s = season_pos_;
  const double last_level = level_;
  const double seasonal = season_[s];
  level_ = options_.alpha * (y - seasonal) +
           (1.0 - options_.alpha) * (level_ + trend_);
  trend_ = options_.beta * (level_ - last_level) +
           (1.0 - options_.beta) * trend_;
  season_[s] = options_.gamma * (y - level_) +
               (1.0 - options_.gamma) * seasonal;
  season_pos_ = (season_pos_ + 1) % m;
}

Result<std::vector<double>> HoltWinters::Forecast(
    size_t horizon, const std::vector<std::vector<double>>&) const {
  if (horizon == 0) {
    return Status::InvalidArgument("forecast horizon must be > 0");
  }
  std::vector<double> out;
  out.reserve(horizon);
  if (!initialized_) {
    // Not enough data for a seasonal profile: forecast the running mean
    // of what has been seen (or 0 with no data at all).
    double mean = 0.0;
    if (!warmup_.empty()) {
      for (double v : warmup_) mean += v;
      mean /= static_cast<double>(warmup_.size());
    }
    out.assign(horizon, mean);
    return out;
  }
  const size_t m = season_.size();
  const double phi = options_.trend_damping;
  double damp_sum = 0.0;
  double damp_pow = 1.0;
  for (size_t h = 1; h <= horizon; ++h) {
    damp_pow *= phi;
    damp_sum += damp_pow;  // phi + phi^2 + ... + phi^h; equals h if phi=1
    const size_t s = (season_pos_ + h - 1) % m;
    out.push_back(level_ + damp_sum * trend_ + season_[s]);
  }
  return out;
}

ForecasterPtr HoltWinters::CloneFresh() const {
  return std::make_unique<HoltWinters>(options_);
}

}  // namespace forecast
}  // namespace icewafl
