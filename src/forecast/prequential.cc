#include "forecast/prequential.h"

#include "forecast/metrics.h"

namespace icewafl {
namespace forecast {

Result<std::vector<PrequentialPoint>> RunPrequential(
    Forecaster* model, const std::vector<double>& y,
    const std::vector<double>& targets,
    const std::vector<std::vector<double>>& x,
    const std::vector<Timestamp>& ts, const PrequentialOptions& options) {
  const size_t n = y.size();
  if (targets.size() != n) {
    return Status::InvalidArgument("targets must match stream length");
  }
  if (!x.empty() && x.size() != n) {
    return Status::InvalidArgument("feature series must match stream length");
  }
  if (ts.size() != n) {
    return Status::InvalidArgument("timestamps must match stream length");
  }
  if (options.train_window == 0 || options.horizon == 0) {
    return Status::InvalidArgument("train_window and horizon must be > 0");
  }
  static const std::vector<double> kNoFeatures;
  auto features = [&](size_t i) -> const std::vector<double>& {
    return i < x.size() ? x[i] : kNoFeatures;
  };

  std::vector<PrequentialPoint> points;
  size_t pos = 0;
  while (pos + options.train_window + options.horizon <= n) {
    // Training period: the evaluation data of the previous window lies
    // inside this range, realizing the "released for the next training
    // period" rule.
    const size_t train_end = pos + options.train_window;
    for (size_t i = pos; i < train_end; ++i) {
      model->LearnOne(y[i], features(i));
    }
    std::vector<std::vector<double>> future_x;
    if (!x.empty()) {
      future_x.assign(
          x.begin() + static_cast<ptrdiff_t>(train_end),
          x.begin() + static_cast<ptrdiff_t>(train_end + options.horizon));
    }
    ICEWAFL_ASSIGN_OR_RETURN(std::vector<double> predicted,
                             model->Forecast(options.horizon, future_x));
    const std::vector<double> actual(
        targets.begin() + static_cast<ptrdiff_t>(train_end),
        targets.begin() +
            static_cast<ptrdiff_t>(train_end + options.horizon));
    PrequentialPoint point;
    point.eval_start = ts[train_end];
    ICEWAFL_ASSIGN_OR_RETURN(point.mae, MeanAbsoluteError(actual, predicted));
    points.push_back(point);
    pos += options.train_window;
  }
  return points;
}

}  // namespace forecast
}  // namespace icewafl
