#include "forecast/drift.h"

#include <algorithm>

namespace icewafl {
namespace forecast {

PageHinkley::PageHinkley(double delta, double lambda,
                         uint64_t min_observations)
    : delta_(delta), lambda_(lambda), min_observations_(min_observations) {}

bool PageHinkley::Update(double value) {
  ++count_;
  const double prev_mean = mean_;
  mean_ += (value - mean_) / static_cast<double>(count_);
  (void)prev_mean;
  cumulative_ += value - mean_ - delta_;
  minimum_ = std::min(minimum_, cumulative_);
  if (count_ >= min_observations_ && statistic() > lambda_) {
    Reset();
    return true;
  }
  return false;
}

void PageHinkley::Reset() {
  count_ = 0;
  mean_ = 0.0;
  cumulative_ = 0.0;
  minimum_ = 0.0;
}

}  // namespace forecast
}  // namespace icewafl
