#ifndef ICEWAFL_FORECAST_CV_H_
#define ICEWAFL_FORECAST_CV_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "forecast/forecaster.h"

namespace icewafl {
namespace forecast {

/// \brief One expanding-window fold: train on [0, train_end), test on
/// [test_begin, test_end).
struct Fold {
  size_t train_end = 0;
  size_t test_begin = 0;
  size_t test_end = 0;
};

/// \brief Expanding-window time-series cross validation
/// (scikit-learn TimeSeriesSplit semantics): the series is cut into
/// n_splits + 1 equal blocks; fold i trains on the first i+1 blocks and
/// tests on block i+2.
Result<std::vector<Fold>> TimeSeriesSplit(size_t n, int n_splits);

/// \brief A point in hyperparameter space.
using ParamMap = std::map<std::string, double>;

/// \brief Builds an untrained model from a parameter assignment.
using ModelFactory = std::function<ForecasterPtr(const ParamMap&)>;

struct GridSearchResult {
  ParamMap best_params;
  double best_score = 0.0;  ///< mean CV MAE of the best assignment
  /// Every evaluated assignment with its mean CV MAE.
  std::vector<std::pair<ParamMap, double>> evaluated;
};

/// \brief Options for grid search.
struct GridSearchOptions {
  int n_splits = 5;
  size_t horizon = 12;  ///< forecast chunk length inside each test block
};

/// \brief Exhaustive grid search over hyperparameters, scored by
/// expanding-window CV: in each fold the model learns the training
/// block, then alternates forecast-horizon / learn-chunk through the
/// test block; the score is the mean MAE of all chunks (Section 3.2.2's
/// "grid search in combination with 5-fold time series cross
/// validation").
///
/// \param grid map from parameter name to candidate values; the
///   cartesian product is evaluated.
/// \param x optional exogenous features, one vector per observation
///   (empty for purely auto-regressive models).
Result<GridSearchResult> GridSearch(
    const std::map<std::string, std::vector<double>>& grid,
    const ModelFactory& factory, const std::vector<double>& y,
    const std::vector<std::vector<double>>& x,
    const GridSearchOptions& options = {});

}  // namespace forecast
}  // namespace icewafl

#endif  // ICEWAFL_FORECAST_CV_H_
