#ifndef ICEWAFL_FORECAST_ARIMA_H_
#define ICEWAFL_FORECAST_ARIMA_H_

#include <deque>
#include <vector>

#include "forecast/forecaster.h"
#include "forecast/running_moments.h"

namespace icewafl {
namespace forecast {

/// \brief Hyperparameters shared by Arima and Arimax.
struct ArimaOptions {
  int p = 1;  ///< auto-regressive order
  int d = 0;  ///< differencing order
  int q = 0;  ///< moving-average order
  /// Base learning rate of the normalized-LMS update. The effective rate
  /// is lr / (1 + ||features||^2), which keeps the recursion stable for
  /// unscaled sensor magnitudes.
  double learning_rate = 0.01;
  /// Decay of the internal standardization statistics: 1.0 weighs the
  /// whole history equally (cumulative); values < 1 track the current
  /// scale of a drifting stream (see RunningMoments).
  double stats_decay = 1.0;
};

/// \brief Online ARIMA(p, d, q) fitted by normalized stochastic gradient
/// descent (the streaming formulation used by River's SNARIMAX).
///
/// The model maintains the d-times differenced series, standardizes it
/// (and every exogenous feature) with running Welford statistics — the
/// equivalent of the StandardScaler River pipelines use, and essential
/// for the NLMS step to treat lag and exogenous features equally — then
/// predicts
///   zhat_t = c + sum_i phi_i * z_{t-i} + sum_j theta_j * e_{t-j} + b'x
/// and updates (c, phi, theta, b) from each one-step-ahead error.
/// Multi-step forecasts recurse with future errors set to zero, are
/// un-standardized, and are integrated back through the differencing
/// chain.
class Arima : public Forecaster {
 public:
  explicit Arima(ArimaOptions options);

  void LearnOne(double y, const std::vector<double>& x = {}) override;
  Result<std::vector<double>> Forecast(
      size_t horizon,
      const std::vector<std::vector<double>>& future_x = {}) const override;
  void Reset() override;
  uint64_t observed_count() const override { return observed_; }
  std::string name() const override { return "arima"; }
  ForecasterPtr CloneFresh() const override;

  const ArimaOptions& options() const { return options_; }

 protected:
  /// One-step prediction of the differenced series from the current
  /// lag/error state (`lags` newest-first, `errors` newest-first) and the
  /// exogenous vector (empty for plain ARIMA).
  double PredictDifferenced(const std::deque<double>& lags,
                            const std::deque<double>& errors,
                            const std::vector<double>& x) const;

  /// NLMS update from a one-step error.
  void UpdateWeights(const std::deque<double>& lags,
                     const std::deque<double>& errors,
                     const std::vector<double>& x, double error);

  /// Pushes y through the d-level differencing chain, returning the
  /// fully differenced value; returns false while the chain is warming
  /// up (fewer than d prior observations).
  bool Difference(double y, double* out);

  /// Integrates a differenced forecast sequence back to the original
  /// scale using the stored chain state.
  std::vector<double> Integrate(const std::vector<double>& diffed) const;

  /// Standard deviation of the differenced target (>= a small floor so
  /// constant series stay well-defined).
  double TargetStddev() const;

  /// Standardizes an exogenous vector with the current running stats.
  std::vector<double> StandardizeFeatures(const std::vector<double>& x) const;

  ArimaOptions options_;
  size_t num_exogenous_ = 0;  // fixed for Arimax, 0 for plain Arima

  double intercept_ = 0.0;
  std::vector<double> phi_;    // AR coefficients, lag 1 first
  std::vector<double> theta_;  // MA coefficients, lag 1 first
  std::vector<double> beta_;   // exogenous coefficients (Arimax)

  std::deque<double> lags_;    // standardized differenced values, newest 1st
  std::deque<double> errors_;  // one-step errors (z-space), newest first
  std::vector<double> diff_state_;  // last value per differencing level
  size_t diff_warmup_ = 0;
  uint64_t observed_ = 0;

  // Running standardization statistics of the differenced target and of
  // each exogenous feature.
  RunningMoments y_stats_;
  std::vector<RunningMoments> x_stats_;
};

/// \brief Online ARIMAX: ARIMA plus a linear term over exogenous features
/// (weather covariates and sine/cosine time encodings in Experiment 2).
/// Forecasting requires the future feature vectors.
class Arimax : public Arima {
 public:
  Arimax(ArimaOptions options, size_t num_features);

  std::string name() const override { return "arimax"; }
  ForecasterPtr CloneFresh() const override;
};

}  // namespace forecast
}  // namespace icewafl

#endif  // ICEWAFL_FORECAST_ARIMA_H_
