#ifndef ICEWAFL_FORECAST_PREQUENTIAL_H_
#define ICEWAFL_FORECAST_PREQUENTIAL_H_

#include <vector>

#include "forecast/forecaster.h"
#include "util/time_util.h"

namespace icewafl {
namespace forecast {

/// \brief Parameters of the paper's evaluation protocol (Section 3.2.3):
/// learn `train_window` observations, forecast the next `horizon`, score,
/// release the evaluation data into the next training period.
struct PrequentialOptions {
  size_t train_window = 504;  ///< 3 weeks of hourly data
  size_t horizon = 12;        ///< 12-hour forecast
};

/// \brief One evaluation window of a prequential run.
struct PrequentialPoint {
  /// Event time of the first forecast step (x-axis of Figures 6/7).
  Timestamp eval_start = 0;
  /// Mean absolute error of the `horizon` forecasts in this window.
  double mae = 0.0;
};

/// \brief Runs the train-504h / forecast-12h prequential protocol.
///
/// \param y       the stream the model observes (possibly polluted).
/// \param targets the values forecasts are scored against. Pass `y`
///   itself for pure prequential scoring, or the clean series to measure
///   robustness against injected errors.
/// \param x       optional exogenous features per observation (empty for
///   purely auto-regressive models); forecasts receive the features of
///   the evaluation steps, which mirrors the paper's ARIMAX setup where
///   covariates of the forecast period are available.
/// \param ts      event time per observation (labels the output points).
Result<std::vector<PrequentialPoint>> RunPrequential(
    Forecaster* model, const std::vector<double>& y,
    const std::vector<double>& targets,
    const std::vector<std::vector<double>>& x,
    const std::vector<Timestamp>& ts, const PrequentialOptions& options = {});

}  // namespace forecast
}  // namespace icewafl

#endif  // ICEWAFL_FORECAST_PREQUENTIAL_H_
