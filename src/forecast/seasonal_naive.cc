#include "forecast/seasonal_naive.h"

namespace icewafl {
namespace forecast {

SeasonalNaive::SeasonalNaive(int season_length)
    : season_length_(season_length < 1 ? 1 : season_length) {}

void SeasonalNaive::LearnOne(double y, const std::vector<double>&) {
  ++observed_;
  history_.push_back(y);
  while (history_.size() > static_cast<size_t>(season_length_)) {
    history_.pop_front();
  }
}

Result<std::vector<double>> SeasonalNaive::Forecast(
    size_t horizon, const std::vector<std::vector<double>>&) const {
  if (horizon == 0) {
    return Status::InvalidArgument("forecast horizon must be > 0");
  }
  std::vector<double> out;
  out.reserve(horizon);
  if (history_.empty()) {
    out.assign(horizon, 0.0);
    return out;
  }
  if (history_.size() < static_cast<size_t>(season_length_)) {
    // Not a full season yet: plain naive (repeat the last value).
    out.assign(horizon, history_.back());
    return out;
  }
  // history_[0] is the value from exactly one season ago.
  for (size_t h = 0; h < horizon; ++h) {
    out.push_back(history_[h % history_.size()]);
  }
  return out;
}

void SeasonalNaive::Reset() {
  history_.clear();
  observed_ = 0;
}

ForecasterPtr SeasonalNaive::CloneFresh() const {
  return std::make_unique<SeasonalNaive>(season_length_);
}

}  // namespace forecast
}  // namespace icewafl
