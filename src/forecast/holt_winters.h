#ifndef ICEWAFL_FORECAST_HOLT_WINTERS_H_
#define ICEWAFL_FORECAST_HOLT_WINTERS_H_

#include <vector>

#include "forecast/forecaster.h"

namespace icewafl {
namespace forecast {

/// \brief Hyperparameters of the Holt-Winters model.
struct HoltWintersOptions {
  double alpha = 0.3;     ///< level smoothing in (0, 1)
  double beta = 0.05;     ///< trend smoothing in [0, 1)
  double gamma = 0.1;     ///< seasonal smoothing in [0, 1)
  int season_length = 24; ///< observations per season (24 for hourly data)
  /// Damped-trend factor phi in (0, 1]: the h-step forecast uses
  /// (phi + phi^2 + ... + phi^h) * trend (Gardner's damped trend), which
  /// keeps long horizons from running away on a noisy trend estimate.
  /// 1.0 disables damping.
  double trend_damping = 1.0;
};

/// \brief Additive Holt-Winters triple exponential smoothing, updated
/// online (Hyndman & Athanasopoulos, ch. 8).
///
/// The first `season_length` observations initialize the seasonal
/// profile; afterwards level, trend, and season are smoothed per
/// observation and forecasts extrapolate level + h * trend + season.
class HoltWinters : public Forecaster {
 public:
  explicit HoltWinters(HoltWintersOptions options);

  void LearnOne(double y, const std::vector<double>& x = {}) override;
  Result<std::vector<double>> Forecast(
      size_t horizon,
      const std::vector<std::vector<double>>& future_x = {}) const override;
  void Reset() override;
  uint64_t observed_count() const override { return observed_; }
  std::string name() const override { return "holt_winters"; }
  ForecasterPtr CloneFresh() const override;

  const HoltWintersOptions& options() const { return options_; }

 private:
  HoltWintersOptions options_;
  std::vector<double> warmup_;   // first season, used for initialization
  std::vector<double> season_;   // seasonal components
  double level_ = 0.0;
  double trend_ = 0.0;
  bool initialized_ = false;
  uint64_t observed_ = 0;
  size_t season_pos_ = 0;  // index into season_ of the next observation
};

}  // namespace forecast
}  // namespace icewafl

#endif  // ICEWAFL_FORECAST_HOLT_WINTERS_H_
