#ifndef ICEWAFL_FORECAST_FORECASTER_H_
#define ICEWAFL_FORECAST_FORECASTER_H_

#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace icewafl {
namespace forecast {

/// \brief An online (incremental) forecasting model.
///
/// Models receive observations one at a time — the streaming analogue of
/// the River library used in the paper's Experiment 2 — and can forecast
/// an arbitrary horizon ahead from their current state. Exogenous
/// features `x` are optional; auto-regressive models (ARIMA,
/// Holt-Winters) ignore them while ARIMAX consumes them.
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// \brief Consumes one observation of the target (and its features).
  virtual void LearnOne(double y, const std::vector<double>& x = {}) = 0;

  /// \brief Predicts the next `horizon` values. Models with exogenous
  /// inputs require `future_x` to hold one feature vector per step.
  virtual Result<std::vector<double>> Forecast(
      size_t horizon,
      const std::vector<std::vector<double>>& future_x = {}) const = 0;

  /// \brief Discards all learned state (hyperparameters are kept).
  virtual void Reset() = 0;

  /// \brief Number of observations consumed since the last Reset.
  virtual uint64_t observed_count() const = 0;

  virtual std::string name() const = 0;

  /// \brief Fresh (untrained) copy with identical hyperparameters.
  virtual std::unique_ptr<Forecaster> CloneFresh() const = 0;
};

using ForecasterPtr = std::unique_ptr<Forecaster>;

}  // namespace forecast
}  // namespace icewafl

#endif  // ICEWAFL_FORECAST_FORECASTER_H_
